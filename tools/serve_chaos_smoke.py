#!/usr/bin/env python
"""Serve chaos smoke: a live daemon under SIGKILL and a flooding tenant.

End-to-end proof of the placement service's robustness story over a
real unix socket, in two phases:

* **Chaos phase** — two well-behaved tenants stream concurrently while
  a :class:`FaultPlan` SIGKILLs one tenant's worker mid-replay and a
  poison tenant injects a corrupt chunk.  Both survivors must end
  ``done`` with results bit-identical to a batch
  :func:`~repro.serve.engine.run_session`, the poison tenant must be
  quarantined alone, and the pool must have respawned at least once.

* **Backpressure phase** — against a deliberately small token bucket,
  a flooding tenant slams oversized traffic while a well-behaved
  tenant streams politely.  The flooder must observe ``retry_after``
  responses (never an unbounded buffer), the spool gauge must stay
  under its cap, and the polite tenant's p95 append latency must stay
  below an absolute bound — the noisy neighbour cannot degrade it.

Run it standalone (``python tools/serve_chaos_smoke.py``) or through
``tools/ci_smoke.sh``.  Exits non-zero with a message on any violation.
"""

import os
import sys
import tempfile
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.harness.resilience import FaultPlan  # noqa: E402
from repro.serve.chaos import TenantPlan, run_chaos, synth_traffic  # noqa: E402
from repro.serve.client import RetryAfter, SocketClient  # noqa: E402
from repro.serve.service import PlacementService, ServiceConfig  # noqa: E402
from repro.serve.socket import ServeDaemon  # noqa: E402

#: Absolute p95 bound (seconds) for one polite append round-trip while
#: the flooder is being throttled.  An append is a JSON parse, a few
#: bounds checks, and one tiny npz write — 250 ms leaves an order of
#: magnitude of headroom on a loaded CI box while still catching a
#: flooder that stalls the event loop or serialises the ingest path.
P95_BOUND_SECONDS = 0.25


class _Daemon:
    """A daemon on a real unix socket, running in a thread."""

    def __init__(self, config: ServiceConfig, path: str) -> None:
        self.service = PlacementService(config)
        self.daemon = ServeDaemon(self.service, path)
        self.path = path
        self.thread = threading.Thread(
            target=self.daemon.run, kwargs={"handle_signals": False},
            daemon=True)

    def __enter__(self) -> "_Daemon":
        self.thread.start()
        if not self.daemon.ready.wait(10):
            raise RuntimeError("daemon never came up")
        return self

    def __exit__(self, *exc) -> None:
        self.daemon.request_stop()
        self.thread.join(timeout=30)
        if self.thread.is_alive():
            raise RuntimeError("daemon did not stop")


def chaos_phase(workdir: str) -> None:
    path = os.path.join(workdir, "chaos.sock")
    config = ServiceConfig(
        serve_dir=os.path.join(workdir, "chaos-spool"),
        isolation="process", pool_workers=2,
        job_timeout=10.0, retries=2, retry_backoff=0.05,
        idle_timeout=None,
        fault_plan=FaultPlan({"alice": ["kill"]}),
    )
    plans = [
        TenantPlan("alice", seed=11),   # her worker is SIGKILL'd once
        TenantPlan("bob", seed=22),
        TenantPlan("mallory", seed=33, behaviour="corrupt:bad-type"),
    ]
    with _Daemon(config, path):
        report = run_chaos(lambda: SocketClient(path), plans,
                           stats_client=SocketClient(path))
    if not report.ok:
        sys.exit(f"chaos phase FAILED: {report.summary()}")
    counts = report.stats["counts"]
    if counts.get("pool_respawns", 0) < 1:
        sys.exit("chaos phase FAILED: the SIGKILL never hit a worker "
                 f"(counts: {counts})")
    print(f"chaos phase OK: {report.summary()} "
          f"(pool respawns: {counts['pool_respawns']})")


def _flood(path: str, stop: threading.Event, seen: dict) -> None:
    """Slam appends as fast as the service will take them."""
    client = SocketClient(path)
    spec = TenantPlan("flood", seed=7).spec()
    trace, times = synth_traffic(7, 4000, spec.num_cores,
                                 spec.slow_pages // 2)
    sid = client.open(spec)
    seq = 0
    while not stop.is_set():
        lo = (seq * 500) % (len(trace) - 500)
        piece = trace.slice(lo, lo + 500)
        # Re-sliced windows would send time backwards; rebase each
        # chunk onto a monotonically advancing fence instead.
        rel = times[lo:lo + 500] - float(times[lo])
        try:
            client.append(sid, seq, piece, rel + seen["fence"])
            seen["fence"] += float(rel[-1]) + 1e-9
            seq += 1
            seen["accepted"] = seq
        except RetryAfter as exc:
            seen["retries"] += 1
            seen["max_retry_after"] = max(seen["max_retry_after"],
                                          exc.retry_after)
            time.sleep(min(exc.retry_after, 0.02))
    client.close()


def backpressure_phase(workdir: str) -> None:
    path = os.path.join(workdir, "flood.sock")
    config = ServiceConfig(
        serve_dir=os.path.join(workdir, "flood-spool"),
        isolation="inline", pool_workers=1, idle_timeout=None,
        rate_accesses_per_sec=20_000.0, burst_accesses=2_000.0,
        max_spool_accesses=50_000,
    )
    with _Daemon(config, path):
        stop = threading.Event()
        seen = {"retries": 0, "accepted": 0, "fence": 0.0,
                "max_retry_after": 0.0}
        flooder = threading.Thread(target=_flood,
                                   args=(path, stop, seen), daemon=True)
        flooder.start()
        time.sleep(0.2)  # let the flooder drain its bucket first

        client = SocketClient(path)
        spec = TenantPlan("polite", seed=9, accesses=1200).spec()
        trace, times = synth_traffic(9, 1200, spec.num_cores,
                                     spec.slow_pages // 2)
        sid = client.open(spec)
        latencies = []
        seq = 0
        for lo in range(0, len(trace), 100):
            hi = min(lo + 100, len(trace))
            t0 = time.monotonic()
            client.append(sid, seq, trace.slice(lo, hi), times[lo:hi])
            latencies.append(time.monotonic() - t0)
            seq += 1
            time.sleep(0.01)
        client.commit(sid)
        result = client.wait(sid, timeout=60)
        stats = client.stats()
        stop.set()
        flooder.join(timeout=10)
        client.close()

    from repro.serve.engine import run_session

    batch = run_session(spec, trace, times)
    if result.sha != batch.sha:
        sys.exit("backpressure phase FAILED: polite tenant diverged "
                 f"from batch ({result.sha[:12]} != {batch.sha[:12]})")
    if seen["retries"] < 1:
        sys.exit("backpressure phase FAILED: the flooder was never "
                 f"throttled (accepted {seen['accepted']} chunks)")
    spooled = stats["spooled_accesses"]
    if spooled > config.max_spool_accesses:
        sys.exit(f"backpressure phase FAILED: spool grew to {spooled} "
                 f"accesses (cap {config.max_spool_accesses})")
    latencies.sort()
    p95 = latencies[int(0.95 * (len(latencies) - 1))]
    if p95 > P95_BOUND_SECONDS:
        sys.exit(f"backpressure phase FAILED: polite tenant p95 append "
                 f"latency {p95 * 1000:.1f} ms exceeds "
                 f"{P95_BOUND_SECONDS * 1000:.0f} ms")
    print(f"backpressure phase OK: flooder throttled {seen['retries']}x "
          f"(accepted {seen['accepted']} chunks, max retry_after "
          f"{seen['max_retry_after']:.3f}s); polite tenant done "
          f"bit-identical, p95 append {p95 * 1000:.1f} ms")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as wd:
        chaos_phase(wd)
        backpressure_phase(wd)
    print("serve chaos smoke OK")


if __name__ == "__main__":
    main()
