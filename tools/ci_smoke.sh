#!/usr/bin/env bash
# Tier-1 smoke gate: unit tests + a fast replay-kernel sanity benchmark.
#
# Usage: tools/ci_smoke.sh [extra pytest args...]
#
# 1. Runs the full tier-1 unit suite (tests/), failing fast.
# 2. Re-runs the chaos suites verbosely (worker SIGKILL, hangs past
#    timeout, corrupted cache entries, compile failure) so a resilience
#    regression is named in the CI log, not buried in the dots.
# 3. Runs the kill/resume smoke: SIGKILLs a real checkpointed sweep
#    mid-run, resumes it, and asserts bit-identical rows with only the
#    unfinished fractions recomputed.
# 4. Runs the replay-kernel and policy-kernel throughput benchmarks at
#    a small scale with relaxed JSON output paths, so CI catches both
#    correctness drift (the benchmarks assert bit-exact parity of
#    replay results, migration plans, and fault-simulator tallies) and
#    gross performance regressions without a long wall-clock bill.
#
# Environment:
#   REPRO_SMOKE_ACCESSES  accesses/core for the kernel benchmark (default 4000)

set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 unit tests =="
python -m pytest -x -q "$@"

echo "== chaos / fault-injection tests =="
python -m pytest -q tests/harness/test_resilience.py \
    tests/sim/test_ckernel_fallback.py

echo "== kill/resume smoke =="
python tools/kill_resume_smoke.py

echo "== replay kernel smoke benchmark =="
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
REPRO_BENCH_ACCESSES="${REPRO_SMOKE_ACCESSES:-4000}" \
REPRO_BENCH_REPLAY_JSON="$workdir/BENCH_replay.json" \
python -m pytest benchmarks/bench_replay_kernel.py -q -s -p no:cacheprovider

echo "== policy kernel smoke benchmark =="
REPRO_BENCH_ACCESSES="${REPRO_SMOKE_ACCESSES:-4000}" \
REPRO_BENCH_FAULT_TRIALS=20000 \
REPRO_BENCH_POLICY_JSON="$workdir/BENCH_policies.json" \
python -m pytest benchmarks/bench_policy_kernels.py -q -s -p no:cacheprovider

echo "== smoke OK =="
