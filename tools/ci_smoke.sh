#!/usr/bin/env bash
# Tier-1 smoke gate: unit tests + a fast replay-kernel sanity benchmark.
#
# Usage: tools/ci_smoke.sh [extra pytest args...]
#
# 1. Runs the full tier-1 unit suite (tests/), failing fast.
# 2. Runs the replay-kernel throughput benchmark at a small scale with
#    a relaxed JSON output path, so CI catches both correctness drift
#    (the benchmark asserts bit-exact parity) and gross performance
#    regressions without a long wall-clock bill.
#
# Environment:
#   REPRO_SMOKE_ACCESSES  accesses/core for the kernel benchmark (default 4000)

set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 unit tests =="
python -m pytest -x -q "$@"

echo "== replay kernel smoke benchmark =="
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
REPRO_BENCH_ACCESSES="${REPRO_SMOKE_ACCESSES:-4000}" \
REPRO_BENCH_REPLAY_JSON="$workdir/BENCH_replay.json" \
python -m pytest benchmarks/bench_replay_kernel.py -q -s -p no:cacheprovider

echo "== smoke OK =="
