#!/usr/bin/env bash
# Tier-1 smoke gate: unit tests + a fast replay-kernel sanity benchmark.
#
# Usage: tools/ci_smoke.sh [extra pytest args...]
#
# 1. Runs the full tier-1 unit suite (tests/), failing fast.
# 2. Re-runs the chaos suites verbosely (worker SIGKILL, hangs past
#    timeout, corrupted cache entries, compile failure) so a resilience
#    regression is named in the CI log, not buried in the dots.
# 3. Runs the workload-frontier smoke: one small server-workload
#    generator per family (kvstore, webserver, compiler) through the
#    fused pipeline with the tolerance-tiered policy, gated on
#    seeded determinism, sparse/array plan parity, and a reliability
#    win over the perf-focused baseline.
# 4. Runs the kill/resume smoke: SIGKILLs a real checkpointed sweep
#    mid-run, resumes it, and asserts bit-identical rows with only the
#    unfinished fractions recomputed.  Then the serve chaos smoke: a
#    live placement daemon on a unix socket with a worker SIGKILL'd
#    mid-replay and a poison tenant (survivors must be bit-identical
#    to batch), plus a flooding tenant that must be throttled with
#    retry_after without degrading a polite tenant's p95 latency.
# 5. Runs the replay-kernel, policy-kernel, end-to-end pipeline,
#    config-batched multi-run engine (oracle vs batched sweeps), and
#    workload-generator throughput benchmarks at a small scale with
#    relaxed JSON output paths, so CI catches both correctness drift
#    (the benchmarks assert bit-exact parity of replay results,
#    migration plans, residual cache-filter traces, shm handoffs,
#    fault-simulator tallies, and seeded generator determinism) and
#    gross performance regressions without a long wall-clock bill.
# 6. Runs the telemetry smoke: a tiny migration experiment twice with
#    REPRO_TELEMETRY on, asserting the run registry holds both rows
#    with non-empty epoch series, that `report` renders, and that a
#    self-`compare` of the two identical runs exits 0.
# 7. Runs the telemetry-overhead benchmark, asserting the dormant
#    (telemetry-off) instrumentation stays within 2% of the bare
#    engine and that telemetry never perturbs simulation results.
# 8. Runs the fuzz-marked property suites, the full verification
#    ladder (`repro-hma verify --quick`: cross-kernel differential
#    fuzzer, paper-invariant checks, EXPERIMENTS.md shape gate), and
#    the line-coverage gate against tools/coverage_baseline.json.
#
# Environment:
#   REPRO_SMOKE_ACCESSES  accesses/core for the kernel benchmark (default 4000)

set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== tier-1 unit tests =="
python -m pytest -x -q "$@"

echo "== chaos / fault-injection tests =="
# The chaos suites are tagged slow+chaos and excluded from tier-1 by
# the default addopts marker filter; the explicit -m here (last -m
# wins) opts back in.
python -m pytest -q -m chaos tests/harness/test_resilience.py \
    tests/sim/test_ckernel_fallback.py tests/serve/test_chaos.py

echo "== fuzz / property suites =="
python -m pytest -q -m fuzz tests

echo "== verification ladder (repro-hma verify --quick) =="
python -m repro.harness.cli verify --quick \
    --artifact-dir "$workdir/artifacts" \
    --json "$workdir/verify.json"

echo "== coverage gate =="
python tools/coverage_gate.py

echo "== kill/resume smoke =="
python tools/kill_resume_smoke.py

echo "== serve chaos smoke =="
python tools/serve_chaos_smoke.py

echo "== workload frontier smoke =="
python tools/frontier_smoke.py

echo "== ecc design-space smoke =="
python tools/ecc_smoke.py

echo "== replay kernel smoke benchmark =="
REPRO_BENCH_ACCESSES="${REPRO_SMOKE_ACCESSES:-4000}" \
REPRO_BENCH_REPLAY_JSON="$workdir/BENCH_replay.json" \
python -m pytest benchmarks/bench_replay_kernel.py -q -s -p no:cacheprovider

echo "== policy kernel smoke benchmark =="
REPRO_BENCH_ACCESSES="${REPRO_SMOKE_ACCESSES:-4000}" \
REPRO_BENCH_FAULT_TRIALS=20000 \
REPRO_BENCH_POLICY_JSON="$workdir/BENCH_policies.json" \
python -m pytest benchmarks/bench_policy_kernels.py -q -s -p no:cacheprovider

echo "== end-to-end pipeline smoke benchmark =="
REPRO_BENCH_ACCESSES="${REPRO_SMOKE_ACCESSES:-4000}" \
REPRO_BENCH_E2E_JSON="$workdir/BENCH_e2e.json" \
python -m pytest benchmarks/bench_e2e_pipeline.py -q -s -p no:cacheprovider

echo "== multi-run engine smoke benchmark =="
REPRO_BENCH_ACCESSES="${REPRO_SMOKE_ACCESSES:-4000}" \
REPRO_BENCH_MULTIRUN_JSON="$workdir/BENCH_multirun.json" \
python -m pytest benchmarks/bench_multirun.py -q -s -p no:cacheprovider

echo "== workload generator smoke benchmark =="
REPRO_BENCH_ACCESSES="${REPRO_SMOKE_ACCESSES:-4000}" \
REPRO_BENCH_WORKLOADS_JSON="$workdir/BENCH_workloads.json" \
python -m pytest benchmarks/bench_workloads.py -q -s -p no:cacheprovider

echo "== ecc codec smoke benchmark =="
REPRO_BENCH_ACCESSES="${REPRO_SMOKE_ACCESSES:-4000}" \
REPRO_BENCH_ECC_JSON="$workdir/BENCH_ecc.json" \
python -m pytest benchmarks/bench_ecc.py -q -s -p no:cacheprovider

echo "== telemetry smoke =="
obsdir="$workdir/obs"
for _ in 1 2; do
    REPRO_TELEMETRY=1 REPRO_OBS_DIR="$obsdir" \
    python -m repro.harness.cli run fig12 --accesses 1500 > /dev/null
done
python - "$obsdir" <<'EOF'
import sys
from repro.obs.registry import RunRegistry, registry_path

reg = RunRegistry(registry_path(sys.argv[1]))
runs = reg.list_runs("fig12")
assert len(runs) == 2, f"expected 2 registry rows, got {len(runs)}"
for run in runs:
    assert run.status == "completed", run
    names = reg.series_names(run.run_id)
    assert names, f"{run.run_id} recorded no epoch series"
    assert all(len(reg.series(run.run_id, n)) > 0 for n in names)
print(f"registry OK: {[r.run_id for r in runs]}, "
      f"{len(reg.series_names(runs[0].run_id))} series each")
EOF
python -m repro.harness.cli report fig12 --obs-dir "$obsdir" > /dev/null
python -m repro.harness.cli compare fig12-1 fig12-2 --obs-dir "$obsdir"

echo "== telemetry overhead benchmark =="
REPRO_BENCH_ACCESSES="${REPRO_SMOKE_ACCESSES:-4000}" \
REPRO_BENCH_OBS_JSON="$workdir/BENCH_obs.json" \
python -m pytest benchmarks/bench_obs_overhead.py -q -s -p no:cacheprovider

echo "== smoke OK =="
