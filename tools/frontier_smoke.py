#!/usr/bin/env python
"""Workload-frontier smoke: one small generator per family, end to end.

CI-level proof that the server-workload frontier holds together:

* each generator family (kvstore, webserver, compiler) produces a
  seeded-deterministic trace (byte-identical regeneration),
* the trace runs through the fused pipeline with the tolerance-tiered
  policy under BOTH policy kernels, and the sparse oracle and the
  array kernel agree bit-exactly (parity gate),
* basic invariants hold (positive IPC, finite non-negative SER, SER
  strictly below the perf-focused baseline's on at least one family —
  the reliability win the policy exists for).

Run it standalone (``python tools/frontier_smoke.py``) or through
``tools/ci_smoke.sh``.  Exits non-zero with a message on any violation.
"""

import math
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np  # noqa: E402

from repro.core.migration import (  # noqa: E402
    PerformanceFocusedMigration,
    ToleranceTieredMigration,
)
from repro.sim.system import evaluate_migration, prepare_workload  # noqa: E402
from repro.workloads import FRONTIER_WORKLOADS, generate_frontier  # noqa: E402

SCALE = 1 / 2048
ACCESSES = int(os.environ.get("REPRO_SMOKE_ACCESSES", "4000")) // 2
SEED = 0
INTERVALS = 6


def fail(msg: str) -> None:
    print(f"FRONTIER SMOKE FAILED: {msg}")
    sys.exit(1)


def main() -> None:
    reliability_wins = 0
    for name in FRONTIER_WORKLOADS:
        wt = generate_frontier(name, scale=SCALE,
                               accesses_per_core=ACCESSES, seed=SEED)
        twin = generate_frontier(name, scale=SCALE,
                                 accesses_per_core=ACCESSES, seed=SEED)
        for fld in ("core", "address", "is_write", "gap"):
            if (getattr(wt.trace, fld).tobytes()
                    != getattr(twin.trace, fld).tobytes()):
                fail(f"{name}: generation not deterministic ({fld})")
        if wt.times.tobytes() != twin.times.tobytes():
            fail(f"{name}: generation not deterministic (times)")

        prep = prepare_workload(name, scale=SCALE,
                                accesses_per_core=ACCESSES, seed=SEED)
        tol = prep.workload_trace.tolerance
        if tol is None or len(tol) != wt.footprint_pages:
            fail(f"{name}: prepared workload lost its tolerance map")

        results = {}
        for kernel in ("sparse", "array"):
            res = evaluate_migration(
                prep,
                ToleranceTieredMigration(tolerance=tol,
                                         policy_kernel=kernel),
                num_intervals=INTERVALS)
            results[kernel] = res
        sparse, array = results["sparse"], results["array"]
        if (sparse.ipc, sparse.ser, sparse.migrations) != (
                array.ipc, array.ser, array.migrations):
            fail(f"{name}: sparse/array parity broken "
                 f"(sparse ipc={sparse.ipc} ser={sparse.ser} "
                 f"mig={sparse.migrations}; array ipc={array.ipc} "
                 f"ser={array.ser} mig={array.migrations})")

        if not array.ipc > 0:
            fail(f"{name}: non-positive IPC {array.ipc}")
        if not (math.isfinite(array.ser) and array.ser >= 0):
            fail(f"{name}: bad SER {array.ser}")

        perf = evaluate_migration(prep, PerformanceFocusedMigration(),
                                  num_intervals=INTERVALS)
        if array.ser < perf.ser:
            reliability_wins += 1
        print(f"  {name}: parity OK, ipc {array.ipc:.3f}, "
              f"ser {array.ser:.3f} (perf-migration ser {perf.ser:.3f}), "
              f"{array.migrations} migrations")

    if reliability_wins == 0:
        fail("tolerance-tiered never beat perf-migration on SER "
             "(expected a reliability win on at least one family)")
    print(f"frontier smoke OK: {len(FRONTIER_WORKLOADS)} families, "
          f"{reliability_wins} reliability wins")


if __name__ == "__main__":
    main()
