#!/usr/bin/env python
"""Line-coverage gate: tier-1 suite coverage must not regress.

Runs the tier-1 unit suite under a line tracer, computes line coverage
of ``src/repro``, and fails (exit 1) when the overall percentage drops
more than the allowed slack below the floor recorded in
``tools/coverage_baseline.json``.

Uses coverage.py when installed.  The container image does not ship
it, so the default path is a stdlib ``sys.settrace`` tracer: slower,
but the same verdict — executable lines come from walking compiled
code objects' ``co_lines()``, executed lines from trace events.

Usage:
    python tools/coverage_gate.py            # enforce the baseline
    python tools/coverage_gate.py --record   # re-measure and rewrite it
"""

import argparse
import json
import os
import sys
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
PACKAGE = os.path.join(SRC, "repro")
BASELINE = os.path.join(ROOT, "tools", "coverage_baseline.json")

# Run as a script, sys.path[0] is tools/, so the `tests.*` namespace
# imports some suites use (`python -m pytest` gets them from the cwd
# entry) need the repo root put back explicitly.
for _p in (ROOT, SRC):
    if _p not in sys.path:
        sys.path.insert(0, _p)

#: How far (in percentage points) a run may fall below the recorded
#: floor before the gate fails.  Absorbs platform jitter (e.g. the
#: native-kernel fallback paths covering slightly different lines).
SLACK_POINTS = 2.0


# ---------------------------------------------------------------------------
# Executable-line discovery
# ---------------------------------------------------------------------------


def _code_lines(code) -> "set[int]":
    lines = {ln for _, _, ln in code.co_lines() if ln is not None}
    for const in code.co_consts:
        if hasattr(const, "co_lines"):
            lines |= _code_lines(const)
    return lines


def executable_lines() -> "dict[str, set[int]]":
    """``abspath -> executable line numbers`` for every package module."""
    table: "dict[str, set[int]]" = {}
    for dirpath, _dirnames, filenames in os.walk(PACKAGE):
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            code = compile(source, path, "exec")
            table[os.path.abspath(path)] = _code_lines(code)
    return table


# ---------------------------------------------------------------------------
# Tracing back-ends
# ---------------------------------------------------------------------------


def run_suite_with_settrace(pytest_args) -> "tuple[int, dict[str, set[int]]]":
    import pytest

    prefix = PACKAGE + os.sep
    executed: "dict[str, set[int]]" = {}

    def tracer(frame, event, _arg):
        if event != "call":
            return None
        fname = frame.f_code.co_filename
        if not fname.startswith(prefix):
            return None  # skip line events outside the package entirely
        lines = executed.setdefault(fname, set())

        def local(frame, event, _arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local

        lines.add(frame.f_lineno)
        return local

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        rc = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    return int(rc), executed


def run_suite_with_coverage(pytest_args) -> "tuple[int, dict[str, set[int]]]":
    import coverage
    import pytest

    cov = coverage.Coverage(source=[PACKAGE], data_file=None)
    cov.start()
    try:
        rc = pytest.main(pytest_args)
    finally:
        cov.stop()
    data = cov.get_data()
    executed = {os.path.abspath(f): set(data.lines(f) or ())
                for f in data.measured_files()}
    return int(rc), executed


# ---------------------------------------------------------------------------
# Gate
# ---------------------------------------------------------------------------


def measure(pytest_args) -> "tuple[int, float, list[tuple[str, int, int]]]":
    try:
        import coverage  # noqa: F401
        backend = run_suite_with_coverage
    except ImportError:
        backend = run_suite_with_settrace
    rc, executed = backend(pytest_args)
    per_file = []
    total_exec = 0
    total_hit = 0
    for path, lines in sorted(executable_lines().items()):
        hit = len(lines & executed.get(path, set()))
        per_file.append((os.path.relpath(path, ROOT), hit, len(lines)))
        total_exec += len(lines)
        total_hit += hit
    percent = 100.0 * total_hit / total_exec if total_exec else 100.0
    return rc, percent, per_file


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="rewrite the baseline from this run")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra pytest args (default: tier-1 tests)")
    args = parser.parse_args(argv)

    os.chdir(ROOT)
    if SRC not in sys.path:
        sys.path.insert(0, SRC)
    os.environ["REPRO_COVERAGE"] = "1"
    os.environ["PYTHONPATH"] = SRC + os.pathsep \
        + os.environ.get("PYTHONPATH", "")

    pytest_args = ["-x", "-q", "-p", "no:cacheprovider",
                   *(args.pytest_args or ["tests"])]
    rc, percent, per_file = measure(pytest_args)
    if rc != 0:
        print(f"coverage gate: test run failed (pytest exit {rc})",
              file=sys.stderr)
        return rc

    worst = sorted((f for f in per_file if f[2]),
                   key=lambda f: f[1] / f[2])[:5]
    print(f"line coverage of src/repro: {percent:.1f}%")
    for path, hit, total in worst:
        print(f"  lowest: {path}  {100.0 * hit / total:.1f}% "
              f"({hit}/{total})")

    if args.record:
        with open(BASELINE, "w") as fh:
            json.dump({"floor_percent": round(percent, 1),
                       "slack_points": SLACK_POINTS,
                       "suite": "tier-1 (default addopts)"},
                      fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"recorded {percent:.1f}% as the new floor in {BASELINE}")
        return 0

    try:
        with open(BASELINE) as fh:
            baseline = json.load(fh)
    except (OSError, ValueError):
        print(f"coverage gate: no baseline at {BASELINE}; run with "
              "--record first", file=sys.stderr)
        return 1
    floor = float(baseline["floor_percent"])
    slack = float(baseline.get("slack_points", SLACK_POINTS))
    if percent < floor - slack:
        print(f"coverage gate: {percent:.1f}% is below the recorded "
              f"floor {floor:.1f}% (slack {slack:g} points)",
              file=sys.stderr)
        return 1
    print(f"coverage gate OK: {percent:.1f}% >= floor {floor:.1f}% "
          f"- {slack:g}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
