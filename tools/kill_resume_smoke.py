#!/usr/bin/env python
"""Kill/resume smoke: SIGKILL a checkpointed sweep mid-run, then resume.

End-to-end proof of the crash-consistency story that unit tests can
only approximate: a real child process running ``capacity_sweep`` with
a checkpoint directory is SIGKILLed after it has journaled at least one
finished fraction (and while later fractions are still in flight), and
a ``resume=True`` rerun must

* produce rows identical to an uninterrupted reference run, and
* journal execution ``outcome`` records only for the fractions the
  killed run had NOT finished (finished ones are served from the
  journal, proving they were not recomputed).

Run it standalone (``python tools/kill_resume_smoke.py``) or through
``tools/ci_smoke.sh``.  Exits non-zero with a message on any violation.
"""

import json
import multiprocessing as mp
import os
import signal
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.config import knob_overrides  # noqa: E402
from repro.harness import sweeps  # noqa: E402

SWEEP = dict(workloads=("mcf",), fractions=(0.1, 0.3, 0.6),
             scale=1 / 2048, accesses_per_core=800, seed=4, jobs=1)
#: Per-fraction slowdown in the victim child: long enough for the parent
#: to observe the first journal line and land the SIGKILL mid-sweep.
DELAY_SECONDS = 1.5


def _victim(run_dir: str) -> None:
    """Run the checkpointed sweep with every fraction slowed down."""
    original = sweeps._capacity_row

    def slowed(item):
        row = original(item)
        time.sleep(DELAY_SECONDS)  # journal the row, then dawdle
        return row

    sweeps._capacity_row = slowed
    sweeps.capacity_sweep(checkpoint_dir=run_dir, **SWEEP)


def _journal(path: str, record_type: str) -> "list[dict]":
    if not os.path.exists(path):
        return []
    records = []
    for line in open(path, encoding="utf-8"):
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail line — exactly what the kill may leave
        if record.get("type") == record_type:
            records.append(record)
    return records


def main() -> int:
    # The kill choreography (slowed _capacity_row, fraction-N journal
    # keys) targets the per-fraction fan-out; under the multirun knob
    # (the default) the single workload is one job and the kill cannot
    # land mid-sweep.  The override is in-memory, so the forked victim
    # inherits it.
    with knob_overrides(multirun=False):
        return _main()


def _main() -> int:
    print("== kill/resume smoke ==")
    reference = sweeps.capacity_sweep(**SWEEP)

    with tempfile.TemporaryDirectory(prefix="repro-kill-resume-") as run_dir:
        manifest = os.path.join(run_dir, "manifest.jsonl")
        child = mp.get_context("fork").Process(target=_victim,
                                               args=(run_dir,))
        child.start()
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if _journal(manifest, "done"):
                break
            if not child.is_alive():
                print("FAIL: victim exited before it could be killed",
                      file=sys.stderr)
                return 1
            time.sleep(0.05)
        else:
            print("FAIL: victim never journaled a finished fraction",
                  file=sys.stderr)
            return 1

        os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=30)
        finished = {r["key"] for r in _journal(manifest, "done")}
        print(f"killed victim pid={child.pid} with "
              f"{len(finished)}/{len(SWEEP['fractions'])} fractions "
              f"journaled: {sorted(finished)}")
        if len(finished) >= len(SWEEP["fractions"]):
            print("FAIL: kill landed too late to interrupt anything",
                  file=sys.stderr)
            return 1
        if _journal(manifest, "outcome"):
            print("FAIL: killed run should not have outcome records",
                  file=sys.stderr)
            return 1

        resumed = sweeps.capacity_sweep(checkpoint_dir=run_dir, resume=True,
                                        **SWEEP)
        if resumed.rows != reference.rows:
            print("FAIL: resumed rows differ from the uninterrupted run:\n"
                  f"  resumed:   {resumed.rows}\n"
                  f"  reference: {reference.rows}", file=sys.stderr)
            return 1
        executed = {r["key"] for r in _journal(manifest, "outcome")}
        expected = {f"fraction-{f:.4f}" for f in SWEEP["fractions"]} - finished
        if executed != expected:
            print("FAIL: resume executed the wrong jobs "
                  f"(ran {sorted(executed)}, expected {sorted(expected)})",
                  file=sys.stderr)
            return 1
        print(f"resume recomputed only {sorted(executed)}; "
              "rows identical to the uninterrupted run")
    print("== kill/resume smoke OK ==")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
