#!/usr/bin/env python
"""ECC design-space smoke: codecs, selector, and Pareto sweep end to end.

CI-level proof that the ECC subsystem holds together:

* every codec on the ladder round-trips its advertised correction
  class (SEC-DAEC all singles and adjacent doubles, BCH all singles
  plus sampled doubles, ChipKill a full symbol) and SEC-DAEC corrects
  adjacent doubles that SEC-DED only detects,
* the budget selector walks the ladder monotonically as the FIT
  ceiling tightens, and a budget-derived tier is bit-identical to the
  same scheme named explicitly through the FaultSimulator,
* a mini ``ecc-pareto`` run is seeded-deterministic and every flagged
  front row is genuinely non-dominated, with the cheapest (fast tier
  unprotected) and lowest-SER assignments always on the front.

Run it standalone (``python tools/ecc_smoke.py``) or through
``tools/ci_smoke.sh``.  Exits non-zero with a message on any violation.
"""

import dataclasses
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np  # noqa: E402

ACCESSES = int(os.environ.get("REPRO_SMOKE_ACCESSES", "4000")) // 2
SCALE = 1 / 2048
SEED = 0


def fail(msg: str) -> None:
    print(f"ECC SMOKE FAILED: {msg}")
    sys.exit(1)


def codec_gate() -> None:
    from repro.faults import bch, hamming, secdaec
    from repro.faults.ecc import Outcome
    from repro.faults.reed_solomon import ChipKillCode

    rng = np.random.default_rng(SEED)
    data = rng.integers(0, 2, secdaec.DATA_BITS)
    cw = secdaec.encode(data)
    ham_cw = hamming.encode(data)
    for pos in range(secdaec.CODE_BITS):
        r = secdaec.decode(secdaec.inject(cw, [pos]))
        if r.outcome is not Outcome.CORRECTED or not np.array_equal(
                r.data, data):
            fail(f"secdaec failed single at bit {pos}")
    for pos in range(secdaec.CODE_BITS - 1):
        r = secdaec.decode(secdaec.inject(cw, [pos, pos + 1]))
        if r.outcome is not Outcome.CORRECTED or not np.array_equal(
                r.data, data):
            fail(f"secdaec failed adjacent pair ({pos}, {pos + 1})")
        h = hamming.decode(hamming.inject(ham_cw, [pos, pos + 1]))
        if h.outcome is not Outcome.DETECTED:
            fail(f"secded should only detect adjacent pair ({pos}, "
                 f"{pos + 1}), got {h.outcome}")

    bdata = rng.integers(0, 2, bch.DATA_BITS)
    bcw = bch.encode(bdata)
    for pos in range(bch.CODE_BITS):
        r = bch.decode(bch.inject(bcw, [pos]))
        if r.outcome is not Outcome.CORRECTED or not np.array_equal(
                r.data, bdata):
            fail(f"bch failed single at bit {pos}")
    for _ in range(64):
        a, b = rng.choice(bch.CODE_BITS, size=2, replace=False)
        r = bch.decode(bch.inject(bcw, [int(a), int(b)]))
        if r.outcome is not Outcome.CORRECTED or not np.array_equal(
                r.data, bdata):
            fail(f"bch failed double ({a}, {b})")

    code = ChipKillCode()
    sdata = rng.integers(0, 256, code.data_symbols)
    scw = code.encode(sdata)
    r = code.decode(code.inject(scw, {3: 0xA5}))
    if r.outcome is not Outcome.CORRECTED or not np.array_equal(
            r.data, sdata):
        fail("chipkill failed full-symbol correction")
    print(f"  codecs: secdaec {secdaec.CODE_BITS} singles + "
          f"{secdaec.CODE_BITS - 1} adjacent pairs, bch {bch.CODE_BITS} "
          "singles + 64 doubles, chipkill symbol — all corrected")


def selector_gate() -> None:
    from repro.config import hbm_config
    from repro.faults.ecc import SCHEME_LADDER
    from repro.faults.faultsim import FaultSimulator
    from repro.faults.selector import EccSelector

    memory = hbm_config()
    budgets = (1e9, 1e-3, 4e-4, 2e-4, 1e-4, 1e-5, 0.0)
    picks = [EccSelector(b).select(memory) for b in budgets]
    indices = [SCHEME_LADDER.index(p) for p in picks]
    if indices != sorted(indices):
        fail(f"selector not monotone under tightening budgets: {picks}")
    if picks[0] != "none" or picks[-1] != SCHEME_LADDER[-1]:
        fail(f"selector endpoints wrong: {picks[0]} .. {picks[-1]}")

    derived = EccSelector(4e-4).apply(memory)
    explicit = dataclasses.replace(memory, ecc=derived.ecc)
    a = FaultSimulator(derived, seed=SEED).run(trials=2000)
    b = FaultSimulator(explicit, seed=SEED).run(trials=2000)
    if a != b:
        fail(f"budget-derived {derived.ecc} diverged from explicit: "
             f"{a} vs {b}")
    print(f"  selector: {' -> '.join(picks)} monotone, "
          f"budget == explicit through FaultSimulator ({derived.ecc})")


def pareto_gate() -> None:
    from repro.harness.experiments import WorkloadCache, ecc_pareto

    kwargs = dict(workloads=("mcf",), fractions=(0.25,),
                  slow_schemes=("secded",))
    runs = []
    for _ in range(2):
        cache = WorkloadCache(accesses_per_core=ACCESSES, scale=SCALE,
                              seed=SEED)
        runs.append(ecc_pareto(cache=cache, **kwargs))
    if runs[0].rows != runs[1].rows:
        fail("ecc-pareto mini run not deterministic across fresh caches")

    rows = runs[0].rows
    front = [r for r in rows if r[6] == "front"]
    if not front:
        fail("ecc-pareto flagged no front rows")
    for r in front:
        dominated = any(
            o[4] <= r[4] and o[5] <= r[5]
            and (o[4] < r[4] or o[5] < r[5]) for o in rows)
        if dominated:
            fail(f"front row dominated: fast={r[1]} slow={r[2]}")
    if not any(r[1] == "none" for r in front):
        fail("cheapest assignment (fast=none) missing from the front")
    best_ser = min(r[4] for r in rows)
    if not any(r[4] == best_ser for r in front):
        fail("lowest-SER assignment missing from the front")
    print(f"  ecc-pareto: {len(rows)} points deterministic, "
          f"{len(front)} on the front, none dominated")


def main() -> None:
    codec_gate()
    selector_gate()
    pareto_gate()
    print("ecc smoke OK: codecs, selector, pareto sweep")


if __name__ == "__main__":
    main()
