"""Calibration report: per-benchmark AVF / quadrant / correlation stats.

Run while tuning ``repro.trace.workloads`` profiles against the
paper's published per-workload quantities.
"""

import sys

from repro.avf.heuristics import (
    hotness_avf_correlation,
    write_ratio_avf_correlation,
)
from repro.core.quadrant import quadrant_split
from repro.sim.system import prepare_workload
from repro.trace.mixes import MIX_NAMES
from repro.trace.workloads import HOMOGENEOUS_BENCHMARKS, Workload

TARGET_AVF = {
    "astar": 1.7, "bzip": 2.5, "gcc": 3.5, "deaIII": 4.0, "omnetpp": 5.0,
    "sphinx": 5.5, "xsbench": 7.0, "lulesh": 8.0, "soplex": 10.0,
    "libquantum": 12.0, "leslie3d": 13.0, "GemsFDTD": 15.0, "bwaves": 16.0,
    "mcf": 18.0, "cactusADM": 19.0, "lbm": 21.0, "milc": 22.5,
}


def report(name):
    workload = Workload.mix(name) if name.startswith("mix") else Workload.spec(name)
    prep = prepare_workload(workload, accesses_per_core=20_000)
    stats = prep.stats
    quad = quadrant_split(stats, name)
    target = TARGET_AVF.get(name)
    print(
        f"{name:12s} avf={stats.mean_avf()*100:5.1f}%"
        f" (target {target if target else '-':>4})"
        f" hot&low={quad.hot_low_risk_fraction*100:5.1f}%"
        f" rho(h,avf)={hotness_avf_correlation(stats):+.2f}"
        f" rho(wr,avf)={write_ratio_avf_correlation(stats):+.2f}"
        f" mpki={prep.workload_trace.trace.mpki():5.1f}"
        f" pages={stats.footprint_pages}"
    )


if __name__ == "__main__":
    names = sys.argv[1:] or list(HOMOGENEOUS_BENCHMARKS) + list(MIX_NAMES)
    for n in names:
        report(n)
