"""Placement-as-a-service: a chaos-hardened multi-tenant daemon.

The batch harness runs one experiment per process invocation; this
package turns the same engine into a long-lived service (ROADMAP
item 1).  Many tenant *sessions* stream access-trace chunks into the
daemon concurrently; each session owns its own HMA instance, page
table, and migration policy, and is replayed on a worker pool that
shares read-only model state (SER FIT rates, ECC LUTs) through the
zero-copy shared-memory machinery of :mod:`repro.harness.shm`.

Robustness is the design center, not an afterthought:

* **Admission control** — new sessions are shed with a retryable
  ``busy`` error before existing ones degrade.
* **Backpressure** — per-tenant token buckets and bounded spool/run
  queues answer ``retry-after`` instead of buffering without bound.
* **Isolation** — each session's replay runs in its own worker
  process via :func:`repro.harness.resilience.resilient_map`; a
  worker SIGKILL, hang, or crash is retried from the session's
  on-disk chunk checkpoints, and a poison session is quarantined
  without stalling its siblings.
* **Determinism** — a completed session's :class:`SessionResult` is
  bit-identical to a batch run of the same assembled trace; the
  ``serve`` differential-fuzzer family (``repro-hma verify``) and
  :mod:`repro.serve.chaos` enforce it under injected faults.

Layers, bottom up: :mod:`~repro.serve.protocol` (messages + specs),
:mod:`~repro.serve.engine` (the re-entrant per-session compute),
:mod:`~repro.serve.session` (state machine + chunk spool),
:mod:`~repro.serve.state` (shared model state), :mod:`~repro.serve.
service` (the daemon core), :mod:`~repro.serve.client` (in-process
and socket clients), :mod:`~repro.serve.socket` (asyncio unix-socket
front-end), :mod:`~repro.serve.chaos` (fault-injection harness).
"""

from repro.serve.protocol import (  # noqa: F401
    ProtocolError,
    RetryAfter,
    SessionSpec,
)
from repro.serve.engine import SessionResult, run_session  # noqa: F401
from repro.serve.service import PlacementService, ServiceConfig  # noqa: F401
from repro.serve.client import ServiceClient  # noqa: F401

__all__ = [
    "PlacementService",
    "ProtocolError",
    "RetryAfter",
    "ServiceClient",
    "ServiceConfig",
    "SessionResult",
    "SessionSpec",
    "run_session",
]
