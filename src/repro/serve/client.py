"""Clients for the placement service: in-process and unix-socket.

Both clients speak the same dictionaries and share one helper surface
(open / append / commit / poll / stream / wait / run), so a test or
benchmark written against :class:`ServiceClient` runs unmodified
against a real daemon through :class:`SocketClient`.

:class:`ServiceClient` calls :meth:`PlacementService.handle` directly
but round-trips every message through ``json.dumps``/``json.loads``
first — it exercises the exact wire encoding (and its exact float
semantics) without a socket or an event loop, which is what lets the
differential fuzzer drive hundreds of streamed sessions cheaply.

Backpressure surfaces as :class:`~repro.serve.protocol.RetryAfter`;
the :meth:`stream` and :meth:`run` conveniences honour it by sleeping
the advertised ``retry_after`` and retrying until ``patience`` runs
out, which is the cooperative client behaviour the service's bounded
queues are designed around.
"""

from __future__ import annotations

import json
import socket as _socket
import time

from repro.serve.engine import SessionResult
from repro.serve.protocol import (
    ERR_ADMISSION,
    ERR_RETRY,
    RetryAfter,
    SessionSpec,
    chunk_to_payload,
    decode_line,
    encode_message,
)

#: Default accesses per streamed chunk.
DEFAULT_CHUNK = 512

#: Retryable error codes (carry or imply a ``retry_after``).
_RETRYABLE = (ERR_RETRY, ERR_ADMISSION)


class ServiceError(Exception):
    """A non-retryable failure response from the service."""

    def __init__(self, code: str, detail: str = "") -> None:
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail


class SessionFailed(ServiceError):
    """A session reached a terminal state other than ``done``."""

    def __init__(self, state: str, detail: str = "") -> None:
        super().__init__(state, detail)
        self.state = state


class _BaseClient:
    """Protocol helpers over an abstract ``request`` transport."""

    def request(self, msg: dict) -> dict:
        raise NotImplementedError

    def _checked(self, msg: dict) -> dict:
        resp = self.request(msg)
        if resp.get("ok"):
            return resp
        code = resp.get("error", "unknown")
        detail = resp.get("detail", "")
        if code in _RETRYABLE:
            raise RetryAfter(float(resp.get("retry_after", 0.05)), detail)
        raise ServiceError(code, detail)

    # -- single ops ----------------------------------------------------

    def open(self, spec: SessionSpec) -> str:
        resp = self._checked({"op": "open", "tenant": spec.tenant,
                              "spec": spec.to_dict()})
        return resp["session"]

    def append(self, sid: str, seq: int, trace, times) -> dict:
        msg = {"op": "append", "session": sid, "seq": seq}
        msg.update(chunk_to_payload(trace, times))
        return self._checked(msg)

    def commit(self, sid: str) -> dict:
        return self._checked({"op": "commit", "session": sid})

    def poll(self, sid: str, wait: float = 0) -> dict:
        return self._checked({"op": "poll", "session": sid, "wait": wait})

    def stats(self) -> dict:
        return self._checked({"op": "stats"})["stats"]

    # -- cooperative conveniences --------------------------------------

    def _patiently(self, call, patience: float, clock, sleep):
        deadline = clock() + patience
        while True:
            try:
                return call()
            except RetryAfter as exc:
                if clock() + exc.retry_after > deadline:
                    raise
                sleep(max(exc.retry_after, 0.001))

    def stream(self, sid: str, trace, times, chunk_size: int = DEFAULT_CHUNK,
               patience: float = 30.0, clock=time.monotonic,
               sleep=time.sleep) -> int:
        """Append a whole trace in chunks, honouring backpressure.

        Returns the number of chunks acknowledged.  Raises
        :class:`RetryAfter` only once ``patience`` seconds of polite
        retrying have been exhausted.
        """
        seq = 0
        for start in range(0, len(trace), chunk_size):
            stop = min(start + chunk_size, len(trace))
            piece, piece_times = trace.slice(start, stop), times[start:stop]
            self._patiently(
                lambda: self.append(sid, seq, piece, piece_times),
                patience, clock, sleep)
            seq += 1
        return seq

    def wait(self, sid: str, timeout: float = 60.0,
             clock=time.monotonic) -> SessionResult:
        """Block until the session completes; raise if it cannot.

        Raises :class:`SessionFailed` for ``failed`` / ``quarantined``
        / ``aborted`` sessions and :class:`TimeoutError` if the session
        is still live when ``timeout`` expires.
        """
        deadline = clock() + timeout
        while True:
            remaining = deadline - clock()
            resp = self.poll(sid, wait=max(0.0, min(remaining, 5.0)))
            state = resp["state"]
            if state == "done":
                return SessionResult.from_dict(resp["result"])
            if state in ("failed", "quarantined", "aborted"):
                raise SessionFailed(state, resp.get("detail", ""))
            if clock() >= deadline:
                raise TimeoutError(
                    f"session {sid} still {state} after {timeout}s")

    def run(self, spec: SessionSpec, trace, times,
            chunk_size: int = DEFAULT_CHUNK, patience: float = 30.0,
            timeout: float = 60.0, clock=time.monotonic,
            sleep=time.sleep) -> SessionResult:
        """Open, stream, commit, and wait — one call per session."""
        sid = self._patiently(lambda: self.open(spec), patience, clock,
                              sleep)
        self.stream(sid, trace, times, chunk_size=chunk_size,
                    patience=patience, clock=clock, sleep=sleep)
        self._patiently(lambda: self.commit(sid), patience, clock, sleep)
        return self.wait(sid, timeout=timeout, clock=clock)


class ServiceClient(_BaseClient):
    """In-process client: the service core without a transport.

    Every message and response is JSON round-tripped, so the encoding
    a remote tenant would experience is exercised bit for bit.
    """

    def __init__(self, service) -> None:
        self.service = service

    def request(self, msg: dict) -> dict:
        wire = json.loads(json.dumps(msg))
        return json.loads(json.dumps(self.service.handle(wire)))


class SocketClient(_BaseClient):
    """Blocking newline-JSON client for the daemon's unix socket."""

    def __init__(self, path: str, timeout: float = 60.0) -> None:
        self.path = path
        self.timeout = timeout
        self._sock: "_socket.socket | None" = None
        self._reader = None

    def _connect(self) -> None:
        if self._sock is not None:
            return
        sock = _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.path)
        self._sock = sock
        self._reader = sock.makefile("rb")

    def request(self, msg: dict) -> dict:
        self._connect()
        try:
            self._sock.sendall(encode_message(msg))
            line = self._reader.readline()
        except OSError:
            self.close()
            raise
        if not line:
            self.close()
            raise ConnectionError("service closed the connection")
        return decode_line(line)

    def close(self) -> None:
        for closable in (self._reader, self._sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass
        self._sock = None
        self._reader = None

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
