"""The placement daemon's core: admission, backpressure, dispatch.

:class:`PlacementService` is a synchronous, thread-safe message
processor — ``handle(request_dict) -> response_dict`` — with no
transport of its own.  The asyncio socket front-end
(:mod:`repro.serve.socket`) and the in-process
:class:`~repro.serve.client.ServiceClient` both feed it the same
dictionaries, so every robustness property below is exercised
identically whichever way a tenant arrives.

Failure-model summary (DESIGN.md §10 is the long form):

* **Admission** — ``open`` is shed with a retryable ``admission``
  error once ``max_sessions`` streams are active; existing tenants
  are never degraded to make room.
* **Backpressure** — per-tenant token buckets meter streamed
  accesses, one global spool cap bounds on-disk buffering, and the
  run queue bounds committed work; all three answer ``retry_after``
  instead of buffering without bound.
* **Isolation** — each committed session replays in its own worker
  process (``resilient_map`` with ``isolate=True``): a SIGKILL, hang,
  or crash is retried from the session's durable chunk spool, and a
  poison request quarantines only the session that sent it.
* **Recovery** — :meth:`PlacementService.recover` re-queues sessions
  a previous daemon left committed-but-unfinished, from their spools.
* **Drain** — :meth:`drain` stops admitting, aborts idle streams, and
  lets committed work finish before :meth:`close` releases shared
  model segments.
"""

from __future__ import annotations

import itertools
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.harness.resilience import FaultPlan, resilient_map
from repro.serve import session as sess
from repro.serve.engine import session_job
from repro.serve.protocol import (
    ERR_ADMISSION,
    ERR_DRAINING,
    ERR_INTERNAL,
    ERR_PROTOCOL,
    ERR_RETRY,
    ERR_STATE,
    ERR_TOO_LARGE,
    ERR_UNKNOWN_SESSION,
    PROTOCOL_VERSION,
    ProtocolError,
    RetryAfter,
    SessionSpec,
    chunk_from_payload,
    error_response,
)
from repro.serve.session import Session, TokenBucket
from repro.serve.state import ModelStateCache


@dataclass
class ServiceConfig:
    """Operating limits of one daemon instance.

    The defaults suit tests and local smoke runs (small, fast to trip
    in either direction); a production deployment scales them with the
    host.  ``isolation`` selects how committed sessions execute:
    ``"process"`` dispatches each to its own pool worker (crash/hang
    isolation, timeout preemption), ``"inline"`` runs them serially in
    the runner thread — no isolation, but no fork cost, which is what
    the differential fuzzer wants for hundreds of tiny cases.
    """

    max_sessions: int = 8            # active (open+queued+running) streams
    max_queued_runs: int = 8         # committed sessions awaiting a worker
    max_chunk_accesses: int = 65536  # per append (hard error: split it)
    max_session_accesses: int = 1 << 20   # per stream (hard error)
    max_spool_accesses: int = 1 << 22     # across streams (backpressure)
    rate_accesses_per_sec: float = 2e6    # per-tenant token bucket refill
    burst_accesses: float = 4e5           # per-tenant bucket depth
    pool_workers: int = 2            # concurrent session replays
    job_timeout: "float | None" = 30.0    # per-attempt watchdog (seconds)
    retries: int = 2                 # replay attempts after the first
    retry_backoff: float = 0.1       # base backoff between attempts
    idle_timeout: "float | None" = 300.0  # abort silent open streams
    watchdog_interval: float = 0.25
    poll_wait_cap: float = 60.0      # longest single blocking poll
    serve_dir: "str | None" = None   # spool root (default: mkdtemp)
    ledger_dir: "str | None" = None  # sqlite session ledger (off if None)
    isolation: str = "process"       # "process" | "inline"
    fault_plan: "FaultPlan | None" = None  # chaos hook, keyed by tenant


class _Reject(Exception):
    """An op-level refusal that is a response, not a poison signal."""

    def __init__(self, code: str, detail: str,
                 retry_after: "float | None" = None) -> None:
        super().__init__(detail)
        self.code = code
        self.detail = detail
        self.retry_after = retry_after


class PlacementService:
    """Thread-safe multi-tenant session broker over the replay engine."""

    def __init__(self, config: "ServiceConfig | None" = None,
                 clock=time.monotonic) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self.config = config or ServiceConfig()
        if self.config.isolation not in ("process", "inline"):
            raise ValueError("isolation must be 'process' or 'inline'")
        self._clock = clock
        self._lock = threading.RLock()
        self._sessions: "dict[str, Session]" = {}
        self._buckets: "dict[str, TokenBucket]" = {}
        self._models = ModelStateCache()
        self._counter = itertools.count(1)
        self._spooled = 0
        self._counts: "dict[str, int]" = {}
        self._draining = threading.Event()
        self._closed = False
        from repro.harness.shm import reap_orphaned_segments

        reap_orphaned_segments()  # a predecessor may have died uncleanly
        if self.config.serve_dir is None:
            self.config.serve_dir = tempfile.mkdtemp(prefix="repro-serve-")
        self._sessions_dir = os.path.join(self.config.serve_dir, "sessions")
        os.makedirs(self._sessions_dir, exist_ok=True)
        self._ledger = None
        if self.config.ledger_dir is not None:
            from repro.obs.registry import RunRegistry, registry_path

            self._ledger = RunRegistry(registry_path(self.config.ledger_dir))
        self._runner = ThreadPoolExecutor(
            max_workers=max(1, self.config.pool_workers),
            thread_name_prefix="serve-runner")
        self._stop = threading.Event()
        self._watchdog = None
        if self.config.idle_timeout and self.config.watchdog_interval > 0:
            self._watchdog = threading.Thread(
                target=self._watch, name="serve-watchdog", daemon=True)
            self._watchdog.start()

    # -- bookkeeping ---------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def _metrics(self):
        from repro.obs.metrics import get_registry

        return get_registry()

    def _bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.config.rate_accesses_per_sec,
                                     self.config.burst_accesses,
                                     clock=self._clock)
                self._buckets[tenant] = bucket
            return bucket

    def _session_for(self, msg: dict) -> Session:
        sid = msg.get("session")
        if not isinstance(sid, str):
            raise ProtocolError("request must name a session (string)")
        session = self._sessions.get(sid)
        if session is None:
            raise _Reject(ERR_UNKNOWN_SESSION, f"no session {sid!r}")
        return session

    def _retire(self, session: Session) -> None:
        """Settle a terminal session's accounting exactly once."""
        with self._lock:
            if session.retired or not session.terminal:
                return
            session.retired = True
            self._spooled -= session.accesses
            self._counts[session.state] = \
                self._counts.get(session.state, 0) + 1
        self._metrics().counter(
            f"serve.sessions.{session.state}").inc()
        if self._ledger is not None:
            try:
                result = session.result
                self._ledger.record_run(
                    f"serve/{session.spec.tenant}",
                    config=session.spec.to_dict(),
                    metrics=result.metrics() if result else {},
                    artifacts={"spool": session.directory,
                               "session": session.sid},
                    status=session.state)
            except Exception:  # noqa: BLE001 — the ledger is advisory
                self._count("ledger_errors")

    def _poison(self, msg: dict, detail: str) -> None:
        """Quarantine the session a malformed request names, if any."""
        sid = msg.get("session") if isinstance(msg, dict) else None
        session = self._sessions.get(sid) if isinstance(sid, str) else None
        if session is None:
            return
        with session.lock:
            session.transition(sess.QUARANTINED, error=detail)
        self._retire(session)

    # -- request dispatch ----------------------------------------------

    def handle(self, msg) -> dict:
        """Process one protocol request; always returns a response."""
        if self._closed:
            return error_response(ERR_DRAINING, "service is closed")
        try:
            if not isinstance(msg, dict):
                raise ProtocolError("request must be a JSON object")
            op = msg.get("op")
            handler = self._OPS.get(op)
            if handler is None:
                raise ProtocolError(f"unknown op {op!r}")
            return handler(self, msg)
        except RetryAfter as exc:
            self._count("retry_responses")
            self._metrics().counter("serve.backpressure").inc()
            return error_response(ERR_RETRY, exc.reason,
                                  retry_after=exc.retry_after)
        except _Reject as exc:
            self._count(f"rejects.{exc.code}")
            return error_response(exc.code, exc.detail,
                                  retry_after=exc.retry_after)
        except ProtocolError as exc:
            self._count("protocol_errors")
            self._poison(msg, str(exc))
            return error_response(ERR_PROTOCOL, str(exc))
        except Exception as exc:  # noqa: BLE001 — the daemon must answer
            self._count("internal_errors")
            return error_response(ERR_INTERNAL, repr(exc))

    def _op_open(self, msg: dict) -> dict:
        if self._draining.is_set():
            raise _Reject(ERR_DRAINING, "service is draining")
        spec_data = msg.get("spec", {})
        if not isinstance(spec_data, dict):
            raise ProtocolError("spec must be an object")
        spec_data = dict(spec_data)
        tenant = msg.get("tenant", spec_data.get("tenant"))
        if "tenant" in spec_data and spec_data["tenant"] != tenant:
            raise ProtocolError("tenant differs between message and spec")
        spec_data["tenant"] = tenant
        spec = SessionSpec.from_dict(spec_data)
        with self._lock:
            active = sum(1 for s in self._sessions.values() if s.active)
            if active >= self.config.max_sessions:
                self._count("shed")
                self._metrics().counter("serve.sessions.shed").inc()
                raise _Reject(
                    ERR_ADMISSION,
                    f"{active} active sessions (limit "
                    f"{self.config.max_sessions})",
                    retry_after=0.1)
            sid = f"{spec.tenant}-{next(self._counter)}"
            session = Session(sid, spec,
                              os.path.join(self._sessions_dir, sid),
                              clock=self._clock)
            session.open_spool()
            self._sessions[sid] = session
        self._count("opened")
        self._metrics().counter("serve.sessions.opened").inc()
        return {"ok": True, "session": sid, "protocol": PROTOCOL_VERSION}

    def _op_append(self, msg: dict) -> dict:
        session = self._session_for(msg)
        with session.lock:
            if session.state != sess.OPEN:
                raise _Reject(ERR_STATE,
                              f"append illegal in state {session.state}")
            seq = msg.get("seq")
            if not isinstance(seq, int) or isinstance(seq, bool):
                raise ProtocolError("seq must be an int")
            if seq != session.next_seq:
                raise ProtocolError(
                    f"expected seq {session.next_seq}, got {seq}")
            trace, times = chunk_from_payload(msg, session.spec.num_cores)
            if session.last_time is not None \
                    and float(times[0]) < session.last_time:
                raise ProtocolError(
                    "times must be non-decreasing across chunks")
            footprint = int(trace.pages.max()) + 1
            if footprint > session.spec.slow_pages:
                raise ProtocolError(
                    f"footprint of {footprint} pages exceeds the "
                    f"session's {session.spec.slow_pages}-page slow tier")
            n = len(trace)
            cfg = self.config
            if n > cfg.max_chunk_accesses:
                raise _Reject(ERR_TOO_LARGE,
                              f"chunk of {n} accesses exceeds the "
                              f"{cfg.max_chunk_accesses}-access cap")
            if session.accesses + n > cfg.max_session_accesses:
                raise _Reject(ERR_TOO_LARGE,
                              f"session would exceed its "
                              f"{cfg.max_session_accesses}-access cap")
            wait = self._bucket(session.spec.tenant).try_acquire(n)
            if wait > 0:
                raise RetryAfter(wait, "tenant rate limit")
            with self._lock:
                if self._spooled + n > cfg.max_spool_accesses:
                    raise RetryAfter(0.1, "spool is full")
                self._spooled += n
            try:
                acked = session.spool_chunk(trace, times)
            except BaseException:
                with self._lock:
                    self._spooled -= n
                raise
        self._count("chunks")
        self._count("accesses", n)
        metrics = self._metrics()
        metrics.counter("serve.chunks").inc()
        metrics.counter(
            f"serve.tenant.{session.spec.tenant}.accesses").inc(n)
        return {"ok": True, "session": session.sid, "seq": acked,
                "accesses": session.accesses}

    def _op_commit(self, msg: dict) -> dict:
        session = self._session_for(msg)
        if self._draining.is_set():
            raise _Reject(ERR_DRAINING, "service is draining")
        with session.lock:
            if session.state != sess.OPEN:
                raise _Reject(ERR_STATE,
                              f"commit illegal in state {session.state}")
            if session.next_seq == 0:
                raise _Reject(ERR_STATE, "no chunks to commit")
            with self._lock:
                queued = sum(1 for s in self._sessions.values()
                             if s.state == sess.QUEUED)
                if queued >= self.config.max_queued_runs:
                    raise RetryAfter(0.1, "run queue is full")
            session.transition(sess.QUEUED)
        self._submit(session)
        return {"ok": True, "session": session.sid, "state": session.state}

    def _op_poll(self, msg: dict) -> dict:
        session = self._session_for(msg)
        wait = msg.get("wait", 0)
        if isinstance(wait, bool) or not isinstance(wait, (int, float)) \
                or wait < 0:
            raise ProtocolError("wait must be a non-negative number")
        if wait:
            session.done.wait(min(float(wait), self.config.poll_wait_cap))
        resp = {"ok": True, **session.describe()}
        if session.state == sess.DONE and session.result is not None:
            resp["result"] = session.result.to_dict()
        return resp

    def _op_stats(self, msg: dict) -> dict:
        with self._lock:
            states: "dict[str, int]" = {}
            for s in self._sessions.values():
                states[s.state] = states.get(s.state, 0) + 1
            stats = {
                "counts": dict(self._counts),
                "states": states,
                "spooled_accesses": self._spooled,
                "model_cache": len(self._models),
                "draining": self._draining.is_set(),
            }
        return {"ok": True, "stats": stats}

    _OPS = {"open": _op_open, "append": _op_append, "commit": _op_commit,
            "poll": _op_poll, "stats": _op_stats}

    # -- session execution ---------------------------------------------

    def _submit(self, session: Session) -> None:
        try:
            self._runner.submit(self._run_session, session.sid)
        except RuntimeError:  # runner shut down while we raced drain
            with session.lock:
                session.transition(sess.ABORTED, error="daemon draining")
            self._retire(session)

    def _run_session(self, sid: str) -> None:
        session = self._sessions.get(sid)
        if session is None or session.terminal:
            return  # aborted or quarantined while queued
        with session.lock:
            if session.state != sess.QUEUED:
                return
            session.transition(sess.RUNNING)
        cfg = self.config
        started = self._clock()
        try:
            model = self._models.handle_for(session.spec)
            payload = (session.directory, session.spec.to_dict(), model)
            report = resilient_map(
                session_job, [payload],
                keys=[session.spec.tenant],
                jobs=1,
                timeout=cfg.job_timeout,
                retries=cfg.retries,
                backoff=cfg.retry_backoff,
                fault_plan=cfg.fault_plan,
                isolate=cfg.isolation == "process",
            )
            outcome = report.outcomes[0]
            if report.pool_respawns:
                self._count("pool_respawns", report.pool_respawns)
                self._metrics().counter("serve.pool_respawns").inc(
                    report.pool_respawns)
            with session.lock:
                session.attempts = outcome.attempts
                if outcome.succeeded:
                    session.result = outcome.result
                    session.transition(sess.DONE)
                else:
                    session.transition(
                        sess.FAILED,
                        error=f"{outcome.status} after {outcome.attempts} "
                              f"attempt(s): {outcome.error}")
        except Exception as exc:  # noqa: BLE001 — a runner must not die
            with session.lock:
                session.transition(sess.FAILED, error=repr(exc))
        self._metrics().histogram("serve.session_seconds").observe(
            self._clock() - started)
        self._retire(session)

    # -- lifecycle ------------------------------------------------------

    def _watch(self) -> None:
        idle = self.config.idle_timeout
        while not self._stop.wait(self.config.watchdog_interval):
            now = self._clock()
            for session in list(self._sessions.values()):
                if session.state == sess.OPEN \
                        and now - session.last_activity > idle:
                    with session.lock:
                        if session.state == sess.OPEN:
                            session.transition(
                                sess.ABORTED,
                                error=f"idle for more than {idle}s")
                    self._retire(session)

    def recover(self) -> "list[str]":
        """Re-queue sessions a previous daemon left unfinished.

        Spool directories whose durable state is ``queued`` or
        ``running`` hold a fully-acknowledged, committed stream that
        never produced a result — re-register and re-dispatch them.
        Streams that died ``open`` lost their client; they are marked
        aborted on disk and skipped.
        """
        recovered = []
        try:
            entries = sorted(os.listdir(self._sessions_dir))
        except OSError:
            return recovered
        for sid in entries:
            if sid in self._sessions:
                continue
            directory = os.path.join(self._sessions_dir, sid)
            try:
                state = sess.read_spool_state(directory)
                spec = sess.read_spool_spec(directory)
            except (OSError, ValueError, ProtocolError):
                continue  # not a usable spool; leave it for inspection
            if state.get("state") not in (sess.QUEUED, sess.RUNNING):
                continue
            session = Session(sid, spec, directory, clock=self._clock)
            session.next_seq = int(state["next_seq"])
            session.accesses = int(state["accesses"])
            session.state = sess.QUEUED
            with self._lock:
                self._sessions[sid] = session
                self._spooled += session.accesses
            self._count("recovered")
            recovered.append(sid)
            self._submit(session)
        return recovered

    def drain(self) -> dict:
        """Stop admitting, abort idle streams, finish committed work."""
        self._draining.set()
        for session in list(self._sessions.values()):
            if session.state == sess.OPEN:
                with session.lock:
                    if session.state == sess.OPEN:
                        session.transition(sess.ABORTED,
                                           error="daemon draining")
                self._retire(session)
        self._runner.shutdown(wait=True)
        with self._lock:
            states: "dict[str, int]" = {}
            for s in self._sessions.values():
                states[s.state] = states.get(s.state, 0) + 1
        return states

    def close(self) -> dict:
        """Drain, stop the watchdog, release shared model segments."""
        if self._closed:
            return {}
        states = self.drain()
        self._stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=5.0)
        self._models.release()
        self._closed = True
        return states

    def __enter__(self) -> "PlacementService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
