"""Chaos harness: concurrent tenants, injected faults, one invariant.

The harness drives a set of :class:`TenantPlan`\\ s against a service
(through any client factory — in-process or socket) while faults fire:
worker SIGKILLs and hangs come from the service's
:class:`~repro.harness.resilience.FaultPlan` (keyed by tenant), slow
tenants stall between chunks, and corrupt tenants inject a malformed
chunk mid-stream.  When the dust settles one invariant decides
pass/fail, and it is the strongest one available:

    every tenant that should survive ends ``done`` with a result
    **bit-identical** to a batch :func:`~repro.serve.engine.
    run_session` of the same trace, and every corrupt tenant is
    quarantined — alone.

``seed`` feeds both the synthetic traffic and (through the unified
``seed`` knob) the retry-backoff jitter, so a failing chaos run
replays exactly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.client import RetryAfter, SessionFailed, ServiceError
from repro.serve.engine import run_session
from repro.serve.protocol import SessionSpec

#: Corruption modes a ``corrupt:<mode>`` tenant can inject.
CORRUPT_MODES = ("bad-seq", "bad-type", "ragged", "time-warp", "overflow")


def synth_traffic(seed: int, accesses: int, num_cores: int,
                  footprint_pages: int) -> tuple:
    """Deterministic tenant traffic shaped like the fuzzer's cases."""
    from repro.config import PAGE_SIZE
    from repro.trace.record import Trace

    rng = np.random.default_rng(seed)
    pages = rng.integers(0, footprint_pages, size=accesses)
    offsets = rng.integers(0, PAGE_SIZE // 8, size=accesses) * 8
    trace = Trace(
        core=rng.integers(0, num_cores, size=accesses).astype(np.uint16),
        address=(pages * PAGE_SIZE + offsets).astype(np.uint64),
        is_write=rng.random(accesses) < 0.3,
        gap=rng.integers(0, 50, size=accesses).astype(np.uint32),
    )
    times = np.cumsum(rng.random(accesses)) * 1e-7
    return trace, times


def corrupt_chunk(msg: dict, mode: str) -> dict:
    """A protocol-invalid mutation of a valid ``append`` message."""
    msg = {k: (list(v) if isinstance(v, list) else v)
           for k, v in msg.items()}
    if mode == "bad-seq":
        msg["seq"] = msg["seq"] + 7
    elif mode == "bad-type":
        msg["address"][0] = "0xdeadbeef"
    elif mode == "ragged":
        msg["gap"] = msg["gap"][:-1]
    elif mode == "time-warp":
        msg["times"] = list(reversed(msg["times"]))
    elif mode == "overflow":
        msg["address"][0] = 2**62  # page far beyond any slow tier
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return msg


@dataclass
class TenantPlan:
    """One tenant's traffic and (mis)behaviour."""

    tenant: str
    seed: int = 0
    accesses: int = 600
    chunk_size: int = 128
    num_cores: int = 2
    fast_pages: int = 4
    slow_pages: int = 64
    mechanism: "str | None" = "fc-migration"
    num_intervals: int = 3
    behaviour: str = "good"    # good | slow | corrupt:<mode>
    delay: float = 0.0         # inter-chunk stall for slow tenants
    footprint_pages: int = 0   # 0 = half the slow tier

    def spec(self) -> SessionSpec:
        return SessionSpec(
            tenant=self.tenant, num_cores=self.num_cores,
            fast_pages=self.fast_pages, slow_pages=self.slow_pages,
            mechanism=self.mechanism, num_intervals=self.num_intervals)

    def traffic(self) -> tuple:
        footprint = self.footprint_pages or max(1, self.slow_pages // 2)
        return synth_traffic(self.seed, self.accesses, self.num_cores,
                             footprint)

    @property
    def expects_quarantine(self) -> bool:
        return self.behaviour.startswith("corrupt")


@dataclass
class TenantOutcome:
    """What one tenant observed, versus the batch oracle."""

    tenant: str
    expected: str              # "done" or "quarantined"
    state: str = "unknown"
    match: "bool | None" = None   # streamed digest == batch digest
    detail: str = ""
    retry_responses: int = 0

    @property
    def ok(self) -> bool:
        if self.state != self.expected:
            return False
        return self.match is True if self.expected == "done" else True


@dataclass
class ChaosReport:
    """All tenant outcomes of one chaos run."""

    outcomes: "list[TenantOutcome]" = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return bool(self.outcomes) and all(o.ok for o in self.outcomes)

    @property
    def failures(self) -> "list[TenantOutcome]":
        return [o for o in self.outcomes if not o.ok]

    def summary(self) -> str:
        done = sum(1 for o in self.outcomes if o.state == "done")
        quarantined = sum(1 for o in self.outcomes
                          if o.state == "quarantined")
        matched = sum(1 for o in self.outcomes if o.match)
        line = (f"{len(self.outcomes)} tenants: {done} done "
                f"({matched} batch-identical), {quarantined} quarantined")
        if self.failures:
            line += " — FAILURES: " + "; ".join(
                f"{o.tenant} [{o.state}, wanted {o.expected}"
                + ("" if o.match in (True, None) else ", digest mismatch")
                + (f": {o.detail}" if o.detail else "") + "]"
                for o in self.failures)
        return line


def _drive_tenant(plan: TenantPlan, client, outcome: TenantOutcome,
                  patience: float, timeout: float) -> None:
    spec = plan.spec()
    trace, times = plan.traffic()
    try:
        sid = None
        deadline = time.monotonic() + patience
        while sid is None:
            try:
                sid = client.open(spec)
            except RetryAfter as exc:
                outcome.retry_responses += 1
                if time.monotonic() + exc.retry_after > deadline:
                    raise
                time.sleep(max(exc.retry_after, 0.001))
        if plan.expects_quarantine:
            _stream_corrupt(plan, client, sid, trace, times)
        else:
            _stream_politely(plan, client, sid, trace, times, outcome,
                             patience)
            _commit_politely(client, sid, outcome, patience)
            result = client.wait(sid, timeout=timeout)
            outcome.state = "done"
            batch = run_session(spec, trace, times)
            outcome.match = (result.sha == batch.sha
                             and result.digest == batch.digest)
            if not outcome.match:
                outcome.detail = (f"served sha {result.sha[:12]} != "
                                  f"batch sha {batch.sha[:12]}")
            return
        # Corrupt tenants land here: confirm the quarantine verdict.
        resp = client.poll(sid)
        outcome.state = resp["state"]
        outcome.detail = resp.get("detail", "")
    except SessionFailed as exc:
        outcome.state = exc.state
        outcome.detail = exc.detail
    except (ServiceError, RetryAfter, TimeoutError,
            ConnectionError, OSError) as exc:
        outcome.state = "error"
        outcome.detail = repr(exc)


def _stream_politely(plan, client, sid, trace, times, outcome,
                     patience) -> None:
    seq = 0
    deadline = time.monotonic() + patience
    for start in range(0, len(trace), plan.chunk_size):
        stop = min(start + plan.chunk_size, len(trace))
        while True:
            try:
                client.append(sid, seq, trace.slice(start, stop),
                              times[start:stop])
                break
            except RetryAfter as exc:
                outcome.retry_responses += 1
                if time.monotonic() + exc.retry_after > deadline:
                    raise
                time.sleep(max(exc.retry_after, 0.001))
        seq += 1
        if plan.behaviour == "slow" and plan.delay:
            time.sleep(plan.delay)


def _commit_politely(client, sid, outcome, patience) -> None:
    deadline = time.monotonic() + patience
    while True:
        try:
            client.commit(sid)
            return
        except RetryAfter as exc:
            outcome.retry_responses += 1
            if time.monotonic() + exc.retry_after > deadline:
                raise
            time.sleep(max(exc.retry_after, 0.001))


def _stream_corrupt(plan, client, sid, trace, times) -> None:
    """Send one clean chunk, then the corrupted one."""
    from repro.serve.protocol import chunk_to_payload

    mode = plan.behaviour.split(":", 1)[1] if ":" in plan.behaviour \
        else "bad-type"
    clean = min(plan.chunk_size, len(trace))
    client.append(sid, 0, trace.slice(0, clean), times[:clean])
    stop = min(2 * plan.chunk_size, len(trace))
    msg = {"op": "append", "session": sid, "seq": 1}
    msg.update(chunk_to_payload(trace.slice(clean, stop),
                                times[clean:stop]))
    try:
        client._checked(corrupt_chunk(msg, mode))
    except ServiceError:
        return  # the expected protocol rejection
    raise AssertionError(f"corrupt chunk ({mode}) was accepted")


def run_chaos(client_factory, plans: "list[TenantPlan]",
              patience: float = 30.0, timeout: float = 120.0,
              stats_client=None) -> ChaosReport:
    """Drive every tenant concurrently; collect the verdicts.

    ``client_factory`` is called once per tenant thread (clients need
    not be thread-safe).  ``stats_client`` (optional) fetches the
    service's counters into :attr:`ChaosReport.stats` at the end.
    """
    outcomes = [TenantOutcome(
        tenant=p.tenant,
        expected="quarantined" if p.expects_quarantine else "done")
        for p in plans]
    threads = [
        threading.Thread(target=_drive_tenant,
                         args=(plan, client_factory(), outcome,
                               patience, timeout),
                         name=f"tenant-{plan.tenant}", daemon=True)
        for plan, outcome in zip(plans, outcomes)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout + patience)
    report = ChaosReport(outcomes=outcomes)
    if stats_client is not None:
        try:
            report.stats = stats_client.stats()
        except (ServiceError, ConnectionError, OSError):
            pass
    return report
