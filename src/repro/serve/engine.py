"""Per-session compute: assemble the streamed trace and replay it.

:func:`run_session` is the service's re-entrant core — pure function
of (spec, trace, times, shared model state), no module-level mutable
state — so any number of worker processes can run sessions
concurrently and a retried worker produces the identical result.  It
is also the *batch oracle*: the chaos harness and the ``serve``
differential-fuzzer family call it directly on the same assembled
trace and require the daemon's streamed answer to match bit for bit.

:func:`session_job` is the picklable worker entry point dispatched
through :func:`repro.harness.resilience.resilient_map`: it re-reads
the session's chunk checkpoints from disk (so a SIGKILL'd worker's
replacement resumes from durable state, not from the dead process's
memory) and resolves the shared model payload out of the attach-cached
shared-memory segment.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.serve.protocol import SessionSpec
from repro.trace.record import Trace


class SessionError(Exception):
    """A session's stream cannot be simulated (bad footprint, empty)."""


# ---------------------------------------------------------------------------
# Canonical replay digest
# ---------------------------------------------------------------------------


def replay_digest(result) -> dict:
    """JSON-native, exactly-comparable form of a ReplayResult.

    Same fields as the differential fuzzer's digest, but lists instead
    of tuples so the digest survives a JSON round-trip unchanged —
    ``digest == json.loads(json.dumps(digest))`` — which is what lets
    the socket transport carry it without loosening the bit-exactness
    guarantee (JSON floats round-trip float64 exactly).
    """
    return {
        "instructions": int(result.instructions),
        "requests": int(result.requests),
        "total_seconds": float(result.total_seconds),
        "ipc": float(result.ipc),
        "mean_read_latency": float(result.mean_read_latency),
        "per_core_ipc": [float(x) for x in result.per_core_ipc],
        "migrations": [result.migrations.migrations_to_fast,
                       result.migrations.migrations_to_slow,
                       float(result.migrations.migration_seconds)],
        "fast_residency": [sorted(int(p) for p in resident)
                           for resident in result.fast_residency],
        "interval_boundaries": [int(b)
                                for b in result.interval_boundaries],
        "devices": [[d.name, int(d.reads), int(d.writes),
                     float(d.busy_time)]
                    for d in result.device_utilisation],
    }


def digest_sha(digest: dict) -> str:
    """Stable fingerprint of a canonical digest."""
    blob = json.dumps(digest, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass
class SessionResult:
    """The terminal payload of one completed session."""

    tenant: str
    scheme: str
    requests: int
    ipc: float
    ser: float
    migrations: int
    mean_read_latency: float
    digest: dict = field(default_factory=dict)
    sha: str = ""

    def metrics(self) -> "dict[str, float]":
        """Scalar metrics for the session ledger."""
        return {
            "requests": float(self.requests),
            "ipc": self.ipc,
            "ser": self.ser,
            "migrations": float(self.migrations),
            "mean_read_latency": self.mean_read_latency,
        }

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant, "scheme": self.scheme,
            "requests": self.requests, "ipc": self.ipc, "ser": self.ser,
            "migrations": self.migrations,
            "mean_read_latency": self.mean_read_latency,
            "digest": self.digest, "sha": self.sha,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionResult":
        return cls(**{k: data[k] for k in (
            "tenant", "scheme", "requests", "ipc", "ser", "migrations",
            "mean_read_latency", "digest", "sha")})


# ---------------------------------------------------------------------------
# Session system construction
# ---------------------------------------------------------------------------


def build_session_config(spec: SessionSpec):
    """The tiny two-tier system a session's spec describes."""
    from repro.config import (
        CacheConfig,
        CoreConfig,
        DramTiming,
        HierarchyConfig,
        MemoryConfig,
        PAGE_SIZE,
        SystemConfig,
    )

    def memory(name, pages, channels, ecc, fast):
        timing = (DramTiming(tCL=5, tRCD=5, tRP=5, burst_cycles=2)
                  if fast else DramTiming())
        return MemoryConfig(
            name=name,
            capacity_bytes=pages * PAGE_SIZE,
            bus_frequency_hz=500e6 if fast else 800e6,
            bus_width_bits=128 if fast else 64,
            channels=channels,
            ecc=ecc,
            timing=timing,
            fit_multiplier=7.0 if fast else 1.0,
        )

    return SystemConfig(
        num_cores=spec.num_cores,
        core=CoreConfig(),
        caches=HierarchyConfig(
            l1i=CacheConfig(size_bytes=1024, associativity=2),
            l1d=CacheConfig(size_bytes=1024, associativity=2),
            l2=CacheConfig(size_bytes=8192, associativity=4),
        ),
        fast_memory=memory("HBM", spec.fast_pages, 4, "secded", True),
        slow_memory=memory("DDR3", spec.slow_pages, 2, "chipkill", False),
    )


def make_mechanism(name: "str | None"):
    from repro.core.migration import (
        CrossCountersMigration,
        OracleRiskMigration,
        PerformanceFocusedMigration,
        ReliabilityAwareFCMigration,
        ToleranceTieredMigration,
    )

    factories = {
        "perf-migration": PerformanceFocusedMigration,
        "fc-migration": ReliabilityAwareFCMigration,
        "cc-migration": CrossCountersMigration,
        "oracle-risk-migration": OracleRiskMigration,
        "tolerance-tiered": ToleranceTieredMigration,
    }
    if name is None:
        return None
    return factories[name]()


# ---------------------------------------------------------------------------
# The re-entrant session replay
# ---------------------------------------------------------------------------


def run_session(
    spec: SessionSpec,
    trace: Trace,
    times: np.ndarray,
    model: "dict | None" = None,
) -> SessionResult:
    """Replay one session's assembled trace; the batch oracle.

    ``model`` is the shared read-only model state for the spec's
    config (see :mod:`repro.serve.state`); when ``None`` the SER FIT
    rates are recomputed analytically — bit-identical either way,
    since the analytic fault simulator is deterministic.
    """
    from repro.avf.page import profile_intervals, profile_trace
    from repro.core.placement import PerformanceFocusedPlacement
    from repro.dram.hma import HeterogeneousMemory
    from repro.faults.ser import SerModel
    from repro.sim.engine import replay

    if len(trace) == 0:
        raise SessionError("session stream holds no accesses")
    config = build_session_config(spec)
    footprint = int(trace.pages.max()) + 1
    if footprint > spec.slow_pages:
        raise SessionError(
            f"footprint of {footprint} pages exceeds the session's "
            f"{spec.slow_pages}-page slow tier")

    stats = profile_trace(trace, times)
    if model is not None:
        ser_model = SerModel(fit_fast_per_page=model["fit_fast_per_page"],
                             fit_slow_per_page=model["fit_slow_per_page"])
    else:
        ser_model = SerModel.for_system(config)

    capacity = config.fast_memory.num_pages
    fast_pages = PerformanceFocusedPlacement().select_fast_pages(
        stats, capacity)
    hma = HeterogeneousMemory(config)
    hma.install_placement(fast_pages, stats.pages)
    mechanism = make_mechanism(spec.mechanism)
    result = replay(
        config, hma, trace, times,
        mechanism=mechanism,
        num_intervals=spec.num_intervals if mechanism else 1,
    )
    if mechanism is not None:
        intervals = profile_intervals(trace, times,
                                      result.interval_boundaries)
        ser = ser_model.ser_dynamic(intervals, result.fast_residency)
    else:
        ser = ser_model.ser_static(stats, fast_pages)
    digest = replay_digest(result)
    return SessionResult(
        tenant=spec.tenant,
        scheme=spec.mechanism or "static",
        requests=len(trace),
        ipc=float(result.ipc),
        ser=float(ser),
        migrations=hma.migration_stats.total,
        mean_read_latency=float(result.mean_read_latency),
        digest=digest,
        sha=digest_sha(digest),
    )


# ---------------------------------------------------------------------------
# Worker entry point
# ---------------------------------------------------------------------------


def session_job(payload) -> SessionResult:
    """Run one committed session inside a pool worker.

    ``payload`` is ``(session_dir, spec_dict, model_handle)``.  The
    trace is reassembled from the session's on-disk chunk checkpoints
    — never from daemon memory — so a respawned worker after a SIGKILL
    re-attaches to exactly the state the ingest path acknowledged.
    ``model_handle`` is whatever :func:`repro.harness.shm.
    share_payload` returned (a shared-memory handle or the plain
    payload); resolution is attach-cached per worker process.
    """
    from repro.harness.shm import resolve_payload
    from repro.serve.session import load_session_trace

    session_dir, spec_dict, model_handle = payload
    spec = SessionSpec.from_dict(spec_dict)
    trace, times = load_session_trace(session_dir)
    model = resolve_payload(model_handle)
    return run_session(spec, trace, times, model=model)
