"""Wire protocol of the placement service: newline-JSON messages.

Every request and response is one JSON object per line.  The same
message dictionaries flow through both transports — the asyncio unix
socket (:mod:`repro.serve.socket`) and the in-process
:class:`~repro.serve.client.ServiceClient` — so a test driving the
client exercises exactly the parsing surface a remote tenant hits.

Requests (``op`` selects the handler)::

    {"op": "open",   "tenant": "t0", "spec": {...}}
    {"op": "append", "session": "t0-1", "seq": 0,
     "core": [...], "address": [...], "write": [...],
     "gap": [...], "times": [...]}
    {"op": "commit", "session": "t0-1"}
    {"op": "poll",   "session": "t0-1"}
    {"op": "stats"}

Responses always carry ``ok``.  Failure responses carry ``error`` (a
stable machine-readable code) and ``detail``; retryable ones add
``retry_after`` seconds — the *only* backpressure signal the service
ever emits: it never buffers without bound on a client's behalf.

Malformed input is a poison signal, not an operational error: a
request that fails validation quarantines the session it names (the
stream can no longer be trusted), while garbage that names no session
costs only an error response (or, on the socket, the connection).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

import numpy as np

from repro.trace.record import Trace

#: Protocol schema version, embedded in ``open`` responses.
PROTOCOL_VERSION = 1

#: Migration mechanisms a session may request (None = static placement).
SESSION_MECHANISMS = (None, "perf-migration", "fc-migration",
                      "cc-migration", "oracle-risk-migration",
                      "tolerance-tiered")

#: Stable error codes carried in failure responses.
ERR_PROTOCOL = "protocol"        # malformed message: session poisoned
ERR_ADMISSION = "admission"      # session shed at open (retryable)
ERR_RETRY = "retry"              # backpressure (retryable)
ERR_UNKNOWN_SESSION = "unknown-session"
ERR_STATE = "state"              # op illegal in the session's state
ERR_TOO_LARGE = "too-large"      # per-session hard cap exceeded
ERR_DRAINING = "draining"        # daemon is shutting down
ERR_INTERNAL = "internal"


class ProtocolError(Exception):
    """A request failed validation (malformed, out of spec bounds)."""


class RetryAfter(Exception):
    """Backpressure: retry the same request after ``retry_after`` s."""

    def __init__(self, retry_after: float, reason: str = "") -> None:
        super().__init__(reason or f"retry after {retry_after:.3f}s")
        self.retry_after = float(retry_after)
        self.reason = reason


# ---------------------------------------------------------------------------
# Session specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SessionSpec:
    """What a tenant asks the service to simulate for one stream.

    The geometry mirrors the differential fuzzer's scaled-down systems
    (:func:`repro.verify.cases.build_config`): a tiny two-tier HMA
    whose fast tier holds ``fast_pages`` 4 KB pages.  The session's
    trace must fit ``slow_pages`` (the DDR tier must be able to hold
    the whole footprint, since migration may demote every page).
    """

    tenant: str
    num_cores: int = 4
    fast_pages: int = 16
    slow_pages: int = 256
    mechanism: "str | None" = "fc-migration"
    num_intervals: int = 4

    def validate(self) -> None:
        if not isinstance(self.tenant, str) or not self.tenant \
                or len(self.tenant) > 64:
            raise ProtocolError("tenant must be a non-empty string (<= 64)")
        for name, value, lo, hi in (
                ("num_cores", self.num_cores, 1, 64),
                ("fast_pages", self.fast_pages, 1, 1 << 20),
                ("slow_pages", self.slow_pages, 1, 1 << 24),
                ("num_intervals", self.num_intervals, 1, 4096)):
            if not isinstance(value, int) or isinstance(value, bool) \
                    or not lo <= value <= hi:
                raise ProtocolError(
                    f"{name} must be an int in [{lo}, {hi}], "
                    f"got {value!r}")
        if self.mechanism not in SESSION_MECHANISMS:
            raise ProtocolError(
                f"mechanism must be one of {SESSION_MECHANISMS}, "
                f"got {self.mechanism!r}")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data) -> "SessionSpec":
        if not isinstance(data, dict):
            raise ProtocolError("spec must be an object")
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ProtocolError(f"unknown spec fields {sorted(unknown)}")
        try:
            spec = cls(**data)
        except TypeError as exc:
            raise ProtocolError(f"bad spec: {exc}") from exc
        spec.validate()
        return spec


# ---------------------------------------------------------------------------
# Chunk payloads
# ---------------------------------------------------------------------------


def chunk_to_payload(trace: Trace, times: np.ndarray) -> dict:
    """The wire fields of one trace chunk (JSON-native lists)."""
    return {
        "core": [int(c) for c in trace.core],
        "address": [int(a) for a in trace.address],
        "write": [bool(w) for w in trace.is_write],
        "gap": [int(g) for g in trace.gap],
        "times": [float(t) for t in times],
    }


def chunk_from_payload(msg: dict, num_cores: int) -> "tuple[Trace, np.ndarray]":
    """Validate and decode one chunk; raises :class:`ProtocolError`.

    JSON floats round-trip ``float64`` exactly and JSON ints are
    arbitrary precision, so a decoded chunk is bit-identical to the
    arrays the client serialised — the foundation of the service's
    streamed-equals-batch guarantee.
    """
    fields = {}
    for key in ("core", "address", "write", "gap", "times"):
        value = msg.get(key)
        if not isinstance(value, list):
            raise ProtocolError(f"chunk field {key!r} must be a list")
        fields[key] = value
    n = len(fields["address"])
    if n == 0:
        raise ProtocolError("empty chunk")
    if any(len(v) != n for v in fields.values()):
        raise ProtocolError("chunk arrays must have equal length")

    def ints(key, lo, hi):
        out = fields[key]
        for v in out:
            if not isinstance(v, int) or isinstance(v, bool) \
                    or not lo <= v <= hi:
                raise ProtocolError(
                    f"chunk field {key!r} must hold ints in "
                    f"[{lo}, {hi}], got {v!r}")
        return out

    core = ints("core", 0, num_cores - 1)
    address = ints("address", 0, 2**63 - 1)
    gap = ints("gap", 0, 2**32 - 1)
    for v in fields["write"]:
        if not isinstance(v, bool):
            raise ProtocolError("chunk field 'write' must hold booleans")
    times = fields["times"]
    prev = None
    for v in times:
        if isinstance(v, bool) or not isinstance(v, (int, float)) \
                or not 0.0 <= v < 1.0:
            raise ProtocolError(
                "chunk field 'times' must hold floats in [0, 1), "
                f"got {v!r}")
        if prev is not None and v < prev:
            raise ProtocolError("chunk 'times' must be non-decreasing")
        prev = v
    trace = Trace(
        core=np.array(core, dtype=np.uint16),
        address=np.array(address, dtype=np.uint64),
        is_write=np.array(fields["write"], dtype=bool),
        gap=np.array(gap, dtype=np.uint32),
    )
    return trace, np.array(times, dtype=np.float64)


# ---------------------------------------------------------------------------
# Line framing
# ---------------------------------------------------------------------------


def encode_message(msg: dict) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return (json.dumps(msg, sort_keys=True) + "\n").encode("utf-8")


def decode_line(line: "bytes | str") -> dict:
    """Parse one protocol line; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"undecodable line: {exc}") from exc
    try:
        msg = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"bad JSON: {exc}") from exc
    if not isinstance(msg, dict):
        raise ProtocolError("message must be a JSON object")
    return msg


def error_response(code: str, detail: str = "",
                   retry_after: "float | None" = None) -> dict:
    resp = {"ok": False, "error": code, "detail": detail}
    if retry_after is not None:
        resp["retry_after"] = float(retry_after)
    return resp
