"""Asyncio unix-socket front-end for the placement daemon.

The event loop owns only transport concerns — framing newline-JSON
lines in and out of many concurrent connections.  Every decoded
request is dispatched to :meth:`PlacementService.handle` on the
default executor, because the service core is synchronous and may
block (a ``poll`` with ``wait``, a spool write); the loop itself never
stalls behind one slow tenant.

Shutdown is graceful by construction: SIGTERM/SIGINT set a stop event,
the listener closes (no new connections), and
:meth:`PlacementService.close` drains — committed sessions finish,
open streams abort with a durable reason, shared segments unlink.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading

from repro.serve.protocol import (
    ERR_PROTOCOL,
    ProtocolError,
    decode_line,
    encode_message,
    error_response,
)


class ServeDaemon:
    """One daemon instance: a service bound to a unix-socket path.

    ``run()`` blocks until :meth:`request_stop` is called (thread-safe)
    or, when ``handle_signals`` is on, SIGTERM/SIGINT arrives.  The
    ``ready`` event lets a test thread wait for the listener before
    connecting.
    """

    def __init__(self, service, path: str) -> None:
        self.service = service
        self.path = str(path)
        self.ready = threading.Event()
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop: "asyncio.Event | None" = None
        self._conns: "set[tuple]" = set()  # (task, writer) per connection

    # -- control -------------------------------------------------------

    def run(self, handle_signals: bool = True) -> dict:
        """Serve until stopped; returns the drained session states."""
        asyncio.run(self._main(handle_signals))
        return self.service.close()

    def request_stop(self) -> None:
        """Ask a running daemon to shut down (callable from any thread)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closed

    # -- event-loop side -----------------------------------------------

    async def _main(self, handle_signals: bool) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        if handle_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(sig, self._stop.set)
                except (NotImplementedError, RuntimeError):
                    pass  # not the main thread / unsupported platform
        if os.path.exists(self.path):
            os.unlink(self.path)  # stale socket from a killed daemon
        server = await asyncio.start_unix_server(self._serve_connection,
                                                 path=self.path)
        self.ready.set()
        try:
            async with server:
                await self._stop.wait()
            # Hang up lingering connections and let their handler
            # tasks finish normally, so loop teardown never cancels a
            # handler mid-write (which asyncio logs as an error).
            for task, writer in list(self._conns):
                writer.close()
            tasks = [task for task, _ in self._conns]
            if tasks:
                await asyncio.wait(tasks, timeout=5.0)
        finally:
            self.ready.clear()
            try:
                os.unlink(self.path)
            except OSError:
                pass

    async def _serve_connection(self, reader, writer) -> None:
        loop = asyncio.get_running_loop()
        entry = (asyncio.current_task(), writer)
        self._conns.add(entry)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    msg = decode_line(line)
                except ProtocolError as exc:
                    # Unframeable garbage: answer once, drop the
                    # connection — there is no session to quarantine
                    # and no way to resynchronise the stream.
                    writer.write(encode_message(
                        error_response(ERR_PROTOCOL, str(exc))))
                    await writer.drain()
                    return
                resp = await loop.run_in_executor(
                    None, self.service.handle, msg)
                writer.write(encode_message(resp))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # the tenant vanished; its sessions live on
        finally:
            self._conns.discard(entry)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass


def run_daemon(service, path: str, handle_signals: bool = True) -> dict:
    """Convenience wrapper: serve ``service`` on ``path`` until stopped."""
    return ServeDaemon(service, path).run(handle_signals=handle_signals)
