"""Session state machine, token buckets, and the on-disk chunk spool.

A session moves through a small explicit state machine::

    open ──append*──▶ open ──commit──▶ queued ──▶ running ──▶ done
      │                 │                             │
      │ (malformed)     │ (idle watchdog / drain)     │ (retries
      ▼                 ▼                             ▼  exhausted)
    quarantined       aborted                       failed

Every acknowledged chunk is written to the session's spool directory
*before* the ack goes out (``chunk-<seq>.npz`` via the trace npz
format, plus an atomically-replaced ``state.json``), so the ingest
path's promise is durable: a worker that dies mid-replay — or the
whole daemon restarting — reassembles exactly the acknowledged stream
(see :func:`repro.serve.engine.session_job` and
:meth:`repro.serve.service.PlacementService.recover`).
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time

import numpy as np

from repro.serve.engine import SessionResult
from repro.serve.protocol import SessionSpec
from repro.trace.io import load_npz, save_npz
from repro.trace.record import Trace

#: Session states.
OPEN = "open"                  # accepting appends
QUEUED = "queued"              # committed, waiting for a worker slot
RUNNING = "running"            # replaying on a worker
DONE = "done"                  # result available
FAILED = "failed"              # worker retries exhausted / bad stream
QUARANTINED = "quarantined"    # malformed input: stream untrusted
ABORTED = "aborted"            # idle watchdog or daemon drain

#: States from which a session never leaves.
TERMINAL = (DONE, FAILED, QUARANTINED, ABORTED)
#: States counting against the admission limit.
ACTIVE = (OPEN, QUEUED, RUNNING)


class TokenBucket:
    """A per-tenant rate limiter over streamed accesses.

    ``try_acquire(n)`` either debits ``n`` tokens and returns 0.0, or
    leaves the bucket untouched and returns the seconds until ``n``
    tokens will have accumulated — the ``retry_after`` the service
    hands back.  ``clock`` is injectable so tests are deterministic.
    """

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self, amount: float) -> float:
        """0.0 when granted, else seconds until ``amount`` is available."""
        if amount > self.burst:
            # Never grantable in one piece: charge a full-bucket wait
            # so the client splits the chunk instead of spinning.
            return self.burst / self.rate
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= amount:
                self._tokens -= amount
                return 0.0
            return (amount - self._tokens) / self.rate


class Session:
    """One tenant stream and its durable spool directory."""

    def __init__(self, sid: str, spec: SessionSpec, directory: str,
                 clock=time.monotonic) -> None:
        self.sid = sid
        self.spec = spec
        self.directory = str(directory)
        self.state = OPEN
        self.next_seq = 0
        self.accesses = 0
        self.error: "str | None" = None
        self.result: "SessionResult | None" = None
        self.attempts = 0
        self.last_time: "float | None" = None  # stream-monotonicity fence
        self._clock = clock
        self.last_activity = clock()
        self.done = threading.Event()
        self.lock = threading.Lock()
        self.retired = False  # spool accounting / ledger settled once

    # -- spool ---------------------------------------------------------

    def open_spool(self) -> None:
        path = pathlib.Path(self.directory)
        path.mkdir(parents=True, exist_ok=True)
        (path / "spec.json").write_text(
            json.dumps(self.spec.to_dict(), sort_keys=True))
        self._write_state()

    def spool_chunk(self, trace: Trace, times: np.ndarray) -> int:
        """Persist one chunk; returns the acknowledged sequence number.

        The chunk file lands before ``state.json`` records the new
        ``next_seq``, so a crash between the two leaves a chunk the
        loader ignores (it trusts ``state.json``), never a hole.
        """
        seq = self.next_seq
        save_npz(os.path.join(self.directory, f"chunk-{seq:06d}.npz"),
                 trace, times)
        self.next_seq = seq + 1
        self.accesses += len(trace)
        self.last_time = float(times[-1])
        self.touch()
        self._write_state()
        return seq

    def _write_state(self) -> None:
        payload = json.dumps({
            "state": self.state,
            "next_seq": self.next_seq,
            "accesses": self.accesses,
            "error": self.error,
        }, sort_keys=True)
        path = os.path.join(self.directory, "state.json")
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    # -- state transitions ---------------------------------------------

    def touch(self) -> None:
        self.last_activity = self._clock()

    def transition(self, state: str, error: "str | None" = None) -> None:
        if self.state in TERMINAL:
            return  # terminal states are sticky
        self.state = state
        if error is not None:
            self.error = error
        self.touch()
        try:
            self._write_state()
        except OSError:
            pass  # the in-memory machine stays authoritative
        if state in TERMINAL:
            self.done.set()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    @property
    def active(self) -> bool:
        return self.state in ACTIVE

    def describe(self) -> dict:
        info = {
            "session": self.sid,
            "tenant": self.spec.tenant,
            "state": self.state,
            "chunks": self.next_seq,
            "accesses": self.accesses,
            "attempts": self.attempts,
        }
        if self.error:
            info["detail"] = self.error
        return info


# ---------------------------------------------------------------------------
# Spool loading (worker + recovery side)
# ---------------------------------------------------------------------------


def read_spool_state(directory: str) -> dict:
    """The durable ``state.json`` of a spool directory."""
    with open(os.path.join(directory, "state.json"),
              encoding="utf-8") as fh:
        return json.load(fh)


def read_spool_spec(directory: str) -> SessionSpec:
    with open(os.path.join(directory, "spec.json"),
              encoding="utf-8") as fh:
        return SessionSpec.from_dict(json.load(fh))


def load_session_trace(directory: str) -> "tuple[Trace, np.ndarray]":
    """Reassemble a session's acknowledged stream from its spool.

    Only the ``state.json``-acknowledged prefix participates: a chunk
    file beyond ``next_seq`` (a crash between chunk write and state
    write) is ignored, and a missing acknowledged chunk raises — the
    stream the client believes was acked cannot be reproduced, which
    must fail loudly rather than silently compute a different result.
    """
    state = read_spool_state(directory)
    count = int(state["next_seq"])
    if count <= 0:
        raise ValueError(f"session spool {directory} holds no chunks")
    traces, times = [], []
    for seq in range(count):
        path = os.path.join(directory, f"chunk-{seq:06d}.npz")
        if not os.path.exists(path):
            raise ValueError(
                f"acknowledged chunk {seq} missing from {directory}")
        t, tm = load_npz(path)
        if tm is None:
            raise ValueError(f"chunk {seq} in {directory} lost its times")
        traces.append(t)
        times.append(tm)
    return Trace.concatenate(traces), np.concatenate(times)
