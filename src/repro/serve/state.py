"""Shared read-only model state for the service's worker pool.

Every session with the same memory geometry needs the same model
inputs: the SER model's per-page uncorrected FIT rates and the ECC
outcome lookup tables for both tiers.  Computing them involves the
fault simulator's full combinatorics, so the service computes each
distinct geometry once, packs the result through
:func:`repro.harness.shm.share_payload`, and hands workers the tiny
handle; every worker process maps the one physical copy (attach-cached
per process, so pool respawns re-attach for free).

Determinism note: the payload is produced by the same analytic,
deterministic path :func:`repro.serve.engine.run_session` falls back
to when handed ``model=None`` — sharing is purely an optimisation and
never changes a session's result.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.harness.shm import release_payload, share_payload
from repro.serve.engine import build_session_config
from repro.serve.protocol import SessionSpec

#: Arrays this small still get hoisted: the point of sharing model
#: state is one physical copy per host, not pickle-bandwidth savings.
SHARE_THRESHOLD = 64


def model_key(spec: SessionSpec) -> tuple:
    """The geometry a session's model state depends on.

    Mechanism and interval count shape the replay, not the model, so
    sessions differing only there share one cache entry.
    """
    return (spec.num_cores, spec.fast_pages, spec.slow_pages)


def build_model_state(spec: SessionSpec) -> dict:
    """Compute the read-only model payload for a session geometry."""
    from repro.faults.ecc import ChipGeometry, build_ecc_luts, make_scheme
    from repro.faults.ser import SerModel

    config = build_session_config(spec)
    ser = SerModel.for_system(config)
    geometry = ChipGeometry()
    payload = {
        "fit_fast_per_page": float(ser.fit_fast_per_page),
        "fit_slow_per_page": float(ser.fit_slow_per_page),
    }
    for tier, memory in (("fast", config.fast_memory),
                         ("slow", config.slow_memory)):
        luts = build_ecc_luts(make_scheme(memory.ecc), geometry)
        # Copy out of the LUT dataclass so the hoisting pickler sees
        # plain base-class ndarrays.
        payload[f"ecc_{tier}_single_uncorrected"] = np.array(
            luts.single_uncorrected)
        payload[f"ecc_{tier}_pair_uncorrectable"] = np.array(
            luts.pair_uncorrectable)
    return payload


class ModelStateCache:
    """Per-geometry cache of shared model-state handles.

    ``handle_for`` returns whatever :func:`share_payload` produced — a
    :class:`~repro.harness.shm.SharedPayload` when the ``shm_handoff``
    knob is on, the plain dict otherwise — and workers resolve either
    shape uniformly.  :meth:`release` unlinks every owned segment;
    the service calls it on close/drain.
    """

    def __init__(self, threshold: int = SHARE_THRESHOLD) -> None:
        self._threshold = threshold
        self._handles: "dict[tuple, object]" = {}
        self._lock = threading.Lock()

    def handle_for(self, spec: SessionSpec):
        key = model_key(spec)
        with self._lock:
            handle = self._handles.get(key)
            if handle is None:
                handle = share_payload(build_model_state(spec),
                                       threshold=self._threshold)
                self._handles[key] = handle
            return handle

    def __len__(self) -> int:
        return len(self._handles)

    def release(self) -> None:
        with self._lock:
            for handle in self._handles.values():
                release_payload(handle)
            self._handles.clear()
