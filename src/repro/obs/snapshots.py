"""Epoch-level time-series snapshots of simulator state.

The replay kernels call :func:`replay_sink` once per replay; it returns
``None`` when telemetry is off (so the chunk loop pays one ``is None``
check) or a :class:`ReplaySink` whose ``on_epoch`` captures a row per
migration epoch: cumulative migration traffic, HBM occupancy, the
per-epoch read/write mix split by tier, and the policy's windowed ACE
for the epoch.  Rows accumulate into a :class:`SnapshotSeries`, which
the run registry persists as ``(series, epoch, name, value)`` tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import metrics

#: Column order for tabular rendering of a series.
SNAPSHOT_FIELDS = (
    "epoch",
    "migrations_to_fast",
    "migrations_to_slow",
    "migration_seconds",
    "hbm_occupancy",
    "hbm_capacity",
    "fast_reads",
    "fast_writes",
    "slow_reads",
    "slow_writes",
    "windowed_ace",
)


@dataclass
class EpochSnapshot:
    """State captured at one migration-epoch boundary.

    Migration counters are cumulative; the read/write mix is the delta
    for this epoch alone.
    """

    epoch: int
    migrations_to_fast: int = 0
    migrations_to_slow: int = 0
    migration_seconds: float = 0.0
    hbm_occupancy: int = 0
    hbm_capacity: int = 0
    fast_reads: int = 0
    fast_writes: int = 0
    slow_reads: int = 0
    slow_writes: int = 0
    windowed_ace: float = 0.0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {name: getattr(self, name) for name in SNAPSHOT_FIELDS}
        out.update(self.extra)
        return out


class SnapshotSeries:
    """An ordered list of :class:`EpochSnapshot` rows plus helpers."""

    def __init__(self, name: str = "replay") -> None:
        self.name = name
        self.rows: "list[EpochSnapshot]" = []

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def append(self, row: EpochSnapshot) -> None:
        self.rows.append(row)

    def metric_series(self, name: str) -> "list[float]":
        """All values of one column (core field or extra) in epoch order."""
        out = []
        for row in self.rows:
            if name in row.extra:
                out.append(row.extra[name])
            else:
                out.append(getattr(row, name))
        return out

    def annotate(self, name: str, values) -> None:
        """Attach a parallel per-epoch column (e.g. per-interval SER)."""
        values = list(values)
        if len(values) != len(self.rows):
            raise ValueError(
                f"annotation {name!r} has {len(values)} values for "
                f"{len(self.rows)} epochs")
        for row, value in zip(self.rows, values):
            row.extra[name] = value

    def columns(self) -> "list[str]":
        cols = list(SNAPSHOT_FIELDS)
        seen = set(cols)
        for row in self.rows:
            for key in row.extra:
                if key not in seen:
                    seen.add(key)
                    cols.append(key)
        return cols

    def to_dicts(self) -> "list[dict]":
        return [row.as_dict() for row in self.rows]

    @classmethod
    def from_dicts(cls, name: str, rows) -> "SnapshotSeries":
        series = cls(name)
        core = set(SNAPSHOT_FIELDS)
        for raw in rows:
            snap = EpochSnapshot(epoch=int(raw.get("epoch", len(series))))
            for key, value in raw.items():
                if key == "epoch":
                    continue
                if key in core:
                    setattr(snap, key, value)
                else:
                    snap.extra[key] = value
            series.append(snap)
        return series


class ReplaySink:
    """Collects epoch snapshots from a live replay over one memory.

    Tracks the previous epoch's tier counters so each row carries the
    per-epoch read/write delta rather than a running total.
    """

    def __init__(self, hma) -> None:
        self._hma = hma
        self.series = SnapshotSeries()
        self._prev = (hma.fast.stats.reads, hma.fast.stats.writes,
                      hma.slow.stats.reads, hma.slow.stats.writes)

    def on_epoch(self, epoch: int, fast_reads: int, fast_writes: int,
                 slow_reads: int, slow_writes: int,
                 windowed_ace: float = 0.0) -> None:
        """Record one epoch; tier counters are cumulative-so-far values."""
        hma = self._hma
        stats = hma.migration_stats
        pf, pfw, ps, psw = self._prev
        self._prev = (fast_reads, fast_writes, slow_reads, slow_writes)
        self.series.append(EpochSnapshot(
            epoch=epoch,
            migrations_to_fast=stats.migrations_to_fast,
            migrations_to_slow=stats.migrations_to_slow,
            migration_seconds=stats.migration_seconds,
            hbm_occupancy=hma.fast_occupancy(),
            hbm_capacity=hma.fast_capacity_pages,
            fast_reads=fast_reads - pf,
            fast_writes=fast_writes - pfw,
            slow_reads=slow_reads - ps,
            slow_writes=slow_writes - psw,
            windowed_ace=float(windowed_ace),
        ))


def replay_sink(hma) -> "ReplaySink | None":
    """A sink for this replay, or ``None`` when telemetry is off."""
    if not metrics.enabled():
        return None
    return ReplaySink(hma)
