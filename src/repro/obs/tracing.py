"""Span-based tracing with wall/CPU time and JSONL export.

A span measures one named region of work::

    from repro.obs.tracing import span

    with span("replay_epoch", epoch=3, mechanism="fc-migration"):
        ...

When no recorder is active (telemetry off) :func:`span` returns a
shared no-op context manager — no allocation, no clock reads.  When a
:class:`SpanRecorder` is installed (normally by
:func:`repro.obs.run_context`) each span captures wall time
(``time.perf_counter``), CPU time (``time.process_time``), an epoch
timestamp, free-form attributes, and its parent span for nesting.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time


class Span:
    """One timed region; mutated in place by its recorder."""

    __slots__ = ("name", "span_id", "parent_id", "start_epoch",
                 "wall_seconds", "cpu_seconds", "attrs",
                 "_wall0", "_cpu0")

    def __init__(self, name: str, span_id: int, parent_id: "int | None",
                 attrs: dict) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_epoch = time.time()
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()

    def finish(self) -> None:
        self.wall_seconds = time.perf_counter() - self._wall0
        self.cpu_seconds = time.process_time() - self._cpu0

    def as_dict(self) -> dict:
        out = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_epoch": self.start_epoch,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class _ActiveSpan:
    """Context manager pairing a Span with its recorder's stack."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "SpanRecorder", span: Span) -> None:
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        self._recorder._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.finish()
        self._recorder._pop(self._span)


class _NullSpan:
    """Shared do-nothing span context manager."""

    __slots__ = ()
    name = "null"
    attrs: dict = {}
    wall_seconds = 0.0
    cpu_seconds = 0.0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Collects finished spans; per-thread nesting via a local stack."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: "list[Span]" = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    def span(self, name: str, **attrs) -> _ActiveSpan:
        parent = self._stack()[-1].span_id if self._stack() else None
        return _ActiveSpan(self, Span(name, next(self._ids), parent, attrs))

    def _stack(self) -> "list[Span]":
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # misnested exit; drop it and everything above
            del stack[stack.index(span):]
        with self._lock:
            self._spans.append(span)

    @property
    def spans(self) -> "list[Span]":
        with self._lock:
            return list(self._spans)

    def drain(self) -> "list[Span]":
        with self._lock:
            spans, self._spans = self._spans, []
        return spans

    def export_jsonl(self, path: str) -> int:
        """Write all finished spans as one JSON object per line."""
        spans = self.spans
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for item in spans:
                fh.write(json.dumps(item.as_dict(), sort_keys=True) + "\n")
        return len(spans)


#: Recorder installed by the active run context (or tests).
_current: "SpanRecorder | None" = None


def set_current_recorder(recorder: "SpanRecorder | None"):
    """Install ``recorder`` as the process recorder; returns the previous."""
    global _current
    previous = _current
    _current = recorder
    return previous


def current_recorder() -> "SpanRecorder | None":
    return _current


def span(name: str, **attrs):
    """Open a span on the active recorder, or a no-op when tracing is off."""
    recorder = _current
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, **attrs)
