"""Render registry runs as tables and diff them for regressions.

Backs the ``repro-hma report <run>`` and ``repro-hma compare <a> <b>``
CLI verbs.  Comparison flags a metric as a regression when it moves
past a relative threshold in its *bad* direction — lower-is-better for
costs (SER, migrations, seconds, ...), higher-is-better for throughput
quantities — and can additionally check a run against the repo's
``BENCH_*.json`` performance floors.
"""

from __future__ import annotations

import fnmatch
import json
import math
import os
from dataclasses import dataclass

from repro.harness.reporting import format_table
from repro.obs.registry import RunRecord, RunRegistry

#: Metric-name patterns where a *decrease* is an improvement.  First
#: match wins; anything unmatched is treated as higher-is-better
#: (throughput-flavoured: ipc, speedup, requests/sec, coverage...).
LOWER_IS_BETTER_PATTERNS = (
    "*ser*",
    "*fault*",
    "*failure*",
    "*uncorrected*",
    "*latency*",
    "*seconds*",
    "*time*",
    "*migration*",
    "*overhead*",
    "*ace*",
    "*slowdown*",
    "*error*",
)


def lower_is_better(name: str) -> bool:
    lowered = name.lower()
    return any(fnmatch.fnmatch(lowered, pat)
               for pat in LOWER_IS_BETTER_PATTERNS)


@dataclass
class MetricDiff:
    """One metric compared across two runs."""

    name: str
    a: "float | None"
    b: "float | None"
    rel_change: "float | None"  # (b - a) / |a|, None when undefined
    regression: bool

    @property
    def direction(self) -> str:
        return "lower-better" if lower_is_better(self.name) else \
            "higher-better"


def diff_metrics(metrics_a: "dict[str, float]",
                 metrics_b: "dict[str, float]",
                 threshold: float = 0.02) -> "list[MetricDiff]":
    """Compare two metric dicts; a diff is a regression when run B is
    worse than run A by more than ``threshold`` (relative)."""
    diffs = []
    for name in sorted(set(metrics_a) | set(metrics_b)):
        a = metrics_a.get(name)
        b = metrics_b.get(name)
        rel = None
        regression = False
        if a is not None and b is not None and _finite(a) and _finite(b):
            if a != 0:
                rel = (b - a) / abs(a)
            elif b != 0:
                rel = math.inf if b > 0 else -math.inf
            else:
                rel = 0.0
            worse = rel > threshold if lower_is_better(name) \
                else rel < -threshold
            regression = bool(worse)
        diffs.append(MetricDiff(name=name, a=a, b=b, rel_change=rel,
                                regression=regression))
    return diffs


def find_regressions(diffs: "list[MetricDiff]") -> "list[MetricDiff]":
    return [d for d in diffs if d.regression]


def _finite(value: float) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


# -- bench floors ------------------------------------------------------------

def load_bench_floors(root: str = ".") -> "dict[str, float]":
    """Flatten every ``BENCH_*.json`` in ``root`` into metric floors.

    Numeric leaves become ``bench.<file-stem>.<dotted.path>`` entries;
    they act as lower bounds for higher-is-better quantities when a run
    is checked with :func:`check_bench_floors`.
    """
    floors: "dict[str, float]" = {}
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return floors
    for fname in names:
        if not (fname.startswith("BENCH_") and fname.endswith(".json")):
            continue
        stem = fname[len("BENCH_"):-len(".json")]
        try:
            with open(os.path.join(root, fname), encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            continue
        _flatten(data, f"bench.{stem}", floors)
    return floors


def _flatten(node, prefix: str, out: "dict[str, float]") -> None:
    if isinstance(node, dict):
        for key, value in node.items():
            _flatten(value, f"{prefix}.{key}", out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)


def check_bench_floors(metrics: "dict[str, float]",
                       floors: "dict[str, float]",
                       threshold: float = 0.02) -> "list[MetricDiff]":
    """Flag run metrics that fall below a matching bench floor."""
    diffs = []
    for name, floor in sorted(floors.items()):
        # strip the bench.<stem>. prefix when matching run metrics
        short = name.split(".", 2)[-1]
        value = metrics.get(name, metrics.get(short))
        if value is None or not _finite(value) or not _finite(floor):
            continue
        rel = (value - floor) / abs(floor) if floor else 0.0
        worse = rel > threshold if lower_is_better(short) \
            else rel < -threshold
        if worse:
            diffs.append(MetricDiff(name=short, a=floor, b=value,
                                    rel_change=rel, regression=True))
    return diffs


# -- rendering ---------------------------------------------------------------

def render_run_report(registry: RunRegistry, run: RunRecord,
                      max_epochs: int = 12) -> str:
    """Full text report for one run: header, metrics, snapshot series."""
    lines = [
        f"run      {run.run_id}",
        f"label    {run.label}",
        f"created  {run.created_at}",
        f"status   {run.status}",
        f"config   {run.config_hash} @ {run.git_rev}",
    ]
    if run.artifacts:
        for kind, path in sorted(run.artifacts.items()):
            lines.append(f"artifact {kind}: {path}")
    metrics = registry.metrics(run.run_id)
    if metrics:
        lines.append("")
        lines.append(format_table(
            ("metric", "value"),
            [(name, value) for name, value in sorted(metrics.items())],
            title="metrics"))
    for sname in registry.series_names(run.run_id):
        series = registry.series(run.run_id, sname)
        cols = [c for c in series.columns()
                if any(v for v in series.metric_series(c)) or c == "epoch"]
        rows = [[snap.as_dict().get(c, "") for c in cols]
                for snap in series]
        if len(rows) > max_epochs:
            head = max_epochs // 2
            tail = max_epochs - head - 1
            rows = (rows[:head]
                    + [["..."] * len(cols)]
                    + rows[len(rows) - tail:])
        lines.append("")
        lines.append(format_table(
            cols, rows, title=f"series {sname} ({len(series)} epochs)"))
    return "\n".join(lines)


def render_compare(run_a: RunRecord, run_b: RunRecord,
                   diffs: "list[MetricDiff]",
                   bench: "list[MetricDiff] | None" = None) -> str:
    """Metric diff table for two runs, regressions flagged."""
    lines = [
        f"A: {run_a.run_id} ({run_a.label}, {run_a.created_at})",
        f"B: {run_b.run_id} ({run_b.label}, {run_b.created_at})",
        "",
    ]
    rows = []
    for d in diffs:
        rel = ("" if d.rel_change is None
               else f"{d.rel_change * 100:+.2f}%")
        rows.append((d.name,
                     "-" if d.a is None else d.a,
                     "-" if d.b is None else d.b,
                     rel, d.direction,
                     "REGRESSION" if d.regression else ""))
    lines.append(format_table(
        ("metric", "A", "B", "change", "direction", "flag"), rows))
    regressions = find_regressions(diffs)
    if bench:
        lines.append("")
        lines.append(format_table(
            ("metric", "floor", "value", "change", "flag"),
            [(d.name, d.a, d.b, f"{d.rel_change * 100:+.2f}%",
              "BELOW FLOOR") for d in bench],
            title="bench floors"))
    lines.append("")
    total = len(regressions) + len(bench or [])
    lines.append(f"{total} regression(s) "
                 f"across {len(diffs)} compared metric(s)")
    return "\n".join(lines)


def render_verify_report(report) -> str:
    """Human rendering of a :class:`repro.verify.verdict.VerifyReport`.

    One summary row per gate family, then one row per failed check
    (pass rows would drown the signal — a quick run has 130+ checks).
    """
    lines = []
    fam_rows = []
    for family, (ok, total) in report.family_counts().items():
        fam_rows.append((family, f"{ok}/{total}",
                         "ok" if ok == total else "FAIL"))
    lines.append(format_table(
        ("gate", "passed", "status"), fam_rows,
        title=f"verification ladder (seed {report.seed}, "
              f"{'quick' if report.quick else 'full'}, "
              f"{report.elapsed_seconds:.1f}s)"))
    failures = report.failures
    if failures:
        lines.append("")
        lines.append(format_table(
            ("check", "family", "details"),
            [(f.name, f.family, f.details) for f in failures],
            title=f"{len(failures)} FAILED check(s)"))
        artifacts = [f.artifact for f in failures if f.artifact]
        if artifacts:
            lines.append("")
            lines.append("repro artifacts (replay with "
                         "'repro-hma verify --replay-artifact <path>'):")
            lines.extend(f"  {path}" for path in artifacts)
    lines.append("")
    lines.append("VERDICT: " + ("PASS" if report.passed else "FAIL"))
    return "\n".join(lines)
