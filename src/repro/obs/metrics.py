"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The design goal is *near-zero cost when telemetry is off*: every
instrument lookup funnels through :func:`get_registry`, which returns
the shared :data:`NULL_REGISTRY` when telemetry is disabled.  The null
registry hands out one shared no-op instrument, so instrumented code
pays one attribute lookup and an empty method call — it never branches
on an "enabled" flag itself, and it never allocates.

Hot kernels (the per-request replay loops) are *not* instrumented at
all; instrumentation sits at chunk/epoch/plan granularity, bounded at
tens of calls per run.

Enablement, in precedence order:

1. a registry installed by :func:`install` (the run-context mechanism —
   each :func:`repro.obs.run_context` installs its own registry),
2. a forced mode set by :func:`enable` / :func:`disable`,
3. the ``telemetry`` knob (``REPRO_TELEMETRY``).
"""

from __future__ import annotations

import bisect
import threading

from repro.config import knob_value

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0
)


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with sum/count for mean recovery."""

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds=DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class _NullInstrument:
    """Shared no-op stand-in for every instrument type."""

    __slots__ = ()
    name = "null"
    value = 0.0
    total = 0.0
    count = 0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def as_dict(self) -> dict:
        return {}


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Name-keyed instrument store; get-or-create, thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: "dict[str, object]" = {}

    def _get(self, name: str, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = factory()
                    self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        instrument = self._get(name, lambda: Counter(name))
        if not isinstance(instrument, Counter):
            raise TypeError(f"{name!r} is registered as "
                            f"{type(instrument).__name__}, not Counter")
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._get(name, lambda: Gauge(name))
        if not isinstance(instrument, Gauge):
            raise TypeError(f"{name!r} is registered as "
                            f"{type(instrument).__name__}, not Gauge")
        return instrument

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS) -> Histogram:
        instrument = self._get(name, lambda: Histogram(name, bounds))
        if not isinstance(instrument, Histogram):
            raise TypeError(f"{name!r} is registered as "
                            f"{type(instrument).__name__}, not Histogram")
        return instrument

    def snapshot(self) -> "dict[str, object]":
        """``{name: value}`` — floats for counters/gauges, dicts for
        histograms — in sorted name order."""
        out: "dict[str, object]" = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = instrument.as_dict()
            else:
                out[name] = instrument.value  # type: ignore[union-attr]
        return out

    def scalars(self) -> "dict[str, float]":
        """Counter/gauge values plus histogram sum/count, all flat floats."""
        out: "dict[str, float]" = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[f"{name}.sum"] = instrument.total
                out[f"{name}.count"] = float(instrument.count)
            else:
                out[name] = float(instrument.value)  # type: ignore
        return out

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()


class _NullRegistry:
    """Registry stand-in whose instruments never record anything."""

    __slots__ = ()

    def counter(self, name: str):
        return NULL_INSTRUMENT

    def gauge(self, name: str):
        return NULL_INSTRUMENT

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS):
        return NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {}

    def scalars(self) -> dict:
        return {}

    def clear(self) -> None:
        pass


NULL_REGISTRY = _NullRegistry()

#: Registry installed by a run context (highest precedence).
_installed: "MetricsRegistry | None" = None
#: Forced mode from enable()/disable(); None defers to the knob.
_mode: "str | None" = None
#: Lazily created process default registry (knob- or enable()-driven).
_default: "MetricsRegistry | None" = None


def get_registry():
    """The active registry: installed > forced mode > ``telemetry`` knob."""
    if _installed is not None:
        return _installed
    if _mode == "off":
        return NULL_REGISTRY
    if _mode == "on" or knob_value("telemetry"):
        global _default
        if _default is None:
            _default = MetricsRegistry()
        return _default
    return NULL_REGISTRY


def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return get_registry() is not NULL_REGISTRY


def install(registry: "MetricsRegistry | None"):
    """Make ``registry`` the active one; returns the previous installee."""
    global _installed
    previous = _installed
    _installed = registry
    return previous


def enable() -> MetricsRegistry:
    """Force telemetry on regardless of the env knob."""
    global _mode
    _mode = "on"
    return get_registry()


def disable() -> None:
    """Force telemetry off regardless of the env knob."""
    global _mode
    _mode = "off"


def reset() -> None:
    """Drop all forced state and the default registry (test hygiene)."""
    global _mode, _default, _installed
    _mode = None
    _default = None
    _installed = None
