"""Observability: metrics, tracing spans, snapshots, and a run registry.

The subsystem has four layers, cheapest first:

- :mod:`repro.obs.metrics` — counters/gauges/histograms behind a
  process registry; a shared null backend makes telemetry-off cost one
  attribute lookup.
- :mod:`repro.obs.tracing` — ``span("replay_epoch", ...)`` context
  managers recording wall/CPU time, exported as JSONL per run.
- :mod:`repro.obs.snapshots` — epoch-level time series (migration
  traffic, HBM occupancy, read/write mix, windowed ACE, SER) captured
  by the replay engine.
- :mod:`repro.obs.registry` — SQLite store of every run keyed by
  config hash + git rev.

:func:`run_context` glues them together: it installs a private metrics
registry and span recorder, collects whatever the simulation under it
produces, and on exit writes the span JSONL plus one registry row.
Everything is a no-op unless telemetry is enabled (the ``telemetry``
knob / ``REPRO_TELEMETRY=1``, or ``enabled=True``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.config import knob_value
from repro.obs import metrics, tracing
from repro.obs.metrics import (  # noqa: F401  (re-exported API)
    MetricsRegistry,
    get_registry,
)
from repro.obs.snapshots import (  # noqa: F401
    EpochSnapshot,
    ReplaySink,
    SnapshotSeries,
    replay_sink,
)
from repro.obs.tracing import SpanRecorder, span  # noqa: F401


class RunContext:
    """Aggregates one run's telemetry before it is persisted."""

    def __init__(self, label: str, config=None,
                 obs_dir: "str | None" = None) -> None:
        self.label = label
        self.config = config
        self.obs_dir = obs_dir
        self.registry = metrics.MetricsRegistry()
        self.recorder = tracing.SpanRecorder()
        self.series: "dict[str, SnapshotSeries]" = {}
        self.extra_metrics: "dict[str, float]" = {}
        self.artifacts: "dict[str, str]" = {}
        self.run_id: "str | None" = None

    def add_series(self, name: str, series: "SnapshotSeries | None") -> None:
        """Attach an epoch series; duplicate names get a numeric suffix."""
        if series is None or len(series) == 0:
            return
        key, n = name, 1
        while key in self.series:
            n += 1
            key = f"{name}#{n}"
        self.series[key] = series

    def add_metrics(self, values: dict, prefix: str = "") -> None:
        for name, value in values.items():
            try:
                self.extra_metrics[f"{prefix}{name}"] = float(value)
            except (TypeError, ValueError):
                continue

    def finalize(self, status: str = "completed") -> str:
        """Write span JSONL + registry row; returns the run id."""
        from repro.obs.registry import RunRegistry, default_obs_dir

        obs_dir = self.obs_dir or default_obs_dir()
        registry = RunRegistry(os.path.join(obs_dir, "registry.sqlite"))
        all_metrics = dict(self.registry.scalars())
        all_metrics.update(self.extra_metrics)
        run_id = registry.record_run(
            self.label, config=self.config, metrics=all_metrics,
            series=self.series, artifacts=dict(self.artifacts),
            status=status)
        spans_path = os.path.join(obs_dir, "runs", run_id, "spans.jsonl")
        try:
            self.recorder.export_jsonl(spans_path)
        except OSError:
            spans_path = ""
        if spans_path:
            with registry._connect() as conn:  # patch artifacts post-id
                import json as _json

                self.artifacts["spans"] = spans_path
                conn.execute(
                    "UPDATE runs SET artifacts_json = ? WHERE run_id = ?",
                    (_json.dumps(self.artifacts, sort_keys=True), run_id))
        self.run_id = run_id
        return run_id


#: The active run context (installed by :func:`run_context`).
_current: "RunContext | None" = None


def current_run() -> "RunContext | None":
    return _current


@contextmanager
def run_context(label: str, config=None, obs_dir: "str | None" = None,
                enabled: "bool | None" = None):
    """Collect and persist telemetry for one run.

    Yields the :class:`RunContext`, or ``None`` when telemetry is off
    (``enabled`` defaults to the ``telemetry`` knob), in which case
    nothing is installed and the body runs at null cost.  Nested
    contexts stack: the inner run records into its own registry and
    the outer one is restored on exit.
    """
    global _current
    if enabled is None:
        enabled = metrics.enabled() or bool(knob_value("telemetry"))
    if not enabled:
        yield None
        return
    ctx = RunContext(label, config=config, obs_dir=obs_dir)
    prev_ctx = _current
    prev_registry = metrics.install(ctx.registry)
    prev_recorder = tracing.set_current_recorder(ctx.recorder)
    _current = ctx
    status = "completed"
    try:
        yield ctx
    except BaseException:
        status = "failed"
        raise
    finally:
        _current = prev_ctx
        metrics.install(prev_registry)
        tracing.set_current_recorder(prev_recorder)
        ctx.finalize(status=status)
