"""SQLite-backed registry of simulation runs.

Every telemetry-enabled run records one row keyed by a config hash and
the git revision, with its scalar metrics, epoch snapshot series, and
artifact paths (span JSONL, checkpoint dirs) attached.  The store is
plain stdlib ``sqlite3`` under ``<obs_dir>/registry.sqlite`` (knob
``obs_dir`` / ``REPRO_OBS_DIR``; default ``./.repro-obs``), so runs
are queryable with nothing but the sqlite3 shell::

    sqlite3 .repro-obs/registry.sqlite \
        'SELECT run_id, label, created_at FROM runs ORDER BY created_at'

Writes open a fresh connection per operation with a busy timeout, the
store runs in WAL journal mode (readers never block the single
writer), and operations that still lose the write lock under heavy
multi-process contention retry with bounded backoff — so parallel
experiment workers and the placement service's runner threads can
append concurrently.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
import os
import sqlite3
import subprocess
import time
from dataclasses import dataclass, field

from repro.config import knob_value
from repro.obs.snapshots import SnapshotSeries

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    created_at  TEXT NOT NULL,
    label       TEXT NOT NULL,
    config_hash TEXT NOT NULL,
    git_rev     TEXT NOT NULL,
    config_json TEXT NOT NULL,
    artifacts_json TEXT NOT NULL,
    status      TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS run_metrics (
    run_id TEXT NOT NULL,
    name   TEXT NOT NULL,
    value  REAL,
    PRIMARY KEY (run_id, name)
);
CREATE TABLE IF NOT EXISTS run_snapshots (
    run_id TEXT NOT NULL,
    series TEXT NOT NULL,
    epoch  INTEGER NOT NULL,
    name   TEXT NOT NULL,
    value  REAL,
    PRIMARY KEY (run_id, series, epoch, name)
);
CREATE INDEX IF NOT EXISTS idx_runs_label ON runs(label, created_at);
"""

#: Bounded retry for writers that lose the sqlite lock anyway (WAL
#: allows one writer; ``timeout=`` covers most contention, but a
#: writer that straddles a checkpoint can still see ``database is
#: locked`` / ``database is busy``).
_LOCK_RETRIES = 12
_LOCK_BACKOFF = 0.05


def _is_locked(exc: sqlite3.OperationalError) -> bool:
    text = str(exc).lower()
    return "locked" in text or "busy" in text


def _retry_locked(op):
    """Run ``op()`` with bounded backoff on sqlite lock contention."""
    for attempt in range(_LOCK_RETRIES):
        try:
            return op()
        except sqlite3.OperationalError as exc:
            if not _is_locked(exc) or attempt == _LOCK_RETRIES - 1:
                raise
            time.sleep(_LOCK_BACKOFF * (attempt + 1))


def default_obs_dir() -> str:
    """Observability root: the ``obs_dir`` knob, else ``./.repro-obs``."""
    return knob_value("obs_dir") or os.path.join(os.curdir, ".repro-obs")


def registry_path(obs_dir: "str | None" = None) -> str:
    return os.path.join(obs_dir or default_obs_dir(), "registry.sqlite")


def config_hash(config) -> str:
    """Stable digest of a run configuration (any repr-able object)."""
    if isinstance(config, dict):
        payload = json.dumps(config, sort_keys=True, default=repr)
    else:
        payload = repr(config)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def git_rev() -> str:
    """Current git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)))
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


@dataclass
class RunRecord:
    """One registry row, with metrics and series loaded on demand."""

    run_id: str
    created_at: str
    label: str
    config_hash: str
    git_rev: str
    config: dict = field(default_factory=dict)
    artifacts: dict = field(default_factory=dict)
    status: str = "completed"


class RunRegistry:
    """Durable store of runs: metrics, snapshot series, artifacts."""

    def __init__(self, path: "str | None" = None) -> None:
        self.path = path or registry_path()

    def _connect(self) -> sqlite3.Connection:
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        conn = sqlite3.connect(self.path, timeout=30.0)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
        except sqlite3.OperationalError:
            conn.close()
            raise
        return conn

    # -- writes --------------------------------------------------------------

    def record_run(self, label: str, *, config=None, metrics=None,
                   series=None, artifacts=None,
                   status: str = "completed") -> str:
        """Persist one run; returns its generated ``run_id``.

        ``series`` maps series name -> :class:`SnapshotSeries` (or a
        list of row dicts).  Run ids are ``<label>-<n>`` with ``n``
        allocated under the insert transaction, so concurrent writers
        retry on collision instead of overwriting.
        """
        config = config if isinstance(config, dict) else (
            {"repr": repr(config)} if config is not None else {})
        chash = config_hash(config)
        rev = git_rev()
        created = _dt.datetime.now(_dt.timezone.utc).isoformat()
        metric_rows = sorted((metrics or {}).items())
        snap_rows = self._flatten_series(series or {})

        def _write() -> str:
            with self._connect() as conn:
                for attempt in range(100):
                    run_id = self._next_id(conn, label)
                    try:
                        conn.execute(
                            "INSERT INTO runs VALUES (?,?,?,?,?,?,?,?)",
                            (run_id, created, label, chash, rev,
                             json.dumps(config, sort_keys=True,
                                        default=repr),
                             json.dumps(artifacts or {}, sort_keys=True),
                             status))
                        break
                    except sqlite3.IntegrityError:
                        continue
                else:
                    raise RuntimeError(
                        f"could not allocate a run id for label {label!r}")
                conn.executemany(
                    "INSERT OR REPLACE INTO run_metrics VALUES (?,?,?)",
                    [(run_id, name, _as_real(value))
                     for name, value in metric_rows])
                conn.executemany(
                    "INSERT OR REPLACE INTO run_snapshots VALUES (?,?,?,?,?)",
                    [(run_id, sname, epoch, name, _as_real(value))
                     for sname, epoch, name, value in snap_rows])
                return run_id

        return _retry_locked(_write)

    @staticmethod
    def _next_id(conn: sqlite3.Connection, label: str) -> str:
        row = conn.execute(
            "SELECT COUNT(*) FROM runs WHERE label = ?", (label,)).fetchone()
        return f"{label}-{row[0] + 1}"

    @staticmethod
    def _flatten_series(series) -> "list[tuple[str, int, str, float]]":
        rows = []
        for sname, data in series.items():
            dicts = (data.to_dicts() if isinstance(data, SnapshotSeries)
                     else list(data))
            for i, raw in enumerate(dicts):
                epoch = int(raw.get("epoch", i))
                for name, value in raw.items():
                    if name == "epoch":
                        continue
                    rows.append((sname, epoch, name, value))
        return rows

    # -- reads ---------------------------------------------------------------

    def get_run(self, run_id: str) -> "RunRecord | None":
        with self._connect() as conn:
            row = conn.execute(
                "SELECT run_id, created_at, label, config_hash, git_rev, "
                "config_json, artifacts_json, status FROM runs "
                "WHERE run_id = ?", (run_id,)).fetchone()
        if row is None:
            return None
        return RunRecord(
            run_id=row[0], created_at=row[1], label=row[2],
            config_hash=row[3], git_rev=row[4],
            config=json.loads(row[5]), artifacts=json.loads(row[6]),
            status=row[7])

    def list_runs(self, label: "str | None" = None) -> "list[RunRecord]":
        query = ("SELECT run_id, created_at, label, config_hash, git_rev, "
                 "config_json, artifacts_json, status FROM runs")
        params: tuple = ()
        if label is not None:
            query += " WHERE label = ?"
            params = (label,)
        query += " ORDER BY created_at, run_id"
        with self._connect() as conn:
            rows = conn.execute(query, params).fetchall()
        return [RunRecord(run_id=r[0], created_at=r[1], label=r[2],
                          config_hash=r[3], git_rev=r[4],
                          config=json.loads(r[5]),
                          artifacts=json.loads(r[6]), status=r[7])
                for r in rows]

    def latest(self, label: "str | None" = None) -> "RunRecord | None":
        runs = self.list_runs(label)
        return runs[-1] if runs else None

    def metrics(self, run_id: str) -> "dict[str, float]":
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT name, value FROM run_metrics WHERE run_id = ? "
                "ORDER BY name", (run_id,)).fetchall()
        return dict(rows)

    def series_names(self, run_id: str) -> "list[str]":
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT DISTINCT series FROM run_snapshots "
                "WHERE run_id = ? ORDER BY series", (run_id,)).fetchall()
        return [r[0] for r in rows]

    def series(self, run_id: str, name: str) -> SnapshotSeries:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT epoch, name, value FROM run_snapshots "
                "WHERE run_id = ? AND series = ? ORDER BY epoch",
                (run_id, name)).fetchall()
        by_epoch: "dict[int, dict]" = {}
        for epoch, metric, value in rows:
            by_epoch.setdefault(epoch, {"epoch": epoch})[metric] = value
        return SnapshotSeries.from_dicts(
            name, [by_epoch[e] for e in sorted(by_epoch)])

    def resolve(self, ref: str) -> "RunRecord | None":
        """A run by exact id, or the latest run for a bare label."""
        run = self.get_run(ref)
        if run is not None:
            return run
        return self.latest(ref)


def _as_real(value) -> "float | None":
    """Coerce to REAL; NaN and non-numerics become SQL NULL."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        return None
    return None if value != value else value
