"""Cache hierarchy and trace filtering (the Moola substitute).

The paper filters CPU traces through Moola so that only main-memory
activity reaches the DRAM simulator.  :class:`CacheHierarchy` models
the paper's hierarchy — per-core private L1 I/D caches and one shared
L2 — and :func:`filter_trace` replays a raw trace through it, emitting
the residual main-memory trace: L2 read misses become memory reads and
dirty L2 evictions become memory writes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import LINE_SIZE, HierarchyConfig
from repro.cache.cache import Cache, CacheStats
from repro.trace.record import Trace


@dataclass
class MemoryRequest:
    """A residual request that missed all cache levels."""

    core: int
    line: int
    is_write: bool
    #: Instructions retired since the previous *memory* request of the
    #: same core (accumulated across filtered-out hits).
    gap_instructions: int


class CacheHierarchy:
    """Private L1 I/D per core plus one shared, unified L2."""

    def __init__(self, config: HierarchyConfig, num_cores: int) -> None:
        if num_cores <= 0:
            raise ValueError("need at least one core")
        self.config = config
        self.num_cores = num_cores
        self.l1i = [Cache(config.l1i, f"l1i{c}") for c in range(num_cores)]
        self.l1d = [Cache(config.l1d, f"l1d{c}") for c in range(num_cores)]
        self.l2 = Cache(config.l2, "l2")

    def access(
        self, core: int, line: int, is_write: bool, is_instruction: bool = False
    ) -> "list[tuple[int, bool]]":
        """Access one line; returns residual memory requests.

        Each returned tuple is ``(line, is_write)``: a read fill from
        memory on an L2 miss, and/or a write-back of a dirty L2 victim.
        """
        l1 = self.l1i[core] if is_instruction else self.l1d[core]
        residual: "list[tuple[int, bool]]" = []

        r1 = l1.access(line, is_write)
        if r1.hit:
            return residual
        # L1 victim write-back goes to the shared L2.
        if r1.writeback and r1.evicted_line is not None:
            r_wb = self.l2.access(r1.evicted_line, True)
            if not r_wb.hit:
                # Write-allocate miss in L2 may itself evict a dirty line.
                if r_wb.writeback and r_wb.evicted_line is not None:
                    residual.append((r_wb.evicted_line, True))

        r2 = self.l2.access(line, is_write)
        if not r2.hit:
            residual.append((line, False))  # fill from memory
            if r2.writeback and r2.evicted_line is not None:
                residual.append((r2.evicted_line, True))
        return residual

    def flush(self) -> "list[tuple[int, bool]]":
        """Flush every level; dirty L2 lines become memory writes.

        The write-backs return in ascending line order — since the
        filter attributes them all to core 0, that is deterministic
        (core, line) order regardless of cache content history, and
        both filter kernels reproduce the tail bit-exactly.
        """
        for caches in (self.l1i, self.l1d):
            for l1 in caches:
                for line in l1.flush():
                    self.l2.access(line, True)
        return [(line, True) for line in sorted(self.l2.flush())]

    def stats(self) -> "dict[str, CacheStats]":
        out = {"l2": self.l2.stats}
        for c in range(self.num_cores):
            out[f"l1i{c}"] = self.l1i[c].stats
            out[f"l1d{c}"] = self.l1d[c].stats
        return out


#: Recognised ``filter_trace(..., cache_kernel=)`` /
#: ``REPRO_CACHE_KERNEL`` values.
CACHE_KERNELS = ("array", "sparse")


def resolve_cache_kernel(kernel: "str | None" = None) -> str:
    """Resolve the filter backend via the ``cache_kernel`` knob
    (argument > scoped override > ``REPRO_CACHE_KERNEL`` > ``array``)."""
    from repro.config import knob_value

    kernel = knob_value("cache_kernel", kernel)
    if kernel not in CACHE_KERNELS:
        raise ValueError(
            f"cache kernel must be one of {CACHE_KERNELS}, got {kernel!r}"
        )
    return kernel


def filter_trace(
    trace: Trace,
    hierarchy: CacheHierarchy,
    flush_at_end: bool = False,
    cache_kernel: "str | None" = None,
) -> Trace:
    """Replay ``trace`` through ``hierarchy``; return the memory trace.

    Gap instructions of filtered-out (cache-hit) requests accumulate
    onto the next surviving request of the same core, so MPKI of the
    output reflects main-memory MPKI as in the paper.

    ``cache_kernel`` picks the backend: ``sparse`` is this module's
    per-access reference loop; ``array`` (the default) runs the whole
    trace through the batched kernel of
    :mod:`repro.cache.filter_array` — bit-identical output trace,
    final cache state, and stats.
    """
    if resolve_cache_kernel(cache_kernel) == "array":
        from repro.cache.filter_array import filter_trace_array

        return filter_trace_array(trace, hierarchy,
                                  flush_at_end=flush_at_end)

    out_core: "list[int]" = []
    out_line: "list[int]" = []
    out_write: "list[bool]" = []
    out_gap: "list[int]" = []
    pending_gap = np.zeros(hierarchy.num_cores, dtype=np.int64)

    cores = trace.core
    lines = trace.lines
    writes = trace.is_write
    gaps = trace.gap
    for i in range(len(trace)):
        core = int(cores[i])
        pending_gap[core] += int(gaps[i]) + 1  # +1 for the access itself
        residual = hierarchy.access(core, int(lines[i]), bool(writes[i]))
        for line, is_write in residual:
            out_core.append(core)
            out_line.append(line)
            out_write.append(is_write)
            out_gap.append(max(0, int(pending_gap[core]) - 1))
            pending_gap[core] = 0

    if flush_at_end:
        for line, is_write in hierarchy.flush():
            out_core.append(0)
            out_line.append(line)
            out_write.append(is_write)
            out_gap.append(0)

    return Trace(
        core=np.array(out_core, dtype=np.uint16),
        address=np.array(out_line, dtype=np.uint64) * LINE_SIZE,
        is_write=np.array(out_write, dtype=bool),
        gap=np.array(out_gap, dtype=np.uint32),
    )
