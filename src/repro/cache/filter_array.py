"""The ``array`` cache-filter kernel (whole-trace batched filtering).

:func:`repro.cache.hierarchy.filter_trace` owns the per-access
``sparse`` reference loop; this module is its batched counterpart,
selected by the ``cache_kernel`` knob (``REPRO_CACHE_KERNEL``).  The
hierarchy state converts to flat tag/dirty/stamp arrays, the whole
trace runs through one fused L1D+L2 loop — compiled C when
:func:`repro.sim._ckernel.load_filter` is available, a fused
plain-dict Python loop otherwise — and the state syncs back into the
:class:`~repro.cache.cache.Cache` objects, so ``hierarchy.stats()``
and any later per-access use observe exactly what the sparse path
would have left behind.

Bit-exactness rests on two invariants:

* **Stamp-LRU equivalence.**  The sparse :class:`Cache` keeps each set
  as an OrderedDict whose insertion order is recency (every hit pops
  and re-inserts).  Giving every hit and insert a fresh strictly
  increasing stamp makes "evict the min-stamp way" identical to
  ``popitem(last=False)``.
* **Post-hoc gap accounting.**  The sparse loop folds the gap
  instructions of filtered-out hits onto the next residual of the same
  core.  That is a pure function of (a) each residual's source-access
  index and (b) the per-core cumulative sum of ``gap + 1``, so it
  vectorises exactly after the filter loop.

Only data accesses flow through :func:`filter_trace` (the trace format
carries no instruction fetches), so the hot loop touches the per-core
L1D caches and the shared L2; the L1I caches participate only in the
end-of-trace flush, which both kernels delegate to the same
:meth:`CacheHierarchy.flush`.
"""

from __future__ import annotations

import numpy as np

from repro.config import LINE_SIZE
from repro.trace.record import Trace

#: Chunk bound for the compiled loop: output buffers are 3x this.
_CHUNK = 1 << 20


# ---------------------------------------------------------------------------
# State packing (OrderedDict sets <-> flat tag/dirty/stamp arrays)
# ---------------------------------------------------------------------------


def _pack_state(caches, nsets: int, assoc: int, counter: int):
    """Flatten cache sets into (tag, dirty, stamp) arrays.

    Ways fill in insertion order with increasing stamps, so relative
    recency within every set is preserved; ``-1`` marks an empty way.
    """
    k = len(caches)
    tag = np.full(k * nsets * assoc, -1, dtype=np.int64)
    dirty = np.zeros(k * nsets * assoc, dtype=np.uint8)
    stamp = np.zeros(k * nsets * assoc, dtype=np.int64)
    for ci, cache in enumerate(caches):
        cache_base = ci * nsets * assoc
        for si, cset in enumerate(cache._sets):
            base = cache_base + si * assoc
            for w, (tg, d) in enumerate(cset.items()):
                tag[base + w] = tg
                dirty[base + w] = d
                stamp[base + w] = counter
                counter += 1
    return tag, dirty, stamp, counter


def _unpack_state(caches, nsets: int, assoc: int, tag, dirty, stamp) -> None:
    """Rebuild every set's OrderedDict in stamp (= recency) order."""
    tag_l = tag.tolist()
    dirty_l = dirty.tolist()
    stamp_l = stamp.tolist()
    for ci, cache in enumerate(caches):
        cache_base = ci * nsets * assoc
        for si in range(nsets):
            base = cache_base + si * assoc
            ways = sorted(
                (stamp_l[base + w], tag_l[base + w], dirty_l[base + w])
                for w in range(assoc) if tag_l[base + w] >= 0
            )
            cset = cache._sets[si]
            cset.clear()
            for _st, tg, d in ways:
                cset[tg] = bool(d)


# ---------------------------------------------------------------------------
# Fused filter loops (compiled and Python, bit-identical)
# ---------------------------------------------------------------------------


def _filter_native(fn, hierarchy, cores, lines, writes):
    """Run the whole trace through the compiled chunk kernel."""
    from repro.sim import _ckernel

    l1_cfg = hierarchy.config.l1d
    l2_cfg = hierarchy.config.l2
    l1_nsets, l1_assoc = l1_cfg.num_sets, l1_cfg.associativity
    l2_nsets, l2_assoc = l2_cfg.num_sets, l2_cfg.associativity

    counter = 0
    l1_tag, l1_dirty, l1_stamp, counter = _pack_state(
        hierarchy.l1d, l1_nsets, l1_assoc, counter)
    l2_tag, l2_dirty, l2_stamp, counter = _pack_state(
        [hierarchy.l2], l2_nsets, l2_assoc, counter)
    counter_arr = np.array([counter], dtype=np.int64)
    l1_stats = np.zeros(hierarchy.num_cores * 4, dtype=np.int64)
    l2_stats = np.zeros(4, dtype=np.int64)

    n = len(cores)
    chunk = min(n, _CHUNK) or 1
    out_src = np.empty(3 * chunk, dtype=np.int64)
    out_line = np.empty(3 * chunk, dtype=np.int64)
    out_write = np.empty(3 * chunk, dtype=np.uint8)
    srcs, lns, wrs = [], [], []
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        m = _ckernel.run_filter_chunk(
            fn, cores[lo:hi], lines[lo:hi], writes[lo:hi],
            l1_nsets, l1_assoc, l1_tag, l1_dirty, l1_stamp,
            l1_cfg.write_allocate, l1_cfg.write_back,
            l2_nsets, l2_assoc, l2_tag, l2_dirty, l2_stamp,
            l2_cfg.write_allocate, l2_cfg.write_back,
            counter_arr, l1_stats, l2_stats,
            out_src, out_line, out_write)
        srcs.append(out_src[:m] + lo)
        lns.append(out_line[:m].copy())
        wrs.append(out_write[:m].copy())

    _unpack_state(hierarchy.l1d, l1_nsets, l1_assoc,
                  l1_tag, l1_dirty, l1_stamp)
    _unpack_state([hierarchy.l2], l2_nsets, l2_assoc,
                  l2_tag, l2_dirty, l2_stamp)
    for c in range(hierarchy.num_cores):
        stats = hierarchy.l1d[c].stats
        stats.accesses += int(l1_stats[c * 4])
        stats.hits += int(l1_stats[c * 4 + 1])
        stats.misses += int(l1_stats[c * 4 + 2])
        stats.writebacks += int(l1_stats[c * 4 + 3])
    stats = hierarchy.l2.stats
    stats.accesses += int(l2_stats[0])
    stats.hits += int(l2_stats[1])
    stats.misses += int(l2_stats[2])
    stats.writebacks += int(l2_stats[3])

    if not srcs:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.uint8)
    return np.concatenate(srcs), np.concatenate(lns), np.concatenate(wrs)


def _filter_python(hierarchy, cores, lines, writes):
    """Fused plain-dict loop, bit-identical to the compiled kernel.

    The per-set dicts are copies of the hierarchy's OrderedDicts
    (plain-dict insertion order is the same recency encoding); the
    inlined access logic mirrors :meth:`Cache.access` statement for
    statement, minus the per-access object and method dispatch.
    """
    l1_cfg = hierarchy.config.l1d
    l2_cfg = hierarchy.config.l2
    l1_nsets, l1_assoc = l1_cfg.num_sets, l1_cfg.associativity
    l2_nsets, l2_assoc = l2_cfg.num_sets, l2_cfg.associativity
    l1_walloc, l1_wback = l1_cfg.write_allocate, l1_cfg.write_back
    l2_walloc, l2_wback = l2_cfg.write_allocate, l2_cfg.write_back
    num_cores = hierarchy.num_cores

    l1_state = [[dict(s) for s in hierarchy.l1d[c]._sets]
                for c in range(num_cores)]
    l2_state = [dict(s) for s in hierarchy.l2._sets]
    l1_miss = [0] * num_cores
    l1_wbc = [0] * num_cores
    l2_acc = l2_miss = l2_wbc = 0

    out_src: "list[int]" = []
    out_line: "list[int]" = []
    out_write: "list[bool]" = []
    src_append = out_src.append
    line_append = out_line.append
    write_append = out_write.append

    cores_l = cores.tolist()
    lines_l = lines.tolist()
    writes_l = writes.astype(bool).tolist()
    for i in range(len(cores_l)):
        c = cores_l[i]
        ln = lines_l[i]
        w = writes_l[i]

        si = ln % l1_nsets
        cset = l1_state[c][si]
        tg = ln // l1_nsets
        if tg in cset:
            cset[tg] = cset.pop(tg) or w
            continue
        l1_miss[c] += 1
        wb_line = -1
        if not (w and not l1_walloc):
            if len(cset) >= l1_assoc:
                vt = next(iter(cset))
                vd = cset.pop(vt)
                if vd and l1_wback:
                    l1_wbc[c] += 1
                    wb_line = vt * l1_nsets + si
            cset[tg] = bool(w)

        if wb_line >= 0:
            # L1 victim write-back into the shared L2.
            s2 = wb_line % l2_nsets
            c2 = l2_state[s2]
            t2 = wb_line // l2_nsets
            l2_acc += 1
            if t2 in c2:
                c2.pop(t2)
                c2[t2] = True
            else:
                l2_miss += 1
                if l2_walloc:
                    if len(c2) >= l2_assoc:
                        vt2 = next(iter(c2))
                        vd2 = c2.pop(vt2)
                        if vd2 and l2_wback:
                            l2_wbc += 1
                            src_append(i)
                            line_append(vt2 * l2_nsets + s2)
                            write_append(True)
                    c2[t2] = True

        s2 = ln % l2_nsets
        c2 = l2_state[s2]
        t2 = ln // l2_nsets
        l2_acc += 1
        if t2 in c2:
            c2[t2] = c2.pop(t2) or w
        else:
            l2_miss += 1
            evicted = -1
            if not (w and not l2_walloc):
                if len(c2) >= l2_assoc:
                    vt2 = next(iter(c2))
                    vd2 = c2.pop(vt2)
                    if vd2 and l2_wback:
                        l2_wbc += 1
                        evicted = vt2 * l2_nsets + s2
                c2[t2] = bool(w)
            src_append(i)
            line_append(ln)
            write_append(False)
            if evicted >= 0:
                src_append(i)
                line_append(evicted)
                write_append(True)

    per_core = np.bincount(cores, minlength=num_cores)
    for c in range(num_cores):
        for si, state in enumerate(l1_state[c]):
            cset = hierarchy.l1d[c]._sets[si]
            cset.clear()
            cset.update(state)
        stats = hierarchy.l1d[c].stats
        accesses = int(per_core[c])
        stats.accesses += accesses
        stats.hits += accesses - l1_miss[c]
        stats.misses += l1_miss[c]
        stats.writebacks += l1_wbc[c]
    for si, state in enumerate(l2_state):
        cset = hierarchy.l2._sets[si]
        cset.clear()
        cset.update(state)
    stats = hierarchy.l2.stats
    stats.accesses += l2_acc
    stats.hits += l2_acc - l2_miss
    stats.misses += l2_miss
    stats.writebacks += l2_wbc

    return (np.asarray(out_src, dtype=np.int64),
            np.asarray(out_line, dtype=np.int64),
            np.asarray(out_write, dtype=np.uint8))


# ---------------------------------------------------------------------------
# Gap accounting and assembly
# ---------------------------------------------------------------------------


def _residual_gaps(out_src, cores, gaps, num_cores: int) -> np.ndarray:
    """Per-residual gap instructions, vectorised.

    The sparse loop keeps ``pending[core] += gap + 1`` per access and
    charges ``pending - 1`` to the first residual an access emits
    (later residuals of the same access get 0).  Equivalently: the
    first residual's gap is the difference of the per-core cumulative
    ``gap + 1`` between its source access and the previous emitting
    access of the same core, minus one.
    """
    m = len(out_src)
    out_gap = np.zeros(m, dtype=np.int64)
    if m == 0:
        return out_gap
    weights = gaps.astype(np.int64) + 1
    cum = np.empty(len(weights), dtype=np.int64)
    for c in range(num_cores):
        idx = np.flatnonzero(cores == c)
        cum[idx] = np.cumsum(weights[idx])
    first = np.empty(m, dtype=bool)
    first[0] = True
    np.not_equal(out_src[1:], out_src[:-1], out=first[1:])
    fpos = np.flatnonzero(first)
    fsrc = out_src[fpos]
    fcores = cores[fsrc]
    fcum = cum[fsrc]
    for c in range(num_cores):
        sel = np.flatnonzero(fcores == c)
        if not len(sel):
            continue
        vals = fcum[sel]
        prev = np.empty_like(vals)
        prev[0] = 0
        prev[1:] = vals[:-1]
        out_gap[fpos[sel]] = vals - prev - 1
    return out_gap


def filter_trace_array(trace: Trace, hierarchy,
                       flush_at_end: bool = False) -> Trace:
    """Batched :func:`~repro.cache.hierarchy.filter_trace` equivalent.

    Same inputs, same output trace, same final hierarchy state and
    stats as the sparse per-access loop — pinned by
    ``tests/cache/test_filter_parity.py`` and the ``cache-filter``
    differential fuzz check.
    """
    from repro.sim import _ckernel

    cores = np.ascontiguousarray(trace.core, dtype=np.int32)
    lines = np.ascontiguousarray(trace.lines, dtype=np.int64)
    writes = np.ascontiguousarray(trace.is_write, dtype=np.uint8)

    fn = _ckernel.load_filter()
    if fn is not None:
        out_src, out_line, out_write = _filter_native(
            fn, hierarchy, cores, lines, writes)
    else:
        out_src, out_line, out_write = _filter_python(
            hierarchy, cores, lines, writes)

    out_gap = _residual_gaps(out_src, cores, trace.gap, hierarchy.num_cores)
    out_core = cores[out_src].astype(np.uint16)
    out_line = out_line.astype(np.int64)
    out_write = out_write.astype(bool)

    if flush_at_end:
        flushed = hierarchy.flush()
        if flushed:
            f_line = np.array([line for line, _w in flushed], dtype=np.int64)
            f_write = np.array([w for _line, w in flushed], dtype=bool)
            out_core = np.concatenate(
                [out_core, np.zeros(len(flushed), dtype=np.uint16)])
            out_line = np.concatenate([out_line, f_line])
            out_write = np.concatenate([out_write, f_write])
            out_gap = np.concatenate(
                [out_gap, np.zeros(len(flushed), dtype=np.int64)])

    return Trace(
        core=out_core,
        address=out_line.astype(np.uint64) * LINE_SIZE,
        is_write=out_write,
        gap=out_gap.astype(np.uint32),
    )
