"""Cache substrate: set-associative caches and the Moola-style filter."""

from repro.cache.cache import AccessResult, Cache, CacheStats
from repro.cache.hierarchy import CacheHierarchy, MemoryRequest, filter_trace

__all__ = [
    "Cache",
    "CacheStats",
    "AccessResult",
    "CacheHierarchy",
    "MemoryRequest",
    "filter_trace",
]
