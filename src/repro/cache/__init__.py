"""Cache substrate: set-associative caches and the Moola-style filter."""

from repro.cache.cache import AccessResult, Cache, CacheStats
from repro.cache.filter_array import filter_trace_array
from repro.cache.hierarchy import (
    CACHE_KERNELS,
    CacheHierarchy,
    MemoryRequest,
    filter_trace,
    resolve_cache_kernel,
)

__all__ = [
    "Cache",
    "CacheStats",
    "AccessResult",
    "CacheHierarchy",
    "MemoryRequest",
    "CACHE_KERNELS",
    "filter_trace",
    "filter_trace_array",
    "resolve_cache_kernel",
]
