"""A set-associative cache with true-LRU replacement.

This is the building block of the Moola-substitute cache filter
(see ``repro.cache.hierarchy``): write-back, write-allocate by default,
with hit/miss/write-back accounting.  The model is functional (no
timing) because its only role in the reproduction — exactly as in the
paper — is to decide which requests reach main memory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.config import CacheConfig


@dataclass
class AccessResult:
    """Outcome of a single cache access."""

    hit: bool
    #: Line evicted to make room, or None.
    evicted_line: "int | None" = None
    #: True when the evicted line was dirty (a write-back is required).
    writeback: bool = False


@dataclass
class CacheStats:
    """Hit/miss/write-back counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One cache level, indexed by cache-line number.

    Each set is an :class:`~collections.OrderedDict` from tag to a
    dirty bit; insertion order encodes recency (last item = MRU).
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self._sets: "list[OrderedDict[int, bool]]" = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    def _index(self, line: int) -> "tuple[int, int]":
        return line % self.num_sets, line // self.num_sets

    def access(self, line: int, is_write: bool) -> AccessResult:
        """Look up ``line``; allocate on miss (write-allocate policy).

        Returns whether it hit and any eviction/write-back that the
        allocation caused.
        """
        set_idx, tag = self._index(line)
        cset = self._sets[set_idx]
        self.stats.accesses += 1

        if tag in cset:
            self.stats.hits += 1
            dirty = cset.pop(tag)
            cset[tag] = dirty or is_write
            return AccessResult(hit=True)

        self.stats.misses += 1
        if not (is_write and not self.config.write_allocate):
            evicted_line = None
            writeback = False
            if len(cset) >= self.associativity:
                victim_tag, victim_dirty = cset.popitem(last=False)
                evicted_line = victim_tag * self.num_sets + set_idx
                writeback = victim_dirty and self.config.write_back
                if writeback:
                    self.stats.writebacks += 1
            cset[tag] = is_write
            return AccessResult(
                hit=False, evicted_line=evicted_line, writeback=writeback
            )
        return AccessResult(hit=False)

    def contains(self, line: int) -> bool:
        set_idx, tag = self._index(line)
        return tag in self._sets[set_idx]

    def is_dirty(self, line: int) -> bool:
        set_idx, tag = self._index(line)
        return self._sets[set_idx].get(tag, False)

    def invalidate(self, line: int) -> bool:
        """Drop ``line``; returns True if it was present and dirty."""
        set_idx, tag = self._index(line)
        cset = self._sets[set_idx]
        if tag in cset:
            return cset.pop(tag)
        return False

    def resident_lines(self) -> "list[int]":
        """All lines currently cached (test/diagnostic helper)."""
        lines = []
        for set_idx, cset in enumerate(self._sets):
            lines.extend(tag * self.num_sets + set_idx for tag in cset)
        return lines

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def flush(self) -> "list[int]":
        """Empty the cache, returning the lines that needed write-back."""
        dirty = []
        for set_idx, cset in enumerate(self._sets):
            for tag, is_dirty in cset.items():
                if is_dirty and self.config.write_back:
                    dirty.append(tag * self.num_sets + set_idx)
            cset.clear()
        self.stats.writebacks += len(dirty)
        return dirty
