"""Dependency-free ASCII plots for the paper's figures.

matplotlib is not available in the offline environments this library
targets, so the scatter plots (Fig. 4, Fig. 6) and bar charts (Fig. 2,
Fig. 9b) render as text:

* :func:`ascii_scatter` — the hotness-risk scatter with quadrant
  split lines,
* :func:`ascii_bars` — horizontal bar chart for per-workload values,
* :func:`ascii_series` — a y-vs-index line for sweeps (Fig. 13).
"""

from __future__ import annotations

import numpy as np


def _normalise(values: np.ndarray, length: int) -> np.ndarray:
    """Map values to integer cells [0, length)."""
    values = np.asarray(values, dtype=np.float64)
    lo, hi = float(values.min()), float(values.max())
    if hi == lo:
        return np.zeros(len(values), dtype=np.int64)
    cells = (values - lo) / (hi - lo) * (length - 1)
    return np.round(cells).astype(np.int64)


def ascii_scatter(
    x,
    y,
    width: int = 60,
    height: int = 20,
    xlabel: str = "x",
    ylabel: str = "y",
    split_x: "float | None" = None,
    split_y: "float | None" = None,
    point: str = "*",
) -> str:
    """Scatter-plot ``(x, y)`` as text, with optional quadrant lines.

    ``split_x``/``split_y`` draw the mean-split lines of the paper's
    Figure 4, dividing the plane into the four hotness-risk quadrants.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) != len(y):
        raise ValueError("x and y must have equal length")
    if len(x) == 0:
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("plot too small")

    grid = [[" "] * width for _ in range(height)]

    def col_of(value: float, values: np.ndarray) -> int:
        lo, hi = float(values.min()), float(values.max())
        if hi == lo:
            return 0
        return int(round((value - lo) / (hi - lo) * (width - 1)))

    def row_of(value: float, values: np.ndarray) -> int:
        lo, hi = float(values.min()), float(values.max())
        if hi == lo:
            return height - 1
        return height - 1 - int(round((value - lo) / (hi - lo) * (height - 1)))

    if split_x is not None and x.min() <= split_x <= x.max():
        col = col_of(split_x, x)
        for r in range(height):
            grid[r][col] = "|"
    if split_y is not None and y.min() <= split_y <= y.max():
        row = row_of(split_y, y)
        for c in range(width):
            grid[row][c] = "-" if grid[row][c] == " " else "+"

    cols = _normalise(x, width)
    rows = height - 1 - _normalise(y, height)
    for r, c in zip(rows, cols):
        grid[r][c] = point

    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"x: {xlabel} [{x.min():.3g} .. {x.max():.3g}]   "
                 f"y: {ylabel} [{y.min():.3g} .. {y.max():.3g}]")
    return "\n".join(lines)


def ascii_bars(labels, values, width: int = 50,
               unit: str = "") -> str:
    """Horizontal bar chart (Fig. 2-style per-workload values)."""
    values = np.asarray(values, dtype=np.float64)
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if len(values) == 0:
        raise ValueError("nothing to plot")
    if np.any(values < 0):
        raise ValueError("bars must be non-negative")
    peak = values.max() or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * int(round(value / peak * width))
        lines.append(f"{str(label):<{label_width}} |{bar} {value:.3g}{unit}")
    return "\n".join(lines)


def ascii_series(values, width: int = 60, height: int = 12,
                 label: str = "") -> str:
    """A y-vs-index line chart (interval sweeps, frontiers)."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        raise ValueError("nothing to plot")
    x = np.linspace(0, 1, len(values))
    return ascii_scatter(x, values, width=width, height=height,
                         xlabel="index", ylabel=label or "value", point="o")
