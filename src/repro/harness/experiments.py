"""One reproduction function per figure and table of the paper.

Every function returns a :class:`FigureResult` whose rows mirror the
series the paper plots, plus a ``summary`` of the headline numbers and
the ``paper`` values they correspond to.  Absolute magnitudes are not
expected to match (our substrate is a synthetic-trace simulator, not
the authors' Pin/Ramulator testbed); the *shape* — who wins, by what
rough factor, where crossovers fall — is the reproduction target.

All functions accept ``accesses_per_core`` / ``scale`` / ``seed`` so
benchmarks can trade fidelity for runtime; defaults match the test
suite's scaled configuration (1 MB HBM : 16 MB DDR).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.avf.heuristics import (
    hotness_avf_correlation,
    top_hot_pages,
    write_ratio_avf_correlation,
    write_ratio_histogram,
)
from repro.config import default_config, knob_value, scaled_config
from repro.core.migration import (
    CrossCountersMigration,
    PerformanceFocusedMigration,
    ReliabilityAwareFCMigration,
    ToleranceTieredMigration,
)
from repro.core.placement import (
    BalancedPlacement,
    DdrOnlyPlacement,
    HotFractionPlacement,
    PerformanceFocusedPlacement,
    ReliabilityFocusedPlacement,
    Wr2RatioPlacement,
    WrRatioPlacement,
)
from repro.core.quadrant import quadrant_split
from repro.faults.ser import SerModel
from repro.harness.reporting import format_table, gmean
from repro.sim.system import (
    DEFAULT_SCALE,
    MigrationSpec,
    PreparedWorkload,
    StaticSpec,
    evaluate_annotations,
    evaluate_migration,
    evaluate_migration_multi,
    evaluate_static,
    evaluate_static_multi,
    prepare_workload,
)
from repro.trace.mixes import MIX_NAMES, MIX_TABLE
from repro.trace.workloads import HOMOGENEOUS_BENCHMARKS, PROFILES
from repro.workloads import FRONTIER_WORKLOADS

#: The paper's full workload set: nine 16-copy homogeneous workloads
#: plus the five Table 2 mixes.
ALL_WORKLOADS = tuple(HOMOGENEOUS_BENCHMARKS) + MIX_NAMES
#: A three-workload subset for the costliest sweeps (as in Fig. 1/13).
SWEEP_WORKLOADS = ("astar", "cactusADM", "mix1")
#: Default trace volume per core; benches may lower it for speed.
DEFAULT_ACCESSES = 20_000
#: Default number of migration intervals for the dynamic schemes.
DEFAULT_INTERVALS = 16


@dataclass
class FigureResult:
    """Rows and headline numbers of one reproduced figure/table."""

    figure: str
    description: str
    headers: "list[str]"
    rows: "list[list]"
    summary: "dict[str, float]" = field(default_factory=dict)
    paper: "dict[str, float]" = field(default_factory=dict)

    def format(self) -> str:
        parts = [format_table(self.headers, self.rows,
                              title=f"{self.figure}: {self.description}")]
        if self.summary:
            parts.append("")
            for key, value in self.summary.items():
                target = self.paper.get(key)
                suffix = f"   (paper: {target})" if target is not None else ""
                parts.append(f"  {key} = {value:.3g}{suffix}")
        return "\n".join(parts)

    def print(self) -> None:
        print(self.format())
        print()


class WorkloadCache:
    """Prepared-workload cache shared across experiment functions.

    ``cache_dir`` adds a persistent on-disk layer underneath the
    in-memory dict (see :mod:`repro.harness.runner`), and
    :meth:`prefetch` warms both layers for a workload list across
    ``jobs`` processes.
    """

    def __init__(
        self,
        accesses_per_core: int = DEFAULT_ACCESSES,
        scale: float = DEFAULT_SCALE,
        seed: "int | None" = None,
        cache_dir: "str | None" = None,
        jobs: "int | None" = None,
    ) -> None:
        self.accesses_per_core = accesses_per_core
        self.scale = scale
        self.seed = knob_value("seed", seed)
        self.cache_dir = cache_dir
        self.jobs = jobs
        self._ser_model = SerModel.for_system(scaled_config(scale),
                                              seed=self.seed)
        self._cache: "dict[str, PreparedWorkload]" = {}

    def get(self, name: str) -> PreparedWorkload:
        if name not in self._cache:
            from repro.harness.runner import prepare_workload_cached

            self._cache[name] = prepare_workload_cached(
                name,
                scale=self.scale,
                accesses_per_core=self.accesses_per_core,
                seed=self.seed,
                ser_model=self._ser_model,
                cache_dir=self.cache_dir,
            )
        return self._cache[name]

    def prefetch(self, names=ALL_WORKLOADS, jobs: "int | None" = None
                 ) -> "WorkloadCache":
        """Prepare ``names`` across processes and absorb the results."""
        from repro.harness.runner import prefetch_workloads

        missing = [n for n in names if n not in self._cache]
        if missing:
            self._cache.update(prefetch_workloads(
                missing,
                scale=self.scale,
                accesses_per_core=self.accesses_per_core,
                seed=self.seed,
                ser_model=self._ser_model,
                cache_dir=self.cache_dir,
                jobs=self.jobs if jobs is None else jobs,
            ))
        return self


def _cache(cache, accesses_per_core, scale, seed) -> WorkloadCache:
    if cache is not None:
        return cache
    return WorkloadCache(accesses_per_core=accesses_per_core, scale=scale,
                         seed=seed)


# ---------------------------------------------------------------------------
# Tables 1 and 2
# ---------------------------------------------------------------------------

def table1_config() -> FigureResult:
    """Table 1: the simulated system configuration."""
    cfg = default_config()
    rows = [
        ["Number of cores", cfg.num_cores],
        ["Core frequency", f"{cfg.core.frequency_hz / 1e9:.1f} GHz"],
        ["Issue width", f"{cfg.core.issue_width}-wide out-of-order"],
        ["ROB size", f"{cfg.core.rob_entries} entries"],
        ["L1 I-cache", f"{cfg.caches.l1i.size_bytes // 1024} KB, "
                       f"{cfg.caches.l1i.associativity}-way"],
        ["L1 D-cache", f"{cfg.caches.l1d.size_bytes // 1024} KB, "
                       f"{cfg.caches.l1d.associativity}-way"],
        ["L2 cache", f"{cfg.caches.l2.size_bytes // (1024 * 1024)} MB, "
                     f"{cfg.caches.l2.associativity}-way"],
    ]
    for label, mem in (("Low-reliability", cfg.fast_memory),
                       ("High-reliability", cfg.slow_memory)):
        rows.extend([
            [f"{label} ({mem.name}) capacity",
             f"{mem.capacity_bytes / (1 << 30):.0f} GB"],
            [f"{mem.name} bus", f"{mem.bus_frequency_hz / 1e6:.0f} MHz x "
                                f"{mem.bus_width_bits} bits"],
            [f"{mem.name} channels", mem.channels],
            [f"{mem.name} banks/rank", mem.banks_per_rank],
            [f"{mem.name} ECC", mem.ecc],
            [f"{mem.name} peak bandwidth",
             f"{mem.peak_bandwidth_bytes_per_sec / 2**30:.0f} GiB/s"],
        ])
    return FigureResult(
        figure="Table 1",
        description="System configuration",
        headers=["Parameter", "Value"],
        rows=rows,
    )


def table2_mixes() -> FigureResult:
    """Table 2: mixed workload composition."""
    benches = sorted({b for mix in MIX_TABLE.values() for b in mix})
    rows = []
    for bench in benches:
        rows.append([bench] + [MIX_TABLE[m].get(bench, 0) or "" for m in MIX_NAMES])
    return FigureResult(
        figure="Table 2",
        description="Mixed workload description (copies per mix)",
        headers=["Bench"] + list(MIX_NAMES),
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 1: reliability vs performance frontier
# ---------------------------------------------------------------------------

def fig01_frontier(
    workloads=SWEEP_WORKLOADS,
    fractions=(0.0, 0.125, 0.25, 0.5, 0.75, 1.0),
    cache: "WorkloadCache | None" = None,
    accesses_per_core: int = DEFAULT_ACCESSES,
    scale: float = DEFAULT_SCALE,
    seed: "int | None" = None,
) -> FigureResult:
    """Fig. 1: each point places a different proportion of hot pages in
    the fast memory; performance rises while reliability collapses."""
    cache = _cache(cache, accesses_per_core, scale, seed)
    rows = []
    for fraction in fractions:
        ipcs, sers = [], []
        for wl in workloads:
            prep = cache.get(wl)
            res = evaluate_static(prep, HotFractionPlacement(fraction))
            ipcs.append(res.ipc_vs_ddr)
            sers.append(res.ser_vs_ddr)
        rel = 1.0 / gmean(sers)  # reliability normalised to DDR-only
        rows.append([f"{fraction:.3f}", gmean(ipcs), gmean(sers), rel])
    return FigureResult(
        figure="Figure 1",
        description="Reliability vs performance for HMA "
                    f"(avg over {', '.join(workloads)})",
        headers=["hot fraction", "IPC vs DDR", "SER vs DDR",
                 "reliability vs DDR"],
        rows=rows,
        summary={
            "ipc_gain_full": rows[-1][1],
            "ser_blowup_full": rows[-1][2],
        },
    )


# ---------------------------------------------------------------------------
# Figure 2: per-workload memory AVF
# ---------------------------------------------------------------------------

def fig02_avf(
    workloads=ALL_WORKLOADS,
    cache: "WorkloadCache | None" = None,
    accesses_per_core: int = DEFAULT_ACCESSES,
    scale: float = DEFAULT_SCALE,
    seed: "int | None" = None,
) -> FigureResult:
    """Fig. 2: average memory AVF varies widely across applications
    (paper: 1.7% for astar up to 22.5% for milc)."""
    cache = _cache(cache, accesses_per_core, scale, seed)
    stats = [(wl, cache.get(wl).stats.mean_avf() * 100) for wl in workloads]
    stats.sort(key=lambda kv: kv[1])
    rows = [[wl, avf] for wl, avf in stats]
    return FigureResult(
        figure="Figure 2",
        description="Average memory AVF per workload (DDR-only), ascending",
        headers=["workload", "mean AVF %"],
        rows=rows,
        summary={"min_avf_pct": rows[0][1], "max_avf_pct": rows[-1][1]},
        paper={"min_avf_pct": 1.7, "max_avf_pct": 22.5},
    )


# ---------------------------------------------------------------------------
# Figure 3: the didactic ACE-interval cases
# ---------------------------------------------------------------------------

def fig03_ace_cases() -> FigureResult:
    """Fig. 3: the four cache-line scenarios defining memory AVF.

    (a) WR..RD..RD..WR — ACE from the write to the last read;
    (b) WR....WR — a strike between two writes is masked;
    (c)/(d) equal access counts, very different AVF depending on when
    the reads happen.  Each case is replayed through the streaming
    tracker and its ACE time reported.
    """
    from repro.avf.tracker import AceTracker

    cases = {
        "(a) WR rd rd WR": [(0.1, True), (0.4, False), (0.7, False),
                            (0.9, True)],
        "(b) WR .. WR (masked)": [(0.1, True), (0.9, True)],
        "(c) WR, late read": [(0.05, True), (0.9, False)],
        "(d) WR, early read": [(0.05, True), (0.1, False)],
    }
    rows = []
    for label, events in cases.items():
        tracker = AceTracker(assume_live_at_start=False)
        timeline = ["."] * 40
        for time, is_write in events:
            tracker.access(0, time, is_write)
            timeline[min(39, int(time * 40))] = "W" if is_write else "R"
        ace = tracker.ace_time(0)
        rows.append([label, "".join(timeline), f"{ace * 100:.0f}%"])
    return FigureResult(
        figure="Figure 3",
        description="ACE intervals of four didactic cache-line histories "
                    "(W=write, R=read over a unit window)",
        headers=["case", "timeline", "AVF"],
        rows=rows,
        summary={
            "case_b_avf": 0.0,
        },
        paper={"case_b_avf": 0.0},
    )


# ---------------------------------------------------------------------------
# Figure 4: hotness-risk quadrants
# ---------------------------------------------------------------------------

def fig04_quadrants(
    workloads=ALL_WORKLOADS,
    cache: "WorkloadCache | None" = None,
    accesses_per_core: int = DEFAULT_ACCESSES,
    scale: float = DEFAULT_SCALE,
    seed: "int | None" = None,
) -> FigureResult:
    """Fig. 4: page distribution across the four hotness-risk
    quadrants; hot & low-risk pages are 9-39% of the footprint."""
    cache = _cache(cache, accesses_per_core, scale, seed)
    rows = []
    hot_low = []
    for wl in workloads:
        quad = quadrant_split(cache.get(wl).stats, wl)
        fr = quad.fractions()
        rows.append([
            wl,
            f"{fr['hot_low_risk'] * 100:.1f}%",
            f"{fr['hot_high_risk'] * 100:.1f}%",
            f"{fr['cold_low_risk'] * 100:.1f}%",
            f"{fr['cold_high_risk'] * 100:.1f}%",
        ])
        hot_low.append(fr["hot_low_risk"])
    return FigureResult(
        figure="Figure 4",
        description="Footprint share per hotness-risk quadrant",
        headers=["workload", "hot&low", "hot&high", "cold&low", "cold&high"],
        rows=rows,
        summary={
            "hot_low_min_pct": min(hot_low) * 100,
            "hot_low_max_pct": max(hot_low) * 100,
        },
        paper={"hot_low_min_pct": 9.0, "hot_low_max_pct": 39.0},
    )


# ---------------------------------------------------------------------------
# Static placement figures (5, 7, 8, 10, 11)
# ---------------------------------------------------------------------------

def _static_figure(
    figure, description, policy, workloads, cache, accesses_per_core,
    scale, seed, relative_to_perf, paper,
) -> FigureResult:
    cache = _cache(cache, accesses_per_core, scale, seed)
    rows = []
    ipc_ratios, ser_ratios = [], []
    order = sorted(
        workloads,
        key=lambda w: -(PROFILES[w].mpki if w in PROFILES else 10.0),
    )
    multirun = bool(knob_value("multirun"))
    for wl in order:
        prep = cache.get(wl)
        if multirun:
            specs = [StaticSpec(policy)]
            if relative_to_perf:
                specs.append(StaticSpec(PerformanceFocusedPlacement()))
            evals = evaluate_static_multi(prep, specs)
            res = evals[0]
            base = evals[1] if relative_to_perf else None
        else:
            res = evaluate_static(prep, policy)
            base = (evaluate_static(prep, PerformanceFocusedPlacement())
                    if relative_to_perf else None)
        if relative_to_perf:
            ipc_ratio = res.ipc / base.ipc if base.ipc else 0.0
            ser_ratio = res.ser / base.ser if base.ser else 0.0
        else:
            ipc_ratio, ser_ratio = res.ipc_vs_ddr, res.ser_vs_ddr
        rows.append([wl, res.ipc, ipc_ratio, ser_ratio])
        ipc_ratios.append(ipc_ratio)
        ser_ratios.append(ser_ratio)
    base_label = "perf-focused" if relative_to_perf else "DDR-only"
    summary = {
        "mean_ipc_ratio": gmean(ipc_ratios),
        "mean_ser_ratio": gmean(ser_ratios),
    }
    return FigureResult(
        figure=figure,
        description=description,
        headers=["workload (desc MPKI)", "IPC", f"IPC vs {base_label}",
                 f"SER vs {base_label}"],
        rows=rows,
        summary=summary,
        paper=paper,
    )


def fig05_perf_focused(workloads=ALL_WORKLOADS, cache=None,
                       accesses_per_core=DEFAULT_ACCESSES,
                       scale=DEFAULT_SCALE, seed=None) -> FigureResult:
    """Fig. 5: performance-focused placement boosts IPC ~1.6x but
    inflates SER ~287x relative to DDR-only."""
    return _static_figure(
        "Figure 5", "Performance-focused static placement vs DDR-only",
        PerformanceFocusedPlacement(), workloads, cache, accesses_per_core,
        scale, seed, relative_to_perf=False,
        paper={"mean_ipc_ratio": 1.6, "mean_ser_ratio": 287.0},
    )


def fig07_rel_focused(workloads=ALL_WORKLOADS, cache=None,
                      accesses_per_core=DEFAULT_ACCESSES,
                      scale=DEFAULT_SCALE, seed=None) -> FigureResult:
    """Fig. 7: reliability-focused placement cuts SER ~5x at ~17%
    performance loss relative to performance-focused placement."""
    return _static_figure(
        "Figure 7", "Reliability-focused placement vs performance-focused",
        ReliabilityFocusedPlacement(), workloads, cache, accesses_per_core,
        scale, seed, relative_to_perf=True,
        paper={"mean_ipc_ratio": 0.83, "mean_ser_ratio": 1 / 5.0},
    )


def fig08_balanced(workloads=ALL_WORKLOADS, cache=None,
                   accesses_per_core=DEFAULT_ACCESSES,
                   scale=DEFAULT_SCALE, seed=None) -> FigureResult:
    """Fig. 8: balanced (hot & low-risk quadrant) placement cuts SER
    ~3x at ~14% performance loss vs performance-focused."""
    return _static_figure(
        "Figure 8", "Balanced (hot & low-risk) placement vs perf-focused",
        BalancedPlacement(), workloads, cache, accesses_per_core,
        scale, seed, relative_to_perf=True,
        paper={"mean_ipc_ratio": 0.86, "mean_ser_ratio": 1 / 3.0},
    )


def fig10_wr_ratio(workloads=ALL_WORKLOADS, cache=None,
                   accesses_per_core=DEFAULT_ACCESSES,
                   scale=DEFAULT_SCALE, seed=None) -> FigureResult:
    """Fig. 10: Wr-ratio heuristic placement cuts SER ~1.8x at ~8.1%
    performance loss vs performance-focused."""
    return _static_figure(
        "Figure 10", "Top Wr-ratio placement vs performance-focused",
        WrRatioPlacement(), workloads, cache, accesses_per_core,
        scale, seed, relative_to_perf=True,
        paper={"mean_ipc_ratio": 0.919, "mean_ser_ratio": 1 / 1.8},
    )


def fig11_wr2_ratio(workloads=ALL_WORKLOADS, cache=None,
                    accesses_per_core=DEFAULT_ACCESSES,
                    scale=DEFAULT_SCALE, seed=None) -> FigureResult:
    """Fig. 11: Wr^2-ratio placement cuts SER ~1.6x at only ~1%
    performance loss vs performance-focused."""
    return _static_figure(
        "Figure 11", "Top Wr^2-ratio placement vs performance-focused",
        Wr2RatioPlacement(), workloads, cache, accesses_per_core,
        scale, seed, relative_to_perf=True,
        paper={"mean_ipc_ratio": 0.99, "mean_ser_ratio": 1 / 1.6},
    )


# ---------------------------------------------------------------------------
# Figures 6 and 9: correlations
# ---------------------------------------------------------------------------

def fig06_correlation(
    workload: str = "mix1",
    top_n: int = 1000,
    cache=None,
    accesses_per_core=DEFAULT_ACCESSES,
    scale=DEFAULT_SCALE,
    seed=None,
) -> FigureResult:
    """Fig. 6: hotness and AVF of the hottest pages correlate weakly
    (paper: rho = 0.08 over the full footprint of mix1)."""
    cache = _cache(cache, accesses_per_core, scale, seed)
    stats = cache.get(workload).stats
    idx = top_hot_pages(stats, top_n)
    rho_all = hotness_avf_correlation(stats)
    rows = []
    step = max(1, len(idx) // 20)
    for rank in range(0, len(idx), step):
        i = idx[rank]
        rows.append([rank + 1, int(stats.hotness[i]), stats.avf[i] * 100])
    return FigureResult(
        figure="Figure 6",
        description=f"Hotness vs AVF for top-{top_n} hot pages of {workload} "
                    "(sampled every "
                    f"{step})",
        headers=["hot rank", "accesses", "AVF %"],
        rows=rows,
        summary={"rho_hotness_avf": rho_all},
        paper={"rho_hotness_avf": 0.08},
    )


def fig09_write_ratio(
    workload: str = "mix1",
    cache=None,
    accesses_per_core=DEFAULT_ACCESSES,
    scale=DEFAULT_SCALE,
    seed=None,
) -> FigureResult:
    """Fig. 9: write ratio anti-correlates with AVF (paper rho = -0.32)
    and most pages are read-heavy, with a write-heavy tail."""
    cache = _cache(cache, accesses_per_core, scale, seed)
    stats = cache.get(workload).stats
    rho = write_ratio_avf_correlation(stats)
    hist = write_ratio_histogram(stats)
    rows = [
        [f"{lo * 100:.0f}-{hi * 100:.0f}%", count]
        for lo, hi, count in hist
    ]
    return FigureResult(
        figure="Figure 9",
        description=f"Write-ratio histogram of {workload} pages",
        headers=["Wr/Rd bin", "pages"],
        rows=rows,
        summary={"rho_write_ratio_avf": rho},
        paper={"rho_write_ratio_avf": -0.32},
    )


# ---------------------------------------------------------------------------
# Dynamic migration figures (12-15)
# ---------------------------------------------------------------------------

def fig12_perf_migration(
    workloads=ALL_WORKLOADS,
    cache=None,
    accesses_per_core=DEFAULT_ACCESSES,
    scale=DEFAULT_SCALE,
    seed=None,
    num_intervals=DEFAULT_INTERVALS,
) -> FigureResult:
    """Fig. 12: performance-focused migration gets within ~6% of the
    static oracle's IPC while SER stays ~268x above DDR-only."""
    cache = _cache(cache, accesses_per_core, scale, seed)
    rows, ipcs, sers, vs_static = [], [], [], []
    for wl in workloads:
        prep = cache.get(wl)
        static = evaluate_static(prep, PerformanceFocusedPlacement())
        res = evaluate_migration(
            prep, PerformanceFocusedMigration(), num_intervals=num_intervals,
        )
        rows.append([wl, res.ipc_vs_ddr, res.ser_vs_ddr, res.migrations])
        ipcs.append(res.ipc_vs_ddr)
        sers.append(res.ser_vs_ddr)
        vs_static.append(res.ipc / static.ipc if static.ipc else 0.0)
    return FigureResult(
        figure="Figure 12",
        description="Performance-focused migration vs DDR-only",
        headers=["workload", "IPC vs DDR", "SER vs DDR", "migrations"],
        rows=rows,
        summary={
            "mean_ipc_vs_ddr": gmean(ipcs),
            "mean_ser_vs_ddr": gmean(sers),
            "ipc_vs_static_oracle": gmean(vs_static),
        },
        paper={
            "mean_ipc_vs_ddr": 1.52,
            "mean_ser_vs_ddr": 268.0,
            "ipc_vs_static_oracle": 0.942,
        },
    )


def fig13_interval_sweep(
    workloads=SWEEP_WORKLOADS,
    intervals=(4, 8, 16, 32, 64),
    cache=None,
    accesses_per_core=DEFAULT_ACCESSES,
    scale=DEFAULT_SCALE,
    seed=None,
) -> FigureResult:
    """Fig. 13: sweep over the migration interval.

    The paper sweeps wall-clock intervals and finds 100 ms optimal; we
    sweep the number of intervals per trace window (fewer intervals =
    longer interval).  The shape to reproduce is the interior optimum:
    very frequent migration pays too much copy bandwidth, very rare
    migration reacts too slowly.
    """
    cache = _cache(cache, accesses_per_core, scale, seed)
    # The sweep starts from an empty HBM (first-touch into DDR) so both
    # failure modes are visible: long intervals adapt too slowly to
    # ever exploit the fast memory, short ones drown in migration
    # bandwidth.
    if knob_value("multirun"):
        # One batched pass per workload covers every interval count
        # (sharing the trace precompute and the interval profiler),
        # then the results regroup into the oracle's per-count rows.
        per_wl = {}
        for wl in workloads:
            per_wl[wl] = evaluate_migration_multi(cache.get(wl), [
                MigrationSpec(PerformanceFocusedMigration(),
                              num_intervals=n,
                              initial_policy=DdrOnlyPlacement())
                for n in intervals
            ])
        results = {
            (n, wl): per_wl[wl][j]
            for wl in workloads for j, n in enumerate(intervals)
        }
    else:
        results = {
            (n, wl): evaluate_migration(
                cache.get(wl), PerformanceFocusedMigration(),
                num_intervals=n, initial_policy=DdrOnlyPlacement(),
            )
            for n in intervals for wl in workloads
        }
    rows = []
    best = None
    for n in intervals:
        ipcs = [results[(n, wl)].ipc_vs_ddr for wl in workloads]
        mean = gmean(ipcs)
        rows.append([n, mean])
        if best is None or mean > best[1]:
            best = (n, mean)
    return FigureResult(
        figure="Figure 13",
        description="Migration interval sweep (intervals per window; "
                    "fewer = longer interval)",
        headers=["intervals", "IPC vs DDR (mean)"],
        rows=rows,
        summary={"best_intervals": float(best[0])},
    )


def _migration_vs_perf(
    figure, description, mechanism_factory, workloads, cache,
    accesses_per_core, scale, seed, num_intervals, paper,
) -> FigureResult:
    cache = _cache(cache, accesses_per_core, scale, seed)
    rows, ipc_ratios, ser_ratios = [], [], []
    multirun = bool(knob_value("multirun"))
    for wl in workloads:
        prep = cache.get(wl)
        if multirun:
            base, res = evaluate_migration_multi(prep, [
                MigrationSpec(PerformanceFocusedMigration(),
                              num_intervals=num_intervals),
                MigrationSpec(mechanism_factory(),
                              num_intervals=num_intervals,
                              initial_policy=BalancedPlacement()),
            ])
        else:
            base = evaluate_migration(
                prep, PerformanceFocusedMigration(),
                num_intervals=num_intervals,
            )
            res = evaluate_migration(
                prep, mechanism_factory(), num_intervals=num_intervals,
                initial_policy=BalancedPlacement(),
            )
        ipc_ratio = res.ipc / base.ipc if base.ipc else 0.0
        ser_ratio = res.ser / base.ser if base.ser else 0.0
        rows.append([wl, ipc_ratio, ser_ratio, res.migrations])
        ipc_ratios.append(ipc_ratio)
        ser_ratios.append(ser_ratio)
    return FigureResult(
        figure=figure,
        description=description,
        headers=["workload", "IPC vs perf-migration",
                 "SER vs perf-migration", "migrations"],
        rows=rows,
        summary={
            "mean_ipc_ratio": gmean(ipc_ratios),
            "mean_ser_ratio": gmean(ser_ratios),
        },
        paper=paper,
    )


def fig14_fc_migration(workloads=ALL_WORKLOADS, cache=None,
                       accesses_per_core=DEFAULT_ACCESSES,
                       scale=DEFAULT_SCALE, seed=None,
                       num_intervals=DEFAULT_INTERVALS) -> FigureResult:
    """Fig. 14: Full-Counter reliability-aware migration cuts SER ~1.8x
    at ~6% performance loss vs performance-focused migration."""
    return _migration_vs_perf(
        "Figure 14", "Reliability-aware FC migration vs perf migration",
        ReliabilityAwareFCMigration, workloads, cache, accesses_per_core,
        scale, seed, num_intervals,
        paper={"mean_ipc_ratio": 0.94, "mean_ser_ratio": 1 / 1.8},
    )


def fig15_cc_migration(workloads=ALL_WORKLOADS, cache=None,
                       accesses_per_core=DEFAULT_ACCESSES,
                       scale=DEFAULT_SCALE, seed=None,
                       num_intervals=DEFAULT_INTERVALS) -> FigureResult:
    """Fig. 15: Cross-Counters migration cuts SER ~1.5x at ~4.9%
    performance loss vs performance-focused migration, with far less
    tracking hardware than FC."""
    return _migration_vs_perf(
        "Figure 15", "Cross-Counters migration vs perf migration",
        CrossCountersMigration, workloads, cache, accesses_per_core,
        scale, seed, num_intervals,
        paper={"mean_ipc_ratio": 0.951, "mean_ser_ratio": 1 / 1.5},
    )


# ---------------------------------------------------------------------------
# Extension: the datacenter workload frontier
# ---------------------------------------------------------------------------

def workload_frontier(
    workloads=FRONTIER_WORKLOADS,
    cache=None,
    accesses_per_core=DEFAULT_ACCESSES,
    scale=DEFAULT_SCALE,
    seed=None,
    num_intervals=DEFAULT_INTERVALS,
) -> FigureResult:
    """Extension: phase-aware server workloads under the migration
    ladder, with ``tolerance-tiered`` head-to-head against CC.

    Runs the paper's migration ladder (perf / FC / CC) plus the
    tolerance-tiered policy on the frontier server workloads (kvstore,
    webserver, compiler) at equal HBM capacity.  Tolerance-tiered gets
    each workload's per-page :class:`~repro.core.annotations.ToleranceMap`;
    the headline is SER of tolerance-tiered relative to hotness-only
    CC (``< 1`` means the tolerance dimension buys extra reliability).

    Reproduce with::

        repro-hma run workload-frontier
    """
    cache = _cache(cache, accesses_per_core, scale, seed)
    multirun = bool(knob_value("multirun"))
    rows = []
    ipc_vs_cc, ser_vs_cc = [], []
    summary: "dict[str, float]" = {}
    for wl in workloads:
        prep = cache.get(wl)
        tol = getattr(prep.workload_trace, "tolerance", None)
        specs = [
            MigrationSpec(PerformanceFocusedMigration(),
                          num_intervals=num_intervals),
            MigrationSpec(ReliabilityAwareFCMigration(),
                          num_intervals=num_intervals,
                          initial_policy=BalancedPlacement()),
            MigrationSpec(CrossCountersMigration(),
                          num_intervals=num_intervals,
                          initial_policy=BalancedPlacement()),
            MigrationSpec(ToleranceTieredMigration(tolerance=tol),
                          num_intervals=num_intervals,
                          initial_policy=BalancedPlacement()),
        ]
        if multirun:
            results = evaluate_migration_multi(prep, specs)
        else:
            results = [
                evaluate_migration(prep, spec.mechanism,
                                   num_intervals=spec.num_intervals,
                                   initial_policy=spec.initial_policy)
                for spec in specs
            ]
        by_name = {res.scheme: res for res in results}
        for res in results:
            rows.append([wl, res.scheme, res.ipc_vs_ddr,
                         res.ser_vs_ddr, res.migrations])
        cc = by_name["cc-migration"]
        tt = by_name["tolerance-tiered"]
        wl_ipc = tt.ipc / cc.ipc if cc.ipc else 0.0
        wl_ser = tt.ser / cc.ser if cc.ser else 0.0
        ipc_vs_cc.append(wl_ipc)
        ser_vs_cc.append(wl_ser)
        summary[f"{wl}_ser_tt_vs_cc"] = wl_ser
    summary.update({
        "mean_ipc_tt_vs_cc": gmean(ipc_vs_cc),
        "mean_ser_tt_vs_cc": gmean(ser_vs_cc),
        "best_ser_tt_vs_cc": min(ser_vs_cc) if ser_vs_cc else 0.0,
        "frontier_wins": float(sum(1 for s in ser_vs_cc if s < 1.0)),
    })
    return FigureResult(
        figure="Workload frontier",
        description="Server workloads: migration ladder + tolerance-tiered",
        headers=["workload", "scheme", "IPC vs DDR", "SER vs DDR",
                 "migrations"],
        rows=rows,
        summary=summary,
    )


# ---------------------------------------------------------------------------
# Extension: the ECC design-space Pareto frontier
# ---------------------------------------------------------------------------

def _pareto_front(points: "list[tuple[float, float]]") -> "set[int]":
    """Indices of (ser, cost) points not weakly dominated.

    Point ``p`` is dominated when another point is no worse on both
    axes and strictly better on at least one.
    """
    front = set()
    for i, (s, c) in enumerate(points):
        dominated = any(
            (s2 <= s and c2 <= c) and (s2 < s or c2 < c)
            for j, (s2, c2) in enumerate(points) if j != i
        )
        if not dominated:
            front.add(i)
    return front


def ecc_pareto(
    workloads=("mcf", "mix1"),
    fractions=(0.1, 0.4),
    fast_schemes=None,
    slow_schemes=("secded", "chipkill"),
    cache=None,
    accesses_per_core=DEFAULT_ACCESSES,
    scale=DEFAULT_SCALE,
    seed=None,
) -> FigureResult:
    """Extension: reliability vs protection cost across the scheme ladder.

    Sweeps ECC scheme x tier assignments over the capacity ladder: for
    every (capacity fraction, fast-tier scheme, slow-tier scheme)
    point the performance-focused placement is replayed (one replay
    per capacity under the ``multirun`` knob — ECC is fault-model-only
    and dedupes away) and scored on absolute SER (FIT x AVF under that
    assignment's per-page FIT rates) against the assignment's
    protection cost (the :mod:`repro.faults.cost` scalar, summed over
    both tiers).  Rows on the per-capacity Pareto front — no other
    assignment at that capacity has both lower SER and lower cost —
    are flagged; IPC varies only with capacity, giving the third axis
    across fronts.

    Hand-checkable claim: every front contains the cheapest assignment
    (fast tier unprotected — nothing has lower cost) and the lowest-SER
    assignment, and no flagged row is dominated.

    Reproduce with::

        repro-hma run ecc-pareto --seed 0
    """
    import dataclasses

    from repro.faults.cost import cost_of
    from repro.faults.ecc import SCHEME_LADDER
    from repro.harness.sweeps import _config_with_fast_pages

    if fast_schemes is None:
        fast_schemes = SCHEME_LADDER
    cache = _cache(cache, accesses_per_core, scale, seed)
    multirun = bool(knob_value("multirun"))
    policy = PerformanceFocusedPlacement()

    assignments = [(fraction, fast_ecc, slow_ecc)
                   for fraction in fractions
                   for fast_ecc in fast_schemes
                   for slow_ecc in slow_schemes]
    # Aggregate SER/IPC across workloads per assignment (gmean, like
    # the capacity sweep folds its per-workload quartets).
    sers = [[] for _ in assignments]
    ipcs = [[] for _ in assignments]
    for wl in workloads:
        prep = cache.get(wl)
        configs = []
        for fraction, fast_ecc, slow_ecc in assignments:
            pages = max(1, int(prep.workload_trace.footprint_pages * fraction))
            config = _config_with_fast_pages(prep.config, pages)
            configs.append(dataclasses.replace(
                config,
                fast_memory=dataclasses.replace(config.fast_memory,
                                                ecc=fast_ecc),
                slow_memory=dataclasses.replace(config.slow_memory,
                                                ecc=slow_ecc),
            ))
        models = SerModel.for_systems(configs, seed=cache.seed)
        if multirun:
            specs = [StaticSpec(policy, config=config, ser_model=model)
                     for config, model in zip(configs, models)]
            results = evaluate_static_multi(prep, specs)
        else:
            results = [
                evaluate_static(
                    dataclasses.replace(prep, config=config,
                                        ser_model=model),
                    policy)
                for config, model in zip(configs, models)
            ]
        for i, res in enumerate(results):
            sers[i].append(max(res.ser, 1e-30))
            ipcs[i].append(res.ipc_vs_ddr)

    agg_ser = [gmean(values) for values in sers]
    agg_ipc = [gmean(values) for values in ipcs]
    costs = [cost_of(fast_ecc).total + cost_of(slow_ecc).total
             for _, fast_ecc, slow_ecc in assignments]

    rows = []
    summary: "dict[str, float]" = {"points": float(len(assignments))}
    for fraction in fractions:
        idx = [i for i, a in enumerate(assignments) if a[0] == fraction]
        front_local = _pareto_front([(agg_ser[i], costs[i]) for i in idx])
        front = {idx[k] for k in front_local}
        summary[f"front_size_{fraction:.2f}"] = float(len(front))
        summary[f"front_best_ser_{fraction:.2f}"] = min(
            agg_ser[i] for i in front)
        for i in idx:
            _, fast_ecc, slow_ecc = assignments[i]
            rows.append([
                f"{fraction:.2f}", fast_ecc, slow_ecc,
                agg_ipc[i], agg_ser[i], costs[i],
                "front" if i in front else "",
            ])
    return FigureResult(
        figure="ECC Pareto",
        description="Scheme x tier assignments: SER vs protection cost",
        headers=["capacity frac", "fast ECC", "slow ECC", "IPC vs DDR",
                 "SER", "cost", "pareto"],
        rows=rows,
        summary=summary,
    )


# ---------------------------------------------------------------------------
# Figures 16-17: program annotations
# ---------------------------------------------------------------------------

def fig16_annotations(workloads=ALL_WORKLOADS, cache=None,
                      accesses_per_core=DEFAULT_ACCESSES,
                      scale=DEFAULT_SCALE, seed=None) -> FigureResult:
    """Fig. 16: annotation-pinned placement cuts SER ~1.3x at ~1.1%
    performance loss vs the performance-focused oracle."""
    cache = _cache(cache, accesses_per_core, scale, seed)
    rows, ipc_ratios, ser_ratios = [], [], []
    for wl in workloads:
        prep = cache.get(wl)
        base = evaluate_static(prep, PerformanceFocusedPlacement())
        res, plan = evaluate_annotations(prep)
        ipc_ratio = res.ipc / base.ipc if base.ipc else 0.0
        ser_ratio = res.ser / base.ser if base.ser else 0.0
        rows.append([wl, ipc_ratio, ser_ratio, plan.num_annotations])
        ipc_ratios.append(ipc_ratio)
        ser_ratios.append(ser_ratio)
    return FigureResult(
        figure="Figure 16",
        description="Program-annotation placement vs perf-focused oracle",
        headers=["workload", "IPC vs perf", "SER vs perf", "annotations"],
        rows=rows,
        summary={
            "mean_ipc_ratio": gmean(ipc_ratios),
            "mean_ser_ratio": gmean(ser_ratios),
        },
        paper={"mean_ipc_ratio": 0.989, "mean_ser_ratio": 1 / 1.3},
    )


def fig17_annotation_counts(workloads=ALL_WORKLOADS, cache=None,
                            accesses_per_core=DEFAULT_ACCESSES,
                            scale=DEFAULT_SCALE, seed=None) -> FigureResult:
    """Fig. 17: a handful of annotated structures covers the HBM
    capacity for most workloads (paper average ~8)."""
    cache = _cache(cache, accesses_per_core, scale, seed)
    rows = []
    counts = []
    for wl in workloads:
        prep = cache.get(wl)
        _res, plan = evaluate_annotations(prep)
        rows.append([wl, plan.num_annotations,
                     ", ".join(plan.structure_names[:4])
                     + ("..." if plan.num_annotations > 4 else "")])
        counts.append(plan.num_annotations)
    return FigureResult(
        figure="Figure 17",
        description="Number of annotated program structures per workload",
        headers=["workload", "annotations", "first structures"],
        rows=rows,
        summary={"mean_annotations": float(np.mean(counts)),
                 "max_annotations": float(max(counts))},
        paper={"mean_annotations": 8.0, "max_annotations": 45.0},
    )


# ---------------------------------------------------------------------------
# Table 3 and hardware cost
# ---------------------------------------------------------------------------

def table3_summary(workloads=ALL_WORKLOADS, cache=None,
                   accesses_per_core=DEFAULT_ACCESSES,
                   scale=DEFAULT_SCALE, seed=None,
                   num_intervals=DEFAULT_INTERVALS) -> FigureResult:
    """Table 3: IPC degradation and SER improvement of every scheme,
    each normalised to its performance-focused counterpart."""
    cache = _cache(cache, accesses_per_core, scale, seed)
    static_schemes = [
        ("Reliability-focused", ReliabilityFocusedPlacement(), 17.0, 5.0),
        ("Balanced", BalancedPlacement(), 14.0, 3.0),
        ("Wr ratio", WrRatioPlacement(), 8.1, 1.8),
        ("Wr^2 ratio", Wr2RatioPlacement(), 1.0, 1.6),
    ]
    rows = []
    for label, policy, paper_ipc, paper_ser in static_schemes:
        ipc_ratios, ser_ratios = [], []
        for wl in workloads:
            prep = cache.get(wl)
            base = evaluate_static(prep, PerformanceFocusedPlacement())
            res = evaluate_static(prep, policy)
            ipc_ratios.append(res.ipc / base.ipc)
            ser_ratios.append(base.ser / res.ser)
        rows.append([label, f"{(1 - gmean(ipc_ratios)) * 100:.1f}%",
                     f"{gmean(ser_ratios):.2f}x",
                     f"{paper_ipc}%", f"{paper_ser}x"])

    dyn_schemes = [
        ("Reliability-aware (FC)", ReliabilityAwareFCMigration, 6.0, 1.8),
        ("Reliability-aware (CC)", CrossCountersMigration, 4.9, 1.5),
    ]
    for label, factory, paper_ipc, paper_ser in dyn_schemes:
        ipc_ratios, ser_ratios = [], []
        for wl in workloads:
            prep = cache.get(wl)
            base = evaluate_migration(
                prep, PerformanceFocusedMigration(),
                num_intervals=num_intervals,
            )
            res = evaluate_migration(
                prep, factory(), num_intervals=num_intervals,
                initial_policy=BalancedPlacement(),
            )
            ipc_ratios.append(res.ipc / base.ipc)
            ser_ratios.append(base.ser / res.ser)
        rows.append([label, f"{(1 - gmean(ipc_ratios)) * 100:.1f}%",
                     f"{gmean(ser_ratios):.2f}x",
                     f"{paper_ipc}%", f"{paper_ser}x"])

    ipc_ratios, ser_ratios = [], []
    for wl in workloads:
        prep = cache.get(wl)
        base = evaluate_static(prep, PerformanceFocusedPlacement())
        res, _plan = evaluate_annotations(prep)
        ipc_ratios.append(res.ipc / base.ipc)
        ser_ratios.append(base.ser / res.ser)
    rows.append(["Program annotations",
                 f"{(1 - gmean(ipc_ratios)) * 100:.1f}%",
                 f"{gmean(ser_ratios):.2f}x", "1.1%", "1.3x"])

    return FigureResult(
        figure="Table 3",
        description="Summary: IPC degradation / SER improvement vs the "
                    "respective performance-focused scheme",
        headers=["scheme", "IPC loss", "SER gain", "paper IPC loss",
                 "paper SER gain"],
        rows=rows,
    )


def hw_cost(scale: float = 1.0) -> FigureResult:
    """Sections 6.3/6.4: tracking-hardware budgets of the mechanisms.

    At full scale the paper's numbers are 8.5 MB of FC storage (4.25 MB
    more than the perf-only scheme) and 676 KB for Cross Counters.
    """
    cfg = default_config() if scale == 1.0 else scaled_config(scale)
    total_pages = cfg.total_pages
    fast_pages = cfg.fast_memory.num_pages
    perf = PerformanceFocusedMigration()
    fc = ReliabilityAwareFCMigration()
    cc = CrossCountersMigration()
    rows = [
        ["perf-migration (1x8b counter/page)",
         f"{perf.hardware_cost_bytes(total_pages, fast_pages) / 2**20:.2f} MB"],
        ["FC reliability-aware (2x8b counters/page)",
         f"{fc.hardware_cost_bytes(total_pages, fast_pages) / 2**20:.2f} MB"],
        ["Cross Counters (16b/HBM page + MEA unit)",
         f"{cc.hardware_cost_bytes(total_pages, fast_pages) / 2**10:.0f} KB"],
    ]
    fc_cost = fc.hardware_cost_bytes(total_pages, fast_pages)
    perf_cost = perf.hardware_cost_bytes(total_pages, fast_pages)
    cc_cost = cc.hardware_cost_bytes(total_pages, fast_pages)
    return FigureResult(
        figure="Sections 6.3/6.4",
        description="Tracking-hardware storage cost",
        headers=["mechanism", "storage"],
        rows=rows,
        summary={
            "fc_total_mb": fc_cost / 2**20,
            "fc_additional_mb": (fc_cost - perf_cost) / 2**20,
            "cc_total_kb": cc_cost / 2**10,
        },
        paper={"fc_total_mb": 8.5, "fc_additional_mb": 4.25,
               "cc_total_kb": 676.0},
    )


def _sweep(name):
    """Lazy wrappers so the sweeps module stays import-light."""
    def runner(**kwargs):
        from repro.harness import sweeps

        return getattr(sweeps, name)(**kwargs)

    runner.__doc__ = f"Extension sweep: see repro.harness.sweeps.{name}."
    runner.__name__ = name
    return runner


#: Registry used by the CLI and the benchmark harness.
EXPERIMENTS = {
    "table1": table1_config,
    "table2": table2_mixes,
    "fig01": fig01_frontier,
    "fig02": fig02_avf,
    "fig03": fig03_ace_cases,
    "fig04": fig04_quadrants,
    "fig05": fig05_perf_focused,
    "fig06": fig06_correlation,
    "fig07": fig07_rel_focused,
    "fig08": fig08_balanced,
    "fig09": fig09_write_ratio,
    "fig10": fig10_wr_ratio,
    "fig11": fig11_wr2_ratio,
    "fig12": fig12_perf_migration,
    "fig13": fig13_interval_sweep,
    "fig14": fig14_fc_migration,
    "fig15": fig15_cc_migration,
    "fig16": fig16_annotations,
    "fig17": fig17_annotation_counts,
    "table3": table3_summary,
    "hwcost": hw_cost,
    "workload-frontier": workload_frontier,
    "ecc-pareto": ecc_pareto,
    "sweep-capacity": _sweep("capacity_sweep"),
    "sweep-fit": _sweep("fit_multiplier_sweep"),
    "sweep-mlp": _sweep("mlp_sensitivity"),
}
