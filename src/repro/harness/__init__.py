"""Experiment harness: per-figure reproduction functions and the CLI."""

from repro.harness.experiments import (
    ALL_WORKLOADS,
    EXPERIMENTS,
    SWEEP_WORKLOADS,
    FigureResult,
    WorkloadCache,
)
from repro.harness.plots import ascii_bars, ascii_scatter, ascii_series
from repro.harness.replication import Replication, replicate
from repro.harness.reporting import format_table, gmean, print_table

__all__ = [
    "EXPERIMENTS",
    "ALL_WORKLOADS",
    "SWEEP_WORKLOADS",
    "FigureResult",
    "WorkloadCache",
    "format_table",
    "print_table",
    "gmean",
    "ascii_scatter",
    "ascii_bars",
    "ascii_series",
    "Replication",
    "replicate",
]
