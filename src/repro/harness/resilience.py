"""Fault-tolerant execution primitives for the experiment harness.

The parallel runner (:mod:`repro.harness.runner`) fans multi-hour
figure runs across a process pool; this module supplies the machinery
that keeps those runs alive when individual pieces misbehave:

* :func:`resilient_map` — an order-preserving process-pool map with
  per-job timeouts, bounded retries (exponential backoff + jitter),
  ``BrokenProcessPool`` recovery (the pool is respawned and only
  unfinished jobs re-dispatched; repeated breakage degrades to a
  serial in-process loop), and a structured :class:`JobOutcome` per
  job instead of all-or-nothing results.
* :class:`RunManifest` — an append-only JSON journal of completed job
  keys and result locations, fsynced per entry, so an interrupted
  ``replicate`` / ``capacity_sweep`` / ``run_experiments`` resumes
  with ``--resume`` and reruns only unfinished work.
* :func:`checkpointed_map` — :func:`resilient_map` behind a manifest:
  completed keys are served from the journal, fresh completions are
  journaled the moment they finish.
* :func:`store_entry` / :func:`load_entry` — a checksummed on-disk
  entry format (JSON header with schema version + SHA-256 of the
  pickled payload).  Corrupt or stale entries are quarantined to a
  ``corrupt/`` sibling directory instead of crashing or silently
  poisoning a run.
* :class:`FaultPlan` — a deterministic fault-injection hook used by
  the chaos suite (``tests/harness/test_resilience.py``) to SIGKILL
  workers mid-job, hang jobs past their timeout, or raise in-job.

Environment knobs (CLI flags take precedence where both exist):

* ``REPRO_JOB_TIMEOUT`` — default per-job timeout in seconds
* ``REPRO_RETRIES`` — default retry budget per job
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import os
import pickle
import random
import re
import signal
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

#: Job outcome statuses.
OK = "ok"                # succeeded on the first attempt
RETRIED = "retried"      # succeeded after at least one failed attempt
TIMEOUT = "timeout"      # exhausted retries, last attempt timed out
FAILED = "failed"        # exhausted retries, last attempt raised/crashed
CACHED = "cached"        # served from a resume manifest, not re-executed

#: Schema version embedded in every checksummed on-disk entry.
ENTRY_FORMAT = 1
_ENTRY_MAGIC = "repro-entry"

#: Journal schema version for :class:`RunManifest`.
MANIFEST_VERSION = 1


# ---------------------------------------------------------------------------
# Environment knobs
# ---------------------------------------------------------------------------

def resolve_jobs(jobs: "int | None" = None) -> int:
    """Worker count via the ``jobs`` knob (argument > scoped override >
    ``REPRO_JOBS``), else CPU count."""
    from repro.config import knob_value

    jobs = knob_value("jobs", jobs)
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def resolve_job_timeout(timeout: "float | None" = None) -> "float | None":
    """Per-job timeout via the ``job_timeout`` knob (argument > scoped
    override > ``REPRO_JOB_TIMEOUT``), else off.

    Non-positive values disable the timeout.
    """
    from repro.config import knob_value

    timeout = knob_value("job_timeout", timeout)
    if timeout is not None and timeout <= 0:
        return None
    return timeout


def resolve_retries(retries: "int | None" = None) -> int:
    """Retry budget via the ``retries`` knob (argument > scoped
    override > ``REPRO_RETRIES``), else 0."""
    from repro.config import knob_value

    retries = knob_value("retries", retries)
    return max(0, int(retries or 0))


# ---------------------------------------------------------------------------
# Fault injection (chaos-test hook)
# ---------------------------------------------------------------------------

class FaultInjected(RuntimeError):
    """Raised (or simulated) by a :class:`FaultPlan` directive."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault schedule for chaos tests.

    ``plan`` maps a job key to a sequence of per-attempt directives,
    consumed in attempt order; attempts past the end of the sequence
    run clean.  Directives:

    * ``"kill"`` — SIGKILL the worker process mid-job (pool mode);
    * ``"fail"`` — raise :class:`FaultInjected` inside the job;
    * ``"hang:<seconds>"`` — sleep that long before running the job,
      so a configured timeout fires first.

    In serial (in-process) execution ``kill``/``hang`` are converted
    to :class:`FaultInjected` failures — killing or stalling the
    caller's own process would defeat the harness under test.
    """

    plan: "Mapping[str, Sequence[str]]" = field(default_factory=dict)

    def directive(self, key: str, attempt: int) -> "str | None":
        seq = self.plan.get(key)
        if seq is None or attempt >= len(seq):
            return None
        return seq[attempt] or None


def _apply_directive(directive: "str | None", in_process: bool) -> None:
    if not directive:
        return
    if directive == "fail":
        raise FaultInjected("injected failure")
    if directive == "kill":
        if in_process:
            raise FaultInjected("injected kill (serial mode)")
        os.kill(os.getpid(), signal.SIGKILL)
    elif directive.startswith("hang:"):
        if in_process:
            raise FaultInjected("injected hang (serial mode)")
        time.sleep(float(directive.split(":", 1)[1]))
    else:
        raise ValueError(f"unknown fault directive {directive!r}")


def _invoke(payload):
    """Worker-side wrapper: apply the fault directive, then the job."""
    func, item, directive = payload
    _apply_directive(directive, in_process=False)
    return func(item)


# ---------------------------------------------------------------------------
# Structured job outcomes
# ---------------------------------------------------------------------------

@dataclass
class JobOutcome:
    """Terminal record of one job's execution."""

    key: str
    index: int
    status: str              # ok | retried | timeout | failed | cached
    attempts: int
    result: object = None
    error: "str | None" = None

    @property
    def succeeded(self) -> bool:
        return self.status in (OK, RETRIED, CACHED)


@dataclass
class MapReport:
    """Per-job outcomes of one :func:`resilient_map` invocation."""

    outcomes: "list[JobOutcome]"
    pool_respawns: int = 0
    degraded_serial: bool = False

    @property
    def results(self) -> list:
        """Results in item order; ``None`` for failed jobs."""
        return [o.result for o in self.outcomes]

    @property
    def failed(self) -> "list[JobOutcome]":
        return [o for o in self.outcomes if not o.succeeded]

    @property
    def ok(self) -> bool:
        return not self.failed

    def outcome(self, key: str) -> JobOutcome:
        for o in self.outcomes:
            if o.key == key:
                return o
        raise KeyError(key)

    def summary(self) -> str:
        counts: "dict[str, int]" = {}
        for o in self.outcomes:
            counts[o.status] = counts.get(o.status, 0) + 1
        parts = [f"{counts[s]} {s}" for s in (OK, CACHED, RETRIED, TIMEOUT,
                                              FAILED) if s in counts]
        line = f"{len(self.outcomes)} jobs: " + ", ".join(parts)
        if self.pool_respawns:
            line += f" (pool respawned {self.pool_respawns}x)"
        if self.degraded_serial:
            line += " (degraded to serial execution)"
        return line

    def raise_if_failed(self) -> None:
        if self.failed:
            raise PartialResultError(self)


class PartialResultError(RuntimeError):
    """Some jobs failed after retries; completed results are preserved.

    ``.report`` holds the full :class:`MapReport` — callers can salvage
    every successful job instead of losing the whole run.
    """

    def __init__(self, report: MapReport):
        self.report = report
        failed = "; ".join(
            f"{o.key} [{o.status} after {o.attempts} attempt(s)]: {o.error}"
            for o in report.failed)
        done = len(report.outcomes) - len(report.failed)
        super().__init__(
            f"{len(report.failed)} of {len(report.outcomes)} jobs failed "
            f"({done} completed results preserved in .report): {failed}")


# ---------------------------------------------------------------------------
# Resilient process-pool map
# ---------------------------------------------------------------------------

class _Job:
    __slots__ = ("index", "key", "item", "attempts", "outcome", "deadline",
                 "not_before", "suspect")

    def __init__(self, index, key, item):
        self.index = index
        self.key = key
        self.item = item
        self.attempts = 0
        self.outcome: "JobOutcome | None" = None
        self.deadline: "float | None" = None
        self.not_before = 0.0
        self.suspect = False  # charged in a breakage: retry in isolation


def _jitter_rng() -> random.Random:
    """A backoff-jitter stream seeded from the unified ``seed`` knob.

    One private stream per :func:`resilient_map` invocation, seeded via
    ``repro.config`` rather than drawn from the process-global
    ``random`` module: chaos runs replay with identical backoff timing
    (same ``--seed`` / ``REPRO_SEED``), and the harness never perturbs
    the global stream that trace synthesis may be consuming.
    """
    from repro.config import knob_value

    return random.Random(int(knob_value("seed") or 0))


def _backoff_delay(backoff: float, attempts: int,
                   rng: random.Random) -> float:
    if backoff <= 0:
        return 0.0
    return min(backoff * 2 ** (attempts - 1), 30.0) * (1 + 0.25 * rng.random())


def _fork_context():
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return None


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcefully end a pool generation, hung workers included."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.kill()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


def resilient_map(
    func: Callable,
    items: Iterable,
    *,
    jobs: "int | None" = None,
    timeout: "float | None" = None,
    retries: "int | None" = None,
    backoff: float = 0.5,
    keys: "Sequence[str] | None" = None,
    fault_plan: "FaultPlan | None" = None,
    max_pool_respawns: int = 4,
    on_result: "Callable[[JobOutcome], None] | None" = None,
    isolate: bool = False,
) -> MapReport:
    """Order-preserving map that survives crashes, hangs, and errors.

    Never raises for job-level failures: every job ends in a terminal
    :class:`JobOutcome` (``ok``/``retried``/``timeout``/``failed``)
    and the caller decides what a partial result means (see
    :meth:`MapReport.raise_if_failed`).

    * ``timeout`` bounds each attempt's execution (pool mode only —
      the serial fallback cannot preempt in-process work).  The
      attempt's clock starts at dispatch; submission is windowed to
      the worker count so queue wait never counts against a job.
    * ``retries`` failed or timed-out attempts are retried with
      exponential backoff (``backoff * 2**n``, 25% jitter).
    * A worker crash breaks the whole ``ProcessPoolExecutor``; the
      pool is respawned and only unfinished jobs re-dispatched.  The
      culprit is unknowable from the parent, so every in-flight job is
      charged one attempt (a poison job therefore still exhausts its
      budget) — but charged jobs retry one at a time in single-worker
      quarantine generations, so an innocent sibling pays at most one
      collateral attempt while a poison job can only break pools
      containing itself.  After ``max_pool_respawns`` teardowns the
      remaining jobs run serially in-process as a last resort.
    * ``on_result`` fires in the parent as each job *succeeds* —
      checkpointing hooks use it to journal results incrementally.
    * ``isolate`` forces the process-pool path even for a single job
      (which would otherwise run serially in-process): the job gets
      real crash/hang isolation, timeout preemption, and kill/respawn
      recovery — what the placement service needs when dispatching one
      session at a time.
    """
    items = list(items)
    if keys is None:
        keys = [str(i) for i in range(len(items))]
    else:
        keys = [str(k) for k in keys]
        if len(keys) != len(items):
            raise ValueError("keys and items length mismatch")
        if len(set(keys)) != len(keys):
            raise ValueError("job keys must be unique")
    timeout = resolve_job_timeout(timeout)
    retries = resolve_retries(retries)
    state = [_Job(i, keys[i], item) for i, item in enumerate(items)]

    jobs = min(resolve_jobs(jobs), max(1, len(items)))
    context = _fork_context()
    report = MapReport(outcomes=[])
    pending = deque(state)
    rng = _jitter_rng()
    if items and context is not None and (jobs > 1 or isolate):
        pending = _run_pool(pending, func, jobs, context, timeout, retries,
                            backoff, fault_plan, max_pool_respawns, report,
                            on_result, rng)
        if pending:
            report.degraded_serial = True
    _run_serial(pending, func, retries, backoff, fault_plan, report,
                on_result, rng)
    report.outcomes = sorted((j.outcome for j in state),
                             key=lambda o: o.index)
    return report


def _finish(job: _Job, report: MapReport, status: str, result=None,
            error=None, on_result=None) -> None:
    job.outcome = JobOutcome(key=job.key, index=job.index, status=status,
                             attempts=job.attempts, result=result,
                             error=error)
    if on_result is not None and job.outcome.succeeded:
        on_result(job.outcome)


def _charge(job: _Job, error: str, retries: int, backoff: float,
            report: MapReport, timed_out: bool, on_result, rng) -> bool:
    """Record a failed attempt; return True if the job may retry."""
    job.attempts += 1
    if job.attempts > retries:
        _finish(job, report, TIMEOUT if timed_out else FAILED, error=error,
                on_result=on_result)
        return False
    job.not_before = time.monotonic() + _backoff_delay(backoff, job.attempts,
                                                       rng)
    return True


def _run_serial(pending, func, retries, backoff, fault_plan, report,
                on_result, rng) -> None:
    """In-process fallback: no isolation, no timeout preemption."""
    for job in pending:
        while job.outcome is None:
            directive = (fault_plan.directive(job.key, job.attempts)
                         if fault_plan else None)
            try:
                _apply_directive(directive, in_process=True)
                result = func(job.item)
            except Exception as exc:  # noqa: BLE001 — outcome, not crash
                if _charge(job, repr(exc), retries, backoff, report,
                           timed_out=False, on_result=on_result, rng=rng):
                    delay = job.not_before - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                continue
            status = OK if job.attempts == 0 else RETRIED
            job.attempts += 1
            _finish(job, report, status, result=result, on_result=on_result)


def _run_pool(pending, func, jobs, context, timeout, retries, backoff,
              fault_plan, max_pool_respawns, report, on_result, rng):
    """Pool generations until all jobs are terminal or respawns run out.

    Returns jobs still pending (non-empty only when the respawn budget
    is exhausted — the caller degrades them to serial execution).

    Jobs charged in a breakage (crash or teardown after a hang) become
    *suspects* and retry one at a time in single-worker quarantine
    generations before any other work is dispatched.  A poison job can
    therefore only break pools containing itself: an innocent sibling
    pays at most one collateral attempt — for the mixed generation in
    which the first breakage happened — and its quarantine rerun
    settles it for good.
    """
    while pending:
        if report.pool_respawns > max_pool_respawns:
            return pending
        culprit = next((j for j in pending if j.suspect), None)
        if culprit is not None:
            queue = deque([culprit])
            rest = deque(j for j in pending if j is not culprit)
            window = 1
        else:
            queue, rest = pending, deque()
            window = jobs
        pool = ProcessPoolExecutor(max_workers=min(window, len(queue)),
                                   mp_context=context)
        broken = False
        inflight: "dict[object, _Job]" = {}
        try:
            while queue or inflight:
                now = time.monotonic()
                # Windowed submission: at most `window` in flight, so
                # the timeout clock starts at true dispatch, not enqueue.
                while queue and len(inflight) < window:
                    job = queue[0]
                    if job.not_before > now:
                        break
                    queue.popleft()
                    directive = (fault_plan.directive(job.key, job.attempts)
                                 if fault_plan else None)
                    future = pool.submit(_invoke, (func, job.item, directive))
                    job.deadline = (now + timeout) if timeout else None
                    inflight[future] = job
                if not inflight:
                    # Everything eligible is backing off; sleep it out.
                    time.sleep(max(0.0, min(j.not_before for j in queue)
                                   - time.monotonic()))
                    continue
                tick = _next_tick(inflight, queue)
                done, _ = wait(inflight, timeout=tick,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    job = inflight.pop(future)
                    exc = future.exception()
                    if exc is None:
                        status = OK if job.attempts == 0 else RETRIED
                        job.attempts += 1
                        _finish(job, report, status, result=future.result(),
                                on_result=on_result)
                    elif isinstance(exc, BrokenProcessPool):
                        broken = True
                        job.suspect = True
                        if _charge(job, "worker process died (pool broken)",
                                   retries, backoff, report, timed_out=False,
                                   on_result=on_result, rng=rng):
                            queue.append(job)
                    else:
                        if _charge(job, repr(exc), retries, backoff, report,
                                   timed_out=False, on_result=on_result,
                                   rng=rng):
                            queue.append(job)
                if broken:
                    _drain_broken(inflight, queue, retries, backoff,
                                  report, on_result, rng)
                    break
                expired = [f for f, j in inflight.items()
                           if j.deadline is not None
                           and time.monotonic() >= j.deadline]
                if expired:
                    # A hung worker cannot be cancelled individually:
                    # tear the generation down, charge only the expired
                    # jobs (quarantining their reruns), and re-dispatch
                    # the innocent in-flight ones uncharged.
                    for future, job in inflight.items():
                        if future in expired:
                            job.suspect = True
                            if _charge(job, f"timed out after {timeout}s",
                                       retries, backoff, report,
                                       timed_out=True, on_result=on_result,
                                       rng=rng):
                                queue.append(job)
                        else:
                            queue.append(job)
                    inflight.clear()
                    broken = True
                    break
        except BrokenProcessPool:
            # Breakage surfaced through submit() rather than a future.
            broken = True
            _drain_broken(inflight, queue, retries, backoff, report,
                          on_result, rng)
        finally:
            if broken:
                report.pool_respawns += 1
                _kill_pool(pool)
            else:
                pool.shutdown(wait=True)
        queue.extend(rest)
        pending = queue
    return pending


def _drain_broken(inflight, pending, retries, backoff, report,
                  on_result, rng) -> None:
    """Settle in-flight jobs after a pool breakage.

    Jobs whose future completed cleanly before the breakage keep their
    result; the rest are charged one attempt (the culprit is
    unknowable from the parent) and re-dispatched if budget remains —
    in quarantine, so only the true culprit can be charged twice.
    """
    for future, job in inflight.items():
        if future.done() and future.exception() is None:
            status = OK if job.attempts == 0 else RETRIED
            job.attempts += 1
            _finish(job, report, status, result=future.result(),
                    on_result=on_result)
        else:
            job.suspect = True
            if _charge(job, "worker process died (pool broken)", retries,
                       backoff, report, timed_out=False, on_result=on_result,
                       rng=rng):
                pending.append(job)
    inflight.clear()


def _next_tick(inflight, pending) -> float:
    """Sleep horizon: nearest job deadline or backoff expiry, capped."""
    now = time.monotonic()
    horizon = 0.25
    marks = [j.deadline for j in inflight.values() if j.deadline is not None]
    marks += [j.not_before for j in pending if j.not_before > now]
    if marks:
        horizon = min(horizon, max(0.0, min(marks) - now))
    return max(0.01, horizon)


# ---------------------------------------------------------------------------
# Checksummed on-disk entries + quarantine
# ---------------------------------------------------------------------------

class CacheIntegrityError(Exception):
    """An on-disk entry is corrupt, truncated, or from another schema."""


def dumps_entry(obj) -> bytes:
    """Serialise ``obj`` with an integrity header.

    Layout: one JSON header line (magic, schema version, payload length,
    SHA-256 of the payload) followed by the pickled payload.  A bit flip
    anywhere in the payload fails the checksum; truncation fails the
    length check; header damage fails the JSON/magic check.
    """
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    header = json.dumps({
        "magic": _ENTRY_MAGIC,
        "format": ENTRY_FORMAT,
        "length": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }, sort_keys=True).encode("ascii")
    return header + b"\n" + payload


def loads_entry(blob: bytes):
    """Inverse of :func:`dumps_entry`; raises :class:`CacheIntegrityError`."""
    head, sep, payload = blob.partition(b"\n")
    if not sep:
        raise CacheIntegrityError("missing entry header")
    try:
        header = json.loads(head.decode("ascii"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CacheIntegrityError(f"unreadable entry header: {exc}") from exc
    if not isinstance(header, dict) or header.get("magic") != _ENTRY_MAGIC:
        raise CacheIntegrityError("bad entry magic")
    if header.get("format") != ENTRY_FORMAT:
        raise CacheIntegrityError(
            f"entry schema v{header.get('format')} != v{ENTRY_FORMAT}")
    if header.get("length") != len(payload):
        raise CacheIntegrityError(
            f"payload truncated: {len(payload)} != {header.get('length')}")
    if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
        raise CacheIntegrityError("payload checksum mismatch")
    try:
        return pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 — any unpickling defect
        raise CacheIntegrityError(f"payload unpickling failed: {exc}") from exc


def store_entry(path: str, obj) -> None:
    """Atomically write a checksummed entry (racing writers both win)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(dumps_entry(obj))
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def quarantine_entry(path: str, reason: str = "") -> "str | None":
    """Move a corrupt entry aside so it never poisons another run."""
    qdir = os.path.join(os.path.dirname(path) or ".", "corrupt")
    try:
        os.makedirs(qdir, exist_ok=True)
        dest = os.path.join(qdir, os.path.basename(path))
        os.replace(path, dest)
        return dest
    except OSError:
        try:
            os.unlink(path)
        except OSError:
            pass
        return None


def load_entry(path: str, quarantine: bool = True):
    """Load a checksummed entry; quarantine and re-raise on corruption.

    Raises :class:`FileNotFoundError` for a missing entry and
    :class:`CacheIntegrityError` for a damaged one (after moving the
    file to ``<dir>/corrupt/`` when ``quarantine`` is set).
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    try:
        return loads_entry(blob)
    except CacheIntegrityError:
        if quarantine:
            quarantine_entry(path)
        raise


# ---------------------------------------------------------------------------
# Run manifest: checkpoint / resume journal
# ---------------------------------------------------------------------------

def run_key(**params) -> str:
    """Stable digest of the run parameters a manifest is valid for."""
    blob = json.dumps(params, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _safe_filename(key: str) -> str:
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", key)[:48]
    return f"{slug}-{hashlib.sha256(key.encode()).hexdigest()[:8]}"


class RunManifest:
    """Append-only JSON journal of a run's completed jobs.

    One line per record, fsynced on write, so a SIGKILL at any point
    loses at most the in-progress line — which the loader skips as
    truncated JSON.  Record types:

    * ``meta`` — run parameters digest; a resume against a manifest
      written with different parameters starts fresh instead of mixing
      incompatible results.
    * ``done`` — a completed job key plus its result, inline JSON
      (``value``) or a checksummed pickle path (``path``).
    * ``outcome`` — execution audit trail (status + attempts) for every
      job actually run, so a resumed run can prove it skipped finished
      work.
    """

    def __init__(self, directory: str, run_key: str = "",
                 resume: bool = False) -> None:
        self.directory = directory
        self.path = os.path.join(directory, "manifest.jsonl")
        self.run_key = run_key
        os.makedirs(directory, exist_ok=True)
        self._completed: "dict[str, dict]" = {}
        loaded = self._load() if resume else None
        if loaded is None:
            if os.path.exists(self.path):
                os.replace(self.path, self.path + ".old")
            self._append({"type": "meta", "version": MANIFEST_VERSION,
                          "run_key": run_key})
        else:
            self._completed = loaded
            if not os.path.exists(self.path):
                self._append({"type": "meta", "version": MANIFEST_VERSION,
                              "run_key": run_key})

    # -- journal I/O ---------------------------------------------------

    def _load(self) -> "dict[str, dict] | None":
        """Completed records, or None when the journal is unusable."""
        try:
            with open(self.path, encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return None
        entries: "dict[str, dict]" = {}
        saw_meta = False
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # truncated tail from a mid-write kill
            if not isinstance(record, dict):
                continue
            kind = record.get("type")
            if kind == "meta":
                if record.get("run_key") != self.run_key:
                    return None  # parameters changed: start fresh
                saw_meta = True
            elif kind == "done" and isinstance(record.get("key"), str):
                entries[record["key"]] = record
        return entries if saw_meta else None

    def _append(self, record: dict) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    # -- recording -----------------------------------------------------

    def record_value(self, key: str, value) -> None:
        """Journal an inline JSON-serialisable result."""
        record = {"type": "done", "key": key, "value": value}
        self._append(record)
        self._completed[key] = record

    def record_result(self, key: str, obj) -> None:
        """Journal a result stored as a checksummed pickle on disk."""
        rel = os.path.join("results", _safe_filename(key) + ".pkl")
        store_entry(os.path.join(self.directory, rel), obj)
        record = {"type": "done", "key": key, "path": rel}
        self._append(record)
        self._completed[key] = record

    def record_outcome(self, outcome: JobOutcome) -> None:
        """Journal an execution audit record (no result payload)."""
        self._append({"type": "outcome", "key": outcome.key,
                      "status": outcome.status,
                      "attempts": outcome.attempts,
                      "error": outcome.error})

    # -- queries -------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._completed

    def completed_keys(self) -> "set[str]":
        return set(self._completed)

    def result(self, key: str):
        """Load a journaled result; raises on a damaged result file."""
        record = self._completed[key]
        if "path" in record:
            return load_entry(os.path.join(self.directory, record["path"]))
        return record["value"]

    def forget(self, key: str) -> None:
        """Drop a key (e.g. its result file went bad) so it reruns."""
        self._completed.pop(key, None)


# ---------------------------------------------------------------------------
# Checkpointed map
# ---------------------------------------------------------------------------

def checkpointed_map(
    func: Callable,
    items: Sequence,
    *,
    keys: "Sequence[str]",
    manifest: "RunManifest | None",
    store: str = "pickle",
    jobs: "int | None" = None,
    timeout: "float | None" = None,
    retries: "int | None" = None,
    backoff: float = 0.5,
    fault_plan: "FaultPlan | None" = None,
) -> MapReport:
    """:func:`resilient_map` with journaled results and resume.

    Keys already completed in ``manifest`` are served from the journal
    (outcome status ``cached``) without re-executing; fresh completions
    are journaled the moment they finish, so a kill at any point loses
    at most the jobs still in flight.  ``store`` selects the result
    encoding: ``"json"`` inlines the value into the journal,
    ``"pickle"`` writes a checksummed sidecar file.  A journaled result
    that fails its integrity check is quarantined and the job simply
    reruns.
    """
    if store not in ("json", "pickle"):
        raise ValueError("store must be 'json' or 'pickle'")
    keys = [str(k) for k in keys]
    if manifest is None:
        return resilient_map(func, items, jobs=jobs, timeout=timeout,
                             retries=retries, backoff=backoff, keys=keys,
                             fault_plan=fault_plan)
    cached: "dict[int, JobOutcome]" = {}
    todo: "list[int]" = []
    for i, key in enumerate(keys):
        if key in manifest:
            try:
                value = manifest.result(key)
            except (OSError, CacheIntegrityError):
                manifest.forget(key)
                todo.append(i)
                continue
            cached[i] = JobOutcome(key=key, index=i, status=CACHED,
                                   attempts=0, result=value)
        else:
            todo.append(i)

    def journal(outcome: JobOutcome) -> None:
        if store == "json":
            manifest.record_value(outcome.key, outcome.result)
        else:
            manifest.record_result(outcome.key, outcome.result)

    sub = resilient_map(
        func, [items[i] for i in todo], jobs=jobs, timeout=timeout,
        retries=retries, backoff=backoff, keys=[keys[i] for i in todo],
        fault_plan=fault_plan, on_result=journal,
    )
    for outcome in sub.outcomes:
        manifest.record_outcome(outcome)
    merged: "list[JobOutcome]" = []
    by_key = {o.key: o for o in sub.outcomes}
    for i, key in enumerate(keys):
        if i in cached:
            merged.append(cached[i])
        else:
            outcome = by_key[key]
            outcome.index = i
            merged.append(outcome)
    return MapReport(outcomes=merged, pool_respawns=sub.pool_respawns,
                     degraded_serial=sub.degraded_serial)
