"""Export reproduced figures to CSV / JSON for external plotting.

The harness prints text tables; downstream users plotting with their
own tooling can export any :class:`~repro.harness.experiments.FigureResult`:

* :func:`to_csv` — the rows, with headers;
* :func:`to_json` — rows plus the summary and paper-target metadata;
* :func:`export_all` — run every registered experiment and write one
  file per figure into a directory (what ``repro-hma export`` does).
"""

from __future__ import annotations

import csv
import inspect
import json
import os

from repro.harness.experiments import EXPERIMENTS, FigureResult, WorkloadCache


def to_csv(result: FigureResult, path: "str | os.PathLike") -> None:
    """Write the figure's rows as CSV (header row included)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(result.headers)
        writer.writerows(result.rows)


def to_json(result: FigureResult, path: "str | os.PathLike | None" = None
            ) -> dict:
    """Serialise the figure (rows + summary + paper targets).

    Returns the document; also writes it when ``path`` is given.
    """
    document = {
        "figure": result.figure,
        "description": result.description,
        "headers": result.headers,
        "rows": result.rows,
        "summary": result.summary,
        "paper": result.paper,
    }
    if path is not None:
        with open(path, "w") as fh:
            json.dump(document, fh, indent=2, default=str)
            fh.write("\n")
    return document


def export_all(
    directory: "str | os.PathLike",
    cache: "WorkloadCache | None" = None,
    experiments: "list[str] | None" = None,
    fmt: str = "json",
) -> "list[str]":
    """Run experiments and write one file per figure into ``directory``.

    Returns the written paths.  ``fmt`` is ``json`` or ``csv``.
    """
    if fmt not in ("json", "csv"):
        raise ValueError("fmt must be 'json' or 'csv'")
    os.makedirs(directory, exist_ok=True)
    if cache is None:
        cache = WorkloadCache()
    names = experiments if experiments is not None else list(EXPERIMENTS)
    written = []
    for name in names:
        if name not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}")
        func = EXPERIMENTS[name]
        kwargs = {}
        if "cache" in inspect.signature(func).parameters:
            kwargs["cache"] = cache
        result = func(**kwargs)
        path = os.path.join(str(directory), f"{name}.{fmt}")
        if fmt == "json":
            to_json(result, path)
        else:
            to_csv(result, path)
        written.append(path)
    return written
