"""Plain-text reporting helpers for the experiment harness.

Every figure/table reproduction prints an aligned text table mirroring
the rows/series the paper reports, so a run's output can be compared
against the paper side by side.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def gmean(values: "Iterable[float]") -> float:
    """Geometric mean (the paper's cross-workload average)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0:
        return 0.0
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: "Sequence[str]", rows: "Sequence[Sequence]", title: str = ""
) -> str:
    """Render an aligned text table."""
    str_rows = [[format_cell(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers, rows, title: str = "") -> None:
    print(format_table(headers, rows, title))
    print()
