"""Plain-text reporting helpers for the experiment harness.

Every figure/table reproduction prints an aligned text table mirroring
the rows/series the paper reports, so a run's output can be compared
against the paper side by side.
"""

from __future__ import annotations

import unicodedata
from typing import Iterable, Sequence

import numpy as np


def gmean(values: "Iterable[float]") -> float:
    """Geometric mean (the paper's cross-workload average)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0:
        return 0.0
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def display_width(text: str) -> int:
    """Terminal cell count of ``text`` (East-Asian wide chars take 2)."""
    return sum(2 if unicodedata.east_asian_width(ch) in ("W", "F") else 1
               for ch in text)


def _pad(text: str, width: int) -> str:
    return text + " " * max(0, width - display_width(text))


def format_table(
    headers: "Sequence[str]", rows: "Sequence[Sequence]", title: str = ""
) -> str:
    """Render an aligned text table.

    Alignment uses terminal display width, so mixed-width unicode
    (e.g. CJK workload names) keeps columns straight.  Short rows are
    padded with empty cells; extra cells beyond the headers are kept.
    """
    str_rows = [[format_cell(c) for c in row] for row in rows]
    ncols = max([len(headers)] + [len(r) for r in str_rows])
    header_cells = list(headers) + [""] * (ncols - len(headers))
    for row in str_rows:
        row.extend([""] * (ncols - len(row)))
    widths = [
        max(display_width(header_cells[i]),
            *(display_width(r[i]) for r in str_rows)) if str_rows
        else display_width(header_cells[i])
        for i in range(ncols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(_pad(h, w) for h, w in zip(header_cells, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(_pad(c, w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers, rows, title: str = "") -> None:
    print(format_table(headers, rows, title))
    print()
