"""Parallel experiment fan-out and on-disk workload caching.

The expensive part of every figure run is :func:`prepare_workload`:
trace synthesis, flat-memory profiling, and the all-DDR baseline
replay.  All of it is deterministic in ``(workload, scale,
accesses_per_core, seed, config)``, so this module adds two
orthogonal accelerators used by ``experiments.py``, ``sweeps.py``,
``replication.py``, and the ``benchmarks/`` harness:

* :func:`prepare_workload_cached` — a pickle cache on disk keyed by a
  digest of the preparation inputs (including a hash of the system
  config), so repeated figure runs skip synthesis entirely.  Writes
  are atomic (`os.replace`), so concurrent workers racing on the same
  key are safe.
* :func:`parallel_map` — an order-preserving ``ProcessPoolExecutor``
  map with a ``fork`` start method, so worker functions defined in
  non-importable modules (pytest benchmark files) still unpickle in
  the children.  ``jobs <= 1`` or an unavailable ``fork`` degrades to
  a serial in-process loop with identical semantics.

On top of those, :func:`prefetch_workloads` warms a cache directory
for a whole workload list across cores, and :func:`run_experiments`
fans complete experiment ids (``fig05``, ``table2``, ...) out across
processes.

Environment knobs (CLI flags take precedence where both exist):

* ``REPRO_JOBS`` — default worker count for ``parallel_map``
* ``REPRO_CACHE_DIR`` — default on-disk cache directory
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

from repro.config import scaled_config
from repro.sim.system import DEFAULT_SCALE, PreparedWorkload, prepare_workload

#: Bump to invalidate every on-disk entry when the pickle layout changes.
CACHE_VERSION = 1


# ---------------------------------------------------------------------------
# Worker-count / cache-dir resolution
# ---------------------------------------------------------------------------

def resolve_jobs(jobs: "int | None" = None) -> int:
    """Worker count: explicit argument, ``REPRO_JOBS``, else CPU count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env:
            jobs = int(env)
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def resolve_cache_dir(cache_dir: "str | None" = None) -> "str | None":
    """Cache directory: explicit argument else ``REPRO_CACHE_DIR``."""
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    return cache_dir


# ---------------------------------------------------------------------------
# On-disk PreparedWorkload cache
# ---------------------------------------------------------------------------

def workload_cache_key(
    workload: str,
    scale: float,
    accesses_per_core: int,
    seed: int,
    config=None,
    ser_model=None,
) -> str:
    """Digest of everything :func:`prepare_workload` depends on.

    ``config`` and ``ser_model`` are dataclasses with value-style
    ``repr``; hashing the repr keys the cache on the full parameter
    set without inventing a parallel serialisation.
    """
    payload = "|".join([
        f"v{CACHE_VERSION}",
        str(workload),
        repr(float(scale)),
        str(int(accesses_per_core)),
        str(int(seed)),
        repr(config),
        repr(ser_model),
    ])
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def _cache_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"prep-{key}.pkl")


def _load_pickle(path: str):
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError):
        return None  # missing, truncated, or stale-format entry


def _store_pickle(path: str, obj) -> None:
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)  # atomic: racing writers both win
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def prepare_workload_cached(
    workload: str,
    scale: float = DEFAULT_SCALE,
    accesses_per_core: int = 20_000,
    seed: int = 0,
    ser_model=None,
    cache_dir: "str | None" = None,
) -> PreparedWorkload:
    """:func:`prepare_workload` behind an on-disk pickle cache.

    With no cache directory (argument or ``REPRO_CACHE_DIR``) this is
    a plain pass-through.  Corrupt or stale entries regenerate.
    """
    cache_dir = resolve_cache_dir(cache_dir)
    if cache_dir is None:
        return prepare_workload(
            workload, scale=scale, accesses_per_core=accesses_per_core,
            seed=seed, ser_model=ser_model,
        )
    key = workload_cache_key(workload, scale, accesses_per_core, seed,
                             config=scaled_config(scale),
                             ser_model=ser_model)
    path = _cache_path(cache_dir, key)
    prep = _load_pickle(path)
    if isinstance(prep, PreparedWorkload):
        return prep
    prep = prepare_workload(
        workload, scale=scale, accesses_per_core=accesses_per_core,
        seed=seed, ser_model=ser_model,
    )
    _store_pickle(path, prep)
    return prep


# ---------------------------------------------------------------------------
# Process-pool map
# ---------------------------------------------------------------------------

def _fork_context():
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return None


def parallel_map(
    func: Callable,
    items: Iterable,
    jobs: "int | None" = None,
) -> list:
    """Order-preserving map over a process pool.

    Serial fallback when ``jobs <= 1``, when there is at most one
    item, or when the platform has no ``fork`` start method (forking
    is what lets workers unpickle functions from pytest-collected
    modules).  Worker exceptions propagate to the caller either way.
    """
    items = list(items)
    jobs = min(resolve_jobs(jobs), len(items))
    context = _fork_context()
    if jobs <= 1 or context is None:
        return [func(item) for item in items]
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        return list(pool.map(func, items))


# ---------------------------------------------------------------------------
# Workload prefetch (ALL_WORKLOADS x one parameter set)
# ---------------------------------------------------------------------------

def _prefetch_one(item) -> "tuple[str, PreparedWorkload]":
    name, scale, accesses, seed, ser_model, cache_dir = item
    prep = prepare_workload_cached(
        name, scale=scale, accesses_per_core=accesses, seed=seed,
        ser_model=ser_model, cache_dir=cache_dir,
    )
    return name, prep


def prefetch_workloads(
    names: Sequence[str],
    scale: float = DEFAULT_SCALE,
    accesses_per_core: int = 20_000,
    seed: int = 0,
    ser_model=None,
    cache_dir: "str | None" = None,
    jobs: "int | None" = None,
) -> "dict[str, PreparedWorkload]":
    """Prepare many workloads across cores; returns ``{name: prep}``.

    With a cache directory, the children also warm it on disk so the
    work is never repeated in later runs.
    """
    cache_dir = resolve_cache_dir(cache_dir)
    items = [(name, scale, accesses_per_core, seed, ser_model, cache_dir)
             for name in names]
    return dict(parallel_map(_prefetch_one, items, jobs=jobs))


# ---------------------------------------------------------------------------
# Whole-experiment fan-out (for the CLI and export harness)
# ---------------------------------------------------------------------------

def _run_experiment_worker(item):
    import inspect

    name, accesses, scale, seed, cache_dir = item
    # Imported lazily so forked workers reuse the parent's modules and
    # fresh processes pay the import only once each.
    from repro.harness.experiments import EXPERIMENTS, WorkloadCache

    cache = WorkloadCache(accesses_per_core=accesses, scale=scale,
                          seed=seed, cache_dir=cache_dir)
    func = EXPERIMENTS[name]
    kwargs = {}
    if "cache" in inspect.signature(func).parameters:
        kwargs["cache"] = cache
    return name, func(**kwargs)


def run_experiments(
    names: Sequence[str],
    accesses_per_core: int = 20_000,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    cache_dir: "str | None" = None,
    jobs: "int | None" = None,
) -> "list[tuple[str, object]]":
    """Run experiment ids across cores; ``[(name, FigureResult)]``.

    Results come back in the order of ``names``.  Experiments that
    share workloads benefit from ``cache_dir``: the first worker to
    prepare a workload persists it for every other worker and run.
    """
    cache_dir = resolve_cache_dir(cache_dir)
    items = [(name, accesses_per_core, scale, seed, cache_dir)
             for name in names]
    return parallel_map(_run_experiment_worker, items, jobs=jobs)
