"""Parallel experiment fan-out and on-disk workload caching.

The expensive part of every figure run is :func:`prepare_workload`:
trace synthesis, flat-memory profiling, and the all-DDR baseline
replay.  All of it is deterministic in ``(workload, scale,
accesses_per_core, seed, config)``, so this module adds two
orthogonal accelerators used by ``experiments.py``, ``sweeps.py``,
``replication.py``, and the ``benchmarks/`` harness:

* :func:`prepare_workload_cached` — a cache of checksummed pickles on
  disk keyed by a digest of the preparation inputs (including a hash
  of the system config), so repeated figure runs skip synthesis
  entirely.  Writes are atomic (`os.replace`), so concurrent workers
  racing on the same key are safe; every entry embeds a schema
  version and SHA-256 of its payload, and a corrupt, truncated, or
  stale entry is quarantined to ``<cache>/corrupt/`` and recomputed
  (see :mod:`repro.harness.resilience`).
* :func:`parallel_map` — an order-preserving ``ProcessPoolExecutor``
  map with a ``fork`` start method, so worker functions defined in
  non-importable modules (pytest benchmark files) still unpickle in
  the children.  ``jobs <= 1`` or an unavailable ``fork`` degrades to
  a serial in-process loop with identical semantics.  Built on
  :func:`repro.harness.resilience.resilient_map`, it optionally
  enforces per-job timeouts and bounded retries, survives worker
  crashes (``BrokenProcessPool``), and can return the structured
  per-job outcome report instead of raising.

On top of those, :func:`prefetch_workloads` warms a cache directory
for a whole workload list across cores, and :func:`run_experiments`
fans complete experiment ids (``fig05``, ``table2``, ...) out across
processes with optional checkpoint/resume through a
:class:`~repro.harness.resilience.RunManifest`.

Fan-outs whose job items all carry the same prepared workloads (the
capacity sweep is the canonical case) hand the arrays to workers
zero-copy through :mod:`repro.harness.shm` (re-exported here):
:func:`share_payload` hoists them into one shared-memory segment and
:func:`resolve_payload` maps it read-only in each worker, gated by the
``shm_handoff`` knob (``REPRO_SHM_HANDOFF``) with a transparent
pickle fallback.

Environment knobs (CLI flags take precedence where both exist):

* ``REPRO_JOBS`` — default worker count for ``parallel_map``
* ``REPRO_CACHE_DIR`` — default on-disk cache directory
* ``REPRO_JOB_TIMEOUT`` — default per-job timeout in seconds
* ``REPRO_RETRIES`` — default retry budget per job
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Callable, Iterable, Sequence

from repro.config import scaled_config
from repro.harness.resilience import (
    CacheIntegrityError,
    FaultPlan,
    MapReport,
    PartialResultError,
    RunManifest,
    checkpointed_map,
    load_entry,
    quarantine_entry,
    resilient_map,
    resolve_job_timeout,
    resolve_jobs,
    resolve_retries,
    run_key,
    store_entry,
)
from repro.harness.shm import (
    release_payload,
    resolve_payload,
    share_payload,
    shared_handoff,
)
from repro.sim.system import DEFAULT_SCALE, PreparedWorkload, prepare_workload

__all__ = [
    "CACHE_VERSION", "FaultPlan", "MapReport", "PartialResultError",
    "parallel_map", "prefetch_workloads", "prepare_workload_cached",
    "release_payload", "resolve_cache_dir", "resolve_job_timeout",
    "resolve_jobs", "resolve_payload", "resolve_retries",
    "run_experiments", "share_payload", "shared_handoff",
    "workload_cache_key",
]

#: Bump to invalidate every on-disk entry when the pickle layout changes.
#: v2: entries carry an integrity header (schema version + checksum).
#: v3: WorkloadTrace gained core_mlps + tolerance (frontier workloads).
CACHE_VERSION = 3


# ---------------------------------------------------------------------------
# Cache-dir resolution
# ---------------------------------------------------------------------------

def resolve_cache_dir(cache_dir: "str | None" = None) -> "str | None":
    """Cache directory via the ``cache_dir`` knob (argument > scoped
    override > ``REPRO_CACHE_DIR``)."""
    from repro.config import knob_value

    return knob_value("cache_dir", cache_dir)


# ---------------------------------------------------------------------------
# On-disk PreparedWorkload cache
# ---------------------------------------------------------------------------

def workload_cache_key(
    workload: str,
    scale: float,
    accesses_per_core: int,
    seed: int,
    config=None,
    ser_model=None,
    cache_kernel: "str | None" = None,
) -> str:
    """Digest of everything :func:`prepare_workload` depends on.

    ``config`` and ``ser_model`` are dataclasses with value-style
    ``repr``; hashing the repr keys the cache on the full parameter
    set without inventing a parallel serialisation.  ``cache_kernel``
    (default: the resolved knob) keys entries per filter backend so a
    cached preparation can never alias across kernels; the
    ``shm_handoff`` knob is deliberately NOT part of the key — it only
    changes how prepared workloads travel to workers, never their
    contents.
    """
    from repro.cache.hierarchy import resolve_cache_kernel

    payload = "|".join([
        f"v{CACHE_VERSION}",
        str(workload),
        repr(float(scale)),
        str(int(accesses_per_core)),
        str(int(seed)),
        repr(config),
        repr(ser_model),
        f"cache_kernel={resolve_cache_kernel(cache_kernel)}",
    ])
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def _cache_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"prep-{key}.pkl")


def _load_pickle(path: str):
    """Load a raw pickle; a malformed file is deleted, not just skipped.

    Malformed pickle streams raise far more than ``UnpicklingError``
    (``ValueError``/``IndexError`` from bad opcodes, ``MemoryError``
    from absurd length prefixes, ``AttributeError``/``ImportError``
    from stale class paths); all of them mean the file is useless, and
    leaving it in place would re-raise on every subsequent run.
    """
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except FileNotFoundError:
        return None
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, MemoryError, ValueError, IndexError, TypeError):
        try:
            os.unlink(path)
        except OSError:
            pass
        return None


def _load_cache_entry(path: str) -> "PreparedWorkload | None":
    """A verified cache entry, or None (damaged entries quarantined)."""
    try:
        entry = load_entry(path)  # checksum + schema verified
    except FileNotFoundError:
        return None
    except (OSError, CacheIntegrityError):
        return None  # load_entry already quarantined the file
    if isinstance(entry, PreparedWorkload):
        return entry
    quarantine_entry(path)  # valid container, stale payload type
    return None


def prepare_workload_cached(
    workload: str,
    scale: float = DEFAULT_SCALE,
    accesses_per_core: int = 20_000,
    seed: int = 0,
    ser_model=None,
    cache_dir: "str | None" = None,
) -> PreparedWorkload:
    """:func:`prepare_workload` behind an on-disk pickle cache.

    With no cache directory (argument or ``REPRO_CACHE_DIR``) this is
    a plain pass-through.  Every entry is written with an integrity
    header (schema version + SHA-256); a corrupt, truncated, bit-flipped,
    or stale entry is quarantined to ``<cache>/corrupt/`` and
    transparently recomputed.
    """
    cache_dir = resolve_cache_dir(cache_dir)
    if cache_dir is None:
        return prepare_workload(
            workload, scale=scale, accesses_per_core=accesses_per_core,
            seed=seed, ser_model=ser_model,
        )
    key = workload_cache_key(workload, scale, accesses_per_core, seed,
                             config=scaled_config(scale),
                             ser_model=ser_model)
    path = _cache_path(cache_dir, key)
    prep = _load_cache_entry(path)
    if prep is not None:
        return prep
    prep = prepare_workload(
        workload, scale=scale, accesses_per_core=accesses_per_core,
        seed=seed, ser_model=ser_model,
    )
    store_entry(path, prep)  # atomic: racing writers both win
    return prep


# ---------------------------------------------------------------------------
# Process-pool map
# ---------------------------------------------------------------------------

def parallel_map(
    func: Callable,
    items: Iterable,
    jobs: "int | None" = None,
    *,
    timeout: "float | None" = None,
    retries: "int | None" = None,
    backoff: float = 0.5,
    keys: "Sequence[str] | None" = None,
    fault_plan: "FaultPlan | None" = None,
    return_report: bool = False,
):
    """Order-preserving map over a fault-tolerant process pool.

    Serial fallback when ``jobs <= 1``, when there is at most one
    item, or when the platform has no ``fork`` start method (forking
    is what lets workers unpickle functions from pytest-collected
    modules).

    Built on :func:`repro.harness.resilience.resilient_map`: each job
    gets a per-attempt ``timeout`` (``REPRO_JOB_TIMEOUT``) and
    ``retries`` retry budget (``REPRO_RETRIES``) with exponential
    backoff, and a crashed worker breaks only its own job — the pool
    is respawned and unfinished siblings re-dispatched.  By default
    any job that still fails raises :class:`PartialResultError` (a
    ``RuntimeError`` carrying the full per-job outcome report, so
    completed results are never lost); with ``return_report=True`` the
    :class:`MapReport` is returned instead and nothing raises.
    """
    report = resilient_map(func, items, jobs=jobs, timeout=timeout,
                           retries=retries, backoff=backoff, keys=keys,
                           fault_plan=fault_plan)
    if return_report:
        return report
    report.raise_if_failed()
    return report.results


# ---------------------------------------------------------------------------
# Workload prefetch (ALL_WORKLOADS x one parameter set)
# ---------------------------------------------------------------------------

def _prefetch_one(item) -> "tuple[str, PreparedWorkload]":
    name, scale, accesses, seed, ser_model, cache_dir = item
    prep = prepare_workload_cached(
        name, scale=scale, accesses_per_core=accesses, seed=seed,
        ser_model=ser_model, cache_dir=cache_dir,
    )
    return name, prep


def prefetch_workloads(
    names: Sequence[str],
    scale: float = DEFAULT_SCALE,
    accesses_per_core: int = 20_000,
    seed: int = 0,
    ser_model=None,
    cache_dir: "str | None" = None,
    jobs: "int | None" = None,
) -> "dict[str, PreparedWorkload]":
    """Prepare many workloads across cores; returns ``{name: prep}``.

    With a cache directory, the children also warm it on disk so the
    work is never repeated in later runs.
    """
    cache_dir = resolve_cache_dir(cache_dir)
    items = [(name, scale, accesses_per_core, seed, ser_model, cache_dir)
             for name in names]
    return dict(parallel_map(_prefetch_one, items, jobs=jobs))


# ---------------------------------------------------------------------------
# Whole-experiment fan-out (for the CLI and export harness)
# ---------------------------------------------------------------------------

def _run_experiment_worker(item):
    import inspect

    (name, accesses, scale, seed, cache_dir, fault_trials,
     policy_kernel, cache_kernel, multirun, telemetry, obs_dir) = item
    # Imported lazily so forked workers reuse the parent's modules and
    # fresh processes pay the import only once each.
    from repro.config import knob_overrides
    from repro.harness.experiments import EXPERIMENTS, WorkloadCache
    from repro.obs import run_context

    cache = WorkloadCache(accesses_per_core=accesses, scale=scale,
                          seed=seed, cache_dir=cache_dir)
    func = EXPERIMENTS[name]
    kwargs = {}
    if "cache" in inspect.signature(func).parameters:
        kwargs["cache"] = cache
    # Scoped overrides, not os.environ: each worker gets exactly the
    # knobs the CLI passed for *this* run, and nothing leaks into later
    # runs or sibling workers.
    with knob_overrides(fault_trials=fault_trials,
                        policy_kernel=policy_kernel,
                        cache_kernel=cache_kernel,
                        multirun=multirun):
        with run_context(
                name,
                config={"experiment": name, "accesses": accesses,
                        "scale": scale, "seed": seed},
                obs_dir=obs_dir,
                enabled=True if telemetry else None) as ctx:
            result = func(**kwargs)
            if ctx is not None and getattr(result, "summary", None):
                ctx.add_metrics(result.summary)
    return name, result


def run_experiments(
    names: Sequence[str],
    accesses_per_core: int = 20_000,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    cache_dir: "str | None" = None,
    jobs: "int | None" = None,
    checkpoint_dir: "str | None" = None,
    resume: bool = False,
    job_timeout: "float | None" = None,
    retries: "int | None" = None,
    return_report: bool = False,
    fault_trials: "int | None" = None,
    policy_kernel: "str | None" = None,
    cache_kernel: "str | None" = None,
    multirun: "bool | None" = None,
    telemetry: bool = False,
    obs_dir: "str | None" = None,
):
    """Run experiment ids across cores; ``[(name, FigureResult)]``.

    Results come back in the order of ``names``.  Experiments that
    share workloads benefit from ``cache_dir``: the first worker to
    prepare a workload persists it for every other worker and run.

    ``checkpoint_dir`` journals each completed experiment (a
    checksummed pickle per result) the moment it finishes; a later
    call with ``resume=True`` serves finished experiments from the
    journal and reruns only the rest.  ``job_timeout``/``retries``
    bound each experiment's execution (see :func:`parallel_map`).
    A failing experiment raises :class:`PartialResultError` carrying
    every completed result — or set ``return_report=True`` to get the
    structured :class:`MapReport` (``.results`` holds the
    ``(name, FigureResult)`` tuples) without raising.
    """
    cache_dir = resolve_cache_dir(cache_dir)
    items = [(name, accesses_per_core, scale, seed, cache_dir, fault_trials,
              policy_kernel, cache_kernel, multirun, telemetry, obs_dir)
             for name in names]
    manifest = None
    if checkpoint_dir is not None:
        manifest = RunManifest(
            checkpoint_dir,
            # fault_trials/policy_kernel/cache_kernel change (or could
            # change) the numbers, so they are part of the run key: a
            # resume with different knobs reruns instead of serving
            # stale checkpointed results.
            run_key=run_key(kind="experiments", accesses=accesses_per_core,
                            scale=scale, seed=seed,
                            fault_trials=fault_trials,
                            policy_kernel=policy_kernel,
                            cache_kernel=cache_kernel),
            resume=resume)
    report = checkpointed_map(
        _run_experiment_worker, items, keys=list(names), manifest=manifest,
        store="pickle", jobs=jobs, timeout=job_timeout, retries=retries)
    if return_report:
        return report
    report.raise_if_failed()
    return report.results
