"""Seed replication: statistical stability of the headline results.

A single synthetic-trace run is one draw from the generator's
distribution; a credible reproduction reports variability.  This module
re-runs an experiment metric over several generator seeds and reports
mean, standard deviation, and a normal-approximation confidence
interval — used by the replication benchmark to assert the headline
shapes are not one-seed flukes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sim.system import DEFAULT_SCALE, PreparedWorkload


@dataclass(frozen=True)
class Replication:
    """Summary of one metric replicated over seeds."""

    metric: str
    values: "tuple[float, ...]"

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if self.n > 1 else 0.0

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean)."""
        return self.std / self.mean if self.mean else 0.0

    def confidence_interval(self, z: float = 1.96) -> "tuple[float, float]":
        """Normal-approximation CI for the mean (default 95%)."""
        half = z * self.std / np.sqrt(self.n) if self.n > 1 else 0.0
        return self.mean - half, self.mean + half

    def __str__(self) -> str:
        lo, hi = self.confidence_interval()
        return (f"{self.metric}: {self.mean:.3g} +- {self.std:.3g} "
                f"(95% CI [{lo:.3g}, {hi:.3g}], n={self.n})")


def _replicate_seed(item) -> float:
    workload, metric, scale, accesses_per_core, seed, cache_dir = item
    from repro.harness.runner import prepare_workload_cached

    prep = prepare_workload_cached(workload, scale=scale,
                                   accesses_per_core=accesses_per_core,
                                   seed=seed, cache_dir=cache_dir)
    return float(metric(prep))


def replicate(
    workload: str,
    metric: "Callable[[PreparedWorkload], float]",
    metric_name: str = "metric",
    seeds=(0, 1, 2, 3, 4),
    scale: float = DEFAULT_SCALE,
    accesses_per_core: int = 10_000,
    jobs: "int | None" = 1,
    cache_dir: "str | None" = None,
    checkpoint_dir: "str | None" = None,
    resume: bool = False,
    job_timeout: "float | None" = None,
    retries: "int | None" = None,
) -> Replication:
    """Evaluate ``metric`` on fresh workload draws, one per seed.

    ``jobs`` fans the seeds out across processes (``metric`` must then
    be a module-level callable so the workers can unpickle it); the
    default of 1 keeps the historical serial behaviour.  ``jobs=None``
    defers to ``REPRO_JOBS``/CPU count.

    ``checkpoint_dir`` journals each seed's value as it completes, so
    an interrupted replication restarted with ``resume=True`` reruns
    only the unfinished seeds; ``job_timeout``/``retries`` bound each
    seed's execution (defaults from ``REPRO_JOB_TIMEOUT`` /
    ``REPRO_RETRIES``).  A seed that still fails raises
    :class:`repro.harness.resilience.PartialResultError` with the
    surviving values attached.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    from repro.harness.resilience import RunManifest, checkpointed_map, run_key

    items = [(workload, metric, scale, accesses_per_core, seed, cache_dir)
             for seed in seeds]
    manifest = None
    if checkpoint_dir is not None:
        manifest = RunManifest(
            checkpoint_dir,
            run_key=run_key(kind="replicate", workload=workload,
                            metric=metric_name, scale=scale,
                            accesses=accesses_per_core),
            resume=resume)
    report = checkpointed_map(
        _replicate_seed, items, keys=[f"seed-{seed}" for seed in seeds],
        manifest=manifest, store="json", jobs=jobs, timeout=job_timeout,
        retries=retries)
    report.raise_if_failed()
    return Replication(metric=metric_name,
                       values=tuple(float(v) for v in report.results))
