"""Command-line entry point: regenerate any paper figure or table.

Usage::

    repro-hma list
    repro-hma run fig05 [--accesses 20000] [--scale 0.0009765625]
    repro-hma run all --jobs 0 --cache-dir ~/.cache/repro-hma
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys

from repro.core.counters import POLICY_KERNELS
from repro.harness.experiments import EXPERIMENTS, WorkloadCache
from repro.sim.system import DEFAULT_SCALE


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hma",
        description="Reliability-aware HMA placement: paper reproduction "
                    "harness (Gupta et al., HPCA 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    sub.add_parser("workloads", help="list the bundled benchmark profiles")

    trace = sub.add_parser(
        "trace", help="generate a workload trace and save it to a file"
    )
    trace.add_argument("workload", help="benchmark or mix name, e.g. mcf")
    trace.add_argument("output", help="output path (.npz or .trace text)")
    trace.add_argument("--accesses", type=int, default=20_000)
    trace.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    trace.add_argument("--seed", type=int, default=0)

    export = sub.add_parser(
        "export", help="run experiments and write CSV/JSON files"
    )
    export.add_argument("directory", help="output directory")
    export.add_argument("--experiments", nargs="*", default=None,
                        help="experiment ids (default: all)")
    export.add_argument("--format", choices=("json", "csv"),
                        default="json")
    export.add_argument("--accesses", type=int, default=20_000)
    export.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    export.add_argument("--seed", type=int, default=0)
    _add_runner_args(export)

    scatter = sub.add_parser(
        "scatter", help="ASCII hotness-risk scatter (Fig. 4) of a workload"
    )
    scatter.add_argument("workload")
    scatter.add_argument("--accesses", type=int, default=20_000)
    scatter.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    scatter.add_argument("--seed", type=int, default=0)
    scatter.add_argument("--width", type=int, default=70)
    scatter.add_argument("--height", type=int, default=22)

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. fig05, or 'all'")
    run.add_argument("--accesses", type=int, default=20_000,
                     help="memory accesses per core (default 20000)")
    run.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                     help="capacity/footprint scale (default 1/1024)")
    run.add_argument("--seed", type=int, default=0)
    _add_runner_args(run)
    return parser


def _add_runner_args(sub) -> None:
    sub.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for experiment fan-out (default 1 = "
             "serial; 0 = one per CPU; env REPRO_JOBS)")
    sub.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist prepared workloads (traces, profiles, baselines) "
             "to DIR so repeated runs skip trace synthesis "
             "(env REPRO_CACHE_DIR)")
    sub.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="checkpoint directory: completed experiments journal into "
             "DIR/manifest.jsonl as they finish, so an interrupted run "
             "can restart with --resume")
    sub.add_argument(
        "--resume", action="store_true",
        help="resume from --run-dir, rerunning only unfinished "
             "experiments (requires --run-dir)")
    sub.add_argument(
        "--job-timeout", type=float, default=None, metavar="SEC",
        help="per-experiment timeout in seconds; a hung job is killed "
             "and retried (env REPRO_JOB_TIMEOUT; enforced under "
             "process fan-out)")
    sub.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry budget per failed or timed-out experiment, with "
             "exponential backoff (env REPRO_RETRIES; default 0)")
    sub.add_argument(
        "--fault-trials", type=int, default=None, metavar="N",
        help="Monte-Carlo trials for the fault simulator; 0 (default) "
             "uses the exact analytic expectation "
             "(env REPRO_FAULT_TRIALS)")
    sub.add_argument(
        "--policy-kernel", choices=POLICY_KERNELS, default=None,
        help="migration policy-layer backend: vectorised 'array' "
             "(default) or the dict-based 'sparse' reference "
             "(env REPRO_POLICY_KERNEL)")


def _run_one(name: str, cache: WorkloadCache) -> None:
    func = EXPERIMENTS[name]
    kwargs = {}
    if "cache" in inspect.signature(func).parameters:
        kwargs["cache"] = cache
    func(**kwargs).print()


def _cmd_workloads() -> int:
    from repro.trace.mixes import MIX_TABLE
    from repro.trace.workloads import PROFILES

    print(f"{'benchmark':12s} {'footprint':>10s} {'MPKI':>6s} {'MLP':>4s} "
          f"structures")
    for name, profile in PROFILES.items():
        print(f"{name:12s} {profile.footprint_mb:>8.0f}MB "
              f"{profile.mpki:>6.1f} {profile.mlp:>4d} "
              f"{len(profile.regions)}")
    print()
    print("mixes:", ", ".join(MIX_TABLE))
    return 0


def _cmd_trace(args) -> int:
    from repro.trace.io import save_npz, save_text
    from repro.trace.workloads import Workload

    workload = (Workload.mix(args.workload)
                if args.workload.startswith("mix")
                else Workload.spec(args.workload))
    wt = workload.generate(scale=args.scale,
                           accesses_per_core=args.accesses, seed=args.seed)
    if args.output.endswith(".npz"):
        save_npz(args.output, wt.trace, wt.times)
    else:
        save_text(args.output, wt.trace)
    print(f"wrote {len(wt.trace)} requests "
          f"({wt.footprint_pages} pages) to {args.output}")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and not args.run_dir:
        parser.error("--resume requires --run-dir")
    # Flags surface as environment variables so they reach both the
    # in-process model constructors and process-fan-out workers.
    if getattr(args, "fault_trials", None) is not None:
        if args.fault_trials < 0:
            parser.error("--fault-trials must be >= 0")
        os.environ["REPRO_FAULT_TRIALS"] = str(args.fault_trials)
    if getattr(args, "policy_kernel", None):
        os.environ["REPRO_POLICY_KERNEL"] = args.policy_kernel
    if args.command == "list":
        for name, func in EXPERIMENTS.items():
            doc = (func.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0
    if args.command == "workloads":
        return _cmd_workloads()
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "scatter":
        from repro.core.quadrant import quadrant_split
        from repro.harness.plots import ascii_scatter
        from repro.sim.system import prepare_workload

        prep = prepare_workload(args.workload, scale=args.scale,
                                accesses_per_core=args.accesses,
                                seed=args.seed)
        stats = prep.stats
        hotness = stats.hotness.astype(float)
        print(ascii_scatter(
            stats.avf, hotness, width=args.width, height=args.height,
            xlabel="page AVF", ylabel="page hotness",
            split_x=float(stats.avf.mean()), split_y=float(hotness.mean()),
        ))
        quad = quadrant_split(stats, args.workload)
        print(f"hot & low-risk: {quad.hot_low_risk_fraction * 100:.1f}% "
              f"of {quad.total_pages} pages")
        return 0
    if args.command == "export":
        if args.run_dir:
            from repro.harness.export import to_csv, to_json

            names = (args.experiments if args.experiments
                     else list(EXPERIMENTS))
            for name in names:
                if name not in EXPERIMENTS:
                    print(f"unknown experiment {name!r}; try "
                          "'repro-hma list'", file=sys.stderr)
                    return 2
            results, failed = _run_checkpointed(names, args)
            os.makedirs(args.directory, exist_ok=True)
            written = []
            for name, result in results:
                path = os.path.join(args.directory, f"{name}.{args.format}")
                if args.format == "json":
                    to_json(result, path)
                else:
                    to_csv(result, path)
                written.append(path)
            print(f"wrote {len(written)} files to {args.directory}")
            return 1 if failed else 0
        from repro.harness.export import export_all

        cache = WorkloadCache(accesses_per_core=args.accesses,
                              scale=args.scale, seed=args.seed,
                              cache_dir=args.cache_dir,
                              jobs=_effective_jobs(args))
        if _effective_jobs(args) != 1:
            cache.prefetch()
        written = export_all(args.directory, cache=cache,
                             experiments=args.experiments, fmt=args.format)
        print(f"wrote {len(written)} files to {args.directory}")
        return 0

    name = args.experiment
    if name != "all" and name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try 'repro-hma list'",
              file=sys.stderr)
        return 2
    jobs = _effective_jobs(args)
    targets = list(EXPERIMENTS) if name == "all" else [name]
    if args.run_dir or (jobs != 1 and len(targets) > 1):
        results, failed = _run_checkpointed(targets, args)
        for _target, result in results:
            result.print()
        return 1 if failed else 0
    cache = WorkloadCache(accesses_per_core=args.accesses, scale=args.scale,
                          seed=args.seed, cache_dir=args.cache_dir, jobs=jobs)
    if jobs != 1:
        cache.prefetch()
    for target in targets:
        _run_one(target, cache)
    return 0


def _run_checkpointed(targets, args):
    """Fan experiments out with checkpoint/retry/timeout handling.

    Returns ``(results, failed)`` where ``results`` are the completed
    ``(name, FigureResult)`` pairs and ``failed`` the outcomes of jobs
    that exhausted their retry budget — a partial run reports cleanly
    instead of dying with a traceback.
    """
    from repro.harness.runner import run_experiments

    report = run_experiments(
        targets, accesses_per_core=args.accesses, scale=args.scale,
        seed=args.seed, cache_dir=args.cache_dir,
        jobs=_effective_jobs(args), checkpoint_dir=args.run_dir,
        resume=args.resume, job_timeout=args.job_timeout,
        retries=args.retries, return_report=True)
    failed = report.failed
    if failed:
        print(f"warning: {report.summary()}", file=sys.stderr)
        for outcome in failed:
            print(f"  {outcome.key}: {outcome.status} after "
                  f"{outcome.attempts} attempt(s): {outcome.error}",
                  file=sys.stderr)
    results = [outcome.result for outcome in report.outcomes
               if outcome.succeeded]
    return results, failed


def _effective_jobs(args) -> "int | None":
    """CLI jobs flag: 0 means "one per CPU" (i.e. let the runner pick)."""
    return None if args.jobs == 0 else args.jobs


if __name__ == "__main__":
    raise SystemExit(main())
