"""Command-line entry point: regenerate any paper figure or table.

Usage::

    repro-hma list
    repro-hma run fig05 [--accesses 20000] [--scale 0.0009765625]
    repro-hma run all --jobs 0 --cache-dir ~/.cache/repro-hma
    repro-hma run fig14 --telemetry --obs-dir .repro-obs
    repro-hma config
    repro-hma report fig14
    repro-hma compare fig14-1 fig14-2
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys

from repro.cache.hierarchy import CACHE_KERNELS
from repro.config import knob_overrides, knob_value
from repro.core.counters import POLICY_KERNELS
from repro.harness.experiments import EXPERIMENTS, WorkloadCache
from repro.sim.system import DEFAULT_SCALE


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hma",
        description="Reliability-aware HMA placement: paper reproduction "
                    "harness (Gupta et al., HPCA 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    workloads = sub.add_parser(
        "workloads",
        help="list the bundled benchmark profiles and server generators",
    )
    workloads.add_argument("--list", action="store_true", default=False,
                           help="list all workloads (the default)")
    workloads.add_argument("--describe", metavar="NAME", default=None,
                           help="print one workload's parameters, phase "
                                "schedule, and tolerance-class mix")
    workloads.add_argument("--seed", type=int, default=None,
                           help="seed for the described phase schedule "
                                "(env REPRO_SEED; default 0)")

    trace = sub.add_parser(
        "trace", help="generate a workload trace and save it to a file"
    )
    trace.add_argument("workload", help="benchmark or mix name, e.g. mcf")
    trace.add_argument("output", help="output path (.npz or .trace text)")
    trace.add_argument("--accesses", type=int, default=20_000)
    trace.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    trace.add_argument("--seed", type=int, default=None,
                   help="trace-synthesis RNG seed "
                        "(env REPRO_SEED; default 0)")

    export = sub.add_parser(
        "export", help="run experiments and write CSV/JSON files"
    )
    export.add_argument("directory", help="output directory")
    export.add_argument("--experiments", nargs="*", default=None,
                        help="experiment ids (default: all)")
    export.add_argument("--format", choices=("json", "csv"),
                        default="json")
    export.add_argument("--accesses", type=int, default=20_000)
    export.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    export.add_argument("--seed", type=int, default=None,
                    help="trace/fault-sim RNG seed "
                         "(env REPRO_SEED; default 0)")
    _add_runner_args(export)

    scatter = sub.add_parser(
        "scatter", help="ASCII hotness-risk scatter (Fig. 4) of a workload"
    )
    scatter.add_argument("workload")
    scatter.add_argument("--accesses", type=int, default=20_000)
    scatter.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    scatter.add_argument("--seed", type=int, default=None,
                     help="trace-synthesis RNG seed "
                          "(env REPRO_SEED; default 0)")
    scatter.add_argument("--width", type=int, default=70)
    scatter.add_argument("--height", type=int, default=22)

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. fig05, or 'all'")
    run.add_argument("--accesses", type=int, default=20_000,
                     help="memory accesses per core (default 20000)")
    run.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                     help="capacity/footprint scale (default 1/1024)")
    run.add_argument("--seed", type=int, default=None,
                 help="trace/fault-sim RNG seed "
                      "(env REPRO_SEED; default 0)")
    _add_runner_args(run)

    sub.add_parser(
        "config", help="show every REPRO_* knob, its value, and where "
                       "the value came from"
    )

    verify = sub.add_parser(
        "verify", help="run the verification ladder: cross-kernel "
                       "differential fuzz, paper invariants, and the "
                       "EXPERIMENTS.md replication shape gate; exits "
                       "nonzero on any divergence or regression"
    )
    verify.add_argument(
        "--quick", action="store_true",
        help="CI budget: 25 fuzz cases and small gate workloads "
             "(the full ladder defaults to 50 cases)")
    verify.add_argument(
        "--cases", type=int, default=None, metavar="N",
        help="fuzz case count override (default 25 quick / 50 full)")
    verify.add_argument(
        "--fuzz-seed", type=int, default=0, metavar="S",
        help="seed of the differential fuzzer's case stream "
             "(default 0; gate workloads use a fixed seed regardless)")
    verify.add_argument(
        "--gates", default="fuzz,invariants,replication", metavar="LIST",
        help="comma-separated subset of gates to run "
             "(fuzz, invariants, replication, ecc)")
    verify.add_argument(
        "--artifact-dir", default=None, metavar="DIR",
        help="where shrunken divergence artifacts are dumped "
             "(default: ./.repro-verify)")
    verify.add_argument(
        "--json", default=None, metavar="PATH", dest="json_path",
        help="also write the machine-readable verdict to PATH")
    verify.add_argument(
        "--replay-artifact", default=None, metavar="PATH",
        help="re-run one dumped divergence artifact instead of the "
             "ladder")
    verify.add_argument(
        "--verbose", action="store_true",
        help="print gate progress while running")

    report = sub.add_parser(
        "report", help="render one recorded run (metrics + epoch series)"
    )
    report.add_argument("run", help="run id (fig14-2) or label (fig14 = "
                                    "latest run with that label)")
    report.add_argument("--obs-dir", default=None, metavar="DIR",
                        help="observability directory holding runs.sqlite "
                             "(env REPRO_OBS_DIR; default ./.repro-obs)")

    compare = sub.add_parser(
        "compare", help="diff two recorded runs; exits 1 on regression"
    )
    compare.add_argument("run_a", help="baseline run id or label")
    compare.add_argument("run_b", help="candidate run id or label")
    compare.add_argument("--obs-dir", default=None, metavar="DIR",
                         help="observability directory holding runs.sqlite "
                              "(env REPRO_OBS_DIR; default ./.repro-obs)")
    compare.add_argument("--threshold", type=float, default=0.02,
                         metavar="FRAC",
                         help="relative change that counts as a regression "
                              "(default 0.02 = 2%%)")
    compare.add_argument("--bench-root", default=None, metavar="DIR",
                         help="also check the candidate's metrics against "
                              "the BENCH_*.json floors found under DIR")

    serve = sub.add_parser(
        "serve", help="run the multi-tenant placement daemon on a unix "
                      "socket (newline-JSON protocol)"
    )
    serve.add_argument("--socket", required=True, metavar="PATH",
                       help="unix-socket path to listen on")
    serve.add_argument("--serve-dir", default=None, metavar="DIR",
                       help="session spool root (default: a fresh tempdir)")
    serve.add_argument("--ledger-dir", default=None, metavar="DIR",
                       help="record each finished session in the sqlite "
                            "run registry under DIR")
    serve.add_argument("--max-sessions", type=int, default=8, metavar="N",
                       help="active sessions before new opens are shed "
                            "(default 8)")
    serve.add_argument("--pool-workers", type=int, default=2, metavar="N",
                       help="concurrent session replays (default 2)")
    serve.add_argument("--rate", type=float, default=2e6, metavar="A",
                       help="per-tenant accesses/second token-bucket rate "
                            "(default 2e6)")
    serve.add_argument("--burst", type=float, default=4e5, metavar="A",
                       help="per-tenant token-bucket depth (default 4e5)")
    serve.add_argument("--job-timeout", type=float, default=30.0,
                       metavar="SEC",
                       help="per-attempt session replay watchdog "
                            "(default 30; <=0 disables)")
    serve.add_argument("--retries", type=int, default=2, metavar="N",
                       help="replay attempts after the first (default 2)")
    serve.add_argument("--idle-timeout", type=float, default=300.0,
                       metavar="SEC",
                       help="abort open sessions idle this long "
                            "(default 300; <=0 disables)")
    serve.add_argument("--inline", action="store_true",
                       help="run sessions in the daemon process instead "
                            "of isolated workers (debugging only)")
    return parser


def _add_runner_args(sub) -> None:
    sub.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for experiment fan-out (default 1 = "
             "serial; 0 = one per CPU; env REPRO_JOBS)")
    sub.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist prepared workloads (traces, profiles, baselines) "
             "to DIR so repeated runs skip trace synthesis "
             "(env REPRO_CACHE_DIR)")
    sub.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="checkpoint directory: completed experiments journal into "
             "DIR/manifest.jsonl as they finish, so an interrupted run "
             "can restart with --resume")
    sub.add_argument(
        "--resume", action="store_true",
        help="resume from --run-dir, rerunning only unfinished "
             "experiments (requires --run-dir)")
    sub.add_argument(
        "--job-timeout", type=float, default=None, metavar="SEC",
        help="per-experiment timeout in seconds; a hung job is killed "
             "and retried (env REPRO_JOB_TIMEOUT; enforced under "
             "process fan-out)")
    sub.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry budget per failed or timed-out experiment, with "
             "exponential backoff (env REPRO_RETRIES; default 0)")
    sub.add_argument(
        "--fault-trials", type=int, default=None, metavar="N",
        help="Monte-Carlo trials for the fault simulator; 0 (default) "
             "uses the exact analytic expectation "
             "(env REPRO_FAULT_TRIALS)")
    sub.add_argument(
        "--policy-kernel", choices=POLICY_KERNELS, default=None,
        help="migration policy-layer backend: vectorised 'array' "
             "(default) or the dict-based 'sparse' reference "
             "(env REPRO_POLICY_KERNEL)")
    sub.add_argument(
        "--cache-kernel", choices=CACHE_KERNELS, default=None,
        help="cache-filter backend: batched 'array' (default) or the "
             "per-access 'sparse' reference "
             "(env REPRO_CACHE_KERNEL)")
    sub.add_argument(
        "--multirun", action=argparse.BooleanOptionalAction, default=None,
        help="config-batched multi-run engine: batch every sweep's "
             "configurations through one vectorized replay pass "
             "(default on; --no-multirun forces the per-point oracle "
             "path; env REPRO_MULTIRUN)")
    sub.add_argument(
        "--telemetry", action="store_true",
        help="record metrics, epoch snapshots, and tracing spans for "
             "each experiment into the run registry "
             "(env REPRO_TELEMETRY)")
    sub.add_argument(
        "--obs-dir", default=None, metavar="DIR",
        help="where the run registry and span exports live "
             "(env REPRO_OBS_DIR; default ./.repro-obs)")


def _run_one(name: str, cache: WorkloadCache, args) -> None:
    from repro.obs import run_context

    func = EXPERIMENTS[name]
    kwargs = {}
    if "cache" in inspect.signature(func).parameters:
        kwargs["cache"] = cache
    enabled = True if getattr(args, "telemetry", False) else None
    with run_context(name,
                     config={"experiment": name, "accesses": args.accesses,
                             "scale": args.scale, "seed": args.seed},
                     obs_dir=getattr(args, "obs_dir", None),
                     enabled=enabled) as ctx:
        result = func(**kwargs)
        if ctx is not None and getattr(result, "summary", None):
            ctx.add_metrics(result.summary)
    result.print()


def _cmd_workloads(args) -> int:
    from repro.trace.mixes import MIX_TABLE
    from repro.trace.workloads import PROFILES
    from repro.workloads import (
        FRONTIER_PROFILES, describe, is_frontier, tolerance_mix,
    )

    if args.describe is not None:
        name = args.describe
        if is_frontier(name):
            print(describe(name, seed=args.seed))
            return 0
        if name in PROFILES:
            profile = PROFILES[name]
            print(f"{name}: SPEC-style profile, "
                  f"{profile.footprint_mb:.0f} MB/core, "
                  f"MPKI {profile.mpki:g}, MLP {profile.mlp}")
            print(f"  {'region':14s} {'share':>6s} {'hot':>5s} {'wr':>5s} "
                  f"{'spread':>6s} {'alpha':>5s} {'churn':>5s}")
            for spec in profile.regions:
                print(f"  {spec.name:14s} {spec.footprint_share:>6.2f} "
                      f"{spec.hotness:>5.1f} {spec.write_frac:>5.2f} "
                      f"{spec.read_spread:>6.2f} {spec.zipf_alpha:>5.2f} "
                      f"{spec.churn:>5g}")
            return 0
        if name in MIX_TABLE:
            print(f"{name}: mixed workload, one core per entry:")
            print(" ", ", ".join(MIX_TABLE[name]))
            return 0
        print(f"unknown workload: {name!r} (try 'repro-hma workloads')")
        return 2

    print(f"{'benchmark':12s} {'footprint':>10s} {'MPKI':>6s} {'MLP':>4s} "
          f"structures")
    for name, profile in PROFILES.items():
        print(f"{name:12s} {profile.footprint_mb:>8.0f}MB "
              f"{profile.mpki:>6.1f} {profile.mlp:>4d} "
              f"{len(profile.regions)}")
    print()
    print(f"{'server generator':16s} {'footprint':>10s} {'MPKI':>6s} "
          f"{'MLP':>4s} {'cores':>5s} {'phases':>6s}  model     "
          f"tolerance mix")
    for name, profile in FRONTIER_PROFILES.items():
        mix = ", ".join(f"{cls[:4]} {frac * 100:.0f}%"
                        for cls, frac in tolerance_mix(profile).items())
        print(f"{name:16s} {profile.footprint_mb:>8.0f}MB "
              f"{profile.mpki:>6.1f} {profile.mlp:>4d} "
              f"{profile.num_cores:>5d} {profile.phases:>6d}  "
              f"{profile.phase_model:8s}  {mix}")
    print()
    print("mixes:", ", ".join(MIX_TABLE))
    print("describe one with: repro-hma workloads --describe <name>")
    return 0


def _cmd_trace(args) -> int:
    from repro.sim.system import resolve_workload
    from repro.trace.io import save_npz, save_text

    workload = resolve_workload(args.workload)
    wt = workload.generate(scale=args.scale,
                           accesses_per_core=args.accesses, seed=args.seed)
    if args.output.endswith(".npz"):
        save_npz(args.output, wt.trace, wt.times)
    else:
        save_text(args.output, wt.trace)
    print(f"wrote {len(wt.trace)} requests "
          f"({wt.footprint_pages} pages) to {args.output}")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and not args.run_dir:
        parser.error("--resume requires --run-dir")
    if getattr(args, "fault_trials", None) is not None and args.fault_trials < 0:
        parser.error("--fault-trials must be >= 0")
    # Flags become scoped knob overrides (never os.environ mutations,
    # which would leak into later runs in the same process); the
    # process-fan-out path instead forwards them as explicit arguments
    # to run_experiments so workers see them too.
    # Resolve --seed once (flag > REPRO_SEED > 0) so process fan-out
    # workers — which do not inherit scoped overrides — receive the
    # explicit value.
    if hasattr(args, "seed"):
        args.seed = knob_value("seed", args.seed)
    with knob_overrides(
            fault_trials=getattr(args, "fault_trials", None),
            policy_kernel=getattr(args, "policy_kernel", None),
            cache_kernel=getattr(args, "cache_kernel", None),
            multirun=getattr(args, "multirun", None),
            telemetry=True if getattr(args, "telemetry", False) else None,
            obs_dir=getattr(args, "obs_dir", None)):
        return _dispatch(parser, args)


def _dispatch(parser: argparse.ArgumentParser, args) -> int:
    if args.command == "list":
        for name, func in EXPERIMENTS.items():
            doc = (func.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0
    if args.command == "workloads":
        return _cmd_workloads(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "config":
        return _cmd_config()
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "scatter":
        from repro.core.quadrant import quadrant_split
        from repro.harness.plots import ascii_scatter
        from repro.sim.system import prepare_workload

        prep = prepare_workload(args.workload, scale=args.scale,
                                accesses_per_core=args.accesses,
                                seed=args.seed)
        stats = prep.stats
        hotness = stats.hotness.astype(float)
        print(ascii_scatter(
            stats.avf, hotness, width=args.width, height=args.height,
            xlabel="page AVF", ylabel="page hotness",
            split_x=float(stats.avf.mean()), split_y=float(hotness.mean()),
        ))
        quad = quadrant_split(stats, args.workload)
        print(f"hot & low-risk: {quad.hot_low_risk_fraction * 100:.1f}% "
              f"of {quad.total_pages} pages")
        return 0
    if args.command == "export":
        if args.run_dir:
            from repro.harness.export import to_csv, to_json

            names = (args.experiments if args.experiments
                     else list(EXPERIMENTS))
            for name in names:
                if name not in EXPERIMENTS:
                    print(f"unknown experiment {name!r}; try "
                          "'repro-hma list'", file=sys.stderr)
                    return 2
            results, failed = _run_checkpointed(names, args)
            os.makedirs(args.directory, exist_ok=True)
            written = []
            for name, result in results:
                path = os.path.join(args.directory, f"{name}.{args.format}")
                if args.format == "json":
                    to_json(result, path)
                else:
                    to_csv(result, path)
                written.append(path)
            print(f"wrote {len(written)} files to {args.directory}")
            return 1 if failed else 0
        from repro.harness.export import export_all

        cache = WorkloadCache(accesses_per_core=args.accesses,
                              scale=args.scale, seed=args.seed,
                              cache_dir=args.cache_dir,
                              jobs=_effective_jobs(args))
        if _effective_jobs(args) != 1:
            cache.prefetch()
        written = export_all(args.directory, cache=cache,
                             experiments=args.experiments, fmt=args.format)
        print(f"wrote {len(written)} files to {args.directory}")
        return 0

    name = args.experiment
    if name != "all" and name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try 'repro-hma list'",
              file=sys.stderr)
        return 2
    jobs = _effective_jobs(args)
    targets = list(EXPERIMENTS) if name == "all" else [name]
    if args.run_dir or (jobs != 1 and len(targets) > 1):
        results, failed = _run_checkpointed(targets, args)
        for _target, result in results:
            result.print()
        return 1 if failed else 0
    cache = WorkloadCache(accesses_per_core=args.accesses, scale=args.scale,
                          seed=args.seed, cache_dir=args.cache_dir, jobs=jobs)
    if jobs != 1:
        cache.prefetch()
    for target in targets:
        _run_one(target, cache, args)
    return 0


def _cmd_verify(args) -> int:
    from repro.obs.report import render_verify_report
    from repro.verify import VerifyReport, run_verify

    if args.replay_artifact:
        from repro.verify.differential import replay_artifact

        result = replay_artifact(args.replay_artifact)
        status = "STILL DIVERGES" if not result.passed else "no longer " \
            "reproduces (fixed, or environment-dependent)"
        print(f"{result.name}: {status}")
        if result.details:
            print(f"  {result.details}")
        return 1 if not result.passed else 0

    gates = tuple(g.strip() for g in args.gates.split(",") if g.strip())
    unknown = set(gates) - {"fuzz", "invariants", "replication", "ecc"}
    if unknown:
        print(f"unknown gate(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2
    artifact_dir = args.artifact_dir or ".repro-verify"
    progress = (lambda msg: print(f"  .. {msg}", file=sys.stderr)) \
        if args.verbose else None
    report: VerifyReport = run_verify(
        quick=args.quick, cases=args.cases, seed=args.fuzz_seed,
        artifact_dir=artifact_dir, gates=gates, progress=progress)
    if args.json_path:
        report.save(args.json_path)
    print(render_verify_report(report))
    return 0 if report.passed else 1


def _cmd_config() -> int:
    from repro.config import knob_report
    from repro.harness.reporting import format_table

    print(format_table(("knob", "env", "value", "source", "description"),
                       knob_report()))
    return 0


def _open_registry(obs_dir):
    from repro.obs.registry import RunRegistry, registry_path

    return RunRegistry(registry_path(obs_dir))


def _cmd_report(args) -> int:
    from repro.obs.report import render_run_report

    registry = _open_registry(args.obs_dir)
    run = registry.resolve(args.run)
    if run is None:
        print(f"no run {args.run!r} in {registry.path}", file=sys.stderr)
        return 2
    print(render_run_report(registry, run))
    return 0


def _cmd_compare(args) -> int:
    from repro.obs import report as obs_report

    registry = _open_registry(args.obs_dir)
    run_a = registry.resolve(args.run_a)
    run_b = registry.resolve(args.run_b)
    for ref, run in ((args.run_a, run_a), (args.run_b, run_b)):
        if run is None:
            print(f"no run {ref!r} in {registry.path}", file=sys.stderr)
            return 2
    diffs = obs_report.diff_metrics(registry.metrics(run_a.run_id),
                                    registry.metrics(run_b.run_id),
                                    threshold=args.threshold)
    bench = []
    if args.bench_root:
        floors = obs_report.load_bench_floors(args.bench_root)
        bench = obs_report.check_bench_floors(
            registry.metrics(run_b.run_id), floors,
            threshold=args.threshold)
    print(obs_report.render_compare(run_a, run_b, diffs, bench))
    regressed = obs_report.find_regressions(diffs) or bench
    return 1 if regressed else 0


def _cmd_serve(args) -> int:
    """Run the placement daemon until SIGTERM/SIGINT, then drain."""
    from repro.serve.service import PlacementService, ServiceConfig
    from repro.serve.socket import ServeDaemon

    config = ServiceConfig(
        max_sessions=args.max_sessions,
        pool_workers=args.pool_workers,
        rate_accesses_per_sec=args.rate,
        burst_accesses=args.burst,
        job_timeout=args.job_timeout if args.job_timeout > 0 else None,
        retries=args.retries,
        idle_timeout=args.idle_timeout if args.idle_timeout > 0 else None,
        serve_dir=args.serve_dir,
        ledger_dir=args.ledger_dir,
        isolation="inline" if args.inline else "process",
    )
    service = PlacementService(config)
    recovered = service.recover()
    if recovered:
        print(f"recovered {len(recovered)} unfinished session(s): "
              + ", ".join(recovered))
    print(f"placement service listening on {args.socket} "
          f"(spool: {config.serve_dir})")
    states = ServeDaemon(service, args.socket).run()
    summary = ", ".join(f"{n} {state}" for state, n in sorted(states.items()))
    print(f"drained: {summary or 'no sessions'}")
    return 0


def _run_checkpointed(targets, args):
    """Fan experiments out with checkpoint/retry/timeout handling.

    Returns ``(results, failed)`` where ``results`` are the completed
    ``(name, FigureResult)`` pairs and ``failed`` the outcomes of jobs
    that exhausted their retry budget — a partial run reports cleanly
    instead of dying with a traceback.
    """
    from repro.harness.runner import run_experiments

    report = run_experiments(
        targets, accesses_per_core=args.accesses, scale=args.scale,
        seed=args.seed, cache_dir=args.cache_dir,
        jobs=_effective_jobs(args), checkpoint_dir=args.run_dir,
        resume=args.resume, job_timeout=args.job_timeout,
        retries=args.retries, fault_trials=args.fault_trials,
        policy_kernel=args.policy_kernel, cache_kernel=args.cache_kernel,
        multirun=args.multirun, telemetry=args.telemetry,
        obs_dir=args.obs_dir, return_report=True)
    failed = report.failed
    if failed:
        print(f"warning: {report.summary()}", file=sys.stderr)
        for outcome in failed:
            print(f"  {outcome.key}: {outcome.status} after "
                  f"{outcome.attempts} attempt(s): {outcome.error}",
                  file=sys.stderr)
    results = [outcome.result for outcome in report.outcomes
               if outcome.succeeded]
    return results, failed


def _effective_jobs(args) -> "int | None":
    """CLI jobs flag: 0 means "one per CPU" (i.e. let the runner pick)."""
    return None if args.jobs == 0 else args.jobs


if __name__ == "__main__":
    raise SystemExit(main())
