"""Sensitivity sweeps beyond the paper's figures.

The paper's conclusion points at "new opportunities for optimization of
performance, capacity, and reliability"; these sweeps explore the two
axes its evaluation holds fixed:

* :func:`capacity_sweep` — how the IPC/SER trade-off of each placement
  family moves as the fast memory grows relative to the footprint.
* :func:`fit_multiplier_sweep` — how the reliability penalty of
  performance-focused placement scales with the die-stacked raw-FIT
  gap (the trend Section 2.2 says "has continued to widen").
* :func:`mlp_sensitivity` — how much of the HMA performance win
  depends on workload memory-level parallelism.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import SystemConfig, knob_value
from repro.core.placement import (
    PerformanceFocusedPlacement,
    PlacementPolicy,
    Wr2RatioPlacement,
)
from repro.faults.ser import SerModel
from repro.harness.experiments import FigureResult
from repro.harness.reporting import gmean
from repro.sim.system import (
    StaticSpec,
    evaluate_static,
    evaluate_static_multi,
    prepare_workload,
)


def _config_with_fast_pages(base: SystemConfig, pages: int) -> SystemConfig:
    fast = replace(base.fast_memory, capacity_bytes=pages * 4096)
    return replace(base, fast_memory=fast)


def _capacity_row(item) -> list:
    """One sweep row: every workload evaluated at one capacity fraction.

    Module-level so process-pool workers can unpickle it; returns only
    JSON-serialisable values so rows journal inline into a resume
    manifest.
    """
    from repro.harness.shm import resolve_payload

    fraction, preps = item
    preps = resolve_payload(preps)
    perf_i, perf_s, wr2_i, wr2_s = [], [], [], []
    for prep in preps.values():
        pages = max(1, int(prep.workload_trace.footprint_pages * fraction))
        config = _config_with_fast_pages(prep.config, pages)
        small_prep = replace_config(prep, config)
        perf = evaluate_static(small_prep, PerformanceFocusedPlacement())
        wr2 = evaluate_static(small_prep, Wr2RatioPlacement())
        perf_i.append(perf.ipc_vs_ddr)
        perf_s.append(perf.ser_vs_ddr)
        wr2_i.append(wr2.ipc_vs_ddr)
        wr2_s.append(max(wr2.ser_vs_ddr, 1e-9))
    return [
        f"{fraction:.2f}",
        float(gmean(perf_i)), float(gmean(perf_s)),
        float(gmean(wr2_i)), float(gmean(wr2_s)),
    ]


def _capacity_workload(item) -> "list[list[float]]":
    """One multi-run job: every sweep fraction for one workload.

    The config batch (two policies x all fractions) rides a single
    :func:`~repro.sim.system.evaluate_static_multi` call, so the trace
    is replayed through one stacked kernel pass instead of once per
    (fraction, policy) point.  Returns one ``[perf_ipc, perf_ser,
    wr2_ipc, wr2_ser]`` quartet per fraction for the parent to fold
    across workloads.
    """
    from repro.harness.shm import resolve_payload

    name, fractions, preps = item
    prep = resolve_payload(preps)[name]
    perf, wr2 = PerformanceFocusedPlacement(), Wr2RatioPlacement()
    specs = []
    for fraction in fractions:
        pages = max(1, int(prep.workload_trace.footprint_pages * fraction))
        config = _config_with_fast_pages(prep.config, pages)
        specs.append(StaticSpec(perf, config=config))
        specs.append(StaticSpec(wr2, config=config))
    results = evaluate_static_multi(prep, specs)
    rows = []
    for j in range(len(fractions)):
        p, w = results[2 * j], results[2 * j + 1]
        rows.append([float(p.ipc_vs_ddr), float(p.ser_vs_ddr),
                     float(w.ipc_vs_ddr), float(max(w.ser_vs_ddr, 1e-9))])
    return rows


def capacity_sweep(
    workloads=("mcf", "milc", "mix1"),
    fractions=(0.05, 0.1, 0.2, 0.4, 0.8),
    scale: float = 1 / 1024,
    accesses_per_core: int = 10_000,
    seed: int = 0,
    jobs: "int | None" = 1,
    cache_dir: "str | None" = None,
    checkpoint_dir: "str | None" = None,
    resume: bool = False,
    job_timeout: "float | None" = None,
    retries: "int | None" = None,
    preps: "dict | None" = None,
) -> FigureResult:
    """Sweep HBM capacity as a fraction of the workload footprint.

    As capacity grows, the performance-focused and reliability-aware
    placements converge in IPC (everything hot fits) while their SER
    gap narrows much more slowly — vulnerable data keeps flowing into
    the weak memory.  ``jobs``/``cache_dir`` parallelise and persist
    the workload preparation (see :mod:`repro.harness.runner`);
    ``preps`` injects already-prepared workloads and skips that step.

    Under the ``multirun`` knob (the default) each *workload* is one
    fault-tolerant job whose fractions ride a single config-batched
    replay; with the knob off each *fraction* is one job evaluated
    point by point (the oracle path — rows are bit-identical either
    way).  Finished jobs journal into ``checkpoint_dir`` immediately,
    so a killed sweep restarted with ``resume=True`` recomputes only
    the unfinished jobs, and ``job_timeout``/``retries`` bound each
    job's execution.
    """
    from repro.harness.resilience import (RunManifest, checkpointed_map,
                                          run_key)
    from repro.harness.runner import prefetch_workloads
    from repro.harness.shm import shared_handoff

    multirun = bool(knob_value("multirun"))
    if preps is None:
        preps = prefetch_workloads(
            workloads, scale=scale, accesses_per_core=accesses_per_core,
            seed=seed, cache_dir=cache_dir, jobs=jobs,
        )
    manifest = None
    if checkpoint_dir is not None:
        manifest = RunManifest(
            checkpoint_dir,
            run_key=run_key(kind="capacity_sweep", workloads=list(workloads),
                            scale=scale, accesses=accesses_per_core,
                            seed=seed,
                            fanout="workload" if multirun else "fraction"),
            resume=resume)
    # Every job carries the same prepared workloads; the shared handoff
    # pickles their trace arrays into one shm segment for the whole
    # sweep instead of once per job, and workers map it once per
    # process.  The segment outlives pool respawns (resilient_map
    # re-dispatches into fresh workers, which simply re-attach) and is
    # unlinked here once the map has completed.
    with shared_handoff(preps) as preps_item:
        if multirun:
            names = list(preps)
            report = checkpointed_map(
                _capacity_workload,
                [(name, tuple(fractions), preps_item) for name in names],
                keys=[f"workload-{name}" for name in names],
                manifest=manifest, store="json", jobs=jobs,
                timeout=job_timeout, retries=retries)
        else:
            report = checkpointed_map(
                _capacity_row,
                [(fraction, preps_item) for fraction in fractions],
                keys=[f"fraction-{fraction:.4f}" for fraction in fractions],
                manifest=manifest, store="json", jobs=jobs,
                timeout=job_timeout, retries=retries)
    report.raise_if_failed()
    if multirun:
        # Re-fold the per-workload quartets into the oracle's
        # per-fraction rows (same values, same gmean order).
        cols = dict(zip(names, report.results))
        rows = []
        for j, fraction in enumerate(fractions):
            quads = [cols[name][j] for name in names]
            rows.append([
                f"{fraction:.2f}",
                float(gmean([q[0] for q in quads])),
                float(gmean([q[1] for q in quads])),
                float(gmean([q[2] for q in quads])),
                float(gmean([q[3] for q in quads])),
            ])
    else:
        rows = report.results
    return FigureResult(
        figure="Sweep",
        description="HBM capacity as a fraction of footprint",
        headers=["capacity frac", "perf IPC", "perf SER",
                 "wr2 IPC", "wr2 SER"],
        rows=rows,
    )


def replace_config(prep, config: SystemConfig):
    """A shallow PreparedWorkload copy bound to a different config."""
    from dataclasses import replace as dc_replace

    return dc_replace(prep, config=config)


def fit_multiplier_sweep(
    workload: str = "mix1",
    multipliers=(1.0, 2.0, 4.0, 7.0, 12.0),
    scale: float = 1 / 1024,
    accesses_per_core: int = 10_000,
    seed: int = 0,
) -> FigureResult:
    """Sweep the die-stacked raw-FIT multiplier.

    The SER blow-up of performance-focused placement scales linearly
    with the raw-FIT gap; reliability-aware placement flattens it.
    """
    prep = prepare_workload(workload, scale=scale,
                            accesses_per_core=accesses_per_core, seed=seed)
    configs = []
    for multiplier in multipliers:
        fast = replace(prep.config.fast_memory, fit_multiplier=multiplier)
        configs.append(replace(prep.config, fast_memory=fast))
    rows = []
    if knob_value("multirun"):
        # One deduplicated fault campaign and one batched replay pass:
        # the multiplier only moves the fault model, so every point
        # shares the same two (policy, placement) replays.
        ser_models = SerModel.for_systems(configs)
        perf_p, wr2_p = PerformanceFocusedPlacement(), Wr2RatioPlacement()
        specs = []
        for config, ser_model in zip(configs, ser_models):
            specs.append(StaticSpec(perf_p, config=config,
                                    ser_model=ser_model))
            specs.append(StaticSpec(wr2_p, config=config,
                                    ser_model=ser_model))
        results = evaluate_static_multi(prep, specs)
        for j, (multiplier, ser_model) in enumerate(
                zip(multipliers, ser_models)):
            rows.append([multiplier, ser_model.fit_ratio,
                         results[2 * j].ser_vs_ddr,
                         results[2 * j + 1].ser_vs_ddr])
    else:
        for multiplier, config in zip(multipliers, configs):
            ser_model = SerModel.for_system(config)
            swept = replace_config(prep, config)
            swept.ser_model = ser_model
            perf = evaluate_static(swept, PerformanceFocusedPlacement())
            wr2 = evaluate_static(swept, Wr2RatioPlacement())
            rows.append([multiplier, ser_model.fit_ratio,
                         perf.ser_vs_ddr, wr2.ser_vs_ddr])
    return FigureResult(
        figure="Sweep",
        description=f"Die-stacked raw-FIT multiplier ({workload})",
        headers=["multiplier", "FIT ratio", "perf SER vs DDR",
                 "wr2 SER vs DDR"],
        rows=rows,
    )


def mlp_sensitivity(
    workload: str = "libquantum",
    windows=(1, 2, 4, 8, 16),
    policy: "PlacementPolicy | None" = None,
    scale: float = 1 / 1024,
    accesses_per_core: int = 10_000,
    seed: int = 0,
) -> FigureResult:
    """Sweep the per-core outstanding-miss window.

    Bandwidth-bound workloads need MLP to exploit the HBM's channel
    parallelism: with a window of 1 the HMA win shrinks toward the
    bare latency difference.
    """
    from repro.dram.hma import HeterogeneousMemory
    from repro.sim.engine import replay

    if policy is None:
        policy = PerformanceFocusedPlacement()
    prep = prepare_workload(workload, scale=scale,
                            accesses_per_core=accesses_per_core, seed=seed)
    wt = prep.workload_trace
    fast_pages = policy.select_fast_pages(prep.stats, prep.capacity_pages)
    rows = []
    if knob_value("multirun"):
        # Specs differ only in the miss window, which is per-config
        # state in the stacked kernel: all (window, memory) points ride
        # one replay_multi pass.
        from repro.sim.engine import ReplaySpec, replay_multi

        specs = []
        for window in windows:
            windows_vec = [window] * prep.config.num_cores
            ddr = HeterogeneousMemory(prep.config)
            ddr.install_placement([], prep.stats.pages)
            hma = HeterogeneousMemory(prep.config)
            hma.install_placement(fast_pages, prep.stats.pages)
            specs.append(ReplaySpec(config=prep.config, hma=ddr,
                                    core_windows=windows_vec))
            specs.append(ReplaySpec(config=prep.config, hma=hma,
                                    core_windows=windows_vec))
        results = replay_multi(specs, wt.trace, wt.times)
        for j, window in enumerate(windows):
            base, res = results[2 * j], results[2 * j + 1]
            rows.append([window, base.ipc, res.ipc,
                         res.ipc / base.ipc if base.ipc else 0.0])
    else:
        for window in windows:
            windows_vec = [window] * prep.config.num_cores
            ddr = HeterogeneousMemory(prep.config)
            ddr.install_placement([], prep.stats.pages)
            base = replay(prep.config, ddr, wt.trace, wt.times,
                          core_windows=windows_vec)
            hma = HeterogeneousMemory(prep.config)
            hma.install_placement(fast_pages, prep.stats.pages)
            res = replay(prep.config, hma, wt.trace, wt.times,
                         core_windows=windows_vec)
            rows.append([window, base.ipc, res.ipc,
                         res.ipc / base.ipc if base.ipc else 0.0])
    return FigureResult(
        figure="Sweep",
        description=f"Miss-window (MLP) sensitivity ({workload})",
        headers=["window", "DDR-only IPC", "HMA IPC", "speedup"],
        rows=rows,
    )
