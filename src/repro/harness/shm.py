"""Zero-copy workload handoff for process-pool fan-out.

Every :func:`~repro.harness.sweeps.capacity_sweep` job item carries the
same prepared workloads, and a plain process-pool map re-pickles their
trace arrays (tens of MB at full volume) into every job.  This module
packs the large numpy arrays of an arbitrary picklable object graph
into ONE :class:`multiprocessing.shared_memory.SharedMemory` segment
and replaces them with tiny descriptors:

* :func:`share_payload` (parent) — pickle the object graph with the
  big arrays hoisted into a fresh segment; returns a picklable
  :class:`SharedPayload` handle a few KB in size.  When shared memory
  is unavailable, the ``shm_handoff`` knob is off, or the graph holds
  no big arrays, the object itself is returned — callers treat both
  shapes uniformly through :func:`resolve_payload`.
* :func:`resolve_payload` (worker) — reconstruct the object, mapping
  each hoisted array as a read-only view over the attached segment.
  Attachments are cached per process, so a worker that receives the
  same handle for many jobs maps the segment once; pool respawns
  simply re-attach in the fresh process.
* :func:`release_payload` / :func:`shared_handoff` (parent) — unlink
  the segment once the map completes.  Creation registers an
  ``atexit`` hook, so segments do not outlive a parent that errors
  out of its cleanup path.

The views are read-only on purpose: workers share one physical copy,
and a silent in-place mutation in one job would corrupt every sibling.
Workers that need to mutate make an explicit ``np.array(...)`` copy.

Sweep lifecycle — one segment per workload set, not per row
-----------------------------------------------------------

A config-batched sweep (:func:`~repro.harness.sweeps.capacity_sweep`
under the ``multirun`` knob) shares ONE segment across *every* job of
the sweep, not one per (fraction, policy) row:

1. The parent prepares the workloads once and enters
   :func:`shared_handoff`, which hoists their trace arrays into a
   single segment and yields the handle.
2. Every job item — one per *workload* under ``multirun``, one per
   sweep row on the oracle path — carries that same tiny handle; a
   worker's first :func:`resolve_payload` maps the segment and the
   per-process cache serves every later job (and every sweep fraction
   inside a job) from the mapping, zero-copy.
3. The segment must outlive the whole map, including pool respawns
   after a worker crash (the fresh process just re-attaches), so the
   parent unlinks it only when the ``with`` block exits; the
   ``atexit`` hook and :func:`reap_orphaned_segments` backstop
   parents that die before that.

The invariant callers rely on: a handle stays resolvable until the
``shared_handoff`` block that produced it closes, so job functions may
be dispatched, retried, or re-run on a respawned pool at any point in
between without re-pickling the arrays.
"""

from __future__ import annotations

import atexit
import io
import os
import pickle

import numpy as np

__all__ = [
    "SharedPayload",
    "reap_orphaned_segments",
    "release_payload",
    "resolve_payload",
    "share_payload",
    "shared_handoff",
    "shm_available",
]

#: Segment names are ``repro-shm-<owner pid>-<hex>``: the owner pid is
#: recoverable from the name alone, so a later process can reap
#: segments whose owner died before its ``atexit`` backstop ran
#: (SIGKILL, OOM) — see :func:`reap_orphaned_segments`.
SEGMENT_PREFIX = "repro-shm-"

#: Where POSIX shared memory surfaces as files (Linux).  Reaping is a
#: no-op on platforms without it.
_SHM_ROOT = "/dev/shm"

#: Arrays at least this large (bytes) are hoisted into the segment;
#: smaller ones ride along in the pickle stream where they are cheaper
#: than a descriptor + page-aligned slot.
DEFAULT_THRESHOLD = 2048

_ALIGN = 64


def shm_available() -> bool:
    """Whether POSIX shared memory is importable on this platform."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    return True


def _handoff_enabled() -> bool:
    from repro.config import knob_value

    return bool(knob_value("shm_handoff")) and shm_available()


class _HoistingPickler(pickle.Pickler):
    """Pickles an object graph, collecting large ndarrays by reference."""

    def __init__(self, file, arrays: list, threshold: int) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._arrays = arrays
        self._threshold = threshold

    def persistent_id(self, obj):
        # Base-class ndarrays only: subclasses may carry state the
        # view reconstruction would drop.
        if type(obj) is np.ndarray and obj.nbytes >= self._threshold:
            self._arrays.append(obj)
            return len(self._arrays) - 1
        return None


class _ViewUnpickler(pickle.Unpickler):
    def __init__(self, file, views) -> None:
        super().__init__(file)
        self._views = views

    def persistent_load(self, pid):
        return self._views[pid]


class SharedPayload:
    """Picklable handle: one shm segment + the residual pickle stream.

    ``specs`` maps each hoisted array to ``(offset, shape, dtype
    string)`` inside the segment named ``segment``.  Only the parent
    (creator) may :meth:`release`; workers only :meth:`load`.
    """

    def __init__(self, segment: str, specs, payload: bytes) -> None:
        self.segment = segment
        self.specs = specs
        self.payload = payload

    def __getstate__(self):
        return (self.segment, self.specs, self.payload)

    def __setstate__(self, state):
        self.segment, self.specs, self.payload = state

    def load(self):
        """Reconstruct the object graph (worker side, view-backed)."""
        views = _attached_views(self.segment, self.specs)
        return _ViewUnpickler(io.BytesIO(self.payload), views).load()

    def release(self) -> None:
        """Unlink the segment (parent side, idempotent)."""
        _release_segment(self.segment)


#: Worker-side cache: segment name -> (SharedMemory, views tuple).
#: Pool workers receive the same handle for every job; the mapping
#: happens once per process and survives until process exit.
_attached: "dict[str, tuple[object, tuple]]" = {}

#: Parent-side registry of segments this process created and has not
#: yet released, for idempotent release + atexit cleanup.  Values are
#: ``(SharedMemory, owner pid)``: forked pool workers inherit this
#: dict (and the atexit hook), and only the owning pid may unlink —
#: otherwise the first worker to exit would tear the segment out from
#: under the parent and every sibling.
_owned: "dict[str, tuple[object, int]]" = {}

#: Released-but-unclosable handles (live views at release time); kept
#: so their destructor never runs against exported buffers.
_zombies: "list[object]" = []


def _untrack(shm) -> None:
    """Detach a worker-side attachment from the resource tracker.

    Attaching registers the segment with ``resource_tracker`` in some
    CPython versions, whose cleanup would unlink a segment the parent
    still owns when the first worker exits.  Best-effort: newer
    Pythons take ``track=False`` at attach instead.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _retrack(shm) -> None:
    """Re-register an owner's segment just before unlinking it.

    Creation untracks (so a SIGKILL'd owner leaves the segment to
    :func:`reap_orphaned_segments`, not to a racing resource tracker),
    but ``SharedMemory.unlink`` unconditionally *unregisters* — so the
    clean release path must re-register first or the tracker daemon
    logs a KeyError for the unmatched unregister.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:
        pass


def _attach(name: str):
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
    return shm


def _attached_views(name: str, specs) -> tuple:
    cached = _attached.get(name)
    if cached is not None:
        return cached[1]
    if name in _owned:
        shm = _owned[name][0]  # creator (or fork child): already mapped
    else:
        shm = _attach(name)
    views = []
    buf = memoryview(shm.buf)
    for offset, shape, dtype in specs:
        arr = np.frombuffer(
            buf, dtype=np.dtype(dtype), count=int(np.prod(shape, dtype=np.int64)),
            offset=offset,
        ).reshape(shape)
        arr.flags.writeable = False
        views.append(arr)
    views = tuple(views)
    _attached[name] = (shm, views)
    return views


def _release_segment(name: str) -> None:
    entry = _owned.pop(name, None)
    if entry is None:
        return
    shm, owner = entry
    cached = _attached.pop(name, None)
    if cached is not None and cached[0] is not shm:
        # A same-process attach-by-name (not the creator's mapping):
        # its views may be referenced by callers, so never close it —
        # park it like any other live-view handle.
        _zombies.append(cached[0])
    if os.getpid() != owner:
        return  # fork child: the creating process unlinks, not us
    _retrack(shm)
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    try:
        shm.close()
    except BufferError:
        # A caller kept a resolved object alive past release: its
        # views still point into the mapping, so it cannot close yet.
        # The name is already unlinked; park the handle so its
        # ``__del__`` never re-raises, and let the mapping die with
        # the last view or the process.
        _zombies.append(shm)


def _release_all_owned() -> None:
    for name in list(_owned):
        _release_segment(name)


atexit.register(_release_all_owned)


def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid()}-{os.urandom(4).hex()}"


def _owner_pid(segment: str) -> "int | None":
    """The owner pid encoded in a segment name, or None."""
    if not segment.startswith(SEGMENT_PREFIX):
        return None
    head = segment[len(SEGMENT_PREFIX):].split("-", 1)[0]
    try:
        return int(head)
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def reap_orphaned_segments() -> "list[str]":
    """Unlink segments whose owning process no longer exists.

    The ``atexit`` backstop cannot run when the owner is SIGKILL'd, so
    its segments would otherwise leak until reboot.  Every creation
    site calls this first (and long-lived services may call it on
    startup): any ``repro-shm-<pid>-…`` entry whose pid is dead — and
    which this process does not own — is removed.  Returns the reaped
    segment names.
    """
    reaped = []
    try:
        entries = os.listdir(_SHM_ROOT)
    except OSError:
        return reaped
    for entry in entries:
        pid = _owner_pid(entry)
        if pid is None or entry in _owned or pid == os.getpid():
            continue
        if _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_ROOT, entry))
            reaped.append(entry)
        except OSError:
            continue  # raced another reaper, or not removable
    return reaped


def share_payload(obj, threshold: int = DEFAULT_THRESHOLD):
    """Pack ``obj`` for zero-copy handoff; the object itself when not.

    Returns a :class:`SharedPayload` whose pickled size is independent
    of the array payload, or ``obj`` unchanged when the ``shm_handoff``
    knob is off, shared memory is unavailable, or nothing in the graph
    clears ``threshold``.  Pass the result straight into pool job
    items and call :func:`resolve_payload` in the worker.
    """
    if not _handoff_enabled():
        return obj
    from multiprocessing import shared_memory

    arrays: "list[np.ndarray]" = []
    stream = io.BytesIO()
    _HoistingPickler(stream, arrays, threshold).dump(obj)
    if not arrays:
        return obj

    specs = []
    total = 0
    contiguous = [np.ascontiguousarray(a) for a in arrays]
    for arr in contiguous:
        total = -(-total // _ALIGN) * _ALIGN  # round up
        specs.append((total, arr.shape, arr.dtype.str))
        total += arr.nbytes
    reap_orphaned_segments()
    shm = None
    for _ in range(8):
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=max(total, 1), name=_segment_name())
            break
        except FileExistsError:
            continue  # astronomically unlikely name collision
    if shm is None:
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    # The owner's lifecycle is explicit (release/atexit) with
    # reap_orphaned_segments as the SIGKILL backstop; keeping the
    # resource tracker out avoids a racing second unlinker and its
    # leaked-object warnings.
    _untrack(shm)
    for (offset, _shape, _dtype), arr in zip(specs, contiguous):
        shm.buf[offset:offset + arr.nbytes] = arr.tobytes()
    _owned[shm.name] = (shm, os.getpid())
    return SharedPayload(shm.name, tuple(specs), stream.getvalue())


def resolve_payload(item):
    """The reconstructed object for a handle; anything else unchanged."""
    if isinstance(item, SharedPayload):
        return item.load()
    return item


def release_payload(item) -> None:
    """Release a handle's segment; a no-op for plain objects."""
    if isinstance(item, SharedPayload):
        item.release()


class shared_handoff:
    """``with shared_handoff(obj) as item:`` — packed for the duration.

    ``item`` is whatever :func:`share_payload` returned; the segment
    (if one was created) is unlinked on exit, after the pool map that
    consumed the items has completed.
    """

    def __init__(self, obj, threshold: int = DEFAULT_THRESHOLD) -> None:
        self._item = share_payload(obj, threshold)

    def __enter__(self):
        return self._item

    def __exit__(self, *exc) -> None:
        release_payload(self._item)
