"""The two-level Heterogeneous Memory Architecture.

:class:`HeterogeneousMemory` glues the fast (HBM-like) and slow
(DDR-like) :class:`~repro.dram.device.MemoryDevice` together behind a
page table: every application page maps to a frame in exactly one
device.  Placement policies install an initial mapping; migration
engines swap mappings at run time, paying the bandwidth cost of copying
4 KB on *both* devices, as in the paper ("the cost of migrating a page
... is governed by the slowest memory in the system").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LINES_PER_PAGE, SystemConfig
from repro.dram.device import MemoryDevice

#: Device ids used in page tables.
FAST, SLOW = 0, 1


@dataclass
class MigrationStats:
    """Accounting of dynamic page movement."""

    migrations_to_fast: int = 0
    migrations_to_slow: int = 0
    migration_seconds: float = 0.0

    @property
    def total(self) -> int:
        return self.migrations_to_fast + self.migrations_to_slow


class CapacityError(Exception):
    """Raised when a placement exceeds a device's frame capacity."""


class HeterogeneousMemory:
    """Fast + slow memories behind a migratable page table."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.fast = MemoryDevice(config.fast_memory)
        self.slow = MemoryDevice(config.slow_memory)
        self._devices = (self.fast, self.slow)
        self.fast_capacity_pages = config.fast_memory.num_pages
        self.slow_capacity_pages = config.slow_memory.num_pages
        #: page -> (device id, frame)
        self._page_table: "dict[int, tuple[int, int]]" = {}
        self._free_frames: "tuple[list[int], list[int]]" = ([], [])
        self._next_frame = [0, 0]
        self.migration_stats = MigrationStats()
        #: Pages exempt from migration (program annotations, Sec. 7).
        self.pinned: "set[int]" = set()

    # -- placement -----------------------------------------------------------

    def _alloc_frame(self, device: int) -> int:
        free = self._free_frames[device]
        if free:
            return free.pop()
        frame = self._next_frame[device]
        capacity = (self.fast_capacity_pages, self.slow_capacity_pages)[device]
        if frame >= capacity:
            raise CapacityError(
                f"device {device} out of frames ({capacity} pages)"
            )
        self._next_frame[device] = frame + 1
        return frame

    def map_page(self, page: int, device: int) -> None:
        """Install ``page`` into ``device`` (initial placement)."""
        if page in self._page_table:
            raise ValueError(f"page {page} already mapped")
        if device not in (FAST, SLOW):
            raise ValueError("device must be FAST (0) or SLOW (1)")
        self._page_table[page] = (device, self._alloc_frame(device))

    def install_placement(self, fast_pages, all_pages) -> None:
        """Map ``fast_pages`` into HBM and the rest of ``all_pages``
        into DDR."""
        fast_set = set(fast_pages)
        if len(fast_set) > self.fast_capacity_pages:
            raise CapacityError(
                f"placement has {len(fast_set)} pages for "
                f"{self.fast_capacity_pages} HBM frames"
            )
        for page in all_pages:
            self.map_page(int(page), FAST if int(page) in fast_set else SLOW)

    def device_of(self, page: int) -> int:
        """Device currently holding ``page`` (maps on demand to SLOW)."""
        entry = self._page_table.get(page)
        if entry is None:
            # First touch of an unplaced page: it faults into DDR, like
            # the paper's default backing store.
            self.map_page(page, SLOW)
            entry = self._page_table[page]
        return entry[0]

    def pages_in(self, device: int) -> "list[int]":
        return [p for p, (d, _f) in self._page_table.items() if d == device]

    def fast_occupancy(self) -> int:
        return sum(1 for d, _f in self._page_table.values() if d == FAST)

    # -- request service -----------------------------------------------------

    def service(self, page: int, line_in_page: int, arrival: float,
                is_write: bool) -> float:
        """Serve one line request; returns its finish time in seconds."""
        device_id = self.device_of(page)
        _, frame = self._page_table[page]
        device = self._devices[device_id]
        local_line = frame * LINES_PER_PAGE + line_in_page
        return device.service(local_line, arrival, is_write)

    # -- migration -----------------------------------------------------------

    def migrate_pairs(
        self,
        to_fast: "list[int]",
        to_slow: "list[int]",
        now: float,
    ) -> float:
        """Swap page sets between devices at time ``now``.

        Pages in ``to_slow`` leave HBM first (freeing frames), then
        pages in ``to_fast`` move in.  Pinned pages are skipped.  Each
        moved page costs a 4 KB transfer on both devices; the method
        returns the time the migration traffic drains.
        """
        to_slow = [p for p in to_slow if p not in self.pinned]
        to_fast = [p for p in to_fast if p not in self.pinned]

        moved = 0
        for page in to_slow:
            entry = self._page_table.get(page)
            if entry is None or entry[0] != FAST:
                continue
            self._free_frames[FAST].append(entry[1])
            self._page_table[page] = (SLOW, self._alloc_frame(SLOW))
            self.migration_stats.migrations_to_slow += 1
            moved += 1

        free_fast = (
            self.fast_capacity_pages - self._next_frame[FAST]
            + len(self._free_frames[FAST])
        )
        for page in to_fast:
            if free_fast <= 0:
                break
            entry = self._page_table.get(page)
            if entry is not None and entry[0] == FAST:
                continue
            if entry is not None:
                self._free_frames[SLOW].append(entry[1])
            self._page_table[page] = (FAST, self._alloc_frame(FAST))
            self.migration_stats.migrations_to_fast += 1
            free_fast -= 1
            moved += 1

        if moved == 0:
            return now
        lines = moved * LINES_PER_PAGE
        finish_fast = self.fast.occupy_bandwidth(now, lines)
        finish_slow = self.slow.occupy_bandwidth(now, lines)
        finish = max(finish_fast, finish_slow)
        self.migration_stats.migration_seconds += finish - now
        return finish

    def pin(self, pages) -> None:
        """Mark pages as immune to migration (program annotations)."""
        self.pinned.update(int(p) for p in pages)
