"""The two-level Heterogeneous Memory Architecture.

:class:`HeterogeneousMemory` glues the fast (HBM-like) and slow
(DDR-like) :class:`~repro.dram.device.MemoryDevice` together behind a
page table: every application page maps to a frame in exactly one
device.  Placement policies install an initial mapping; migration
engines swap mappings at run time, paying the bandwidth cost of copying
4 KB on *both* devices, as in the paper ("the cost of migrating a page
... is governed by the slowest memory in the system").

The page table is array-backed: two dense int arrays indexed by page
number hold the owning device and frame, so whole trace chunks can be
translated with one fancy-indexing operation (:meth:`route_batch`,
:meth:`service_batch`) instead of a per-request dict lookup.  Page
numbers produced by the trace generators are compact (0..footprint),
which keeps the arrays small; they grow geometrically on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.config import LINES_PER_PAGE, SystemConfig
from repro.dram.device import MemoryDevice

#: Device ids used in page tables.
FAST, SLOW = 0, 1

#: Sentinel for "page not mapped" in the device column.
_UNMAPPED = -1


@dataclass
class MigrationStats:
    """Accounting of dynamic page movement."""

    migrations_to_fast: int = 0
    migrations_to_slow: int = 0
    migration_seconds: float = 0.0

    @property
    def total(self) -> int:
        return self.migrations_to_fast + self.migrations_to_slow


class CapacityError(Exception):
    """Raised when a placement exceeds a device's frame capacity."""


class HeterogeneousMemory:
    """Fast + slow memories behind a migratable page table."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.fast = MemoryDevice(config.fast_memory)
        self.slow = MemoryDevice(config.slow_memory)
        self._devices = (self.fast, self.slow)
        self.fast_capacity_pages = config.fast_memory.num_pages
        self.slow_capacity_pages = config.slow_memory.num_pages
        #: page -> device id (-1 = unmapped) and page -> frame, dense.
        self._pt_device = np.full(1024, _UNMAPPED, dtype=np.int16)
        self._pt_frame = np.zeros(1024, dtype=np.int64)
        self._free_frames: "tuple[list[int], list[int]]" = ([], [])
        self._next_frame = [0, 0]
        self._occupancy = [0, 0]
        #: Pages currently resident in the fast device, maintained
        #: incrementally so residency snapshots are O(|HBM|), not
        #: O(footprint).
        self._fast_set: "set[int]" = set()
        self.migration_stats = MigrationStats()
        #: Pages exempt from migration (program annotations, Sec. 7).
        self.pinned: "set[int]" = set()

    # -- placement -----------------------------------------------------------

    def _ensure_table(self, max_page: int) -> None:
        """Grow the page-table arrays to cover ``max_page``."""
        size = len(self._pt_device)
        if max_page < size:
            return
        while size <= max_page:
            size *= 2
        device = np.full(size, _UNMAPPED, dtype=np.int16)
        frame = np.zeros(size, dtype=np.int64)
        device[: len(self._pt_device)] = self._pt_device
        frame[: len(self._pt_frame)] = self._pt_frame
        self._pt_device = device
        self._pt_frame = frame

    def _alloc_frame(self, device: int) -> int:
        free = self._free_frames[device]
        if free:
            return free.pop()
        frame = self._next_frame[device]
        capacity = (self.fast_capacity_pages, self.slow_capacity_pages)[device]
        if frame >= capacity:
            raise CapacityError(
                f"device {device} out of frames ({capacity} pages)"
            )
        self._next_frame[device] = frame + 1
        return frame

    def map_page(self, page: int, device: int) -> None:
        """Install ``page`` into ``device`` (initial placement)."""
        page = int(page)
        if page < 0:
            raise ValueError("page numbers must be non-negative")
        if device not in (FAST, SLOW):
            raise ValueError("device must be FAST (0) or SLOW (1)")
        self._ensure_table(page)
        if self._pt_device[page] != _UNMAPPED:
            raise ValueError(f"page {page} already mapped")
        frame = self._alloc_frame(device)
        self._pt_device[page] = device
        self._pt_frame[page] = frame
        self._occupancy[device] += 1
        if device == FAST:
            self._fast_set.add(page)

    def install_placement(self, fast_pages, all_pages) -> None:
        """Map ``fast_pages`` into HBM and the rest of ``all_pages``
        into DDR.

        The common case — distinct, non-negative, previously unmapped
        pages installed within capacity on a table whose free lists are
        empty — is applied as a handful of array writes with frames
        assigned in ``all_pages`` appearance order per device, exactly
        as the per-page loop would.  Any other case (duplicates,
        already-mapped pages, overflow, recycled frames) falls back to
        the scalar loop so partial state on the error paths stays
        identical.
        """
        fast_set = set(int(p) for p in fast_pages)
        if len(fast_set) > self.fast_capacity_pages:
            raise CapacityError(
                f"placement has {len(fast_set)} pages for "
                f"{self.fast_capacity_pages} HBM frames"
            )
        if not isinstance(all_pages, (np.ndarray, list, tuple, range)):
            all_pages = list(all_pages)
        if self._install_bulk(fast_set, all_pages):
            return
        for page in all_pages:
            self.map_page(int(page), FAST if int(page) in fast_set else SLOW)

    def _install_bulk(self, fast_set, all_pages) -> bool:
        """Vectorised :meth:`install_placement` body; False → use loop."""
        if self._free_frames[FAST] or self._free_frames[SLOW]:
            return False
        try:
            pages = np.asarray(all_pages, dtype=np.int64).ravel()
        except (TypeError, ValueError):
            return False
        if not len(pages):
            return True
        if int(pages.min()) < 0:
            return False
        uniq = np.unique(pages)
        if len(uniq) != len(pages):
            return False
        self._ensure_table(int(pages.max()))
        if (self._pt_device[pages] != _UNMAPPED).any():
            return False
        if fast_set:
            is_fast = np.isin(pages, np.fromiter(
                fast_set, dtype=np.int64, count=len(fast_set)))
        else:
            is_fast = np.zeros(len(pages), dtype=bool)
        n_fast = int(np.count_nonzero(is_fast))
        n_slow = len(pages) - n_fast
        if (self._next_frame[FAST] + n_fast > self.fast_capacity_pages
                or self._next_frame[SLOW] + n_slow > self.slow_capacity_pages):
            return False  # overflow mid-loop: replicate partial state
        for device, sel, count in ((FAST, is_fast, n_fast),
                                   (SLOW, ~is_fast, n_slow)):
            chosen = pages[sel]
            base = self._next_frame[device]
            self._pt_device[chosen] = device
            self._pt_frame[chosen] = base + np.arange(count, dtype=np.int64)
            self._next_frame[device] = base + count
            self._occupancy[device] += count
        self._fast_set.update(pages[is_fast].tolist())
        return True

    def lookup(self, page: int) -> "tuple[int, int]":
        """``(device, frame)`` of ``page``, faulting it in on demand."""
        page = int(page)
        if page >= len(self._pt_device) or self._pt_device[page] == _UNMAPPED:
            # First touch of an unplaced page: it faults into DDR, like
            # the paper's default backing store.
            self.map_page(page, SLOW)
        return int(self._pt_device[page]), int(self._pt_frame[page])

    def device_of(self, page: int) -> int:
        """Device currently holding ``page`` (maps on demand to SLOW)."""
        return self.lookup(page)[0]

    def ensure_mapped(self, pages: np.ndarray) -> None:
        """Fault in every unmapped page of ``pages`` (first-touch order).

        Vectorised counterpart of the on-demand fault in
        :meth:`lookup`: allocation order follows the first occurrence
        of each page in ``pages``, so frame assignment is identical to
        servicing the requests one at a time.
        """
        if not len(pages):
            return
        pages = np.asarray(pages, dtype=np.int64)
        self._ensure_table(int(pages.max()))
        unmapped = pages[self._pt_device[pages] == _UNMAPPED]
        if not len(unmapped):
            return
        _uniq, first = np.unique(unmapped, return_index=True)
        for page in unmapped[np.sort(first)].tolist():
            self.map_page(page, SLOW)

    def pages_in(self, device: int) -> "list[int]":
        return np.flatnonzero(self._pt_device == device).tolist()

    def pages_in_array(self, device: int) -> np.ndarray:
        """Pages resident in ``device`` as an ascending int64 array."""
        return np.flatnonzero(self._pt_device == device).astype(np.int64)

    def fast_mask(self, pages: np.ndarray) -> np.ndarray:
        """Boolean mask: is each of ``pages`` resident in fast memory?

        Vectorised residency test against the flat device column —
        pages beyond the table (never mapped) are not resident.
        """
        pages = np.asarray(pages, dtype=np.int64)
        table = self._pt_device
        if pages.size and int(pages.min()) >= 0 \
                and int(pages.max()) < len(table):
            return table[pages] == FAST
        mask = np.zeros(len(pages), dtype=bool)
        valid = (pages >= 0) & (pages < len(table))
        mask[valid] = table[pages[valid]] == FAST
        return mask

    def page_entries(self) -> "Iterator[tuple[int, int, int]]":
        """Iterate ``(page, device, frame)`` over every mapped page."""
        for page in np.flatnonzero(self._pt_device != _UNMAPPED).tolist():
            yield page, int(self._pt_device[page]), int(self._pt_frame[page])

    def fast_occupancy(self) -> int:
        return self._occupancy[FAST]

    def fast_pages_snapshot(self) -> "set[int]":
        """A copy of the current fast-device residency set."""
        return set(self._fast_set)

    def page_tables(self) -> "tuple[np.ndarray, np.ndarray]":
        """The live dense page-table columns ``(device, frame)``.

        Views, not copies: migrations mutate them in place and
        :meth:`_ensure_table` may replace them wholesale, so callers
        (the multi-run kernel) must re-fetch per chunk and never cache
        across operations that can map pages.
        """
        return self._pt_device, self._pt_frame

    # -- request service -----------------------------------------------------

    def service(self, page: int, line_in_page: int, arrival: float,
                is_write: bool) -> float:
        """Serve one line request; returns its finish time in seconds."""
        device_id, frame = self.lookup(page)
        device = self._devices[device_id]
        local_line = frame * LINES_PER_PAGE + line_in_page
        return device.service(local_line, arrival, is_write)

    def route_batch(
        self, pages: np.ndarray, lines_in_page: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Translate whole request arrays through the page table.

        Returns ``(device_ids, local_lines)``; unmapped pages fault
        into DDR in first-touch order, exactly as the scalar
        :meth:`service` path would.
        """
        pages = np.asarray(pages, dtype=np.int64)
        self.ensure_mapped(pages)
        device_ids = self._pt_device[pages].astype(np.int64)
        local_lines = (
            self._pt_frame[pages] * LINES_PER_PAGE
            + np.asarray(lines_in_page, dtype=np.int64)
        )
        return device_ids, local_lines

    def service_batch(
        self,
        pages: np.ndarray,
        lines_in_page: np.ndarray,
        arrivals: np.ndarray,
        is_write: np.ndarray,
    ) -> np.ndarray:
        """Serve a whole request batch; returns per-request finish times.

        Equivalent to calling :meth:`service` once per request in
        order (same timings, same device state afterwards), but the
        address translation and channel/bank/row routing are computed
        vectorially; only the inherently sequential bank/channel
        busy-until resolution runs in a tight loop.
        """
        n = len(pages)
        if n == 0:
            return np.empty(0)
        device_ids, local_lines = self.route_batch(pages, lines_in_page)
        fast, slow = self.fast, self.slow
        is_fast = device_ids == FAST
        f_ch, f_bank, f_row = fast.route_arrays(local_lines)
        s_ch, s_bank, s_row = slow.route_arrays(local_lines)
        channel = np.where(is_fast, f_ch, s_ch)
        bank = np.where(is_fast, f_bank, s_bank)
        rows = np.where(is_fast, f_row, s_row).tolist()

        # Flat global ids: fast banks/channels first, then slow.
        f_bpc, s_bpc = fast.banks_per_channel, slow.banks_per_channel
        gids = np.where(
            is_fast,
            channel * f_bpc + bank,
            fast.num_banks_total + channel * s_bpc + bank,
        ).tolist()
        cids = np.where(is_fast, channel, fast.num_channels + channel).tolist()
        hit_s = np.where(is_fast, fast.hit_seconds, slow.hit_seconds).tolist()
        miss_s = np.where(is_fast, fast.miss_seconds,
                          slow.miss_seconds).tolist()
        conf_s = np.where(is_fast, fast.conflict_seconds,
                          slow.conflict_seconds).tolist()
        bursts = np.where(is_fast, fast.burst_seconds,
                          slow.burst_seconds).tolist()
        dev_list = device_ids.tolist()
        arrivals_l = np.asarray(arrivals, dtype=float).tolist()
        writes_l = np.asarray(is_write, dtype=bool).tolist()

        bank_open, bank_busy, bank_hits, bank_misses, bank_conflicts = \
            flatten_bank_state(fast, slow)
        chan_busy = list(fast.channel_busy_until) + list(slow.channel_busy_until)
        reads = [fast.stats.reads, slow.stats.reads]
        writes = [fast.stats.writes, slow.stats.writes]
        read_lat = [fast.stats.total_read_latency, slow.stats.total_read_latency]
        busy = [fast.stats.busy_time, slow.stats.busy_time]

        finishes = [0.0] * n
        for i in range(n):
            arrival = arrivals_l[i]
            g = gids[i]
            start = arrival if arrival > bank_busy[g] else bank_busy[g]
            row = rows[i]
            open_row = bank_open[g]
            if open_row == row:
                bank_hits[g] += 1
                access_done = start + hit_s[i]
            elif open_row < 0:
                bank_misses[g] += 1
                access_done = start + miss_s[i]
            else:
                bank_conflicts[g] += 1
                access_done = start + conf_s[i]
            bank_open[g] = row
            burst = bursts[i]
            c = cids[i]
            burst_start = access_done - burst
            if chan_busy[c] > burst_start:
                burst_start = chan_busy[c]
            finish = burst_start + burst
            chan_busy[c] = finish
            bank_busy[g] = finish
            d = dev_list[i]
            if writes_l[i]:
                writes[d] += 1
            else:
                reads[d] += 1
                read_lat[d] += finish - arrival
            busy[d] += burst
            finishes[i] = finish

        restore_bank_state(fast, slow, bank_open, bank_busy,
                           bank_hits, bank_misses, bank_conflicts)
        fast.channel_busy_until = chan_busy[: fast.num_channels]
        slow.channel_busy_until = chan_busy[fast.num_channels:]
        for d, device in enumerate((fast, slow)):
            device.stats.reads = reads[d]
            device.stats.writes = writes[d]
            device.stats.total_read_latency = read_lat[d]
            device.stats.busy_time = busy[d]
        return np.asarray(finishes)

    # -- migration -----------------------------------------------------------

    def migrate_pairs(
        self,
        to_fast: "list[int]",
        to_slow: "list[int]",
        now: float,
    ) -> float:
        """Swap page sets between devices at time ``now``.

        Pages in ``to_slow`` leave HBM first (freeing frames), then
        pages in ``to_fast`` move in.  Pinned pages are skipped, as is
        any page named in *both* directions (it would be swapped out
        and straight back in, double-counting migration stats and copy
        bandwidth); duplicate entries within a list count once.  Each
        moved page costs a 4 KB transfer on both devices; the method
        returns the time the migration traffic drains.

        Both directions are applied as batched array updates.  The
        observable state transition is identical to migrating page by
        page in list order: frames free and reallocate in the same
        LIFO order (demotions drain the SLOW free list front-to-back
        of the demotion list, promotions reuse the just-freed HBM
        frames newest-first), the promotion budget counts only pages
        that actually move, and the page table grows only as far as
        the largest page actually admitted.
        """
        pinned = self.pinned
        to_slow = [int(p) for p in to_slow]
        to_fast = [int(p) for p in to_fast]
        if pinned:
            to_slow = [p for p in to_slow if p not in pinned]
            to_fast = [p for p in to_fast if p not in pinned]
        to_slow = list(dict.fromkeys(to_slow))
        to_fast = list(dict.fromkeys(to_fast))
        both = set(to_fast) & set(to_slow)
        if both:
            to_slow = [p for p in to_slow if p not in both]
            to_fast = [p for p in to_fast if p not in both]

        pt_device, pt_frame = self._pt_device, self._pt_frame
        table_size = len(pt_device)
        free_fast_frames, free_slow_frames = self._free_frames
        moved = 0

        overflow = False
        if to_slow:
            arr = np.asarray(to_slow, dtype=np.int64)
            sel = arr if max(to_slow) < table_size else arr[arr < table_size]
            sel = sel[pt_device[sel] == FAST]
            m = len(sel)
            # SLOW headroom; a demotion beyond it raises CapacityError
            # after the in-budget prefix has been applied and the
            # failing page's HBM frame has been freed — exactly the
            # intermediate state the per-page loop leaves behind.
            headroom = (len(free_slow_frames) + self.slow_capacity_pages
                        - self._next_frame[SLOW])
            if m > headroom:
                overflow = True
                failing = int(sel[headroom])
                sel, m = sel[:headroom], headroom
            if m:
                freed = pt_frame[sel].tolist()
                take = min(m, len(free_slow_frames))
                frames = free_slow_frames[-take:][::-1] if take else []
                if take:
                    del free_slow_frames[-take:]
                if m > take:
                    nf = self._next_frame[SLOW]
                    frames += range(nf, nf + m - take)
                    self._next_frame[SLOW] = nf + m - take
                pt_device[sel] = SLOW
                pt_frame[sel] = frames
                free_fast_frames.extend(freed)
                self._occupancy[FAST] -= m
                self._occupancy[SLOW] += m
                self._fast_set.difference_update(sel.tolist())
                self.migration_stats.migrations_to_slow += m
                moved += m
            if overflow:
                free_fast_frames.append(int(pt_frame[failing]))
                raise CapacityError(
                    f"device {SLOW} out of frames "
                    f"({self.slow_capacity_pages} pages)"
                )

        free_fast = (
            self.fast_capacity_pages - self._next_frame[FAST]
            + len(free_fast_frames)
        )
        if to_fast and free_fast > 0:
            arr = np.asarray(to_fast, dtype=np.int64)
            in_table = max(to_fast) < table_size
            if in_table:
                dev = pt_device[arr]
            else:
                small = arr < table_size
                dev = np.full(len(arr), _UNMAPPED, dtype=np.int16)
                dev[small] = pt_device[arr[small]]
            cand = arr[dev != FAST][:free_fast]
            m = len(cand)
            if m:
                if not in_table:
                    top = int(cand.max())
                    if top >= table_size:
                        self._ensure_table(top)
                        pt_device, pt_frame = \
                            self._pt_device, self._pt_frame
                mapped = cand[pt_device[cand] != _UNMAPPED]
                n_mapped = len(mapped)
                free_slow_frames.extend(pt_frame[mapped].tolist())
                take = min(m, len(free_fast_frames))
                frames = free_fast_frames[-take:][::-1] if take else []
                if take:
                    del free_fast_frames[-take:]
                if m > take:
                    # Never exceeds HBM capacity: the budget already
                    # bounds allocations by free frames + fresh frames.
                    nf = self._next_frame[FAST]
                    frames += range(nf, nf + m - take)
                    self._next_frame[FAST] = nf + m - take
                pt_device[cand] = FAST
                pt_frame[cand] = frames
                self._occupancy[SLOW] -= n_mapped
                self._occupancy[FAST] += m
                self._fast_set.update(cand.tolist())
                self.migration_stats.migrations_to_fast += m
                moved += m

        if moved == 0:
            return now
        lines = moved * LINES_PER_PAGE
        finish_fast = self.fast.occupy_bandwidth(now, lines)
        finish_slow = self.slow.occupy_bandwidth(now, lines)
        finish = max(finish_fast, finish_slow)
        self.migration_stats.migration_seconds += finish - now
        return finish

    def pin(self, pages) -> None:
        """Mark pages as immune to migration (program annotations)."""
        self.pinned.update(int(p) for p in pages)


def flatten_bank_state(fast: MemoryDevice, slow: MemoryDevice):
    """Flatten both devices' bank state into parallel lists.

    Global bank order matches the gid computation: all fast banks
    (channel-major) first, then all slow banks.
    """
    bank_open: "list[int]" = []
    bank_busy: "list[float]" = []
    hits: "list[int]" = []
    misses: "list[int]" = []
    conflicts: "list[int]" = []
    for device in (fast, slow):
        for channel_banks in device.banks:
            for bank in channel_banks:
                state = bank.state
                bank_open.append(-1 if state.open_row is None
                                 else state.open_row)
                bank_busy.append(state.busy_until)
                hits.append(bank.row_hits)
                misses.append(bank.row_misses)
                conflicts.append(bank.row_conflicts)
    return bank_open, bank_busy, hits, misses, conflicts


def restore_bank_state(fast, slow, bank_open, bank_busy, hits, misses,
                       conflicts) -> None:
    """Write flattened bank state back into the device objects."""
    i = 0
    for device in (fast, slow):
        for channel_banks in device.banks:
            for bank in channel_banks:
                bank.state.open_row = None if bank_open[i] < 0 else bank_open[i]
                bank.state.busy_until = bank_busy[i]
                bank.row_hits = hits[i]
                bank.row_misses = misses[i]
                bank.row_conflicts = conflicts[i]
                i += 1
