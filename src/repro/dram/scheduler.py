"""An FR-FCFS DRAM channel scheduler with write draining and refresh.

The in-loop replay engine uses the fast busy-until model in
:mod:`repro.dram.device`; this module provides the higher-fidelity
*batch* scheduler Ramulator implements: given the full arrival trace of
one channel, it replays the controller's decisions cycle by cycle:

* **FR-FCFS** (first-ready, first-come-first-served): among requests
  whose bank is ready, row-buffer hits are served before older misses;
  ties break by arrival order [Rixner et al.].
* **Write draining**: reads have priority; writes buffer until the
  write queue reaches a high watermark (or no reads are pending), then
  drain to a low watermark — the standard controller policy the paper's
  posted-write traffic relies on.
* **Refresh**: every ``tREFI`` the whole channel stalls for ``tRFC``.

The scheduler is used by the scheduler-ablation benchmark and by tests
that bound the busy-until model's error; it shares the
:class:`~repro.dram.bank.Bank` row-buffer state machine with the fast
model so the two agree on per-access latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import DramTiming
from repro.dram.bank import Bank


@dataclass
class Request:
    """One line request presented to a channel."""

    arrival: float
    bank: int
    row: int
    is_write: bool
    #: Filled by the scheduler.
    start: float = field(default=0.0, compare=False)
    finish: float = field(default=0.0, compare=False)


@dataclass(frozen=True)
class SchedulerConfig:
    """Controller policy knobs."""

    num_banks: int = 8
    timing: DramTiming = field(default_factory=DramTiming)
    clock_period: float = 1e-9
    #: Bus occupancy of one line transfer, in seconds.
    burst_seconds: float = 4e-9
    #: Write-queue watermarks (drain starts at high, stops at low).
    write_high_watermark: int = 16
    write_low_watermark: int = 4
    #: Refresh interval/penalty in seconds; 0 disables refresh.
    refresh_interval: float = 0.0
    refresh_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ValueError("num_banks must be positive")
        if not 0 <= self.write_low_watermark <= self.write_high_watermark:
            raise ValueError("watermarks must satisfy 0 <= low <= high")
        if self.refresh_interval < 0 or self.refresh_penalty < 0:
            raise ValueError("refresh parameters must be non-negative")


class ChannelScheduler:
    """Batch FR-FCFS simulation of one channel."""

    def __init__(self, config: SchedulerConfig) -> None:
        self.config = config
        self.banks = [
            Bank(config.timing, config.clock_period)
            for _ in range(config.num_banks)
        ]
        self.row_hits_served = 0
        self.requests_served = 0

    # -- policy --------------------------------------------------------------

    def _select(self, pending: "list[Request]", now: float) -> "Request | None":
        """FR-FCFS selection among requests arrived by ``now``.

        Only banks that are ready (busy_until <= now) are schedulable;
        among those, open-row hits win, oldest first; otherwise the
        oldest schedulable request.
        """
        best_hit = None
        best_any = None
        for req in pending:
            if req.arrival > now:
                continue
            bank = self.banks[req.bank]
            if bank.state.busy_until > now:
                continue
            if bank.state.open_row == req.row:
                if best_hit is None or req.arrival < best_hit.arrival:
                    best_hit = req
            if best_any is None or req.arrival < best_any.arrival:
                best_any = req
        return best_hit if best_hit is not None else best_any

    def _next_event(self, pending: "list[Request]", now: float) -> float:
        """Earliest strictly-future time at which anything can change."""
        candidates = []
        for req in pending:
            if req.arrival > now:
                candidates.append(req.arrival)
            else:
                release = self.banks[req.bank].state.busy_until
                if release > now:
                    candidates.append(release)
        return min(candidates) if candidates else float("inf")

    # -- simulation ------------------------------------------------------------

    def simulate(self, requests: "list[Request]") -> "list[Request]":
        """Schedule all requests; fills start/finish in place.

        Returns the requests sorted by finish time.
        """
        cfg = self.config
        read_q = [r for r in sorted(requests, key=lambda r: r.arrival)
                  if not r.is_write]
        write_q = [r for r in sorted(requests, key=lambda r: r.arrival)
                   if r.is_write]
        now = 0.0
        bus_free = 0.0
        next_refresh = cfg.refresh_interval if cfg.refresh_interval else None
        draining = False

        while read_q or write_q:
            # Refresh: stall every bank.
            if next_refresh is not None and now >= next_refresh:
                stall_until = next_refresh + cfg.refresh_penalty
                for bank in self.banks:
                    bank.state.busy_until = max(bank.state.busy_until,
                                                stall_until)
                next_refresh += cfg.refresh_interval
                now = max(now, stall_until)
                continue

            # Write-drain hysteresis.
            arrived_writes = sum(1 for r in write_q if r.arrival <= now)
            arrived_reads = sum(1 for r in read_q if r.arrival <= now)
            if draining and arrived_writes <= cfg.write_low_watermark:
                draining = False
            elif not draining and (
                arrived_writes >= cfg.write_high_watermark
                or (arrived_reads == 0 and arrived_writes > 0)
            ):
                draining = True

            queue = write_q if (draining or not read_q) else read_q
            chosen = self._select(queue, now)
            if chosen is None:
                # Opportunistic issue: the active queue is blocked on
                # busy banks, but the other queue may have a request
                # for a free bank — issue it rather than idling.
                other = read_q if queue is write_q else write_q
                chosen = self._select(other, now)
                if chosen is not None:
                    queue = other
            if chosen is None:
                # Nothing schedulable anywhere: advance to the next
                # arrival or bank-release event (bounded by refresh).
                horizon = self._next_event(read_q + write_q, now)
                if next_refresh is not None:
                    horizon = min(horizon, next_refresh)
                if horizon <= now:
                    raise RuntimeError(
                        "scheduler made no progress; inconsistent state"
                    )
                now = horizon
                continue

            bank = self.banks[chosen.bank]
            start, access_done = bank.service(chosen.row, max(now, chosen.arrival))
            burst_start = max(access_done - cfg.burst_seconds, bus_free)
            finish = burst_start + cfg.burst_seconds
            bus_free = finish
            bank.state.busy_until = max(bank.state.busy_until, finish)
            chosen.start = start
            chosen.finish = finish
            self.requests_served += 1
            if bank.row_hits and bank.state.open_row == chosen.row:
                pass  # hit accounting lives in the bank already
            queue.remove(chosen)
            now = start

        done = sorted(requests, key=lambda r: r.finish)
        self.row_hits_served = sum(b.row_hits for b in self.banks)
        return done

    # -- statistics --------------------------------------------------------------

    def row_hit_rate(self) -> float:
        hits = sum(b.row_hits for b in self.banks)
        total = hits + sum(b.row_misses + b.row_conflicts for b in self.banks)
        return hits / total if total else 0.0


def fcfs_reference(requests: "list[Request]",
                   config: SchedulerConfig) -> "list[Request]":
    """Strict arrival-order scheduling (the baseline FR-FCFS beats)."""
    banks = [Bank(config.timing, config.clock_period)
             for _ in range(config.num_banks)]
    bus_free = 0.0
    for req in sorted(requests, key=lambda r: r.arrival):
        bank = banks[req.bank]
        start, access_done = bank.service(req.row, req.arrival)
        burst_start = max(access_done - config.burst_seconds, bus_free)
        finish = burst_start + config.burst_seconds
        bus_free = finish
        bank.state.busy_until = max(bank.state.busy_until, finish)
        req.start = start
        req.finish = finish
    return sorted(requests, key=lambda r: r.finish)
