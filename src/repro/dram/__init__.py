"""DRAM substrate: bank/device timing models and the two-level HMA."""

from repro.dram.bank import Bank, BankState
from repro.dram.device import LINES_PER_ROW, DeviceStats, MemoryDevice
from repro.dram.scheduler import (
    ChannelScheduler,
    Request,
    SchedulerConfig,
    fcfs_reference,
)
from repro.dram.dram_cache import DramCacheStats, DramCacheSystem
from repro.dram.hma import (
    FAST,
    SLOW,
    CapacityError,
    HeterogeneousMemory,
    MigrationStats,
)

__all__ = [
    "Bank",
    "BankState",
    "MemoryDevice",
    "DeviceStats",
    "LINES_PER_ROW",
    "HeterogeneousMemory",
    "MigrationStats",
    "CapacityError",
    "FAST",
    "SLOW",
    "ChannelScheduler",
    "SchedulerConfig",
    "Request",
    "fcfs_reference",
    "DramCacheSystem",
    "DramCacheStats",
]
