"""An event-driven DRAM device model (the Ramulator substitute).

One :class:`MemoryDevice` is a full memory — channels x ranks x banks —
with a busy-until scheduling model: each request is steered to its bank
by address, pays the row-buffer-dependent access latency, and then
occupies its channel's data bus for the burst duration.  The model
captures the two effects the paper's experiments depend on:

* *bandwidth*: an 8-channel x 128-bit HBM drains far more requests per
  second than a 2-channel x 64-bit DDR3, so bandwidth-bound workloads
  slow down when their hot pages live off-package, and
* *latency under load*: queueing delay grows as a channel saturates.

Addresses are *device-local line numbers* (the HMA layer translates
page frames).  Channel interleaving is line-granular, like the paper's
Ramulator configuration, to spread sequential traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import LINE_SIZE, MemoryConfig
from repro.dram.bank import Bank

#: Lines per DRAM row (2 KB row buffer, as in DDR3/HBM devices).
LINES_PER_ROW = 32


@dataclass
class DeviceStats:
    """Aggregate request accounting for one device."""

    reads: int = 0
    writes: int = 0
    total_read_latency: float = 0.0
    busy_time: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def mean_read_latency(self) -> float:
        return self.total_read_latency / self.reads if self.reads else 0.0


class MemoryDevice:
    """One memory of the HMA, addressed by device-local line number."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.clock_period = 1.0 / config.bus_frequency_hz
        # DDR: two transfers per bus clock; a 64-byte line takes
        # line/width transfers.
        transfers = LINE_SIZE * 8 / config.bus_width_bits
        self.burst_seconds = (transfers / 2.0) * self.clock_period
        self.num_channels = config.channels
        banks_per_channel = config.ranks_per_channel * config.banks_per_rank
        self.banks_per_channel = banks_per_channel
        self.banks: "list[list[Bank]]" = [
            [Bank(config.timing, self.clock_period) for _ in range(banks_per_channel)]
            for _ in range(self.num_channels)
        ]
        self.num_banks_total = self.num_channels * banks_per_channel
        self.channel_busy_until = [0.0] * self.num_channels
        self.stats = DeviceStats()
        # Row-buffer access latencies in seconds, precomputed so the
        # batched replay kernel matches ``cycles * clock_period`` of
        # the scalar path bit for bit.
        self.hit_seconds = config.timing.row_hit_cycles() * self.clock_period
        self.miss_seconds = config.timing.row_miss_cycles() * self.clock_period
        self.conflict_seconds = (
            config.timing.row_conflict_cycles() * self.clock_period
        )

    # -- address mapping ---------------------------------------------------

    def route(self, line: int) -> "tuple[int, int, int]":
        """Map a device-local line to ``(channel, bank, row)``.

        Channels interleave at line granularity; banks interleave at
        row granularity within a channel.
        """
        channel = line % self.num_channels
        banks_per_channel = len(self.banks[0])
        line_in_channel = line // self.num_channels
        row_global = line_in_channel // LINES_PER_ROW
        bank = row_global % banks_per_channel
        row = row_global // banks_per_channel
        return channel, bank, row

    def route_arrays(
        self, lines: "np.ndarray"
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Vectorised :meth:`route` over an array of line numbers."""
        lines = np.asarray(lines, dtype=np.int64)
        channel = lines % self.num_channels
        row_global = (lines // self.num_channels) // LINES_PER_ROW
        bank = row_global % self.banks_per_channel
        row = row_global // self.banks_per_channel
        return channel, bank, row

    # -- request service ---------------------------------------------------

    def service(self, line: int, arrival: float, is_write: bool) -> float:
        """Serve one line request; returns its finish time in seconds.

        The bank is occupied for the access, then the data burst holds
        the channel bus; channel contention therefore bounds the
        device's sustainable bandwidth at ``line_size / burst_seconds``
        per channel.
        """
        channel, bank_idx, row = self.route(line)
        bank = self.banks[channel][bank_idx]
        start, access_done = bank.service(row, arrival)
        # The data burst needs the channel bus; wait for it if busy.
        burst_start = max(access_done - self.burst_seconds,
                          self.channel_busy_until[channel])
        finish = burst_start + self.burst_seconds
        self.channel_busy_until[channel] = finish
        bank.state.busy_until = max(bank.state.busy_until, finish)

        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
            self.stats.total_read_latency += finish - arrival
        self.stats.busy_time += self.burst_seconds
        return finish

    def occupy_bandwidth(self, start: float, num_lines: int) -> float:
        """Block bulk traffic (page migrations) onto the channels.

        ``num_lines`` line transfers are spread round-robin over all
        channels starting no earlier than ``start``; returns the time
        the last transfer finishes.
        """
        if num_lines <= 0:
            return start
        per_channel, remainder = divmod(num_lines, self.num_channels)
        finish = start
        for ch in range(self.num_channels):
            lines_here = per_channel + (1 if ch < remainder else 0)
            if lines_here == 0:
                continue
            begin = max(start, self.channel_busy_until[ch])
            done = begin + lines_here * self.burst_seconds
            self.channel_busy_until[ch] = done
            finish = max(finish, done)
        self.stats.busy_time += num_lines * self.burst_seconds
        return finish

    # -- diagnostics ---------------------------------------------------------

    def row_buffer_stats(self) -> "tuple[int, int, int]":
        """Total (hits, misses, conflicts) across all banks."""
        hits = misses = conflicts = 0
        for channel in self.banks:
            for bank in channel:
                hits += bank.row_hits
                misses += bank.row_misses
                conflicts += bank.row_conflicts
        return hits, misses, conflicts

    def reset(self) -> None:
        for channel in self.banks:
            for bank in channel:
                bank.reset()
        self.channel_busy_until = [0.0] * self.num_channels
        self.stats = DeviceStats()
