"""DRAM bank and row-buffer state.

A bank serves one request at a time.  Requests to the currently-open
row hit the row buffer (CAS only), requests to a closed bank activate
first (RAS + CAS), and requests to a different row pay a full precharge
+ activate + CAS (a row conflict).  Times are kept in seconds so the
two HMA devices, which run at different clock rates, compose directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DramTiming


@dataclass
class BankState:
    """Mutable state of one DRAM bank."""

    #: Row currently latched in the row buffer (None = precharged).
    open_row: "int | None" = None
    #: Time at which the bank can accept the next request.
    busy_until: float = 0.0


class Bank:
    """One bank: row buffer tracking plus busy-until scheduling."""

    __slots__ = ("timing", "clock_period", "state", "row_hits", "row_misses",
                 "row_conflicts")

    def __init__(self, timing: DramTiming, clock_period: float) -> None:
        self.timing = timing
        self.clock_period = clock_period
        self.state = BankState()
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0

    def access_cycles(self, row: int) -> int:
        """Device cycles to serve an access to ``row`` and record the
        row-buffer outcome."""
        if self.state.open_row == row:
            self.row_hits += 1
            cycles = self.timing.row_hit_cycles()
        elif self.state.open_row is None:
            self.row_misses += 1
            cycles = self.timing.row_miss_cycles()
        else:
            self.row_conflicts += 1
            cycles = self.timing.row_conflict_cycles()
        self.state.open_row = row
        return cycles

    def service(self, row: int, arrival: float) -> "tuple[float, float]":
        """Serve a request arriving at ``arrival`` seconds.

        Returns ``(start, finish)`` in seconds.  The bank is busy until
        ``finish``.
        """
        start = max(arrival, self.state.busy_until)
        cycles = self.access_cycles(row)
        finish = start + cycles * self.clock_period
        self.state.busy_until = finish
        return start, finish

    def reset(self) -> None:
        self.state = BankState()
        self.row_hits = self.row_misses = self.row_conflicts = 0
