"""Die-stacked DRAM managed as a cache (the paper's Section 8 foil).

The paper's HMA exposes the stacked memory as Part-of-Memory (PoM) and
places/migrates pages.  The main alternative in the literature — and
the paper's related-work discussion — manages the stacked DRAM as a
giant hardware cache of the off-package memory (Qureshi & Loh's Alloy
cache: direct-mapped, line-granularity, tag-and-data fetched in one
access).

:class:`DramCacheSystem` implements that organization on top of the
same two :class:`~repro.dram.device.MemoryDevice` timing models, with
the same ``service()`` interface as
:class:`~repro.dram.hma.HeterogeneousMemory`, so the replay engine can
drive either organization unchanged:

* **hit**: one fast-memory access (the TAD read) serves the request;
* **miss**: the fast probe is followed by the slow-memory access, a
  fill write into the cache set, and — if the victim line is dirty — a
  write-back to slow memory.

Reliability note: a DRAM cache offers no placement control, so *every*
hot line migrates into the weakly-protected stacked DRAM.  The class
tracks per-page hit fractions as the exposure proxy used by the
extension benchmark (a page served mostly from the cache effectively
lives in the low-reliability memory).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LINES_PER_PAGE, SystemConfig
from repro.dram.device import MemoryDevice
from repro.dram.hma import MigrationStats


@dataclass
class DramCacheStats:
    """Hit/miss/write-back accounting for the DRAM cache."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class DramCacheSystem:
    """Fast memory as a direct-mapped line cache of the slow memory.

    Drop-in compatible with :class:`HeterogeneousMemory` for the replay
    engine's static path (``service``, ``pages_in``,
    ``migration_stats``, ``fast``, ``slow``).
    """

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.fast = MemoryDevice(config.fast_memory)
        self.slow = MemoryDevice(config.slow_memory)
        #: One direct-mapped set per fast-memory line.
        self.num_sets = config.fast_memory.num_pages * LINES_PER_PAGE
        #: set index -> (tag, dirty); absent = invalid.
        self._tags: "dict[int, tuple[int, bool]]" = {}
        self.stats = DramCacheStats()
        self.migration_stats = MigrationStats()
        #: page -> [cache hits, total accesses] (SER exposure proxy).
        self._page_hits: "dict[int, list[int]]" = {}

    # -- HeterogeneousMemory-compatible surface -------------------------------

    def install_placement(self, fast_pages, all_pages) -> None:
        """A cache has no installable placement; accept and ignore the
        empty placement the orchestration layer passes."""
        if len(list(fast_pages)):
            raise ValueError("a DRAM cache takes no explicit placement")

    def pages_in(self, device: int) -> "list[int]":
        """Residency is line-granular and transient; report none."""
        return []

    def service(self, page: int, line_in_page: int, arrival: float,
                is_write: bool) -> float:
        line = page * LINES_PER_PAGE + line_in_page
        set_idx = line % self.num_sets
        tag = line // self.num_sets

        counters = self._page_hits.setdefault(page, [0, 0])
        counters[1] += 1

        # The TAD probe: tag and data come back in one fast access.
        probe_done = self.fast.service(set_idx, arrival, is_write)
        entry = self._tags.get(set_idx)
        if entry is not None and entry[0] == tag:
            self.stats.hits += 1
            counters[0] += 1
            if is_write:
                self._tags[set_idx] = (tag, True)
            return probe_done

        # Miss: fetch from slow memory...
        self.stats.misses += 1
        fill_done = self.slow.service(line, probe_done, False)
        # ...write the fill into the set (bandwidth on the fast bus)...
        self.fast.service(set_idx, fill_done, True)
        # ...and write back a dirty victim.
        if entry is not None and entry[1]:
            victim_line = entry[0] * self.num_sets + set_idx
            self.slow.service(victim_line, fill_done, True)
            self.stats.writebacks += 1
        self._tags[set_idx] = (tag, is_write)
        return fill_done

    # -- exposure accounting -----------------------------------------------------

    def page_exposure(self) -> "dict[int, float]":
        """Per-page fraction of accesses served from the stacked DRAM.

        Used as the reliability-exposure proxy: a page with exposure
        ~1 effectively lives in the weakly-protected memory.
        """
        return {page: hits / total if total else 0.0
                for page, (hits, total) in self._page_hits.items()}

    def ser(self, stats, ser_model) -> float:
        """Exposure-weighted SER for the cache organization.

        ``SER = sum_p avf_p * (exposure_p * FIT_fast +
        (1 - exposure_p) * FIT_slow)``.
        """
        exposure = self.page_exposure()
        total = 0.0
        for page, avf in zip(stats.pages, stats.avf):
            e = exposure.get(int(page), 0.0)
            total += float(avf) * (
                e * ser_model.fit_fast_per_page
                + (1 - e) * ser_model.fit_slow_per_page
            )
        return total
