"""Single-symbol-correct Reed-Solomon code over GF(256) — ChipKill.

ChipKill-correct memory [10] protects a rank against the failure of an
entire DRAM chip by treating each chip's contribution to the codeword
as one *symbol* and using a distance-3 Reed-Solomon code: any single
symbol (chip) error is correctable, regardless of how many bits inside
the symbol flipped.

This is a real codec over GF(2^8) (primitive polynomial x^8 + x^4 +
x^3 + x^2 + 1): two check symbols give syndromes ``S0 = sum(c_i)`` and
``S1 = sum(alpha^i * c_i)``; a single error of value ``e`` at position
``j`` yields ``S0 = e`` and ``S1 = alpha^j * e``, so the position is
``log(S1) - log(S0)``.  Double-symbol errors are (mostly) detected —
the distance-3 limitation the paper works around by pairing ChipKill
with the low raw FIT of off-package DDR.

The Monte-Carlo fault simulator's ChipKill classification (single chip
correctable, cross-chip pairs uncorrectable) is validated against this
codec in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.ecc import Outcome

#: GF(2^8) primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
_PRIMITIVE = 0x11D
FIELD_SIZE = 256

_EXP = np.zeros(FIELD_SIZE * 2, dtype=np.int64)
_LOG = np.zeros(FIELD_SIZE, dtype=np.int64)


def _build_tables() -> None:
    value = 1
    for power in range(FIELD_SIZE - 1):
        _EXP[power] = value
        _LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE
    # Duplicate so exponent sums need no modulo.
    _EXP[FIELD_SIZE - 1:2 * (FIELD_SIZE - 1)] = _EXP[:FIELD_SIZE - 1]


_build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(256)."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[_LOG[a] + _LOG[b]])


def gf_div(a: int, b: int) -> int:
    """Division in GF(256); b must be non-zero."""
    if b == 0:
        raise ZeroDivisionError("GF(256) division by zero")
    if a == 0:
        return 0
    return int(_EXP[(_LOG[a] - _LOG[b]) % (FIELD_SIZE - 1)])


def gf_pow(base: int, exponent: int) -> int:
    if base == 0:
        return 0 if exponent else 1
    return int(_EXP[(_LOG[base] * exponent) % (FIELD_SIZE - 1)])


@dataclass(frozen=True)
class RsDecodeResult:
    """Outcome of decoding one ChipKill codeword."""

    outcome: Outcome
    data: "np.ndarray | None"
    corrected_symbol: "int | None" = None
    corrected_value: "int | None" = None

    @property
    def ok(self) -> bool:
        return self.outcome is not Outcome.DETECTED


class ChipKillCode:
    """A (k + 2, k) distance-3 RS code: one symbol per DRAM chip.

    The default ``data_symbols=16`` models an x4 ChipKill rank: 16 data
    chips plus 2 check chips contribute one 8-bit symbol each (two
    DDR3 x4 beats per chip).
    """

    def __init__(self, data_symbols: int = 16) -> None:
        if not 1 <= data_symbols <= FIELD_SIZE - 3:
            raise ValueError("data_symbols out of range for GF(256)")
        self.data_symbols = data_symbols
        self.code_symbols = data_symbols + 2

    # -- encode --------------------------------------------------------------

    def encode(self, data) -> np.ndarray:
        """Append two check symbols so both syndromes vanish.

        With check positions p = k and q = k + 1:
        ``c_p + c_q = S0'`` and ``a^p c_p + a^q c_q = S1'`` where S0'/S1'
        are the data-only syndromes; solve the 2x2 system in GF(256).
        """
        symbols = self._as_symbols(data, self.data_symbols)
        s0 = 0
        s1 = 0
        for i, value in enumerate(symbols):
            s0 ^= int(value)
            s1 ^= gf_mul(gf_pow(2, i), int(value))
        p, q = self.data_symbols, self.data_symbols + 1
        ap, aq = gf_pow(2, p), gf_pow(2, q)
        denom = ap ^ aq
        # c_q = (S1' + a^p * S0') / (a^p + a^q);  c_p = S0' + c_q.
        cq = gf_div(s1 ^ gf_mul(ap, s0), denom)
        cp = s0 ^ cq
        return np.concatenate([symbols, np.array([cp, cq], dtype=np.uint8)])

    # -- decode --------------------------------------------------------------

    def syndromes(self, codeword) -> "tuple[int, int]":
        symbols = self._as_symbols(codeword, self.code_symbols)
        s0 = 0
        s1 = 0
        for i, value in enumerate(symbols):
            s0 ^= int(value)
            s1 ^= gf_mul(gf_pow(2, i), int(value))
        return s0, s1

    def decode(self, codeword) -> RsDecodeResult:
        symbols = self._as_symbols(codeword, self.code_symbols).copy()
        s0, s1 = self.syndromes(symbols)
        if s0 == 0 and s1 == 0:
            return RsDecodeResult(outcome=Outcome.CORRECTED,
                                  data=symbols[: self.data_symbols])
        if s0 == 0 or s1 == 0:
            # A single error cannot produce exactly one zero syndrome.
            return RsDecodeResult(outcome=Outcome.DETECTED, data=None)
        position = (_LOG[s1] - _LOG[s0]) % (FIELD_SIZE - 1)
        if position >= self.code_symbols:
            return RsDecodeResult(outcome=Outcome.DETECTED, data=None)
        symbols[position] ^= s0
        return RsDecodeResult(
            outcome=Outcome.CORRECTED,
            data=symbols[: self.data_symbols],
            corrected_symbol=int(position),
            corrected_value=int(s0),
        )

    def decode_batch(
        self,
        codewords,
        alpha_log_table: "np.ndarray | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Vectorised :meth:`decode` over a ``(n, k + 2)`` symbol batch.

        Returns ``(outcomes, data)`` with ``outcomes[i]`` 0 for
        CORRECTED and 1 for DETECTED; rows of DETECTED words are
        zeroed.  ``alpha_log_table`` overrides the per-position
        ``log(alpha^i)`` weights (default ``0 .. k + 1``) so the
        differential verifier can prove a tampered table is caught.
        """
        logs = (np.arange(self.code_symbols, dtype=np.int64)
                if alpha_log_table is None
                else np.asarray(alpha_log_table, dtype=np.int64))
        words = np.atleast_2d(np.asarray(codewords, dtype=np.int64))
        if words.shape[1] != self.code_symbols:
            raise ValueError(f"expected rows of {self.code_symbols} symbols")
        out = words.astype(np.uint8).copy()
        s0 = np.bitwise_xor.reduce(words, axis=1)
        terms = np.where(words != 0, _EXP[_LOG[words] + logs], 0)
        s1 = np.bitwise_xor.reduce(terms, axis=1)
        outcomes = np.zeros(len(words), dtype=np.int8)

        both = (s0 != 0) & (s1 != 0)
        position = np.where(
            both, (_LOG[s1] - _LOG[s0]) % (FIELD_SIZE - 1), 0)
        correctable = both & (position < self.code_symbols)
        rows = np.flatnonzero(correctable)
        out[rows, position[rows]] ^= s0[rows].astype(np.uint8)

        detected = ((s0 != 0) | (s1 != 0)) & ~correctable
        data = out[:, : self.data_symbols]
        data[detected] = 0
        return np.where(detected, 1, outcomes), data

    # -- fault injection -------------------------------------------------------

    def inject(self, codeword, errors: "dict[int, int]") -> np.ndarray:
        """XOR error values into symbol positions (0 values ignored)."""
        symbols = self._as_symbols(codeword, self.code_symbols).copy()
        for position, value in errors.items():
            if not 0 <= position < self.code_symbols:
                raise ValueError(f"symbol {position} out of range")
            if not 0 <= value < FIELD_SIZE:
                raise ValueError(f"error value {value} out of range")
            symbols[position] ^= value
        return symbols

    @staticmethod
    def _as_symbols(value, length: int) -> np.ndarray:
        arr = np.asarray(value, dtype=np.int64)
        if arr.shape != (length,):
            raise ValueError(f"expected {length} symbols, got {arr.shape}")
        if arr.min() < 0 or arr.max() >= FIELD_SIZE:
            raise ValueError("symbols must be in [0, 256)")
        return arr.astype(np.uint8)
