"""Transient-fault FIT rates from the field (paper Section 3.2).

The paper feeds FaultSim with transient FIT rates from an AMD field
study of the ORNL Jaguar system (Sridharan & Liberty, SC'12), reported
per DRAM component: single bit, word, column, row, bank, and
multi-bank/rank.  We encode the study's per-device transient rates
(FIT = failures per 10^9 device-hours) and scale them per memory:
die-stacked memory carries a raw-FIT multiplier (denser bits, TSV
failure modes — paper Sections 1 and 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.config import MemoryConfig


class FaultComponent(Enum):
    """DRAM fault granularities used by the field study and FaultSim."""

    BIT = "bit"
    WORD = "word"
    COLUMN = "column"
    ROW = "row"
    BANK = "bank"
    RANK = "rank"


@dataclass(frozen=True)
class FitRates:
    """Per-DRAM-device transient FIT rates, by component."""

    bit: float = 14.2
    word: float = 1.4
    column: float = 1.4
    row: float = 0.2
    bank: float = 0.8
    rank: float = 0.075

    def __post_init__(self) -> None:
        for component in FaultComponent:
            if self.rate(component) < 0:
                raise ValueError(f"negative FIT rate for {component.value}")

    def rate(self, component: FaultComponent) -> float:
        return float(getattr(self, component.value))

    @property
    def total(self) -> float:
        return sum(self.rate(c) for c in FaultComponent)

    @property
    def multi_bit_total(self) -> float:
        """FIT of faults wider than one bit (beyond SEC-DED's reach
        when they cluster inside a word or chip)."""
        return self.total - self.bit

    def scaled(self, multiplier: float) -> "FitRates":
        """All components scaled by ``multiplier`` (>= 0)."""
        if multiplier < 0:
            raise ValueError("multiplier must be non-negative")
        return FitRates(
            bit=self.bit * multiplier,
            word=self.word * multiplier,
            column=self.column * multiplier,
            row=self.row * multiplier,
            bank=self.bank * multiplier,
            rank=self.rank * multiplier,
        )

    def with_component(self, component: FaultComponent, rate: float) -> "FitRates":
        return replace(self, **{component.value: rate})


#: Baseline transient rates (per x4/x8 DDR device) in the shape of the
#: Jaguar field study.
JAGUAR_TRANSIENT = FitRates()


def rates_for_memory(config: MemoryConfig,
                     base: FitRates = JAGUAR_TRANSIENT) -> FitRates:
    """Per-device FIT rates for one HMA memory, applying its raw-FIT
    multiplier (die-stacked memory > 1)."""
    return base.scaled(config.fit_multiplier)


def devices_per_rank(config: MemoryConfig) -> int:
    """DRAM devices (chips/stack slices) forming one rank's data word.

    DDR3 x8: eight data chips (+1 ECC chip) per 64-bit word.
    HBM-like: a single stack renders the full 128-bit word, so a rank
    is one device.
    """
    if config.bus_width_bits >= 128:
        return 1
    return max(1, config.bus_width_bits // 8)
