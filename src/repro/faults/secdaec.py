"""A (72, 64) SEC-DAEC code — adjacent-double-error-correcting Hamming.

Scaled DRAM processes make *adjacent* multi-bit upsets the dominant
multi-bit failure mode: one particle strike flips physically
neighbouring cells, which map to neighbouring bits of a codeword.
SEC-DAEC codes (single-error-correct, double-ADJACENT-error-correct)
extend Hsiao's odd-weight-column construction so that, besides every
single bit, every *adjacent pair* of bits is also correctable — at the
same 8 check bits per 64-bit word as plain SEC-DED.

The construction is the classical one (Dutta & Touba, "Multiple Bit
Upset Tolerant Memory Using a Selective Cycle Avoidance Based SEC-DED-
DAEC Code", VTS 2007, in spirit):

* every column of H is a distinct odd-weight 8-bit vector, so single
  errors produce odd-weight syndromes;
* the columns are *ordered* so that all 71 adjacent-pair XORs are
  pairwise distinct.  Pair syndromes have even weight, hence never
  collide with a single-bit syndrome, and by construction never with
  each other — each is uniquely decodable.

The check bits occupy the last 8 positions as an identity block, so
encode stays systematic (``check = A @ data``) exactly like
:mod:`repro.faults.hamming`.  The price of DAEC at this length is a
bounded *miscorrection* exposure: some non-adjacent double errors
alias to a single- or adjacent-pair syndrome and are silently
mis-corrected (SEC-DED would have flagged them).  The exhaustive test
sweep measures and bounds that rate.

Used by the behavioural ``secdaec`` scheme in :mod:`repro.faults.ecc`
and validated against it in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.faults.ecc import Outcome

DATA_BITS = 64
CHECK_BITS = 8
CODE_BITS = DATA_BITS + CHECK_BITS


def _odd_weight_columns() -> "list[np.ndarray]":
    """All odd-weight-(>=3) 8-bit vectors, lightest first."""
    columns = []
    for weight in (3, 5, 7):
        for ones in combinations(range(CHECK_BITS), weight):
            col = np.zeros(CHECK_BITS, dtype=np.uint8)
            col[list(ones)] = 1
            columns.append(col)
    return columns


def _build_parity_matrix() -> np.ndarray:
    """H = [A | I] with all 71 adjacent-pair column XORs distinct.

    The identity tail is fixed (so encode is systematic); its internal
    adjacent XORs ``e_i ^ e_{i+1}`` seed the used-syndrome set.  The 64
    data columns are then chosen greedily from the odd-weight pool:
    append the first candidate whose XOR with the previous column is a
    pair syndrome not seen yet (including, for the final data column,
    the junction XOR into the identity block).  The greedy order is
    deterministic, so H is a module-level constant.
    """
    identity = [np.eye(CHECK_BITS, dtype=np.uint8)[:, i]
                for i in range(CHECK_BITS)]
    used_pairs = {
        tuple(identity[i] ^ identity[i + 1]) for i in range(CHECK_BITS - 1)
    }
    pool = _odd_weight_columns()
    chosen: "list[np.ndarray]" = []
    taken = [False] * len(pool)
    while len(chosen) < DATA_BITS:
        progressed = False
        for idx, col in enumerate(pool):
            if taken[idx]:
                continue
            new_pairs = set()
            if chosen:
                left = tuple(chosen[-1] ^ col)
                if left in used_pairs:
                    continue
                new_pairs.add(left)
            if len(chosen) == DATA_BITS - 1:
                junction = tuple(col ^ identity[0])
                if junction in used_pairs or junction in new_pairs:
                    continue
                new_pairs.add(junction)
            chosen.append(col)
            taken[idx] = True
            used_pairs |= new_pairs
            progressed = True
            break
        if not progressed:  # pragma: no cover - construction always lands
            raise RuntimeError("SEC-DAEC column ordering failed")
    a = np.stack(chosen, axis=1)
    return np.concatenate([a, np.eye(CHECK_BITS, dtype=np.uint8)], axis=1)


#: Module-level parity-check matrix (8 x 72).
H = _build_parity_matrix()
#: Syndrome (as a tuple) -> correctable single bit position.
_SYNDROME_TO_BIT = {tuple(H[:, bit]): bit for bit in range(CODE_BITS)}
#: Syndrome (as a tuple) -> correctable adjacent pair (bit, bit + 1).
_SYNDROME_TO_PAIR = {
    tuple(H[:, bit] ^ H[:, bit + 1]): (bit, bit + 1)
    for bit in range(CODE_BITS - 1)
}

#: Integer syndrome -> batch decode action tables (see decode_batch):
#: first/second bit to flip, -1 = no flip at that slot, both -1 with a
#: non-zero syndrome = DETECTED.
_POWERS = (1 << np.arange(CHECK_BITS)).astype(np.int64)


def _build_batch_tables() -> "tuple[np.ndarray, np.ndarray]":
    first = np.full(1 << CHECK_BITS, -1, dtype=np.int64)
    second = np.full(1 << CHECK_BITS, -1, dtype=np.int64)
    for syn, bit in _SYNDROME_TO_BIT.items():
        first[int(np.asarray(syn) @ _POWERS)] = bit
    for syn, (lo, hi) in _SYNDROME_TO_PAIR.items():
        key = int(np.asarray(syn) @ _POWERS)
        first[key] = lo
        second[key] = hi
    return first, second


_BATCH_FIRST, _BATCH_SECOND = _build_batch_tables()


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one 72-bit codeword."""

    outcome: Outcome
    #: The corrected 64-bit data word (valid unless DETECTED).
    data: "np.ndarray | None"
    #: Bit positions corrected, if any (1 or 2 entries).
    corrected_bits: "tuple[int, ...]" = ()

    @property
    def ok(self) -> bool:
        return self.outcome is not Outcome.DETECTED


def _as_bits(value, length: int) -> np.ndarray:
    arr = np.asarray(value, dtype=np.uint8)
    if arr.shape != (length,):
        raise ValueError(f"expected {length} bits, got shape {arr.shape}")
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("bits must be 0 or 1")
    return arr


def encode(data) -> np.ndarray:
    """Encode a 64-bit data word into a 72-bit codeword (systematic)."""
    bits = _as_bits(data, DATA_BITS)
    check = (H[:, :DATA_BITS] @ bits) % 2
    return np.concatenate([bits, check.astype(np.uint8)])


def syndrome(codeword) -> np.ndarray:
    """The 8-bit syndrome of a 72-bit codeword (zero = clean)."""
    bits = _as_bits(codeword, CODE_BITS)
    return (H @ bits % 2).astype(np.uint8)


def decode(codeword) -> DecodeResult:
    """Decode a possibly-corrupted codeword.

    * zero syndrome: clean;
    * syndrome matching one column: single-bit error, corrected;
    * syndrome matching an adjacent-pair XOR: adjacent double error,
      both bits corrected (the DAEC property SEC-DED lacks);
    * anything else: DETECTED (data unusable).
    """
    bits = _as_bits(codeword, CODE_BITS).copy()
    s = syndrome(bits)
    if not s.any():
        return DecodeResult(outcome=Outcome.CORRECTED,
                            data=bits[:DATA_BITS])
    key = tuple(s)
    position = _SYNDROME_TO_BIT.get(key)
    if position is not None:
        bits[position] ^= 1
        return DecodeResult(outcome=Outcome.CORRECTED,
                            data=bits[:DATA_BITS],
                            corrected_bits=(position,))
    pair = _SYNDROME_TO_PAIR.get(key)
    if pair is not None:
        bits[pair[0]] ^= 1
        bits[pair[1]] ^= 1
        return DecodeResult(outcome=Outcome.CORRECTED,
                            data=bits[:DATA_BITS],
                            corrected_bits=pair)
    return DecodeResult(outcome=Outcome.DETECTED, data=None)


def decode_batch(
    codewords,
    first_table: "np.ndarray | None" = None,
    second_table: "np.ndarray | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorised :func:`decode` over a ``(n, 72)`` batch.

    Returns ``(outcomes, data)`` where ``outcomes[i]`` is 0 for
    CORRECTED and 1 for DETECTED, and ``data`` is the ``(n, 64)``
    corrected payload (rows of DETECTED words are zeroed).  The
    syndrome-indexed action tables are precomputed at import; the
    optional overrides exist so the differential verifier can prove a
    tampered table is caught.
    """
    first = _BATCH_FIRST if first_table is None else first_table
    second = _BATCH_SECOND if second_table is None else second_table
    words = np.atleast_2d(np.asarray(codewords, dtype=np.uint8)).copy()
    if words.shape[1] != CODE_BITS:
        raise ValueError(f"expected rows of {CODE_BITS} bits")
    syn = (words @ H.T % 2).astype(np.int64) @ _POWERS
    f = first[syn]
    sec = second[syn]
    rows = np.arange(len(words))
    flip = f >= 0
    words[rows[flip], f[flip]] ^= 1
    flip2 = sec >= 0
    words[rows[flip2], sec[flip2]] ^= 1
    detected = (syn != 0) & (f < 0)
    data = words[:, :DATA_BITS]
    data[detected] = 0
    return detected.astype(np.int8), data


def inject(codeword, positions) -> np.ndarray:
    """Flip the given bit positions of a codeword (fault injection)."""
    bits = _as_bits(codeword, CODE_BITS).copy()
    for position in positions:
        if not 0 <= position < CODE_BITS:
            raise ValueError(f"bit position {position} out of range")
        bits[position] ^= 1
    return bits


def miscorrection_possible(positions) -> bool:
    """Whether flipping ``positions`` aliases to a *correctable-looking*
    syndrome (the silent-data-corruption escape for error patterns
    beyond single bits and adjacent pairs)."""
    s = np.zeros(CHECK_BITS, dtype=np.uint8)
    for position in positions:
        s ^= H[:, position]
    if not s.any():
        return True  # aliases to "no error"
    key = tuple(s)
    return key in _SYNDROME_TO_BIT or key in _SYNDROME_TO_PAIR
