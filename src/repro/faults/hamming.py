"""A (72, 64) Hsiao SEC-DED code — the paper's DDRx/HBM word ECC.

The paper's Table 1 protects the low-reliability memory with SEC-DED
[21] (Hsiao, "A Class of Optimal Minimum Odd-weight-column SEC-DED
Codes", 1970): 8 check bits per 64-bit data word, correcting any single
bit error and detecting any double bit error.

This module implements a real codec, not a behavioural stub:

* an odd-weight-column parity-check matrix in Hsiao's style (every
  column distinct and of odd weight, so single errors produce odd-
  weight syndromes and double errors produce even-weight non-zero
  syndromes — that parity is what separates "correct" from "detect"),
* :func:`encode` / :func:`decode` over 72-bit codewords, and
* :class:`DecodeResult` mirroring FaultSim's outcome classes.

The Monte-Carlo fault simulator's SEC-DED classification rules are
validated against this codec in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.faults.ecc import Outcome

DATA_BITS = 64
CHECK_BITS = 8
CODE_BITS = DATA_BITS + CHECK_BITS


def _build_parity_matrix() -> np.ndarray:
    """The (8 x 72) parity-check matrix H = [A | I].

    Columns over the data bits are distinct odd-weight-(>=3) vectors of
    length 8 (Hsiao's construction: pick 64 columns from the weight-3
    and weight-5 vectors, balancing row weights); the check-bit columns
    are the identity (weight 1, also odd).
    """
    columns = []
    for weight in (3, 5):
        for ones in combinations(range(CHECK_BITS), weight):
            col = np.zeros(CHECK_BITS, dtype=np.uint8)
            col[list(ones)] = 1
            columns.append(col)
            if len(columns) == DATA_BITS:
                break
        if len(columns) == DATA_BITS:
            break
    a = np.stack(columns, axis=1)
    return np.concatenate([a, np.eye(CHECK_BITS, dtype=np.uint8)], axis=1)


#: Module-level parity-check matrix (8 x 72).
H = _build_parity_matrix()
#: Syndrome (as a tuple) -> correctable bit position.
_SYNDROME_TO_BIT = {
    tuple(H[:, bit]): bit for bit in range(CODE_BITS)
}

#: Integer-syndrome weights for the batch path.
_POWERS = (1 << np.arange(CHECK_BITS)).astype(np.int64)


def _build_batch_table() -> np.ndarray:
    """Integer syndrome -> bit to flip (-1 = none; non-zero syndrome
    with no flip = DETECTED)."""
    table = np.full(1 << CHECK_BITS, -1, dtype=np.int64)
    for syn, bit in _SYNDROME_TO_BIT.items():
        table[int(np.asarray(syn) @ _POWERS)] = bit
    return table


_BATCH_ACTION = _build_batch_table()


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one 72-bit codeword."""

    outcome: Outcome
    #: The corrected 64-bit data word (valid unless DETECTED).
    data: "np.ndarray | None"
    #: Bit position corrected, if any.
    corrected_bit: "int | None" = None

    @property
    def ok(self) -> bool:
        return self.outcome is not Outcome.DETECTED


def _as_bits(value, length: int) -> np.ndarray:
    arr = np.asarray(value, dtype=np.uint8)
    if arr.shape != (length,):
        raise ValueError(f"expected {length} bits, got shape {arr.shape}")
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("bits must be 0 or 1")
    return arr


def encode(data) -> np.ndarray:
    """Encode a 64-bit data word into a 72-bit codeword.

    Check bits are chosen so that H @ codeword = 0 (mod 2); since
    H = [A | I], the check bits are simply ``A @ data``.
    """
    bits = _as_bits(data, DATA_BITS)
    check = (H[:, :DATA_BITS] @ bits) % 2
    return np.concatenate([bits, check.astype(np.uint8)])


def syndrome(codeword) -> np.ndarray:
    """The 8-bit syndrome of a 72-bit codeword (zero = clean)."""
    bits = _as_bits(codeword, CODE_BITS)
    return (H @ bits % 2).astype(np.uint8)


def decode(codeword) -> DecodeResult:
    """Decode a possibly-corrupted codeword.

    * zero syndrome: CORRECTED-trivially (no error),
    * odd-weight syndrome matching a column: single-bit error,
      corrected,
    * even-weight (or unmatched) non-zero syndrome: double/multi-bit
      error, DETECTED (data unusable).
    """
    bits = _as_bits(codeword, CODE_BITS).copy()
    s = syndrome(bits)
    if not s.any():
        return DecodeResult(outcome=Outcome.CORRECTED,
                            data=bits[:DATA_BITS])
    position = _SYNDROME_TO_BIT.get(tuple(s))
    if int(s.sum()) % 2 == 1 and position is not None:
        bits[position] ^= 1
        return DecodeResult(outcome=Outcome.CORRECTED,
                            data=bits[:DATA_BITS],
                            corrected_bit=position)
    return DecodeResult(outcome=Outcome.DETECTED, data=None)


def decode_batch(
    codewords,
    action_table: "np.ndarray | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorised :func:`decode` over a ``(n, 72)`` batch.

    Returns ``(outcomes, data)`` with ``outcomes[i]`` 0 for CORRECTED
    and 1 for DETECTED; rows of DETECTED words are zeroed.  The
    syndrome-indexed action table is precomputed at import; the
    optional override exists so the differential verifier can prove a
    tampered table is caught.
    """
    action = _BATCH_ACTION if action_table is None else action_table
    words = np.atleast_2d(np.asarray(codewords, dtype=np.uint8)).copy()
    if words.shape[1] != CODE_BITS:
        raise ValueError(f"expected rows of {CODE_BITS} bits")
    syn = (words @ H.T % 2).astype(np.int64) @ _POWERS
    act = action[syn]
    rows = np.arange(len(words))
    flip = act >= 0
    words[rows[flip], act[flip]] ^= 1
    detected = (syn != 0) & (act < 0)
    data = words[:, :DATA_BITS]
    data[detected] = 0
    return detected.astype(np.int8), data


def inject(codeword, positions) -> np.ndarray:
    """Flip the given bit positions of a codeword (fault injection)."""
    bits = _as_bits(codeword, CODE_BITS).copy()
    for position in positions:
        if not 0 <= position < CODE_BITS:
            raise ValueError(f"bit position {position} out of range")
        bits[position] ^= 1
    return bits


def miscorrection_possible(positions) -> bool:
    """Whether flipping ``positions`` aliases to a *correctable-looking*
    syndrome (the silent-data-corruption escape for >= 3-bit errors)."""
    s = np.zeros(CHECK_BITS, dtype=np.uint8)
    for position in positions:
        s ^= H[:, position]
    if not s.any():
        return True  # aliases to "no error"
    return int(s.sum()) % 2 == 1 and tuple(s) in _SYNDROME_TO_BIT
