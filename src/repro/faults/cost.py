"""Area / energy / storage cost models for the ECC design space.

The paper fixes one scheme per tier and never prices protection; this
module gives every registered scheme (see
:data:`repro.faults.ecc.SCHEME_LADDER`) a cost so placement studies
can trade reliability against silicon.  Three axes per scheme:

* **storage overhead** — check bits per data bit, straight from the
  codec's ``(n, k)`` (e.g. 8/64 for SEC-DED, 14/113 for BCH, 2/16
  symbols for ChipKill).
* **decoder area** — an XOR-gate-count proxy derived from the real
  codec structure: the ones of the parity-check matrix (each one is an
  XOR tap of the syndrome tree), plus match/locator logic where the
  codec has it (SEC-DAEC's adjacent-pair matcher, BCH's quadratic
  locator scan, ChipKill's GF(256) multiplier array).
* **decode energy** — a per-64-bit-access proxy, modelled as
  proportional to the gates that toggle on a read
  (``GATE_ENERGY_PJ`` x gates, normalised to 64 data bits so schemes
  with different word lengths compare fairly).

The proxies are *relative* prices, not a synthesis report: what
matters downstream (the ``EccSelector``, the ``ecc-pareto`` frontier)
is that the ordering and rough magnitudes track real decoder
complexity — stronger codes cost strictly more on every axis, which
the test suite asserts along the ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Energy proxy per toggled decoder gate (pJ); a relative unit.
GATE_ENERGY_PJ = 0.002
#: Area proxy per decoder gate in NAND2-equivalents.
GATE_AREA_UNITS = 1.0


@dataclass(frozen=True)
class EccCost:
    """The price of one ECC scheme, per 64 data bits of coverage."""

    scheme: str
    data_bits: int
    check_bits: int
    #: Decoder complexity proxy in gate equivalents (see module doc).
    decoder_gates: int

    def __post_init__(self) -> None:
        if self.data_bits <= 0:
            raise ValueError("data_bits must be positive")
        if self.check_bits < 0 or self.decoder_gates < 0:
            raise ValueError("cost components must be non-negative")

    @property
    def storage_overhead(self) -> float:
        """Check bits per data bit (DRAM capacity tax of the scheme)."""
        return self.check_bits / self.data_bits

    @property
    def area_units(self) -> float:
        """Decoder area proxy (NAND2-equivalent units)."""
        return self.decoder_gates * GATE_AREA_UNITS

    @property
    def decode_energy_pj(self) -> float:
        """Energy proxy per 64-bit data word decoded."""
        return (self.decoder_gates * GATE_ENERGY_PJ
                * 64.0 / self.data_bits)

    @property
    def total(self) -> float:
        """Scalar cost used for cheapest-first selection.

        A normalised sum of the three axes: storage overhead (the
        dominant recurring cost — DRAM capacity), area, and energy.
        Storage is weighted as if spent on ~1000 gate-equivalents per
        12.5% overhead so the axes land on comparable scales.
        """
        return (self.storage_overhead * 8000.0
                + self.area_units
                + self.decode_energy_pj * 100.0)


def _hamming_gates() -> int:
    from repro.faults import hamming

    # Every one of H is a syndrome XOR tap; the corrector is a 72-way
    # match (one 8-bit comparator per column).
    ones = int(np.sum(hamming.H))
    return ones + hamming.CODE_BITS * hamming.CHECK_BITS


def _secdaec_gates() -> int:
    from repro.faults import secdaec

    # SEC-DED-style tree and matchers, plus one extra 8-bit comparator
    # per adjacent pair for the DAEC match stage.
    ones = int(np.sum(secdaec.H))
    matchers = secdaec.CODE_BITS * secdaec.CHECK_BITS
    pair_matchers = (secdaec.CODE_BITS - 1) * secdaec.CHECK_BITS
    return ones + matchers + pair_matchers


def _bch_gates() -> int:
    from repro.faults import bch

    # Two syndrome trees over GF(2^7) (one 7-bit constant-multiplier
    # accumulation per position each), a cube/compare single-error
    # path, and the quadratic locator's 127-way Chien-style scan.
    syndrome_taps = 2 * bch.CODE_BITS * 7
    single_path = 3 * 7 * 7  # S1^3 (two GF mults) + compare
    chien_scan = bch.CODE_BITS * 2 * 7  # evaluate z^2 + S1 z + c
    return syndrome_taps + single_path + chien_scan


def _chipkill_gates() -> int:
    from repro.faults.reed_solomon import ChipKillCode

    code = ChipKillCode()
    # A Mastrovito GF(256) multiplier is ~64 AND + ~77 XOR gates; the
    # symbol datapath uses full multipliers (constants ROM-fed): two
    # syndrome accumulators over all code symbols, a Fermat inversion
    # chain (13 multiplies) for the locator divide, one multiply for
    # the error value, and the per-symbol correction muxes.
    gf_mult = 141
    syndrome_taps = 2 * code.code_symbols * gf_mult
    inverter = 13 * gf_mult
    corrector = code.code_symbols * 8 + inverter + gf_mult
    return syndrome_taps + corrector


def _chipkill_symbol_bits() -> "tuple[int, int]":
    from repro.faults.reed_solomon import ChipKillCode

    code = ChipKillCode()
    return code.data_symbols * 8, 2 * 8


def cost_of(scheme: str) -> EccCost:
    """The :class:`EccCost` of one registered scheme name."""
    if scheme == "none":
        return EccCost(scheme="none", data_bits=64, check_bits=0,
                       decoder_gates=0)
    if scheme == "secded":
        from repro.faults import hamming

        return EccCost(scheme="secded", data_bits=hamming.DATA_BITS,
                       check_bits=hamming.CHECK_BITS,
                       decoder_gates=_hamming_gates())
    if scheme == "secdaec":
        from repro.faults import secdaec

        return EccCost(scheme="secdaec", data_bits=secdaec.DATA_BITS,
                       check_bits=secdaec.CHECK_BITS,
                       decoder_gates=_secdaec_gates())
    if scheme == "bch":
        from repro.faults import bch

        return EccCost(scheme="bch", data_bits=bch.DATA_BITS,
                       check_bits=bch.CHECK_BITS,
                       decoder_gates=_bch_gates())
    if scheme == "chipkill":
        data_bits, check_bits = _chipkill_symbol_bits()
        return EccCost(scheme="chipkill", data_bits=data_bits,
                       check_bits=check_bits,
                       decoder_gates=_chipkill_gates())
    raise ValueError(f"unknown ECC scheme {scheme!r}")


def all_costs() -> "dict[str, EccCost]":
    """Costs for every scheme on the ladder, weakest first."""
    from repro.faults.ecc import SCHEME_LADDER

    return {name: cost_of(name) for name in SCHEME_LADDER}
