"""Error-correction schemes for the fault simulator (paper Section 2).

The paper's HMA pairs a weakly protected fast memory with a strongly
protected slow memory:

* **SEC-DED** (Hsiao code, 8 check bits per 64-bit word): corrects any
  single-bit error in a word and detects double-bit errors.  Under an
  x8 DIMM or a die-stacked device, every chip-level multi-bit fault
  (word/column/row/bank/rank) corrupts several adjacent bits of a
  codeword, which SEC-DED cannot correct.
* **ChipKill** (single-symbol correct over x4 devices): tolerates the
  complete failure of any one chip.  Uncorrectable errors need two
  faults on *different* chips of the same rank whose intra-chip
  address footprints intersect while both corruptions are live.

This module classifies individual faults and fault pairs, and owns
the vectorised form of that classification: :func:`build_ecc_luts`
compiles a scheme + geometry into the lookup tables the batched
Monte-Carlo kernel indexes (``repro.faults.faultsim`` consumes them
verbatim, so the scalar methods here stay the single source of truth).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.faults.fit import FaultComponent


class Outcome(Enum):
    """FaultSim outcome classes (paper Section 3.2)."""

    CORRECTED = "corrected"
    DETECTED = "detected"      # detected-but-uncorrectable (DUE)
    UNCORRECTED = "uncorrected"


@dataclass(frozen=True)
class ChipGeometry:
    """Intra-chip address organization, for footprint overlap maths."""

    banks: int = 8
    rows: int = 1 << 15
    cols: int = 1 << 10

    def __post_init__(self) -> None:
        if min(self.banks, self.rows, self.cols) <= 0:
            raise ValueError("geometry dimensions must be positive")


def footprint_overlap_probability(
    a: FaultComponent, b: FaultComponent, geo: ChipGeometry
) -> float:
    """Probability that two independent faults on different chips of a
    rank touch the same codeword address.

    Codewords stripe one symbol per chip at identical intra-chip
    addresses, so two faults collide iff their (bank, row, column)
    footprints intersect.  Footprints: BIT/WORD = one cell of one bank,
    COLUMN = one full column of one bank, ROW = one full row of one
    bank, BANK = one whole bank, RANK = everything.
    """

    def bank_span(c: FaultComponent) -> float:
        return 1.0 if c is FaultComponent.RANK else 1.0 / geo.banks

    def row_span(c: FaultComponent) -> float:
        if c in (FaultComponent.BANK, FaultComponent.RANK, FaultComponent.COLUMN):
            return 1.0
        return 1.0 / geo.rows

    def col_span(c: FaultComponent) -> float:
        if c in (FaultComponent.BANK, FaultComponent.RANK, FaultComponent.ROW):
            return 1.0
        return 1.0 / geo.cols

    def axis_overlap(sa: float, sb: float) -> float:
        # Two uniformly placed spans of fractional sizes sa, sb overlap
        # with probability ~ min(1, sa + sb) when either covers the
        # axis, else ~ sa * sb summed over positions: for the discrete
        # single-slot cases used here this reduces to the larger span
        # when one is full, or the collision probability otherwise.
        if sa >= 1.0 or sb >= 1.0:
            return 1.0
        # Both are single slots on an axis of size 1/min(sa,sb):
        # collision probability equals the larger fraction.
        return max(sa, sb)

    p = axis_overlap(bank_span(a), bank_span(b))
    p *= axis_overlap(row_span(a), row_span(b))
    p *= axis_overlap(col_span(a), col_span(b))
    return p


class EccScheme:
    """Base interface for ECC classification."""

    name = "none"

    def classify_single(self, component: FaultComponent) -> Outcome:
        """Outcome of one isolated fault."""
        raise NotImplementedError

    def pair_uncorrectable(
        self,
        a: FaultComponent,
        b: FaultComponent,
        same_chip: bool,
        geo: ChipGeometry,
    ) -> float:
        """Probability that faults ``a`` and ``b``, live simultaneously,
        combine into an uncorrectable error (beyond what each causes
        alone)."""
        return 0.0


class NoEcc(EccScheme):
    """Unprotected memory: every fault is consumed uncorrected."""

    name = "none"

    def classify_single(self, component: FaultComponent) -> Outcome:
        return Outcome.UNCORRECTED


class SecDed(EccScheme):
    """Single-error-correct, double-error-detect per 64-bit word."""

    name = "secded"

    def classify_single(self, component: FaultComponent) -> Outcome:
        if component is FaultComponent.BIT:
            return Outcome.CORRECTED
        if component is FaultComponent.WORD:
            # Multiple bits of one codeword: detected, not correctable.
            return Outcome.DETECTED
        # Chip-level structural faults hit several bits per codeword
        # across many codewords; some patterns alias past DED.
        return Outcome.UNCORRECTED

    def pair_uncorrectable(self, a, b, same_chip, geo) -> float:
        # Two single-bit faults in the same word are already beyond
        # SEC; probability of landing in the same codeword.
        if a is FaultComponent.BIT and b is FaultComponent.BIT:
            return footprint_overlap_probability(a, b, geo)
        return 0.0


class SecDaec(EccScheme):
    """Single-error-correct, double-ADJACENT-error-correct per word.

    The real codec behind this table lives in
    :mod:`repro.faults.secdaec`: an odd-weight-column Hamming variant
    whose column ordering makes every adjacent-pair syndrome uniquely
    decodable.  Behaviourally that moves the WORD component (a
    clustered multi-bit upset — adjacent bits of one codeword under
    the beat mapping) from DETECTED to CORRECTED relative to SEC-DED,
    and a COLUMN fault (one bit per codeword across a column stripe,
    aligned, hence adjacent-pair-shaped per beat pair) from
    UNCORRECTED to DETECTED.  Row/bank/rank faults still scatter
    non-adjacent corruption beyond the code.
    """

    name = "secdaec"

    def classify_single(self, component: FaultComponent) -> Outcome:
        if component in (FaultComponent.BIT, FaultComponent.WORD):
            return Outcome.CORRECTED
        if component is FaultComponent.COLUMN:
            return Outcome.DETECTED
        return Outcome.UNCORRECTED

    def pair_uncorrectable(self, a, b, same_chip, geo) -> float:
        # Two independent single-bit faults in one codeword exceed SEC
        # unless they happen to land adjacent (DAEC rescues those):
        # 71 adjacent pairs of the C(72, 2) position pairs, i.e. a
        # 2 / 72 rescue fraction.
        if a is FaultComponent.BIT and b is FaultComponent.BIT:
            from repro.faults import secdaec

            rescue = 2.0 / secdaec.CODE_BITS
            return footprint_overlap_probability(a, b, geo) * (1.0 - rescue)
        return 0.0


class BchDec(EccScheme):
    """Double-error-correcting BCH: any two bits per codeword.

    The real codec is the (127, 113) t = 2 BCH code in
    :mod:`repro.faults.bch`.  With arbitrary (not just adjacent)
    double-bit correction, WORD and COLUMN faults are corrected; a ROW
    fault corrupts many bits of each codeword sharing the row (beyond
    t = 2) but stays within the code's detection reach; bank/rank
    faults scatter wide multi-bit corruption that can alias.
    """

    name = "bch"

    def classify_single(self, component: FaultComponent) -> Outcome:
        if component in (FaultComponent.BIT, FaultComponent.WORD,
                         FaultComponent.COLUMN):
            return Outcome.CORRECTED
        if component is FaultComponent.ROW:
            return Outcome.DETECTED
        return Outcome.UNCORRECTED

    def pair_uncorrectable(self, a, b, same_chip, geo) -> float:
        pair = {a, b}
        # Two single-bit faults in one codeword: still within t = 2.
        if pair == {FaultComponent.BIT}:
            return 0.0
        # A WORD fault already consumed the correction budget; a
        # colliding second multi-bit burst exceeds t = 2 and can alias
        # past the locator.
        if pair == {FaultComponent.WORD}:
            return footprint_overlap_probability(a, b, geo)
        if pair == {FaultComponent.BIT, FaultComponent.WORD}:
            # 3 bits: the locator fails (no quadratic roots) for the
            # non-aliasing majority; modelled as detected.
            return 0.0
        return 0.0


class ChipKill(EccScheme):
    """Single-symbol correction: survives any single-chip fault.

    Rank-level faults are the exception: in the field study they are
    multi-chip events (lockstep/bus faults spanning the rank), which
    exceed single-symbol correction.
    """

    name = "chipkill"

    def classify_single(self, component: FaultComponent) -> Outcome:
        if component is FaultComponent.RANK:
            return Outcome.UNCORRECTED
        return Outcome.CORRECTED

    def pair_uncorrectable(self, a, b, same_chip, geo) -> float:
        if same_chip:
            # Both symbols come from the same chip: still one-symbol.
            return 0.0
        return footprint_overlap_probability(a, b, geo)


@dataclass(frozen=True)
class EccLuts:
    """Vectorised outcome tables for one (scheme, geometry) pair.

    ``components`` fixes the index order shared by every table.  The
    arrays are read-only: a simulator indexes them on hot paths and
    several simulators may share one instance.
    """

    components: "tuple[FaultComponent, ...]"
    single_corrected: np.ndarray     # bool (n,)
    single_detected: np.ndarray      # bool (n,)
    single_uncorrected: np.ndarray   # float (n,)
    pair_uncorrectable: np.ndarray   # float (n, n, 2): [a, b, same_chip]


def build_ecc_luts(scheme: EccScheme, geometry: ChipGeometry) -> EccLuts:
    """Compile ``scheme`` over ``geometry`` into outcome lookup tables.

    Singles depend only on the component; pairs only on
    ``(component_a, component_b, same_chip)`` — so batched kernels
    classify whole event arrays by indexing instead of re-invoking the
    scalar classification per event.
    """
    components = tuple(FaultComponent)
    singles = [scheme.classify_single(c) for c in components]
    n = len(components)
    pair = np.empty((n, n, 2))
    for i, a in enumerate(components):
        for j, b in enumerate(components):
            for same in (0, 1):
                pair[i, j, same] = scheme.pair_uncorrectable(
                    a, b, bool(same), geometry)
    luts = EccLuts(
        components=components,
        single_corrected=np.array([o is Outcome.CORRECTED for o in singles]),
        single_detected=np.array([o is Outcome.DETECTED for o in singles]),
        single_uncorrected=np.array(
            [1.0 if o is Outcome.UNCORRECTED else 0.0 for o in singles]),
        pair_uncorrectable=pair,
    )
    for arr in (luts.single_corrected, luts.single_detected,
                luts.single_uncorrected, luts.pair_uncorrectable):
        arr.setflags(write=False)
    return luts


#: Registered schemes, weakest to strongest (the design-space ladder).
_SCHEMES = {
    "none": NoEcc,
    "secded": SecDed,
    "secdaec": SecDaec,
    "bch": BchDec,
    "chipkill": ChipKill,
}

#: Scheme names ordered by protection strength (ascending).  The
#: ordering is behavioural — per-component uncorrected FIT mass
#: strictly decreases along it — and is asserted by the test suite.
SCHEME_LADDER = ("none", "secded", "secdaec", "bch", "chipkill")


def make_scheme(name: str) -> EccScheme:
    """Factory for schemes named in :class:`repro.config.MemoryConfig`."""
    try:
        return _SCHEMES[name]()
    except KeyError:
        raise ValueError(
            f"unknown ECC scheme {name!r}; expected one of {sorted(_SCHEMES)}"
        ) from None
