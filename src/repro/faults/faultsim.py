"""Monte-Carlo, event-based DRAM fault simulation (FaultSim substitute).

The paper runs FaultSim (Nair et al.) with field-measured transient FIT
rates: each simulation injects faults over a mission according to the
per-component rates, applies the configured ECC, and records the
outcome (corrected / detected / uncorrected).  The probability of
uncorrected errors then scales the AVF to produce the SER.

This module reproduces that flow per *rank* of a memory device:

1. Draw fault events ~ Poisson(rate x chips x mission) per component.
2. Classify each event alone through the ECC scheme.
3. For multi-fault trials, test every pair of temporally-overlapping
   faults for combined uncorrectability (footprint intersection on
   different chips — the ChipKill loss mode).

A transient corruption stays live for ``overlap_window_hours`` (until
rewritten or scrubbed).  That window is the model's one calibration
constant: the paper does not publish its FaultSim configuration, so we
pick the default such that the uncorrected-FIT ratio between the HBM
(SEC-DED, raised raw FIT) and the DDR3 (ChipKill) matches the SER
blow-up the paper reports for performance-focused placement (~287x,
Fig. 5).  Every other experiment consumes *relative* SER between
placements, which is insensitive to this constant.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.config import MemoryConfig
from repro.faults.ecc import (
    ChipGeometry,
    EccScheme,
    Outcome,
    build_ecc_luts,
    make_scheme,
)
from repro.faults.fit import (
    FaultComponent,
    FitRates,
    devices_per_rank,
    rates_for_memory,
)

#: Default corruption lifetime, in hours (see module docstring).
DEFAULT_OVERLAP_WINDOW_HOURS = 12.0
#: Default mission length: the field study's 11 months.
DEFAULT_MISSION_HOURS = 11 * 30 * 24.0

#: Recognised ``FaultSimulator.run(..., method=)`` /
#: ``REPRO_FAULTSIM_METHOD`` values.
FAULTSIM_METHODS = ("batched", "reference")


def resolve_faultsim_method(method: "str | None" = None) -> str:
    """Resolve the Monte-Carlo kernel via the ``faultsim_method`` knob
    (argument > scoped override > ``REPRO_FAULTSIM_METHOD`` > default)."""
    from repro.config import knob_value

    method = knob_value("faultsim_method", method)
    if method not in FAULTSIM_METHODS:
        raise ValueError(
            f"faultsim method must be one of {FAULTSIM_METHODS}, "
            f"got {method!r}"
        )
    return method


def resolve_fault_trials(trials: "int | None" = None) -> int:
    """Monte-Carlo trial count for SER models via the ``fault_trials``
    knob (argument > scoped override > ``REPRO_FAULT_TRIALS`` > 0).

    ``0`` selects the analytic closed form; the knob lets experiment
    harnesses trade accuracy for speed without code edits.
    """
    from repro.config import knob_value

    trials = int(knob_value("fault_trials", trials))
    if trials < 0:
        raise ValueError("fault trials must be >= 0")
    return trials


@dataclass
class FaultSimResult:
    """Outcome of a Monte-Carlo campaign for one (memory, ECC) pair."""

    memory_name: str
    ecc_name: str
    trials: int
    mission_hours: float
    corrected: int
    detected: int
    uncorrected: float
    #: Expected uncorrected errors per rank-mission (the Monte-Carlo
    #: mean, fractional because pair events carry probabilities).
    expected_uncorrected_per_mission: float

    @property
    def p_uncorrected(self) -> float:
        """Probability a rank sees >= 1 uncorrected error per mission."""
        return min(1.0, self.expected_uncorrected_per_mission)

    def uncorrected_fit_per_rank(self) -> float:
        """Uncorrected-error FIT (per 10^9 hours) for one rank."""
        return self.expected_uncorrected_per_mission / self.mission_hours * 1e9


class FaultSimulator:
    """Event-based Monte-Carlo fault simulator for one memory device."""

    def __init__(
        self,
        memory: MemoryConfig,
        rates: "FitRates | None" = None,
        geometry: ChipGeometry = ChipGeometry(),
        overlap_window_hours: float = DEFAULT_OVERLAP_WINDOW_HOURS,
        mission_hours: float = DEFAULT_MISSION_HOURS,
        seed: "int | None" = None,
    ) -> None:
        from repro.config import knob_value

        if overlap_window_hours <= 0 or mission_hours <= 0:
            raise ValueError("window and mission must be positive")
        seed = knob_value("seed", seed)
        self.memory = memory
        self.rates = rates if rates is not None else rates_for_memory(memory)
        self.geometry = geometry
        self.overlap_window_hours = overlap_window_hours
        self.mission_hours = mission_hours
        self.ecc: EccScheme = make_scheme(memory.ecc)
        self.chips = devices_per_rank(memory)
        self._rng = np.random.default_rng(seed)
        # Outcome lookup tables, compiled once by the ECC module so the
        # scalar classification methods remain the single source of
        # truth (see :func:`repro.faults.ecc.build_ecc_luts`).
        luts = build_ecc_luts(self.ecc, self.geometry)
        self._components = list(luts.components)
        self._lambdas = np.array(
            [self.rates.rate(c) * 1e-9 * self.chips * mission_hours
             for c in self._components]
        )
        self._single_corrected = luts.single_corrected
        self._single_detected = luts.single_detected
        self._single_uncorrected = luts.single_uncorrected
        self._pair_lut = luts.pair_uncorrectable

    # -- core Monte-Carlo ----------------------------------------------------

    def run(self, trials: int = 100_000,
            method: "str | None" = None) -> FaultSimResult:
        """Simulate ``trials`` rank-missions and classify the outcomes.

        ``method`` selects the kernel (argument > ``REPRO_FAULTSIM_METHOD``
        env > ``batched``): ``reference`` is the original per-trial
        Python loop with O(n^2) pair checks, kept as the oracle;
        ``batched`` draws all events for all trials at once, classifies
        singles through lookup tables, and enumerates pairs only inside
        time-sorted overlap windows.  Both draw the same Poisson event
        counts first, so corrected/detected totals and the single-fault
        term are identical for a given seed; the pair term is a
        statistically equivalent estimate of the same expectation
        (cross-checked against :meth:`analytic_uncorrected_per_mission`).
        """
        if trials <= 0:
            raise ValueError("trials must be positive")
        from repro.obs import metrics as _metrics
        from repro.obs.tracing import span

        method = resolve_faultsim_method(method)
        with span("faultsim.run", memory=self.memory.name,
                  ecc=self.ecc.name, trials=trials, method=method):
            if method == "batched":
                result = self._run_batched(trials)
            else:
                result = self._run_reference(trials)
        registry = _metrics.get_registry()
        registry.counter("faultsim.campaigns").inc()
        registry.counter("faultsim.trials").inc(trials)
        registry.counter("faultsim.corrected").inc(result.corrected)
        registry.counter("faultsim.detected").inc(result.detected)
        registry.counter("faultsim.uncorrected").inc(result.uncorrected)
        return result

    def _run_batched(self, trials: int) -> FaultSimResult:
        rng = self._rng
        n_comp = len(self._components)
        counts = rng.poisson(self._lambdas, size=(trials, n_comp))

        # Singles: outcome depends only on the component, so the counts
        # matrix classifies itself.
        per_comp = counts.sum(axis=0)
        corrected = int(per_comp[self._single_corrected].sum())
        detected = int(per_comp[self._single_detected].sum())
        expected_uncorrected = float(per_comp @ self._single_uncorrected)

        # Pairs exist only in trials with >= 2 events.
        totals = counts.sum(axis=1)
        multi = totals >= 2
        mcounts = counts[multi]
        if len(mcounts):
            n_events = totals[multi]
            comp_idx = np.repeat(
                np.tile(np.arange(n_comp), len(mcounts)), mcounts.ravel()
            )
            trial_idx = np.repeat(np.arange(len(mcounts)), n_events)
            n_ev = len(comp_idx)
            chips = rng.integers(self.chips, size=n_ev)
            times = rng.random(n_ev) * self.mission_hours

            # One flat time axis for all trials: spacing consecutive
            # trials more than one overlap window apart means a single
            # sorted searchsorted pass finds every in-window partner
            # without ever pairing across trials.
            window = self.overlap_window_hours
            span = self.mission_hours + 2.0 * window
            tkey = trial_idx * span + times
            order = np.argsort(tkey, kind="stable")
            tkey = tkey[order]
            comp_idx = comp_idx[order]
            chips = chips[order]

            idx = np.arange(n_ev)
            hi = np.searchsorted(tkey, tkey + window, side="right")
            partners = hi - idx - 1  # in-window events strictly after i
            total_pairs = int(partners.sum())
            if total_pairs:
                a_idx = np.repeat(idx, partners)
                offsets = np.cumsum(partners) - partners
                b_idx = (np.arange(total_pairs)
                         - np.repeat(offsets, partners)
                         + np.repeat(idx + 1, partners))
                same = (chips[a_idx] == chips[b_idx]).astype(np.int64)
                expected_uncorrected += float(
                    self._pair_lut[comp_idx[a_idx], comp_idx[b_idx], same]
                    .sum()
                )

        per_mission = expected_uncorrected / trials
        return FaultSimResult(
            memory_name=self.memory.name,
            ecc_name=self.ecc.name,
            trials=trials,
            mission_hours=self.mission_hours,
            corrected=corrected,
            detected=detected,
            uncorrected=expected_uncorrected,
            expected_uncorrected_per_mission=per_mission,
        )

    def _run_reference(self, trials: int) -> FaultSimResult:
        rng = self._rng
        counts = rng.poisson(self._lambdas, size=(trials, len(self._components)))
        totals = counts.sum(axis=1)

        corrected = 0
        detected = 0
        expected_uncorrected = 0.0

        nonzero = np.nonzero(totals)[0]
        for trial in nonzero:
            events = []
            for ci, comp in enumerate(self._components):
                for _ in range(int(counts[trial, ci])):
                    chip = int(rng.integers(self.chips))
                    time = float(rng.random() * self.mission_hours)
                    events.append((comp, chip, time))

            for comp, _chip, _time in events:
                outcome = self.ecc.classify_single(comp)
                if outcome is Outcome.CORRECTED:
                    corrected += 1
                elif outcome is Outcome.DETECTED:
                    detected += 1
                else:
                    expected_uncorrected += 1.0

            # Pairwise combination (the ChipKill loss mode).
            for i in range(len(events)):
                for j in range(i + 1, len(events)):
                    ca, chip_a, ta = events[i]
                    cb, chip_b, tb = events[j]
                    if abs(ta - tb) > self.overlap_window_hours:
                        continue
                    expected_uncorrected += self.ecc.pair_uncorrectable(
                        ca, cb, chip_a == chip_b, self.geometry
                    )

        per_mission = expected_uncorrected / trials
        return FaultSimResult(
            memory_name=self.memory.name,
            ecc_name=self.ecc.name,
            trials=trials,
            mission_hours=self.mission_hours,
            corrected=corrected,
            detected=detected,
            uncorrected=expected_uncorrected,
            expected_uncorrected_per_mission=per_mission,
        )

    # -- analytic cross-check --------------------------------------------------

    def analytic_uncorrected_per_mission(self) -> float:
        """Closed-form expectation for the same model (validation).

        Singles: sum of rates whose single-fault outcome is
        UNCORRECTED.  Pairs: for components (a, b), the expected number
        of overlapping pairs is ``lam_a * lam_b * P(|ta - tb| < W)``
        times the footprint-overlap probability, with the same-chip
        correction applied for ChipKill.
        """
        lam = dict(zip(self._components, self._lambdas))
        total = 0.0
        for comp, l in lam.items():
            if self.ecc.classify_single(comp) is Outcome.UNCORRECTED:
                total += l

        w = min(1.0, self.overlap_window_hours / self.mission_hours)
        p_time = w * (2 - w)  # P(|U1 - U2| < w) for U ~ Uniform(0, 1)
        comps = self._components
        for i, a in enumerate(comps):
            for j, b in enumerate(comps):
                if j < i:
                    continue
                # Expected unordered pairs between the two streams.
                if i == j:
                    n_pairs = lam[a] * lam[b] / 2.0
                else:
                    n_pairs = lam[a] * lam[b]
                if n_pairs == 0:
                    continue
                p_diff_chip = 1.0 - 1.0 / self.chips
                p_unc_diff = self.ecc.pair_uncorrectable(
                    a, b, False, self.geometry
                )
                p_unc_same = self.ecc.pair_uncorrectable(
                    a, b, True, self.geometry
                )
                p_unc = p_diff_chip * p_unc_diff + (1 - p_diff_chip) * p_unc_same
                total += n_pairs * p_time * p_unc
        return total


def uncorrected_fit_per_page(
    memory: MemoryConfig,
    trials: int = 100_000,
    seed: "int | None" = None,
    overlap_window_hours: float = DEFAULT_OVERLAP_WINDOW_HOURS,
    analytic: bool = False,
) -> float:
    """Uncorrected-error FIT attributable to one 4 KB page of ``memory``.

    The rank-level uncorrected FIT divides evenly over the rank's
    pages.  With ``analytic=True`` the closed-form expectation replaces
    the Monte-Carlo estimate (fast; used by experiment harnesses where
    the ChipKill tail would need millions of trials — the paper itself
    runs 1M trials for ChipKill for the same reason).
    """
    sim = FaultSimulator(
        memory, overlap_window_hours=overlap_window_hours, seed=seed
    )
    if analytic:
        per_mission = sim.analytic_uncorrected_per_mission()
        fit_rank = per_mission / sim.mission_hours * 1e9
    else:
        fit_rank = sim.run(trials).uncorrected_fit_per_rank()
    ranks = memory.channels * memory.ranks_per_channel
    pages_per_rank = memory.num_pages / ranks
    return fit_rank / pages_per_rank
