"""A (127, 113) double-error-correcting BCH code over GF(2^7).

The strongest bit-granular code in the design space: t = 2, so *any*
two bit errors per codeword are correctable — not just adjacent ones —
at 14 check bits per 113 data bits (~12.4% overhead, comparable to
SEC-DED's 12.5%).  Narrow-sense binary BCH with primitive polynomial
``x^7 + x^3 + 1``; the generator is ``lcm(m1, m3)``, the product of
the minimal polynomials of alpha and alpha^3 (degree 7 each, degree 14
total).

Decoding is the classical two-syndrome procedure:

* ``S1 = r(alpha)``, ``S3 = r(alpha^3)``;
* both zero: clean;
* ``S3 == S1^3`` (and ``S1 != 0``): single error at position
  ``log(S1)``;
* otherwise solve the quadratic error locator
  ``z^2 + S1 z + (S3/S1 + S1^2)`` by scanning the 127 field elements;
  exactly two roots locate a double error, no roots means >= 3 errors
  (DETECTED).  Some >= 3-bit patterns alias to valid single/double
  locators and silently miscorrect; the exhaustive test sweep bounds
  that rate.

Same module contract as :mod:`repro.faults.hamming` (encode / decode /
inject / decode_batch), consumed by the behavioural ``bch`` scheme in
:mod:`repro.faults.ecc`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.ecc import Outcome

#: GF(2^7) primitive polynomial x^7 + x^3 + 1.
_PRIMITIVE = 0x89
FIELD_SIZE = 128
#: Code length n = 2^7 - 1 and dimension k = n - deg(g).
CODE_BITS = 127
CHECK_BITS = 14
DATA_BITS = CODE_BITS - CHECK_BITS

_EXP = np.zeros(FIELD_SIZE * 2, dtype=np.int64)
_LOG = np.zeros(FIELD_SIZE, dtype=np.int64)


def _build_tables() -> None:
    value = 1
    for power in range(FIELD_SIZE - 1):
        _EXP[power] = value
        _LOG[value] = power
        value <<= 1
        if value & FIELD_SIZE:
            value ^= _PRIMITIVE
    # Duplicate so exponent sums need no modulo.
    _EXP[FIELD_SIZE - 1:2 * (FIELD_SIZE - 1)] = _EXP[:FIELD_SIZE - 1]


_build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(128)."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[_LOG[a] + _LOG[b]])


def gf_div(a: int, b: int) -> int:
    """Division in GF(128); b must be non-zero."""
    if b == 0:
        raise ZeroDivisionError("GF(128) division by zero")
    if a == 0:
        return 0
    return int(_EXP[(_LOG[a] - _LOG[b]) % (FIELD_SIZE - 1)])


def gf_pow(base: int, exponent: int) -> int:
    if base == 0:
        return 0 if exponent else 1
    return int(_EXP[(_LOG[base] * exponent) % (FIELD_SIZE - 1)])


def _minimal_polynomial(element: int) -> "list[int]":
    """GF(2) minimal polynomial of ``element``, lowest degree first.

    Product of ``(x + c)`` over the conjugacy class ``{element^(2^i)}``;
    the coefficients land in GF(2) by construction.
    """
    conjugates = []
    c = element
    while c not in conjugates:
        conjugates.append(c)
        c = gf_mul(c, c)
    poly = [1]  # constant polynomial 1, coefficients in GF(128)
    for root in conjugates:
        nxt = [0] * (len(poly) + 1)
        for i, coeff in enumerate(poly):
            nxt[i] ^= gf_mul(coeff, root)  # (x + root): constant term
            nxt[i + 1] ^= coeff            # x term
        poly = nxt
    assert all(coeff in (0, 1) for coeff in poly)
    return poly


def _build_generator() -> np.ndarray:
    """g(x) = m1(x) * m3(x) as a GF(2) coefficient array."""
    m1 = _minimal_polynomial(2)            # alpha = x -> value 2
    m3 = _minimal_polynomial(gf_pow(2, 3))
    out = np.zeros(len(m1) + len(m3) - 1, dtype=np.uint8)
    for i, a in enumerate(m1):
        if a:
            for j, b in enumerate(m3):
                out[i + j] ^= b
    return out


#: Generator polynomial coefficients, lowest degree first (degree 14).
GENERATOR = _build_generator()
assert len(GENERATOR) == CHECK_BITS + 1 and GENERATOR[-1] == 1

#: alpha^i and alpha^(3i) for every codeword position (syndrome taps).
_ALPHA1 = np.array([gf_pow(2, i) for i in range(CODE_BITS)], dtype=np.int64)
_ALPHA3 = np.array([gf_pow(2, 3 * i) for i in range(CODE_BITS)],
                   dtype=np.int64)


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one 127-bit codeword."""

    outcome: Outcome
    #: The corrected 113-bit data word (valid unless DETECTED).
    data: "np.ndarray | None"
    #: Bit positions corrected, if any (1 or 2 entries).
    corrected_bits: "tuple[int, ...]" = ()

    @property
    def ok(self) -> bool:
        return self.outcome is not Outcome.DETECTED


def _as_bits(value, length: int) -> np.ndarray:
    arr = np.asarray(value, dtype=np.uint8)
    if arr.shape != (length,):
        raise ValueError(f"expected {length} bits, got shape {arr.shape}")
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("bits must be 0 or 1")
    return arr


def encode(data) -> np.ndarray:
    """Encode 113 data bits into a 127-bit systematic codeword.

    Bit ``i`` holds the coefficient of ``x^i``: the data occupies the
    high positions (``x^14 .. x^126``) and the parity — the remainder
    of ``data(x) * x^14`` modulo ``g(x)`` — the low 14, so the
    codeword is divisible by ``g`` and the data bits are recoverable
    by slicing.
    """
    bits = _as_bits(data, DATA_BITS)
    work = np.zeros(CODE_BITS, dtype=np.uint8)
    work[CHECK_BITS:] = bits
    # Long division by g(x), highest degree first.
    for i in range(CODE_BITS - 1, CHECK_BITS - 1, -1):
        if work[i]:
            work[i - CHECK_BITS: i + 1] ^= GENERATOR
    codeword = np.zeros(CODE_BITS, dtype=np.uint8)
    codeword[CHECK_BITS:] = bits
    codeword[:CHECK_BITS] = work[:CHECK_BITS]
    return codeword


def syndromes(codeword) -> "tuple[int, int]":
    """``(S1, S3) = (r(alpha), r(alpha^3))``; (0, 0) = clean."""
    bits = _as_bits(codeword, CODE_BITS)
    on = np.flatnonzero(bits)
    s1 = 0
    s3 = 0
    for i in on:
        s1 ^= int(_ALPHA1[i])
        s3 ^= int(_ALPHA3[i])
    return s1, s3


def decode(codeword) -> DecodeResult:
    """Decode a possibly-corrupted codeword (see module docstring)."""
    bits = _as_bits(codeword, CODE_BITS).copy()
    s1, s3 = syndromes(bits)
    if s1 == 0 and s3 == 0:
        return DecodeResult(outcome=Outcome.CORRECTED,
                            data=bits[CHECK_BITS:])
    if s1 != 0 and s3 == gf_pow(s1, 3):
        position = int(_LOG[s1])
        bits[position] ^= 1
        return DecodeResult(outcome=Outcome.CORRECTED,
                            data=bits[CHECK_BITS:],
                            corrected_bits=(position,))
    if s1 == 0:
        # Two distinct positions cannot sum to zero: >= 3 errors.
        return DecodeResult(outcome=Outcome.DETECTED, data=None)
    # Double-error locator z^2 + S1 z + (S3/S1 + S1^2); scan for roots.
    constant = gf_div(s3, s1) ^ gf_pow(s1, 2)
    roots = []
    for i in range(CODE_BITS):
        z = int(_ALPHA1[i])
        if gf_mul(z, z) ^ gf_mul(s1, z) ^ constant == 0:
            roots.append(i)
            if len(roots) == 2:
                break
    if len(roots) != 2:
        return DecodeResult(outcome=Outcome.DETECTED, data=None)
    for position in roots:
        bits[position] ^= 1
    return DecodeResult(outcome=Outcome.CORRECTED,
                        data=bits[CHECK_BITS:],
                        corrected_bits=tuple(roots))


def decode_batch(
    codewords,
    alpha1_table: "np.ndarray | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorised :func:`decode` over a ``(n, 127)`` batch.

    Returns ``(outcomes, data)`` with ``outcomes[i]`` 0 for CORRECTED
    and 1 for DETECTED; rows of DETECTED words are zeroed.  Syndromes
    and the clean/single paths are fully vectorised; the (rare) words
    needing the quadratic locator fall back to :func:`decode` per word.
    The optional syndrome-tap override exists so the differential
    verifier can prove a tampered table is caught.
    """
    alpha1 = _ALPHA1 if alpha1_table is None else alpha1_table
    words = np.atleast_2d(np.asarray(codewords, dtype=np.uint8)).copy()
    if words.shape[1] != CODE_BITS:
        raise ValueError(f"expected rows of {CODE_BITS} bits")
    s1 = np.bitwise_xor.reduce(np.where(words != 0, alpha1, 0), axis=1)
    s3 = np.bitwise_xor.reduce(np.where(words != 0, _ALPHA3, 0), axis=1)
    outcomes = np.zeros(len(words), dtype=np.int8)

    clean = (s1 == 0) & (s3 == 0)
    s1_cubed = np.where(
        s1 != 0, _EXP[(_LOG[s1] * 3) % (FIELD_SIZE - 1)], 0)
    single = (s1 != 0) & (s3 == s1_cubed)
    rows = np.flatnonzero(single)
    if len(rows):
        words[rows, _LOG[s1[rows]]] ^= 1

    hard = np.flatnonzero(~clean & ~single)
    for row in hard:
        result = decode(words[row])
        if result.outcome is Outcome.DETECTED:
            outcomes[row] = 1
            words[row] = 0
        else:
            for position in result.corrected_bits:
                words[row, position] ^= 1
    return outcomes, words[:, CHECK_BITS:]


def inject(codeword, positions) -> np.ndarray:
    """Flip the given bit positions of a codeword (fault injection)."""
    bits = _as_bits(codeword, CODE_BITS).copy()
    for position in positions:
        if not 0 <= position < CODE_BITS:
            raise ValueError(f"bit position {position} out of range")
        bits[position] ^= 1
    return bits


def miscorrection_possible(positions) -> bool:
    """Whether flipping ``positions`` aliases to a *correctable-looking*
    syndrome pair (the silent-data-corruption escape for >= 3-bit
    patterns)."""
    s1 = 0
    s3 = 0
    for position in positions:
        s1 ^= int(_ALPHA1[position])
        s3 ^= int(_ALPHA3[position])
    if s1 == 0 and s3 == 0:
        return True  # aliases to "no error"
    if s1 != 0 and s3 == gf_pow(s1, 3):
        return True  # aliases to a single
    if s1 == 0:
        return False
    constant = gf_div(s3, s1) ^ gf_pow(s1, 2)
    roots = 0
    for i in range(CODE_BITS):
        z = int(_ALPHA1[i])
        if gf_mul(z, z) ^ gf_mul(s1, z) ^ constant == 0:
            roots += 1
    return roots == 2
