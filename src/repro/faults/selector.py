"""Budget-driven ECC selection: cheapest scheme meeting a FIT ceiling.

The paper hard-codes protection (SEC-DED on the stacked tier, ChipKill
on DDR).  With the full scheme ladder and the cost models of
:mod:`repro.faults.cost`, a tier's ECC can instead be *derived* from a
reliability budget: :class:`EccSelector` evaluates the analytic
uncorrected FIT of every registered scheme on a concrete
:class:`~repro.config.MemoryConfig` and picks the cheapest one whose
FIT fits under the ceiling.  If no scheme meets the budget the
strongest is returned (best effort — the caller can inspect
:meth:`EccSelector.meets_budget` to tell the two cases apart).

Because per-component uncorrected FIT mass strictly decreases along
:data:`~repro.faults.ecc.SCHEME_LADDER` while cost strictly increases,
"cheapest meeting the budget" equals "weakest meeting the budget" —
which makes selection monotone in the budget: tightening the ceiling
can only move the choice up the ladder, loosening it only down.  The
property-test suite asserts exactly that.

``sim/system.py`` threads this through ``prepare_workload`` /
``build_system_from_budget`` so an experiment can say "give every tier
at most X FIT per page" instead of naming schemes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.config import MemoryConfig, SystemConfig
from repro.faults.cost import EccCost, cost_of
from repro.faults.ecc import SCHEME_LADDER


@dataclass(frozen=True)
class SchemeEvaluation:
    """One scheme's score on one memory tier."""

    scheme: str
    fit_per_page: float
    cost: EccCost

    def meets(self, budget_fit_per_page: float) -> bool:
        return self.fit_per_page <= budget_fit_per_page


@dataclass(frozen=True)
class EccSelector:
    """Pick the cheapest ECC scheme meeting a per-page FIT budget.

    ``budget_fit_per_page`` is the ceiling on analytic uncorrected FIT
    attributable to one 4 KB page of the tier (the same quantity
    :func:`repro.faults.faultsim.uncorrected_fit_per_page` reports and
    the SER model consumes).
    """

    budget_fit_per_page: float

    def __post_init__(self) -> None:
        if self.budget_fit_per_page < 0:
            raise ValueError("FIT budget must be non-negative")

    def evaluate(self, memory: MemoryConfig) -> "tuple[SchemeEvaluation, ...]":
        """Score every registered scheme on ``memory``, ladder order."""
        from repro.faults.faultsim import uncorrected_fit_per_page

        out = []
        for name in SCHEME_LADDER:
            candidate = dataclasses.replace(memory, ecc=name)
            out.append(SchemeEvaluation(
                scheme=name,
                fit_per_page=uncorrected_fit_per_page(candidate,
                                                      analytic=True),
                cost=cost_of(name),
            ))
        return tuple(out)

    def select(self, memory: MemoryConfig) -> str:
        """Cheapest scheme meeting the budget; strongest if none does."""
        evaluations = self.evaluate(memory)
        feasible = [e for e in evaluations
                    if e.meets(self.budget_fit_per_page)]
        if not feasible:
            return evaluations[-1].scheme
        return min(feasible, key=lambda e: e.cost.total).scheme

    def meets_budget(self, memory: MemoryConfig) -> bool:
        """Whether *any* scheme keeps ``memory`` under the budget."""
        return any(e.meets(self.budget_fit_per_page)
                   for e in self.evaluate(memory))

    def apply(self, memory: MemoryConfig) -> MemoryConfig:
        """``memory`` with its ECC replaced by the selected scheme."""
        return dataclasses.replace(memory, ecc=self.select(memory))


def select_system_ecc(
    config: SystemConfig,
    fast_budget_fit_per_page: float,
    slow_budget_fit_per_page: "float | None" = None,
) -> SystemConfig:
    """Re-derive both tiers' ECC from per-page FIT budgets.

    ``slow_budget_fit_per_page`` defaults to the fast budget so a
    single ceiling can govern the whole system.
    """
    if slow_budget_fit_per_page is None:
        slow_budget_fit_per_page = fast_budget_fit_per_page
    fast = EccSelector(fast_budget_fit_per_page).apply(config.fast_memory)
    slow = EccSelector(slow_budget_fit_per_page).apply(config.slow_memory)
    return dataclasses.replace(config, fast_memory=fast, slow_memory=slow)
