"""Soft-error-rate composition: SER = FIT_uncorrected x AVF (Eq. 2).

The SER of the system is the sum over pages of the page's AVF times
the uncorrected-error FIT of whichever memory currently holds it.  The
placement therefore decides how much of the workload's AVF mass is
exposed to the weakly-protected fast memory.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig
from repro.avf.page import IntervalProfile, PageStats
from repro.faults.faultsim import (
    DEFAULT_OVERLAP_WINDOW_HOURS,
    resolve_fault_trials,
    uncorrected_fit_per_page,
)


@dataclass
class SerModel:
    """Per-page uncorrected FIT rates for both HMA memories."""

    fit_fast_per_page: float
    fit_slow_per_page: float

    def __post_init__(self) -> None:
        if self.fit_fast_per_page < 0 or self.fit_slow_per_page < 0:
            raise ValueError("FIT rates must be non-negative")

    @classmethod
    def for_system(
        cls,
        config: SystemConfig,
        trials: "int | None" = None,
        seed: "int | None" = None,
        overlap_window_hours: float = DEFAULT_OVERLAP_WINDOW_HOURS,
    ) -> "SerModel":
        """Run the fault simulator for both memories.

        ``trials`` defaults to the ``REPRO_FAULT_TRIALS`` environment
        variable, else 0.  ``0`` uses the analytic expectation, which
        is exact for this model and avoids the millions of Monte-Carlo
        trials the ChipKill tail needs.
        """
        trials = resolve_fault_trials(trials)
        kwargs = dict(
            seed=seed,
            overlap_window_hours=overlap_window_hours,
            analytic=trials == 0,
        )
        if trials:
            kwargs["trials"] = trials
        return cls(
            fit_fast_per_page=uncorrected_fit_per_page(config.fast_memory, **kwargs),
            fit_slow_per_page=uncorrected_fit_per_page(config.slow_memory, **kwargs),
        )

    @classmethod
    def for_systems(
        cls,
        configs: "list[SystemConfig]",
        trials: "int | None" = None,
        seed: "int | None" = None,
        overlap_window_hours: float = DEFAULT_OVERLAP_WINDOW_HOURS,
    ) -> "list[SerModel]":
        """One :meth:`for_system` model per config, campaigns deduped.

        Sweeps often vary only one memory (or neither — a FIT
        multiplier applies downstream), so identical
        ``(memory config, simulator arguments)`` campaigns run once and
        fan out.  Deduplication is only applied when the campaign is
        deterministic (analytic, or Monte-Carlo with an explicit seed);
        the values are then exactly what per-config :meth:`for_system`
        calls would produce.
        """
        trials = resolve_fault_trials(trials)
        kwargs = dict(
            seed=seed,
            overlap_window_hours=overlap_window_hours,
            analytic=trials == 0,
        )
        if trials:
            kwargs["trials"] = trials
        deterministic = trials == 0 or seed is not None
        memo: "dict[tuple, float]" = {}

        def fit(mem) -> float:
            if deterministic:
                try:
                    key = (type(mem).__name__, dataclasses.astuple(mem))
                except (TypeError, ValueError):
                    key = None
                if key is not None:
                    if key not in memo:
                        memo[key] = uncorrected_fit_per_page(mem, **kwargs)
                    return memo[key]
            return uncorrected_fit_per_page(mem, **kwargs)

        return [
            cls(fit_fast_per_page=fit(config.fast_memory),
                fit_slow_per_page=fit(config.slow_memory))
            for config in configs
        ]

    @property
    def fit_ratio(self) -> float:
        """Per-page uncorrected FIT of fast over slow memory."""
        if self.fit_slow_per_page == 0:
            return float("inf")
        return self.fit_fast_per_page / self.fit_slow_per_page

    # -- static placements -----------------------------------------------------

    def ser_static(self, stats: PageStats, fast_pages) -> float:
        """System SER for a static placement (``fast_pages`` in HBM).

        Membership is an ``np.isin`` against the profile's page array —
        the same booleans (and therefore the same masked-sum rounding)
        as the original per-page set-membership loop.
        """
        fast_arr = np.asarray(
            fast_pages if isinstance(fast_pages, np.ndarray)
            else [int(p) for p in fast_pages],
            dtype=np.int64,
        )
        if len(fast_arr):
            in_fast = np.isin(stats.pages, fast_arr)
        else:
            in_fast = np.zeros(len(stats), dtype=bool)
        avf_fast = float(stats.avf[in_fast].sum())
        avf_slow = float(stats.avf[~in_fast].sum())
        return avf_fast * self.fit_fast_per_page + avf_slow * self.fit_slow_per_page

    def ser_ddr_only(self, stats: PageStats) -> float:
        """Baseline SER with the entire footprint in slow memory."""
        return float(stats.avf.sum()) * self.fit_slow_per_page

    # -- dynamic placements ------------------------------------------------------

    def ser_dynamic(
        self,
        intervals: IntervalProfile,
        fast_residency: "list[set[int]]",
    ) -> float:
        """System SER under migration.

        ``fast_residency[i]`` is the set of pages resident in fast
        memory during interval ``i``; each interval's AVF contribution
        is charged to the device holding the page at that time.
        """
        if len(fast_residency) != intervals.num_intervals:
            raise ValueError(
                "need one residency set per interval "
                f"({intervals.num_intervals}), got {len(fast_residency)}"
            )
        total = 0.0
        for avf_map, resident in zip(intervals.interval_avf, fast_residency):
            for page, avf in avf_map.items():
                if page in resident:
                    total += avf * self.fit_fast_per_page
                else:
                    total += avf * self.fit_slow_per_page
        return total

    def ser_dynamic_arrays(
        self,
        interval_pairs: "list[tuple[np.ndarray, np.ndarray]]",
        fast_residency: "list[set[int]]",
    ) -> float:
        """:meth:`ser_dynamic` over per-interval ``(pages, avf)`` arrays.

        Consumes the array form produced by
        :class:`~repro.avf.page.IntervalProfileBuilder` without ever
        building interval dicts.  The per-page products are folded with
        a strictly-sequential accumulation in the oracle's iteration
        order, so the result is bit-identical to :meth:`ser_dynamic` on
        the equivalent :class:`~repro.avf.page.IntervalProfile`.
        """
        if len(fast_residency) != len(interval_pairs):
            raise ValueError(
                "need one residency set per interval "
                f"({len(interval_pairs)}), got {len(fast_residency)}"
            )
        products: "list[np.ndarray]" = []
        for (pages, values), resident in zip(interval_pairs, fast_residency):
            if not len(pages):
                continue
            if resident:
                resident_arr = np.fromiter(resident, dtype=np.int64,
                                           count=len(resident))
                in_fast = np.isin(pages, resident_arr)
            else:
                in_fast = np.zeros(len(pages), dtype=bool)
            products.append(values * np.where(
                in_fast, self.fit_fast_per_page, self.fit_slow_per_page))
        if not products:
            return 0.0
        # One value per (interval, page) in oracle order; accumulate
        # sequentially so the float64 rounding matches the scalar loop.
        flat = (products[0] if len(products) == 1
                else np.concatenate(products))
        seq = np.empty(len(flat) + 1)
        seq[0] = 0.0
        seq[1:] = flat
        return float(np.add.accumulate(seq)[-1])

    def ser_dynamic_series(
        self,
        intervals: IntervalProfile,
        fast_residency: "list[set[int]]",
    ) -> "list[float]":
        """Per-interval SER contributions under migration (telemetry).

        Same accounting as :meth:`ser_dynamic` sliced by interval, for
        epoch snapshot series; :meth:`ser_dynamic` keeps its own single
        accumulation so its float rounding is untouched.
        """
        if len(fast_residency) != intervals.num_intervals:
            raise ValueError(
                "need one residency set per interval "
                f"({intervals.num_intervals}), got {len(fast_residency)}"
            )
        series = []
        for avf_map, resident in zip(intervals.interval_avf, fast_residency):
            total = 0.0
            for page, avf in avf_map.items():
                if page in resident:
                    total += avf * self.fit_fast_per_page
                else:
                    total += avf * self.fit_slow_per_page
            series.append(total)
        return series
