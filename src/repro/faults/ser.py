"""Soft-error-rate composition: SER = FIT_uncorrected x AVF (Eq. 2).

The SER of the system is the sum over pages of the page's AVF times
the uncorrected-error FIT of whichever memory currently holds it.  The
placement therefore decides how much of the workload's AVF mass is
exposed to the weakly-protected fast memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig
from repro.avf.page import IntervalProfile, PageStats
from repro.faults.faultsim import (
    DEFAULT_OVERLAP_WINDOW_HOURS,
    resolve_fault_trials,
    uncorrected_fit_per_page,
)


@dataclass
class SerModel:
    """Per-page uncorrected FIT rates for both HMA memories."""

    fit_fast_per_page: float
    fit_slow_per_page: float

    def __post_init__(self) -> None:
        if self.fit_fast_per_page < 0 or self.fit_slow_per_page < 0:
            raise ValueError("FIT rates must be non-negative")

    @classmethod
    def for_system(
        cls,
        config: SystemConfig,
        trials: "int | None" = None,
        seed: "int | None" = None,
        overlap_window_hours: float = DEFAULT_OVERLAP_WINDOW_HOURS,
    ) -> "SerModel":
        """Run the fault simulator for both memories.

        ``trials`` defaults to the ``REPRO_FAULT_TRIALS`` environment
        variable, else 0.  ``0`` uses the analytic expectation, which
        is exact for this model and avoids the millions of Monte-Carlo
        trials the ChipKill tail needs.
        """
        trials = resolve_fault_trials(trials)
        kwargs = dict(
            seed=seed,
            overlap_window_hours=overlap_window_hours,
            analytic=trials == 0,
        )
        if trials:
            kwargs["trials"] = trials
        return cls(
            fit_fast_per_page=uncorrected_fit_per_page(config.fast_memory, **kwargs),
            fit_slow_per_page=uncorrected_fit_per_page(config.slow_memory, **kwargs),
        )

    @property
    def fit_ratio(self) -> float:
        """Per-page uncorrected FIT of fast over slow memory."""
        if self.fit_slow_per_page == 0:
            return float("inf")
        return self.fit_fast_per_page / self.fit_slow_per_page

    # -- static placements -----------------------------------------------------

    def ser_static(self, stats: PageStats, fast_pages) -> float:
        """System SER for a static placement (``fast_pages`` in HBM)."""
        fast_set = set(int(p) for p in fast_pages)
        in_fast = np.fromiter(
            (int(p) in fast_set for p in stats.pages), dtype=bool, count=len(stats)
        )
        avf_fast = float(stats.avf[in_fast].sum())
        avf_slow = float(stats.avf[~in_fast].sum())
        return avf_fast * self.fit_fast_per_page + avf_slow * self.fit_slow_per_page

    def ser_ddr_only(self, stats: PageStats) -> float:
        """Baseline SER with the entire footprint in slow memory."""
        return float(stats.avf.sum()) * self.fit_slow_per_page

    # -- dynamic placements ------------------------------------------------------

    def ser_dynamic(
        self,
        intervals: IntervalProfile,
        fast_residency: "list[set[int]]",
    ) -> float:
        """System SER under migration.

        ``fast_residency[i]`` is the set of pages resident in fast
        memory during interval ``i``; each interval's AVF contribution
        is charged to the device holding the page at that time.
        """
        if len(fast_residency) != intervals.num_intervals:
            raise ValueError(
                "need one residency set per interval "
                f"({intervals.num_intervals}), got {len(fast_residency)}"
            )
        total = 0.0
        for avf_map, resident in zip(intervals.interval_avf, fast_residency):
            for page, avf in avf_map.items():
                if page in resident:
                    total += avf * self.fit_fast_per_page
                else:
                    total += avf * self.fit_slow_per_page
        return total

    def ser_dynamic_series(
        self,
        intervals: IntervalProfile,
        fast_residency: "list[set[int]]",
    ) -> "list[float]":
        """Per-interval SER contributions under migration (telemetry).

        Same accounting as :meth:`ser_dynamic` sliced by interval, for
        epoch snapshot series; :meth:`ser_dynamic` keeps its own single
        accumulation so its float rounding is untouched.
        """
        if len(fast_residency) != intervals.num_intervals:
            raise ValueError(
                "need one residency set per interval "
                f"({intervals.num_intervals}), got {len(fast_residency)}"
            )
        series = []
        for avf_map, resident in zip(intervals.interval_avf, fast_residency):
            total = 0.0
            for page, avf in avf_map.items():
                if page in resident:
                    total += avf * self.fit_fast_per_page
                else:
                    total += avf * self.fit_slow_per_page
            series.append(total)
        return series
