"""Permanent-fault accumulation and aging-aware capacity derating.

The paper's related work (Gupta et al., MEMSYS 2016 [16]) handles the
*permanent* half of the field-study fault data: faults that persist
accumulate over a system's lifetime, and an aging-aware HMA derates the
die-stacked memory as it ages.  The HPCA paper deliberately scopes to
transient faults; this module supplies the permanent-fault counterpart
as an extension so lifetime studies can combine both:

* :class:`PermanentFitRates` — per-component permanent FIT rates (the
  field study reports these alongside the transient rates; permanent
  faults are the larger share).
* :class:`AgingModel` — expected accumulated faulty pages and derated
  usable capacity of a memory as a function of age.
* :func:`lifetime_capacity_schedule` — usable-HBM-fraction by year,
  the input an aging-aware placement would consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import MemoryConfig
from repro.faults.fit import FaultComponent, devices_per_rank

HOURS_PER_YEAR = 24.0 * 365.0


@dataclass(frozen=True)
class PermanentFitRates:
    """Per-device permanent FIT rates, by component (field-study shaped;
    permanent faults outnumber transient ones in the study)."""

    bit: float = 18.6
    word: float = 0.8
    column: float = 5.6
    row: float = 8.2
    bank: float = 10.0
    rank: float = 0.8

    def rate(self, component: FaultComponent) -> float:
        return float(getattr(self, component.value))

    @property
    def total(self) -> float:
        return sum(self.rate(c) for c in FaultComponent)


#: Pages lost when a component fails permanently (4 KB pages, assuming
#: 2 KB rows, 8 K-row banks; word/bit faults kill the page they sit in
#: because the OS retires whole pages).
_PAGES_LOST = {
    FaultComponent.BIT: 1,
    FaultComponent.WORD: 1,
    FaultComponent.COLUMN: 16,
    FaultComponent.ROW: 1,
    FaultComponent.BANK: 4096,
    FaultComponent.RANK: 32768,
}


class AgingModel:
    """Expected permanent-fault attrition of one memory over time."""

    def __init__(
        self,
        memory: MemoryConfig,
        rates: "PermanentFitRates | None" = None,
    ) -> None:
        self.memory = memory
        self.rates = rates if rates is not None else PermanentFitRates()
        self.chips = devices_per_rank(memory)
        self.ranks = memory.channels * memory.ranks_per_channel
        # Die-stacked parts age faster for the same reasons their
        # transient FIT is higher (density, TSVs).
        self.multiplier = memory.fit_multiplier

    def expected_faults(self, years: float,
                        component: FaultComponent) -> float:
        """Expected permanent faults of one component class, device-wide."""
        if years < 0:
            raise ValueError("years must be non-negative")
        hours = years * HOURS_PER_YEAR
        per_device = self.rates.rate(component) * self.multiplier * 1e-9
        return per_device * hours * self.chips * self.ranks

    def expected_lost_pages(self, years: float) -> float:
        """Expected pages retired by the OS after ``years`` of uptime."""
        return sum(
            self.expected_faults(years, component) * _PAGES_LOST[component]
            for component in FaultComponent
        )

    def usable_fraction(self, years: float) -> float:
        """Usable capacity fraction after page retirement."""
        lost = self.expected_lost_pages(years)
        return max(0.0, 1.0 - lost / self.memory.num_pages)

    def usable_pages(self, years: float) -> int:
        return int(self.memory.num_pages * self.usable_fraction(years))


def lifetime_capacity_schedule(
    memory: MemoryConfig,
    years=(0, 1, 2, 4, 7, 10),
    rates: "PermanentFitRates | None" = None,
) -> "list[tuple[float, float]]":
    """(age in years, usable capacity fraction) over a deployment life."""
    model = AgingModel(memory, rates=rates)
    return [(float(y), model.usable_fraction(float(y))) for y in years]
