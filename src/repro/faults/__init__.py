"""Reliability substrate: FIT rates, ECC models, FaultSim, SER."""

from repro.faults.fit import (
    JAGUAR_TRANSIENT,
    FaultComponent,
    FitRates,
    devices_per_rank,
    rates_for_memory,
)
from repro.faults.ecc import (
    ChipGeometry,
    ChipKill,
    EccScheme,
    NoEcc,
    Outcome,
    SecDed,
    footprint_overlap_probability,
    make_scheme,
)
from repro.faults.faultsim import (
    DEFAULT_MISSION_HOURS,
    DEFAULT_OVERLAP_WINDOW_HOURS,
    FaultSimResult,
    FaultSimulator,
    uncorrected_fit_per_page,
)
from repro.faults.hamming import (
    DecodeResult,
    decode as secded_decode,
    encode as secded_encode,
)
from repro.faults.reed_solomon import ChipKillCode, RsDecodeResult
from repro.faults.ser import SerModel

__all__ = [
    "FaultComponent",
    "FitRates",
    "JAGUAR_TRANSIENT",
    "rates_for_memory",
    "devices_per_rank",
    "Outcome",
    "EccScheme",
    "NoEcc",
    "SecDed",
    "ChipKill",
    "ChipGeometry",
    "make_scheme",
    "footprint_overlap_probability",
    "FaultSimulator",
    "FaultSimResult",
    "uncorrected_fit_per_page",
    "DEFAULT_MISSION_HOURS",
    "DEFAULT_OVERLAP_WINDOW_HOURS",
    "SerModel",
    "secded_encode",
    "secded_decode",
    "DecodeResult",
    "ChipKillCode",
    "RsDecodeResult",
]
