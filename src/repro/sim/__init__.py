"""Trace-driven performance simulation: cores, replay engine, glue."""

from repro.sim.checkpoint import load_prepared, save_prepared
from repro.sim.cpu import ReplayCore
from repro.sim.engine import interval_boundaries, replay
from repro.sim.event_engine import EventDrivenReplay, replay_event_driven
from repro.sim.results import ExperimentResult, ReplayResult
from repro.sim.system import (
    DEFAULT_SCALE,
    PreparedWorkload,
    evaluate_annotation_migration,
    evaluate_annotations,
    evaluate_migration,
    evaluate_static,
    prepare_workload,
    run_migration_experiment,
    run_placement_experiment,
)

__all__ = [
    "ReplayCore",
    "save_prepared",
    "load_prepared",
    "replay",
    "replay_event_driven",
    "EventDrivenReplay",
    "interval_boundaries",
    "ReplayResult",
    "ExperimentResult",
    "PreparedWorkload",
    "prepare_workload",
    "evaluate_static",
    "evaluate_migration",
    "evaluate_annotations",
    "evaluate_annotation_migration",
    "run_placement_experiment",
    "run_migration_experiment",
    "DEFAULT_SCALE",
]
