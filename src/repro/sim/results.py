"""Result dataclasses shared by the replay engine and the harness."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.hma import MigrationStats


@dataclass
class DeviceUtilisation:
    """Traffic split and bus occupancy of one memory device."""

    name: str
    reads: int
    writes: int
    busy_time: float
    total_seconds: float

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def utilisation(self) -> float:
        """Fraction of wall-clock the device's buses carried data."""
        if self.total_seconds == 0:
            return 0.0
        return min(1.0, self.busy_time / self.total_seconds)


@dataclass
class ReplayResult:
    """Timing outcome of one trace replay."""

    instructions: int
    requests: int
    total_seconds: float
    core_frequency_hz: float
    mean_read_latency: float
    migrations: MigrationStats
    #: Per-device traffic/occupancy (fast, slow), filled by the engine.
    device_utilisation: "list[DeviceUtilisation]" = field(
        default_factory=list
    )
    #: Per-core IPC over each core's own busy time.
    per_core_ipc: "list[float]" = field(default_factory=list)
    #: Pages resident in fast memory at the start of each interval.
    fast_residency: "list[set[int]]" = field(default_factory=list)
    #: Logical-time boundaries separating the intervals.
    interval_boundaries: np.ndarray = field(
        default_factory=lambda: np.empty(0)
    )
    #: Epoch telemetry (:class:`repro.obs.snapshots.SnapshotSeries`)
    #: when the replay ran with telemetry enabled, else ``None``.
    snapshots: "object | None" = None

    @property
    def total_cycles(self) -> float:
        return self.total_seconds * self.core_frequency_hz

    @property
    def ipc(self) -> float:
        """Aggregate instructions per cycle over the slowest core."""
        if self.total_cycles == 0:
            return 0.0
        return self.instructions / self.total_cycles

    def weighted_speedup(self, baseline: "ReplayResult") -> float:
        """Sum of per-core IPC ratios vs a baseline run (Snavely &
        Tullsen's multiprogrammed-throughput metric)."""
        pairs = [
            (ipc, base) for ipc, base
            in zip(self.per_core_ipc, baseline.per_core_ipc)
            if base > 0
        ]
        if not pairs:
            return 0.0
        return sum(ipc / base for ipc, base in pairs)

    def harmonic_speedup(self, baseline: "ReplayResult") -> float:
        """Harmonic mean of per-core speedups: balances throughput and
        fairness (Luo et al.)."""
        ratios = [
            ipc / base for ipc, base
            in zip(self.per_core_ipc, baseline.per_core_ipc)
            if base > 0 and ipc > 0
        ]
        if not ratios:
            return 0.0
        return len(ratios) / sum(1.0 / r for r in ratios)

    def fairness(self, baseline: "ReplayResult") -> float:
        """Min/max per-core speedup ratio in [0, 1]; 1 = perfectly fair."""
        ratios = [
            ipc / base for ipc, base
            in zip(self.per_core_ipc, baseline.per_core_ipc)
            if base > 0
        ]
        if not ratios or max(ratios) == 0:
            return 0.0
        return min(ratios) / max(ratios)


@dataclass
class ExperimentResult:
    """One (workload, scheme) evaluation point."""

    workload: str
    scheme: str
    ipc: float
    ser: float
    #: Relative to the all-DDR baseline (paper Figs. 5 and 12).
    ipc_vs_ddr: float
    ser_vs_ddr: float
    migrations: int = 0
    mean_read_latency: float = 0.0

    def relative_to(self, baseline: "ExperimentResult") -> "tuple[float, float]":
        """(IPC ratio, SER ratio) of this scheme vs. ``baseline``."""
        ipc_ratio = self.ipc / baseline.ipc if baseline.ipc else 0.0
        ser_ratio = self.ser / baseline.ser if baseline.ser else 0.0
        return ipc_ratio, ser_ratio
