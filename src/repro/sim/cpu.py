"""MLP-aware trace-replay core model.

The paper replays traces against a 16-core, 4-wide out-of-order
processor (Table 1).  Our replacement is the standard trace-replay
approximation: a core retires its gap instructions at full issue width,
issues memory reads into a bounded outstanding-miss window (the
memory-level parallelism afforded by the 128-entry ROB), and stalls
when the window is full until the oldest read returns.  Writes are
posted — they consume memory bandwidth but do not block retirement.

IPC differences between placements then emerge from the average read
latency and from bandwidth saturation of whichever device serves the
hot pages, which is exactly the behaviour the paper's experiments
measure.
"""

from __future__ import annotations

from collections import deque

from repro.config import CoreConfig


class ReplayCore:
    """One core's timing state during trace replay."""

    __slots__ = ("seconds_per_instruction", "window", "time", "outstanding")

    def __init__(self, config: CoreConfig, window: "int | None" = None) -> None:
        self.seconds_per_instruction = 1.0 / (
            config.issue_width * config.frequency_hz
        )
        # The effective miss window is the smaller of what the ROB
        # affords and what the workload's dependence structure (its
        # MLP) sustains.
        self.window = min(
            config.max_outstanding_misses,
            window if window is not None else config.max_outstanding_misses,
        )
        if self.window < 1:
            raise ValueError("miss window must be >= 1")
        self.time = 0.0
        self.outstanding: "deque[float]" = deque()

    def advance(self, gap_instructions: int) -> float:
        """Retire gap instructions; returns the new core time."""
        self.time += gap_instructions * self.seconds_per_instruction
        out = self.outstanding
        while out and out[0] <= self.time:
            out.popleft()
        return self.time

    def ready_to_issue_read(self) -> float:
        """Stall (if the miss window is full) and return issue time."""
        out = self.outstanding
        if len(out) >= self.window:
            oldest = out.popleft()
            if oldest > self.time:
                self.time = oldest
            while out and out[0] <= self.time:
                out.popleft()
        return self.time

    def complete_read(self, completion_time: float) -> None:
        self.outstanding.append(completion_time)

    def drain(self) -> float:
        """Wait for every outstanding read; returns the final time."""
        if self.outstanding:
            last = max(self.outstanding)
            if last > self.time:
                self.time = last
            self.outstanding.clear()
        return self.time
