"""Experiment orchestration: workload -> profile -> placement -> results.

This module wires the substrates together the way the paper's
methodology does:

1. generate the 16-core memory trace (``repro.trace``),
2. profile it on a flat memory for per-page hotness and AVF
   (``repro.avf``) — the paper's prior profiling run,
3. compute per-page uncorrected FIT rates for both memories
   (``repro.faults``),
4. install a placement / run a migration mechanism and replay the
   trace against the two-level DRAM model (``repro.dram``,
   ``repro.sim.engine``),
5. compose IPC and SER (= FIT x AVF) for the scheme.

:class:`PreparedWorkload` caches steps 1-3 plus the all-DDR baseline so
that sweeps over many schemes reuse them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.avf.page import PageStats, profile_intervals, profile_trace
from repro.config import SystemConfig, scaled_config
from repro.core.annotations import AnnotationPlan, plan_annotations
from repro.core.migration import MigrationMechanism
from repro.core.placement import PerformanceFocusedPlacement, PlacementPolicy
from repro.dram.hma import HeterogeneousMemory
from repro.faults.ser import SerModel
from repro.obs import current_run
from repro.sim.engine import replay
from repro.sim.results import ExperimentResult
from repro.trace.workloads import Workload, WorkloadTrace

#: Default evaluation scale: 1 MB "HBM" against 16 MB "DDR3" with
#: proportionally shrunk footprints (see ``repro.config.scaled_config``).
DEFAULT_SCALE = 1 / 1024


@dataclass
class PreparedWorkload:
    """Everything reusable across schemes for one workload."""

    workload: Workload
    config: SystemConfig
    workload_trace: WorkloadTrace
    stats: PageStats
    ser_model: SerModel
    ddr_baseline: ExperimentResult

    @property
    def capacity_pages(self) -> int:
        return self.config.fast_memory.num_pages

    @property
    def name(self) -> str:
        return self.workload.name


def resolve_workload(name: str):
    """Resolve a workload name: ``mix*`` tables, frontier server
    generators, or a homogeneous SPEC-style benchmark spec."""
    # Imported lazily: repro.workloads pulls in core.annotations, which
    # this module's callers don't always need.
    from repro.workloads import frontier_workload, is_frontier

    if is_frontier(name):
        return frontier_workload(name)
    if name.startswith("mix"):
        return Workload.mix(name)
    return Workload.spec(name)


def prepare_workload(
    workload: "Workload | str",
    config: "SystemConfig | None" = None,
    scale: float = DEFAULT_SCALE,
    accesses_per_core: int = 20_000,
    seed: "int | None" = None,
    ser_model: "SerModel | None" = None,
    ecc_budget: "float | None" = None,
) -> PreparedWorkload:
    """Generate, profile, and baseline one workload.

    ``ecc_budget`` (uncorrected FIT per page) re-derives both tiers'
    ECC via :func:`repro.faults.selector.select_system_ecc` before the
    SER model is built, so a system can be specified by a reliability
    ceiling instead of hard-coded schemes.
    """
    if isinstance(workload, str):
        workload = resolve_workload(workload)
    if config is None:
        config = scaled_config(scale)
    if ecc_budget is not None:
        from repro.faults.selector import select_system_ecc

        config = select_system_ecc(config, ecc_budget)
    wt = workload.generate(
        scale=scale, accesses_per_core=accesses_per_core, seed=seed
    )
    stats = profile_trace(wt.trace, wt.times, footprint_pages=wt.footprint_pages)
    if ser_model is None:
        ser_model = SerModel.for_system(config)

    # All-DDR baseline replay.
    hma = HeterogeneousMemory(config)
    hma.install_placement([], stats.pages)
    result = replay(config, hma, wt.trace, wt.times, core_windows=wt.core_mlp)
    ddr_ser = ser_model.ser_ddr_only(stats)
    baseline = ExperimentResult(
        workload=workload.name,
        scheme="ddr-only",
        ipc=result.ipc,
        ser=ddr_ser,
        ipc_vs_ddr=1.0,
        ser_vs_ddr=1.0,
        mean_read_latency=result.mean_read_latency,
    )
    return PreparedWorkload(
        workload=workload,
        config=config,
        workload_trace=wt,
        stats=stats,
        ser_model=ser_model,
        ddr_baseline=baseline,
    )


def evaluate_static(
    prep: PreparedWorkload, policy: PlacementPolicy
) -> ExperimentResult:
    """IPC and SER of one static placement on a prepared workload."""
    fast_pages = policy.select_fast_pages(prep.stats, prep.capacity_pages)
    hma = HeterogeneousMemory(prep.config)
    hma.install_placement(fast_pages, prep.stats.pages)
    wt = prep.workload_trace
    result = replay(prep.config, hma, wt.trace, wt.times, core_windows=wt.core_mlp)
    ser = prep.ser_model.ser_static(prep.stats, fast_pages)
    base = prep.ddr_baseline
    return ExperimentResult(
        workload=prep.name,
        scheme=policy.name,
        ipc=result.ipc,
        ser=ser,
        ipc_vs_ddr=result.ipc / base.ipc if base.ipc else 0.0,
        ser_vs_ddr=ser / base.ser if base.ser else 0.0,
        mean_read_latency=result.mean_read_latency,
    )


def _attach_run_series(tag: str, result, ser_series) -> None:
    """Hand a replay's epoch snapshots to the active telemetry run.

    Annotates the series with per-epoch SER when the lengths line up
    (one residency set per epoch) before attaching it under ``tag``.
    """
    ctx = current_run()
    series = result.snapshots
    if ctx is None or series is None:
        return
    if ser_series is not None and len(ser_series) == len(series):
        series.annotate("ser", ser_series)
    ctx.add_series(tag, series)


def evaluate_migration(
    prep: PreparedWorkload,
    mechanism: MigrationMechanism,
    num_intervals: int = 16,
    initial_policy: "PlacementPolicy | None" = None,
) -> ExperimentResult:
    """IPC and SER of one dynamic migration scheme.

    Per the paper, the run starts from a good placement (the oracular
    static placement of the corresponding flavour) to avoid cold-start
    effects, then migrates at every interval boundary.
    """
    if initial_policy is None:
        initial_policy = PerformanceFocusedPlacement()
    fast_pages = initial_policy.select_fast_pages(prep.stats, prep.capacity_pages)
    hma = HeterogeneousMemory(prep.config)
    hma.install_placement(fast_pages, prep.stats.pages)

    wt = prep.workload_trace
    result = replay(
        prep.config, hma, wt.trace, wt.times,
        mechanism=mechanism, num_intervals=num_intervals,
        core_windows=wt.core_mlp,
    )
    intervals = profile_intervals(wt.trace, wt.times, result.interval_boundaries)
    ser = prep.ser_model.ser_dynamic(intervals, result.fast_residency)
    if result.snapshots is not None:
        _attach_run_series(
            f"{prep.name}:{mechanism.name}", result,
            prep.ser_model.ser_dynamic_series(intervals,
                                              result.fast_residency))
    base = prep.ddr_baseline
    return ExperimentResult(
        workload=prep.name,
        scheme=mechanism.name,
        ipc=result.ipc,
        ser=ser,
        ipc_vs_ddr=result.ipc / base.ipc if base.ipc else 0.0,
        ser_vs_ddr=ser / base.ser if base.ser else 0.0,
        migrations=hma.migration_stats.total,
        mean_read_latency=result.mean_read_latency,
    )


# ---------------------------------------------------------------------------
# Config-batched multi-run evaluation
# ---------------------------------------------------------------------------

@dataclass
class StaticSpec:
    """One static-placement point for :func:`evaluate_static_multi`.

    ``config`` overrides the prepared workload's config (e.g. a smaller
    fast memory in a capacity sweep); ``ser_model`` overrides its SER
    model (e.g. a different raw-FIT multiplier).  ``None`` means "use
    the prep's".
    """

    policy: PlacementPolicy
    config: "SystemConfig | None" = None
    ser_model: "SerModel | None" = None


@dataclass
class MigrationSpec:
    """One dynamic-migration point for :func:`evaluate_migration_multi`."""

    mechanism: MigrationMechanism
    num_intervals: int = 16
    initial_policy: "PlacementPolicy | None" = None


def _select_fast_pages(policy, stats, capacity_pages, memo):
    """``policy.select_fast_pages`` with the ranking shared across
    capacities.

    Policies exposing a capacity-independent ranking
    (:meth:`~repro.core.placement.PlacementPolicy.select_ranking`) rank
    once per (policy, workload) and answer every capacity with a prefix
    slice — by the policies' prefix contract that slice is exactly what
    ``select_fast_pages`` returns.
    """
    got = memo.get(id(policy))
    if got is None:
        ranking = policy.select_ranking(stats)
        got = (False, None) if ranking is None else (True, ranking)
        memo[id(policy)] = got
    ranked, ranking = got
    if ranked:
        return ranking[: policy.ranked_take(capacity_pages)]
    return policy.select_fast_pages(stats, capacity_pages)


def _replay_dedup_key(config: SystemConfig, fast_pages):
    """Hashable identity of one static replay, or ``None``.

    The fault-model-only fields — ``fit_multiplier`` and ``ecc`` — are
    neutralised so sweeps that vary nothing else (the FIT sweep, the
    ECC-Pareto scheme sweep) collapse to a single replay; every other
    config field may affect timing and stays in the key.  Returns
    ``None`` (no deduplication) for exotic configs that do not tuplify.
    """
    try:
        neutral = dataclasses.replace(
            config,
            fast_memory=dataclasses.replace(config.fast_memory,
                                            fit_multiplier=1.0,
                                            ecc="none"),
            slow_memory=dataclasses.replace(config.slow_memory,
                                            fit_multiplier=1.0,
                                            ecc="none"),
        )
        cfg_key = dataclasses.astuple(neutral)
        hash(cfg_key)
    except (TypeError, ValueError):
        return None
    return (cfg_key, np.asarray(fast_pages, dtype=np.int64).tobytes())


def evaluate_static_multi(
    prep: PreparedWorkload, specs: "list[StaticSpec]"
) -> "list[ExperimentResult]":
    """:func:`evaluate_static` for N configuration points in one pass.

    All specs replay the prepared workload's trace; the replays are
    batched through :func:`repro.sim.engine.replay_multi` (deduplicated
    when specs differ only in fault model) and each result is composed
    with the spec's SER model.  Results are element-wise bit-identical
    to per-point :func:`evaluate_static` calls on
    ``replace_config(prep, spec.config)`` preps.
    """
    from repro.sim.engine import ReplaySpec, replay_multi

    wt = prep.workload_trace
    rankings: dict = {}
    placements = []
    for spec in specs:
        config = spec.config if spec.config is not None else prep.config
        fast_pages = _select_fast_pages(
            spec.policy, prep.stats, config.fast_memory.num_pages, rankings)
        placements.append((config, fast_pages))

    replay_specs: "list[ReplaySpec]" = []
    slot_of: "list[int]" = []
    seen: dict = {}
    for config, fast_pages in placements:
        key = _replay_dedup_key(config, fast_pages)
        slot = seen.get(key) if key is not None else None
        if slot is None:
            hma = HeterogeneousMemory(config)
            hma.install_placement(fast_pages, prep.stats.pages)
            slot = len(replay_specs)
            replay_specs.append(ReplaySpec(
                config=config, hma=hma, core_windows=wt.core_mlp))
            if key is not None:
                seen[key] = slot
        slot_of.append(slot)

    replays = replay_multi(replay_specs, wt.trace, wt.times)

    base = prep.ddr_baseline
    out = []
    for spec, (config, fast_pages), slot in zip(specs, placements, slot_of):
        result = replays[slot]
        ser_model = (spec.ser_model if spec.ser_model is not None
                     else prep.ser_model)
        ser = ser_model.ser_static(prep.stats, fast_pages)
        out.append(ExperimentResult(
            workload=prep.name,
            scheme=spec.policy.name,
            ipc=result.ipc,
            ser=ser,
            ipc_vs_ddr=result.ipc / base.ipc if base.ipc else 0.0,
            ser_vs_ddr=ser / base.ser if base.ser else 0.0,
            mean_read_latency=result.mean_read_latency,
        ))
    return out


def evaluate_migration_multi(
    prep: PreparedWorkload, specs: "list[MigrationSpec]"
) -> "list[ExperimentResult]":
    """:func:`evaluate_migration` for N mechanism points in one pass.

    One :func:`repro.sim.engine.replay_multi` call covers every spec,
    and one :class:`~repro.avf.page.IntervalProfileBuilder` serves the
    dynamic-SER accounting of every interval count.  Results are
    element-wise bit-identical to per-point :func:`evaluate_migration`.
    """
    from repro.avf.page import IntervalProfileBuilder
    from repro.sim.engine import ReplaySpec, replay_multi

    wt = prep.workload_trace
    rankings: dict = {}
    default_policy = PerformanceFocusedPlacement()
    replay_specs = []
    for spec in specs:
        policy = (spec.initial_policy if spec.initial_policy is not None
                  else default_policy)
        fast_pages = _select_fast_pages(
            policy, prep.stats, prep.capacity_pages, rankings)
        hma = HeterogeneousMemory(prep.config)
        hma.install_placement(fast_pages, prep.stats.pages)
        replay_specs.append(ReplaySpec(
            config=prep.config, hma=hma, mechanism=spec.mechanism,
            num_intervals=spec.num_intervals, core_windows=wt.core_mlp))

    replays = replay_multi(replay_specs, wt.trace, wt.times)

    # The builder depends only on the prep's (immutable) trace and
    # times, so cache it on the prep across evaluate calls.
    builder = getattr(prep, "_interval_builder", None)
    if builder is None:
        builder = IntervalProfileBuilder(wt.trace, wt.times)
        prep._interval_builder = builder
    pairs_memo: dict = {}
    base = prep.ddr_baseline
    out = []
    for spec, rspec, result in zip(specs, replay_specs, replays):
        bounds = result.interval_boundaries
        if result.snapshots is not None:
            # Telemetry needs the dict-form profile for the epoch
            # series; reuse the builder rather than re-profiling.
            intervals = builder.profile(bounds)
            ser = prep.ser_model.ser_dynamic(intervals, result.fast_residency)
            _attach_run_series(
                f"{prep.name}:{spec.mechanism.name}", result,
                prep.ser_model.ser_dynamic_series(intervals,
                                                  result.fast_residency))
        else:
            key = bounds.tobytes()
            pairs = pairs_memo.get(key)
            if pairs is None:
                pairs = builder.intervals_arrays(bounds)
                pairs_memo[key] = pairs
            ser = prep.ser_model.ser_dynamic_arrays(pairs,
                                                    result.fast_residency)
        out.append(ExperimentResult(
            workload=prep.name,
            scheme=spec.mechanism.name,
            ipc=result.ipc,
            ser=ser,
            ipc_vs_ddr=result.ipc / base.ipc if base.ipc else 0.0,
            ser_vs_ddr=ser / base.ser if base.ser else 0.0,
            migrations=rspec.hma.migration_stats.total,
            mean_read_latency=result.mean_read_latency,
        ))
    return out


def evaluate_annotations(
    prep: PreparedWorkload, avf_quantile: float = 0.7
) -> "tuple[ExperimentResult, AnnotationPlan]":
    """IPC/SER of the program-annotation placement (paper Section 7)."""
    plan = plan_annotations(
        prep.workload_trace, prep.stats, prep.capacity_pages,
        avf_quantile=avf_quantile,
    )
    hma = HeterogeneousMemory(prep.config)
    hma.install_placement(plan.pinned_pages, prep.stats.pages)
    hma.pin(plan.pinned_pages)
    wt = prep.workload_trace
    result = replay(prep.config, hma, wt.trace, wt.times, core_windows=wt.core_mlp)
    ser = prep.ser_model.ser_static(prep.stats, plan.pinned_pages)
    base = prep.ddr_baseline
    return (
        ExperimentResult(
            workload=prep.name,
            scheme="annotations",
            ipc=result.ipc,
            ser=ser,
            ipc_vs_ddr=result.ipc / base.ipc if base.ipc else 0.0,
            ser_vs_ddr=ser / base.ser if base.ser else 0.0,
            mean_read_latency=result.mean_read_latency,
        ),
        plan,
    )


def evaluate_annotation_migration(
    prep: PreparedWorkload,
    mechanism: MigrationMechanism,
    num_intervals: int = 16,
    avf_quantile: float = 0.7,
    pin_fraction: float = 0.5,
) -> "tuple[ExperimentResult, AnnotationPlan]":
    """The paper's Section 7 closing suggestion, implemented.

    "Supplementing such an annotation-driven static data placement
    scheme with a reliability-aware migration mechanism could
    potentially further improve the overall reliability."

    Annotated structures are pinned into ``pin_fraction`` of the HBM
    frames (exempt from migration); the mechanism manages the
    remaining frames dynamically.
    """
    if not 0 < pin_fraction <= 1:
        raise ValueError("pin_fraction must be in (0, 1]")
    pin_capacity = max(1, int(prep.capacity_pages * pin_fraction))
    plan = plan_annotations(
        prep.workload_trace, prep.stats, pin_capacity,
        avf_quantile=avf_quantile,
    )
    hma = HeterogeneousMemory(prep.config)
    hma.install_placement(plan.pinned_pages, prep.stats.pages)
    hma.pin(plan.pinned_pages)

    wt = prep.workload_trace
    result = replay(
        prep.config, hma, wt.trace, wt.times,
        mechanism=mechanism, num_intervals=num_intervals,
        core_windows=wt.core_mlp,
    )
    intervals = profile_intervals(wt.trace, wt.times, result.interval_boundaries)
    ser = prep.ser_model.ser_dynamic(intervals, result.fast_residency)
    if result.snapshots is not None:
        _attach_run_series(
            f"{prep.name}:annotations+{mechanism.name}", result,
            prep.ser_model.ser_dynamic_series(intervals,
                                              result.fast_residency))
    base = prep.ddr_baseline
    return (
        ExperimentResult(
            workload=prep.name,
            scheme=f"annotations+{mechanism.name}",
            ipc=result.ipc,
            ser=ser,
            ipc_vs_ddr=result.ipc / base.ipc if base.ipc else 0.0,
            ser_vs_ddr=ser / base.ser if base.ser else 0.0,
            migrations=hma.migration_stats.total,
            mean_read_latency=result.mean_read_latency,
        ),
        plan,
    )


def run_placement_experiment(
    workload: "Workload | str",
    policy: PlacementPolicy,
    config: "SystemConfig | None" = None,
    scale: float = DEFAULT_SCALE,
    accesses_per_core: int = 20_000,
    seed: "int | None" = None,
) -> ExperimentResult:
    """One-shot convenience wrapper: prepare + evaluate a placement."""
    prep = prepare_workload(
        workload, config=config, scale=scale,
        accesses_per_core=accesses_per_core, seed=seed,
    )
    return evaluate_static(prep, policy)


def run_migration_experiment(
    workload: "Workload | str",
    mechanism: MigrationMechanism,
    config: "SystemConfig | None" = None,
    scale: float = DEFAULT_SCALE,
    accesses_per_core: int = 20_000,
    num_intervals: int = 16,
    seed: "int | None" = None,
    initial_policy: "PlacementPolicy | None" = None,
) -> ExperimentResult:
    """One-shot convenience wrapper: prepare + evaluate a migration."""
    prep = prepare_workload(
        workload, config=config, scale=scale,
        accesses_per_core=accesses_per_core, seed=seed,
    )
    return evaluate_migration(
        prep, mechanism, num_intervals=num_intervals,
        initial_policy=initial_policy,
    )
