"""A discrete-event, closed-loop replay engine (validation mode).

The default engine (:mod:`repro.sim.engine`) serves each request the
moment its core issues it, using busy-until scheduling — fast, but the
memory controller never reorders.  This module provides the
Ramulator-fidelity alternative: a discrete-event simulation in which

* cores issue requests into per-channel controller queues,
* each channel schedules with incremental **FR-FCFS** (row hits first,
  then oldest; reads before buffered writes, with drain watermarks),
* cores stall when their MLP window fills and resume on the event that
  completes their oldest outstanding miss.

It is ~10x slower per request than the fast engine, so the experiment
harness keeps using the fast path; the event engine exists to *bound
the fast model's error* — an integration test checks both engines
agree on IPC ordering and stay within a calibrated band.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.config import LINE_SIZE, PAGE_SIZE, SystemConfig
from repro.dram.device import LINES_PER_ROW
from repro.dram.hma import HeterogeneousMemory
from repro.sim.results import ReplayResult
from repro.trace.record import Trace


@dataclass(order=True)
class _Event:
    time: float
    order: int
    kind: str = field(compare=False)
    payload: int = field(compare=False, default=0)


@dataclass
class _PendingRequest:
    core: int
    bank: int
    row: int
    is_write: bool
    arrival: float
    index: int


class _Channel:
    """Incremental FR-FCFS state for one channel of one device."""

    __slots__ = ("timing", "clock_period", "burst_seconds", "bank_busy",
                 "bank_row", "bus_free", "reads", "writes",
                 "write_high", "write_low", "draining", "busy")

    def __init__(self, timing, clock_period: float, burst_seconds: float,
                 num_banks: int, write_high: int = 16,
                 write_low: int = 4) -> None:
        self.timing = timing
        self.clock_period = clock_period
        self.burst_seconds = burst_seconds
        self.bank_busy = [0.0] * num_banks
        self.bank_row = [None] * num_banks
        self.bus_free = 0.0
        self.reads: "list[_PendingRequest]" = []
        self.writes: "list[_PendingRequest]" = []
        self.write_high = write_high
        self.write_low = write_low
        self.draining = False
        self.busy = False

    def enqueue(self, request: _PendingRequest) -> None:
        (self.writes if request.is_write else self.reads).append(request)

    def _pick(self, queue: "list[_PendingRequest]",
              now: float) -> "_PendingRequest | None":
        best_hit = None
        best_any = None
        for req in queue:
            if req.arrival > now or self.bank_busy[req.bank] > now:
                continue
            if self.bank_row[req.bank] == req.row:
                if best_hit is None or req.arrival < best_hit.arrival:
                    best_hit = req
            if best_any is None or req.arrival < best_any.arrival:
                best_any = req
        return best_hit if best_hit is not None else best_any

    def schedule(self, now: float) -> "tuple[_PendingRequest, float] | None":
        """Pick and issue one request; returns (request, finish)."""
        if self.draining and len(self.writes) <= self.write_low:
            self.draining = False
        elif not self.draining and (
            len(self.writes) >= self.write_high or not self.reads
        ):
            self.draining = len(self.writes) > 0

        primary = self.writes if (self.draining or not self.reads) else self.reads
        chosen = self._pick(primary, now)
        if chosen is None:
            other = self.reads if primary is self.writes else self.writes
            chosen = self._pick(other, now)
            if chosen is None:
                return None
            primary = other

        bank = chosen.bank
        start = max(now, chosen.arrival, self.bank_busy[bank])
        if self.bank_row[bank] == chosen.row:
            cycles = self.timing.row_hit_cycles()
        elif self.bank_row[bank] is None:
            cycles = self.timing.row_miss_cycles()
        else:
            cycles = self.timing.row_conflict_cycles()
        self.bank_row[bank] = chosen.row
        access_done = start + cycles * self.clock_period
        burst_start = max(access_done - self.burst_seconds, self.bus_free)
        finish = burst_start + self.burst_seconds
        self.bus_free = finish
        self.bank_busy[bank] = finish
        primary.remove(chosen)
        return chosen, finish

    def next_ready_time(self, now: float) -> "float | None":
        """Earliest strictly-future time a queued request could issue."""
        candidates = []
        for queue in (self.reads, self.writes):
            for req in queue:
                t = max(req.arrival, self.bank_busy[req.bank])
                candidates.append(t if t > now else now)
        if not candidates:
            return None
        earliest = min(candidates)
        return earliest if earliest > now else None


class EventDrivenReplay:
    """Closed-loop DES over cores + FR-FCFS channels."""

    def __init__(self, config: SystemConfig, hma: HeterogeneousMemory,
                 core_windows: "list[int] | None" = None) -> None:
        self.config = config
        self.hma = hma
        self.seconds_per_instruction = 1.0 / (
            config.core.issue_width * config.core.frequency_hz
        )
        cap = config.core.max_outstanding_misses
        if core_windows is None:
            self.windows = [cap] * config.num_cores
        else:
            if len(core_windows) != config.num_cores:
                raise ValueError("core_windows must match num_cores")
            self.windows = [min(cap, w) for w in core_windows]

        self.channels: "dict[tuple[int, int], _Channel]" = {}
        for device_id, device in ((0, hma.fast), (1, hma.slow)):
            banks = len(device.banks[0])
            for ch in range(device.num_channels):
                self.channels[(device_id, ch)] = _Channel(
                    device.config.timing, device.clock_period,
                    device.burst_seconds, banks,
                )

    def _route(self, page: int, line_in_page: int) -> "tuple[tuple[int, int], int, int]":
        device_id, frame = self.hma.lookup(page)
        local_line = frame * 64 + line_in_page
        device = self.hma.fast if device_id == 0 else self.hma.slow
        channel = local_line % device.num_channels
        banks = len(device.banks[0])
        line_in_channel = local_line // device.num_channels
        row_global = line_in_channel // LINES_PER_ROW
        return (device_id, channel), row_global % banks, row_global // banks

    def run(self, trace: Trace) -> ReplayResult:
        n = len(trace)
        cores = trace.core.tolist()
        gaps = trace.gap.tolist()
        pages = (trace.address // PAGE_SIZE).astype(np.int64).tolist()
        lines = ((trace.address % PAGE_SIZE) // LINE_SIZE).astype(
            np.int64).tolist()
        writes = trace.is_write.tolist()

        num_cores = self.config.num_cores
        # Per-core cursors into the (filtered) per-core streams.
        per_core_indices: "list[list[int]]" = [[] for _ in range(num_cores)]
        for i in range(n):
            per_core_indices[cores[i]].append(i)
        cursor = [0] * num_cores
        core_time = [0.0] * num_cores
        #: In-flight request count per core (the MLP window).
        in_flight = [0] * num_cores
        #: Earliest time the next request may issue (set on resume).
        floor = [0.0] * num_cores
        blocked = [False] * num_cores

        counter = itertools.count()
        events: "list[_Event]" = []

        def push(time: float, kind: str, payload: int = 0) -> None:
            heapq.heappush(events, _Event(time, next(counter), kind, payload))

        for core in range(num_cores):
            if per_core_indices[core]:
                push(0.0, "core", core)

        read_latency_total = 0.0
        read_count = 0
        finish_time = 0.0

        key_list = list(self.channels)
        key_index = {key: i for i, key in enumerate(key_list)}
        inflight_tokens: "dict[int, tuple[_PendingRequest, tuple[int, int]]]" = {}
        token_counter = itertools.count()

        def try_schedule(key: "tuple[int, int]", now: float) -> None:
            channel = self.channels[key]
            if channel.busy:
                return
            outcome = channel.schedule(now)
            if outcome is None:
                nxt = channel.next_ready_time(now)
                if nxt is not None:
                    push(nxt, "kick", key_index[key])
                return
            request, finish = outcome
            channel.busy = True
            token = next(token_counter)
            inflight_tokens[token] = (request, key)
            push(finish, "done", token)

        while events:
            event = heapq.heappop(events)
            now = event.time

            if event.kind == "core":
                core = event.payload
                blocked[core] = False
                stream = per_core_indices[core]
                while cursor[core] < len(stream):
                    if in_flight[core] >= self.windows[core]:
                        blocked[core] = True
                        break
                    i = stream[cursor[core]]
                    issue_time = max(
                        core_time[core]
                        + gaps[i] * self.seconds_per_instruction,
                        floor[core],
                    )
                    core_time[core] = issue_time
                    key, bank, row = self._route(pages[i], lines[i])
                    request = _PendingRequest(
                        core=core, bank=bank, row=row,
                        is_write=writes[i], arrival=issue_time, index=i,
                    )
                    self.channels[key].enqueue(request)
                    try_schedule(key, max(now, issue_time))
                    cursor[core] += 1
                    in_flight[core] += 1

            elif event.kind == "done":
                request, key = inflight_tokens.pop(event.payload)
                channel = self.channels[key]
                channel.busy = False
                finish_time = max(finish_time, now)
                if not request.is_write:
                    read_latency_total += now - request.arrival
                    read_count += 1
                core = request.core
                in_flight[core] -= 1
                if blocked[core]:
                    floor[core] = max(floor[core], now)
                    push(now, "core", core)
                try_schedule(key, now)

            elif event.kind == "kick":
                try_schedule(key_list[event.payload], now)

        total = max(finish_time, max(core_time) if core_time else 0.0)
        return ReplayResult(
            instructions=trace.total_instructions,
            requests=n,
            total_seconds=total,
            core_frequency_hz=self.config.core.frequency_hz,
            mean_read_latency=(read_latency_total / read_count
                               if read_count else 0.0),
            migrations=self.hma.migration_stats,
        )


def replay_event_driven(
    config: SystemConfig,
    hma: HeterogeneousMemory,
    trace: Trace,
    core_windows: "list[int] | None" = None,
) -> ReplayResult:
    """Run the closed-loop DES over a static placement."""
    return EventDrivenReplay(config, hma, core_windows=core_windows).run(trace)
