"""Optional compiled busy-until kernel for the batched replay path.

The fused core/bank/channel resolution loop in
:func:`repro.sim.engine._replay_batched` is inherently sequential, so
its cost is pure interpreter dispatch.  This module compiles the same
loop — operation for operation, in the same order, on IEEE-754
doubles — to a tiny shared library with the system C compiler and
loads it through :mod:`ctypes`.  No third-party packages and no build
step: the library is built once per source revision into a cache
directory and memoised per process.

Everything degrades gracefully: if there is no C compiler, the build
fails, or ``REPRO_REPLAY_NATIVE=0`` is set, :func:`load` returns
``None`` and the engine falls back to the pure-Python fused loop.
Both produce bit-identical results (see ``tests/sim/test_parity.py``
and ``tests/sim/test_ckernel_fallback.py``); the compiled loop is
simply ~10x faster.

Build *failure* is cached per process exactly like success: the first
failed attempt emits one :class:`NativeKernelUnavailableWarning`
carrying the compiler's stderr, and every later :func:`load` call
returns ``None`` without re-invoking ``cc`` — a broken toolchain
degrades once, not once per replay.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings


class NativeKernelUnavailableWarning(RuntimeWarning):
    """The compiled replay kernel could not be built or loaded.

    Emitted once per process; the engine transparently falls back to
    the bit-identical pure-Python fused loop.
    """

_SOURCE = r"""
#include <stdint.h>

/* One chunk of the batched replay loop.  Mirrors the scalar path
 * (ReplayCore + MemoryDevice.service) float-operation for
 * float-operation; compiled without -ffast-math so the doubles round
 * exactly like CPython's.
 *
 * latconst layout: [device * 4 + {hit, miss, conflict, burst}].
 * ring is a per-core circular buffer of in-flight finish times
 * (capacity ringcap), the deque of the Python implementation.
 */
void repro_replay_chunk(
    int64_t n,
    const int32_t *core,
    const double *dts,
    const int64_t *gid,
    const int32_t *cid,
    const uint8_t *dev,
    const uint8_t *is_write,
    const int64_t *row,
    const double *latconst,
    double *core_time,
    const int32_t *windows,
    double *ring,
    int32_t *ring_head,
    int32_t *ring_len,
    int32_t ringcap,
    double *bank_busy,
    int64_t *bank_open,
    int64_t *bank_hits,
    int64_t *bank_misses,
    int64_t *bank_conflicts,
    double *chan_busy,
    double *read_lat,
    double *busy_acc,
    double *read_total)
{
    double rtotal = read_total[0];
    for (int64_t i = 0; i < n; i++) {
        int32_t c = core[i];
        double t = core_time[c] + dts[i];
        double *r = ring + (int64_t)c * ringcap;
        int32_t head = ring_head[c];
        int32_t len = ring_len[c];
        while (len > 0 && r[head] <= t) {
            head++; if (head == ringcap) head = 0;
            len--;
        }
        if (len >= windows[c]) {
            double oldest = r[head];
            head++; if (head == ringcap) head = 0;
            len--;
            if (oldest > t) t = oldest;
            while (len > 0 && r[head] <= t) {
                head++; if (head == ringcap) head = 0;
                len--;
            }
        }
        int64_t g = gid[i];
        double bb = bank_busy[g];
        double begin = t > bb ? t : bb;
        int64_t open_row = bank_open[g];
        int64_t rw = row[i];
        const double *lc = latconst + dev[i] * 4;
        double access_done;
        if (open_row == rw) {
            bank_hits[g]++;
            access_done = begin + lc[0];
        } else if (open_row < 0) {
            bank_misses[g]++;
            access_done = begin + lc[1];
        } else {
            bank_conflicts[g]++;
            access_done = begin + lc[2];
        }
        bank_open[g] = rw;
        double b = lc[3];
        double burst_start = access_done - b;
        double cb = chan_busy[cid[i]];
        if (cb > burst_start) burst_start = cb;
        double finish = burst_start + b;
        chan_busy[cid[i]] = finish;
        bank_busy[g] = finish;
        if (!is_write[i]) {
            double latency = finish - t;
            read_lat[dev[i]] += latency;
            rtotal += latency;
        }
        busy_acc[dev[i]] += b;
        int32_t tail = head + len;
        if (tail >= ringcap) tail -= ringcap;
        r[tail] = finish;
        len++;
        ring_head[c] = head;
        ring_len[c] = len;
        core_time[c] = t;
    }
    read_total[0] = rtotal;
}
"""

_lock = threading.Lock()
#: ``(fn, error)`` once resolved, success or failure alike — the build
#: (and any compiler invocation) happens at most once per process.
_cached: "tuple[object, str | None] | None" = None


def _cache_dir() -> str:
    from repro.config import knob_value

    override = knob_value("ckernel_dir")
    if override:
        return override
    return os.path.join(tempfile.gettempdir(),
                        f"repro-ckernel-{os.getuid()}")


def _build(so_path: str) -> "str | None":
    """Compile the kernel; returns None on success, an error detail on
    failure (including the compiler's stderr where available)."""
    compiler = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        return "no C compiler found (set CC, or install cc/gcc)"
    directory = os.path.dirname(so_path)
    c_path = so_path[:-3] + ".c"
    tmp_so = so_path + f".tmp{os.getpid()}"
    try:
        os.makedirs(directory, exist_ok=True)
        with open(c_path, "w") as fh:
            fh.write(_SOURCE)
        subprocess.run(
            [compiler, "-O2", "-fPIC", "-shared", "-o", tmp_so, c_path],
            check=True, capture_output=True, timeout=120,
        )
        os.replace(tmp_so, so_path)  # atomic under concurrent builds
        return None
    except (OSError, subprocess.SubprocessError) as exc:
        try:
            os.unlink(tmp_so)
        except OSError:
            pass
        stderr = getattr(exc, "stderr", None)
        detail = f"{compiler}: {exc!r}"
        if stderr:
            detail += "\n" + stderr.decode(errors="replace").strip()
        return detail


def _bind(so_path: str):
    lib = ctypes.CDLL(so_path)
    fn = lib.repro_replay_chunk
    p_f64 = ctypes.POINTER(ctypes.c_double)
    p_i64 = ctypes.POINTER(ctypes.c_int64)
    p_i32 = ctypes.POINTER(ctypes.c_int32)
    p_u8 = ctypes.POINTER(ctypes.c_uint8)
    fn.argtypes = [
        ctypes.c_int64,          # n
        p_i32, p_f64, p_i64, p_i32, p_u8, p_u8, p_i64,   # request arrays
        p_f64,                   # latconst
        p_f64, p_i32,            # core_time, windows
        p_f64, p_i32, p_i32, ctypes.c_int32,  # ring, head, len, ringcap
        p_f64, p_i64, p_i64, p_i64, p_i64,    # bank state
        p_f64,                   # chan_busy
        p_f64, p_f64, p_f64,     # read_lat, busy_acc, read_total
    ]
    fn.restype = None
    return fn


def load():
    """The compiled chunk kernel, or ``None`` when unavailable.

    The outcome — success *or* failure — is memoised per process, so a
    broken toolchain costs exactly one ``cc`` invocation and one
    :class:`NativeKernelUnavailableWarning` (with the compiler stderr)
    before every caller silently gets the Python fallback.
    """
    global _cached
    if _cached is not None:
        return _cached[0]
    with _lock:
        if _cached is not None:
            return _cached[0]
        from repro.config import knob_value

        fn, error = None, None
        if knob_value("replay_native"):
            digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
            so_path = os.path.join(_cache_dir(), f"replay-{digest}.so")
            try:
                if not os.path.exists(so_path):
                    error = _build(so_path)
                if error is None:
                    fn = _bind(so_path)
            except OSError as exc:
                fn, error = None, repr(exc)
            if fn is None and error is None:
                error = "unknown load failure"
        _cached = (fn, error)
        if error is not None:
            warnings.warn(
                "native replay kernel unavailable, falling back to the "
                f"pure-Python fused loop (bit-identical, ~10x slower): "
                f"{error}",
                NativeKernelUnavailableWarning,
                stacklevel=2,
            )
        return fn


def build_error() -> "str | None":
    """The cached build/load failure detail, if any (after :func:`load`)."""
    return _cached[1] if _cached is not None else None


def _reset_for_tests() -> None:
    """Forget the per-process memoised outcome (chaos tests only)."""
    global _cached
    with _lock:
        _cached = None


def available() -> bool:
    return load() is not None


def _pf64(a):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def _pi64(a):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def _pi32(a):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int32))


def _pu8(a):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8))


def run_chunk(fn, core, dts, gid, cid, dev, is_write, row, latconst,
              core_time, windows, ring, ring_head, ring_len, ringcap,
              bank_busy, bank_open, bank_hits, bank_misses, bank_conflicts,
              chan_busy, read_lat, busy_acc, read_total) -> None:
    """Invoke the compiled chunk loop on C-contiguous numpy arrays."""
    fn(len(core),
       _pi32(core), _pf64(dts), _pi64(gid), _pi32(cid), _pu8(dev),
       _pu8(is_write), _pi64(row), _pf64(latconst),
       _pf64(core_time), _pi32(windows),
       _pf64(ring), _pi32(ring_head), _pi32(ring_len), int(ringcap),
       _pf64(bank_busy), _pi64(bank_open), _pi64(bank_hits),
       _pi64(bank_misses), _pi64(bank_conflicts),
       _pf64(chan_busy), _pf64(read_lat), _pf64(busy_acc),
       _pf64(read_total))
