"""Optional compiled busy-until kernel for the batched replay path.

The fused core/bank/channel resolution loop in
:func:`repro.sim.engine._replay_batched` is inherently sequential, so
its cost is pure interpreter dispatch.  This module compiles the same
loop — operation for operation, in the same order, on IEEE-754
doubles — to a tiny shared library with the system C compiler and
loads it through :mod:`ctypes`.  No third-party packages and no build
step: the library is built once per source revision into a cache
directory and memoised per process.

Everything degrades gracefully: if there is no C compiler, the build
fails, or ``REPRO_REPLAY_NATIVE=0`` is set, :func:`load` returns
``None`` and the engine falls back to the pure-Python fused loop.
Both produce bit-identical results (see ``tests/sim/test_parity.py``
and ``tests/sim/test_ckernel_fallback.py``); the compiled loop is
simply ~10x faster.

Build *failure* is cached per process exactly like success: the first
failed attempt emits one :class:`NativeKernelUnavailableWarning`
carrying the compiler's stderr, and every later :func:`load` call
returns ``None`` without re-invoking ``cc`` — a broken toolchain
degrades once, not once per replay.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings


class NativeKernelUnavailableWarning(RuntimeWarning):
    """The compiled replay kernel could not be built or loaded.

    Emitted once per process; the engine transparently falls back to
    the bit-identical pure-Python fused loop.
    """

_SOURCE = r"""
#include <stdint.h>

/* One chunk of the batched replay loop.  Mirrors the scalar path
 * (ReplayCore + MemoryDevice.service) float-operation for
 * float-operation; compiled without -ffast-math so the doubles round
 * exactly like CPython's.
 *
 * latconst layout: [device * 4 + {hit, miss, conflict, burst}].
 * ring is a per-core circular buffer of in-flight finish times
 * (capacity ringcap), the deque of the Python implementation.
 */
void repro_replay_chunk(
    int64_t n,
    const int32_t *core,
    const double *dts,
    const int64_t *gid,
    const int32_t *cid,
    const uint8_t *dev,
    const uint8_t *is_write,
    const int64_t *row,
    const double *latconst,
    double *core_time,
    const int32_t *windows,
    double *ring,
    int32_t *ring_head,
    int32_t *ring_len,
    int32_t ringcap,
    double *bank_busy,
    int64_t *bank_open,
    int64_t *bank_hits,
    int64_t *bank_misses,
    int64_t *bank_conflicts,
    double *chan_busy,
    double *read_lat,
    double *busy_acc,
    double *read_total)
{
    double rtotal = read_total[0];
    for (int64_t i = 0; i < n; i++) {
        int32_t c = core[i];
        double t = core_time[c] + dts[i];
        double *r = ring + (int64_t)c * ringcap;
        int32_t head = ring_head[c];
        int32_t len = ring_len[c];
        while (len > 0 && r[head] <= t) {
            head++; if (head == ringcap) head = 0;
            len--;
        }
        if (len >= windows[c]) {
            double oldest = r[head];
            head++; if (head == ringcap) head = 0;
            len--;
            if (oldest > t) t = oldest;
            while (len > 0 && r[head] <= t) {
                head++; if (head == ringcap) head = 0;
                len--;
            }
        }
        int64_t g = gid[i];
        double bb = bank_busy[g];
        double begin = t > bb ? t : bb;
        int64_t open_row = bank_open[g];
        int64_t rw = row[i];
        const double *lc = latconst + dev[i] * 4;
        double access_done;
        if (open_row == rw) {
            bank_hits[g]++;
            access_done = begin + lc[0];
        } else if (open_row < 0) {
            bank_misses[g]++;
            access_done = begin + lc[1];
        } else {
            bank_conflicts[g]++;
            access_done = begin + lc[2];
        }
        bank_open[g] = rw;
        double b = lc[3];
        double burst_start = access_done - b;
        double cb = chan_busy[cid[i]];
        if (cb > burst_start) burst_start = cb;
        double finish = burst_start + b;
        chan_busy[cid[i]] = finish;
        bank_busy[g] = finish;
        if (!is_write[i]) {
            double latency = finish - t;
            read_lat[dev[i]] += latency;
            rtotal += latency;
        }
        busy_acc[dev[i]] += b;
        int32_t tail = head + len;
        if (tail >= ringcap) tail -= ringcap;
        r[tail] = finish;
        len++;
        ring_head[c] = head;
        ring_len[c] = len;
        core_time[c] = t;
    }
    read_total[0] = rtotal;
}
"""

_MULTI_SOURCE = r"""
#include <stdint.h>

/* One chunk of the config-batched multi-run replay loop.
 *
 * Identical timing arithmetic to repro_replay_chunk, with two
 * differences: (1) page-table translation and channel/bank/row routing
 * happen here, per request, instead of in numpy (the integer / and %
 * match numpy's floor division exactly for the non-negative operands
 * involved), and (2) an outer loop walks nspec system configurations
 * stacked along the leading axis of every state array, so one call
 * replays the shared request chunk against N page tables / capacities /
 * latency tables.  The request arrays (core, dts, page, line, is_write)
 * are shared by every config and span the whole trace; the chunk is the
 * index range [start, stop), so callers pass full-trace pointers once
 * and move only the bounds between chunks.  Everything else is
 * per-config with the config index as the leading dimension.
 *
 * dev_counts layout per config: [reads_fast, reads_slow, writes_fast,
 * writes_slow], incremented in place.
 */
void repro_multi_chunk(
    int64_t nspec,
    int64_t start,
    int64_t stop,
    const int32_t *core,
    const double *dts,
    const int64_t *page,
    const int64_t *line,
    const uint8_t *is_write,
    int64_t lines_per_page,
    int64_t lines_per_row,
    int64_t f_nc, int64_t s_nc,
    int64_t f_bpc, int64_t s_bpc,
    int64_t n_fast_banks,
    const int16_t *pt_device,     /* [nspec][pt_len] */
    const int64_t *pt_frame,      /* [nspec][pt_len] */
    int64_t pt_len,
    const double *latconst,       /* [nspec][8] */
    double *core_time,            /* [nspec][ncores] */
    const int32_t *windows,       /* [nspec][ncores] */
    double *ring,                 /* [nspec][ncores][ringcap] */
    int32_t *ring_head,           /* [nspec][ncores] */
    int32_t *ring_len,            /* [nspec][ncores] */
    int32_t ringcap,
    int64_t ncores,
    double *bank_busy,            /* [nspec][nbanks] */
    int64_t *bank_open,           /* [nspec][nbanks] */
    int64_t *bank_hits,
    int64_t *bank_misses,
    int64_t *bank_conflicts,
    double *chan_busy,            /* [nspec][nchan] */
    int64_t nbanks,
    int64_t nchan,
    double *read_lat,             /* [nspec][2] */
    double *busy_acc,             /* [nspec][2] */
    double *read_total,           /* [nspec] */
    int64_t *dev_counts)          /* [nspec][4] */
{
    for (int64_t k = 0; k < nspec; k++) {
        const int16_t *ptd = pt_device + k * pt_len;
        const int64_t *ptf = pt_frame + k * pt_len;
        const double *lconst = latconst + k * 8;
        double *ctime = core_time + k * ncores;
        const int32_t *wins = windows + k * ncores;
        double *kring = ring + k * ncores * ringcap;
        int32_t *khead = ring_head + k * ncores;
        int32_t *klen = ring_len + k * ncores;
        double *bbusy = bank_busy + k * nbanks;
        int64_t *bopen = bank_open + k * nbanks;
        int64_t *bhits = bank_hits + k * nbanks;
        int64_t *bmiss = bank_misses + k * nbanks;
        int64_t *bconf = bank_conflicts + k * nbanks;
        double *cbusy = chan_busy + k * nchan;
        double *rlat = read_lat + k * 2;
        double *bacc = busy_acc + k * 2;
        int64_t *counts = dev_counts + k * 4;
        double rtotal = read_total[k];
        for (int64_t i = start; i < stop; i++) {
            /* -- translation + routing (pure integer, matches numpy) -- */
            int64_t p = page[i];
            int64_t d = (int64_t)ptd[p];
            int64_t local = ptf[p] * lines_per_page + line[i];
            int64_t nc = d ? s_nc : f_nc;
            int64_t bpc = d ? s_bpc : f_bpc;
            int64_t channel = local % nc;
            int64_t row_global = (local / nc) / lines_per_row;
            int64_t bank = row_global % bpc;
            int64_t rw = row_global / bpc;
            int64_t g = d ? n_fast_banks + channel * s_bpc + bank
                          : channel * f_bpc + bank;
            int64_t cd = d ? f_nc + channel : channel;
            counts[d ? (is_write[i] ? 3 : 1) : (is_write[i] ? 2 : 0)]++;

            /* -- busy-until resolution (identical to repro_replay_chunk) */
            int32_t c = core[i];
            double t = ctime[c] + dts[i];
            double *r = kring + (int64_t)c * ringcap;
            int32_t head = khead[c];
            int32_t len = klen[c];
            while (len > 0 && r[head] <= t) {
                head++; if (head == ringcap) head = 0;
                len--;
            }
            if (len >= wins[c]) {
                double oldest = r[head];
                head++; if (head == ringcap) head = 0;
                len--;
                if (oldest > t) t = oldest;
                while (len > 0 && r[head] <= t) {
                    head++; if (head == ringcap) head = 0;
                    len--;
                }
            }
            double bb = bbusy[g];
            double begin = t > bb ? t : bb;
            int64_t open_row = bopen[g];
            const double *lc = lconst + d * 4;
            double access_done;
            if (open_row == rw) {
                bhits[g]++;
                access_done = begin + lc[0];
            } else if (open_row < 0) {
                bmiss[g]++;
                access_done = begin + lc[1];
            } else {
                bconf[g]++;
                access_done = begin + lc[2];
            }
            bopen[g] = rw;
            double b = lc[3];
            double burst_start = access_done - b;
            double cb = cbusy[cd];
            if (cb > burst_start) burst_start = cb;
            double finish = burst_start + b;
            cbusy[cd] = finish;
            bbusy[g] = finish;
            if (!is_write[i]) {
                double latency = finish - t;
                rlat[d] += latency;
                rtotal += latency;
            }
            bacc[d] += b;
            int32_t tail = head + len;
            if (tail >= ringcap) tail -= ringcap;
            r[tail] = finish;
            len++;
            khead[c] = head;
            klen[c] = len;
            ctime[c] = t;
        }
        read_total[k] = rtotal;
    }
}
"""

_FILTER_SOURCE = r"""
#include <stdint.h>

/* One chunk of the fused L1D+L2 cache-filter loop (the `array` kernel
 * of repro.cache.hierarchy.filter_trace).  State per cache is three
 * parallel [sets * assoc] arrays: tag (-1 = empty way), dirty, and a
 * strictly increasing LRU stamp.  Every hit and every insert takes a
 * fresh stamp, so "evict the min-stamp way" is exactly the
 * OrderedDict popitem(last=False) of the Python Cache — insertion
 * order and last-access order coincide under that discipline.
 *
 * stats layout per cache: [accesses, hits, misses, writebacks].
 * Outputs are (source access index, line, is_write) triples; gap
 * accounting is vectorised afterwards in Python from out_src.
 */

static int cache_access(
    int64_t line, uint8_t is_write,
    int64_t nsets, int64_t assoc,
    int64_t *tag, uint8_t *dirty, int64_t *stamp,
    uint8_t walloc, uint8_t wback,
    int64_t *counter, int64_t *stats,
    int64_t *evicted_line, uint8_t *evicted_wb)
{
    int64_t set = line % nsets;
    int64_t tg = line / nsets;
    int64_t base = set * assoc;
    *evicted_line = -1;
    *evicted_wb = 0;
    stats[0]++;
    for (int64_t w = 0; w < assoc; w++) {
        if (tag[base + w] == tg) {
            stats[1]++;
            dirty[base + w] |= is_write;
            counter[0]++;
            stamp[base + w] = counter[0];
            return 1;
        }
    }
    stats[2]++;
    if (is_write && !walloc)
        return 0;
    int64_t slot = -1;
    for (int64_t w = 0; w < assoc; w++) {
        if (tag[base + w] < 0) { slot = w; break; }
    }
    if (slot < 0) {
        int64_t best = stamp[base];
        slot = 0;
        for (int64_t w = 1; w < assoc; w++) {
            if (stamp[base + w] < best) { best = stamp[base + w]; slot = w; }
        }
        *evicted_line = tag[base + slot] * nsets + set;
        if (dirty[base + slot] && wback) {
            *evicted_wb = 1;
            stats[3]++;
        }
    }
    tag[base + slot] = tg;
    dirty[base + slot] = is_write;
    counter[0]++;
    stamp[base + slot] = counter[0];
    return 0;
}

void repro_cache_filter_chunk(
    int64_t n,
    const int32_t *core,
    const int64_t *line,
    const uint8_t *is_write,
    int64_t l1_nsets, int64_t l1_assoc,
    int64_t *l1_tag, uint8_t *l1_dirty, int64_t *l1_stamp,
    uint8_t l1_walloc, uint8_t l1_wback,
    int64_t l2_nsets, int64_t l2_assoc,
    int64_t *l2_tag, uint8_t *l2_dirty, int64_t *l2_stamp,
    uint8_t l2_walloc, uint8_t l2_wback,
    int64_t *counter,
    int64_t *l1_stats,   /* [core * 4 + {acc, hit, miss, wb}] */
    int64_t *l2_stats,   /* [4] */
    int64_t *out_src,
    int64_t *out_line,
    uint8_t *out_write,
    int64_t *out_count)
{
    int64_t m = 0;
    for (int64_t i = 0; i < n; i++) {
        int32_t c = core[i];
        int64_t ln = line[i];
        uint8_t w = is_write[i];
        int64_t off = (int64_t)c * l1_nsets * l1_assoc;
        int64_t ev; uint8_t evwb;
        if (cache_access(ln, w, l1_nsets, l1_assoc,
                         l1_tag + off, l1_dirty + off, l1_stamp + off,
                         l1_walloc, l1_wback, counter,
                         l1_stats + (int64_t)c * 4, &ev, &evwb))
            continue;
        if (evwb) {
            /* L1 victim write-back into the shared L2; a dirty L2
             * victim of *that* allocation goes to memory first. */
            int64_t ev2; uint8_t evwb2;
            if (!cache_access(ev, 1, l2_nsets, l2_assoc,
                              l2_tag, l2_dirty, l2_stamp,
                              l2_walloc, l2_wback, counter,
                              l2_stats, &ev2, &evwb2)
                && evwb2) {
                out_src[m] = i; out_line[m] = ev2; out_write[m] = 1; m++;
            }
        }
        int64_t ev3; uint8_t evwb3;
        if (!cache_access(ln, w, l2_nsets, l2_assoc,
                          l2_tag, l2_dirty, l2_stamp,
                          l2_walloc, l2_wback, counter,
                          l2_stats, &ev3, &evwb3)) {
            out_src[m] = i; out_line[m] = ln; out_write[m] = 0; m++;
            if (evwb3) {
                out_src[m] = i; out_line[m] = ev3; out_write[m] = 1; m++;
            }
        }
    }
    *out_count = m;
}
"""

_lock = threading.Lock()
#: ``(fn, error)`` once resolved, success or failure alike — the build
#: (and any compiler invocation) happens at most once per process.
_cached: "tuple[object, str | None] | None" = None
#: Same memoisation for the cache-filter kernel.
_filter_cached: "tuple[object, str | None] | None" = None
#: Same memoisation for the config-batched multi-run kernel.
_multi_cached: "tuple[object, str | None] | None" = None


def _cache_dir() -> str:
    from repro.config import knob_value

    override = knob_value("ckernel_dir")
    if override:
        return override
    return os.path.join(tempfile.gettempdir(),
                        f"repro-ckernel-{os.getuid()}")


def _build(so_path: str, source: str = _SOURCE) -> "str | None":
    """Compile a kernel; returns None on success, an error detail on
    failure (including the compiler's stderr where available)."""
    compiler = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        return "no C compiler found (set CC, or install cc/gcc)"
    directory = os.path.dirname(so_path)
    c_path = so_path[:-3] + ".c"
    tmp_so = so_path + f".tmp{os.getpid()}"
    try:
        os.makedirs(directory, exist_ok=True)
        with open(c_path, "w") as fh:
            fh.write(source)
        subprocess.run(
            [compiler, "-O2", "-fPIC", "-shared", "-o", tmp_so, c_path],
            check=True, capture_output=True, timeout=120,
        )
        os.replace(tmp_so, so_path)  # atomic under concurrent builds
        return None
    except (OSError, subprocess.SubprocessError) as exc:
        try:
            os.unlink(tmp_so)
        except OSError:
            pass
        stderr = getattr(exc, "stderr", None)
        detail = f"{compiler}: {exc!r}"
        if stderr:
            detail += "\n" + stderr.decode(errors="replace").strip()
        return detail


def _bind(so_path: str):
    lib = ctypes.CDLL(so_path)
    fn = lib.repro_replay_chunk
    p_f64 = ctypes.POINTER(ctypes.c_double)
    p_i64 = ctypes.POINTER(ctypes.c_int64)
    p_i32 = ctypes.POINTER(ctypes.c_int32)
    p_u8 = ctypes.POINTER(ctypes.c_uint8)
    fn.argtypes = [
        ctypes.c_int64,          # n
        p_i32, p_f64, p_i64, p_i32, p_u8, p_u8, p_i64,   # request arrays
        p_f64,                   # latconst
        p_f64, p_i32,            # core_time, windows
        p_f64, p_i32, p_i32, ctypes.c_int32,  # ring, head, len, ringcap
        p_f64, p_i64, p_i64, p_i64, p_i64,    # bank state
        p_f64,                   # chan_busy
        p_f64, p_f64, p_f64,     # read_lat, busy_acc, read_total
    ]
    fn.restype = None
    return fn


def load():
    """The compiled chunk kernel, or ``None`` when unavailable.

    The outcome — success *or* failure — is memoised per process, so a
    broken toolchain costs exactly one ``cc`` invocation and one
    :class:`NativeKernelUnavailableWarning` (with the compiler stderr)
    before every caller silently gets the Python fallback.
    """
    global _cached
    if _cached is not None:
        return _cached[0]
    with _lock:
        if _cached is not None:
            return _cached[0]
        from repro.config import knob_value

        fn, error = None, None
        if knob_value("replay_native"):
            digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
            so_path = os.path.join(_cache_dir(), f"replay-{digest}.so")
            try:
                if not os.path.exists(so_path):
                    error = _build(so_path)
                if error is None:
                    fn = _bind(so_path)
            except OSError as exc:
                fn, error = None, repr(exc)
            if fn is None and error is None:
                error = "unknown load failure"
        _cached = (fn, error)
        if error is not None:
            warnings.warn(
                "native replay kernel unavailable, falling back to the "
                f"pure-Python fused loop (bit-identical, ~10x slower): "
                f"{error}",
                NativeKernelUnavailableWarning,
                stacklevel=2,
            )
        return fn


def build_error() -> "str | None":
    """The cached build/load failure detail, if any (after :func:`load`)."""
    return _cached[1] if _cached is not None else None


def _reset_for_tests() -> None:
    """Forget the per-process memoised outcomes (chaos tests only)."""
    global _cached, _filter_cached, _multi_cached
    with _lock:
        _cached = None
        _filter_cached = None
        _multi_cached = None


def available() -> bool:
    return load() is not None


def _bind_filter(so_path: str):
    lib = ctypes.CDLL(so_path)
    fn = lib.repro_cache_filter_chunk
    p_i64 = ctypes.POINTER(ctypes.c_int64)
    p_i32 = ctypes.POINTER(ctypes.c_int32)
    p_u8 = ctypes.POINTER(ctypes.c_uint8)
    c_i64 = ctypes.c_int64
    c_u8 = ctypes.c_uint8
    fn.argtypes = [
        c_i64,                           # n
        p_i32, p_i64, p_u8,              # core, line, is_write
        c_i64, c_i64, p_i64, p_u8, p_i64, c_u8, c_u8,   # L1D state
        c_i64, c_i64, p_i64, p_u8, p_i64, c_u8, c_u8,   # L2 state
        p_i64,                           # stamp counter
        p_i64, p_i64,                    # l1_stats, l2_stats
        p_i64, p_i64, p_u8, p_i64,       # out_src, out_line, out_write, count
    ]
    fn.restype = None
    return fn


def load_filter():
    """The compiled cache-filter kernel, or ``None`` when unavailable.

    Memoised per process exactly like :func:`load`; gated by the
    ``cache_native`` knob (``REPRO_CACHE_NATIVE``).  Failure warns once
    and every caller silently gets the bit-identical Python fallback in
    :mod:`repro.cache.filter_array`.
    """
    global _filter_cached
    if _filter_cached is not None:
        return _filter_cached[0]
    with _lock:
        if _filter_cached is not None:
            return _filter_cached[0]
        from repro.config import knob_value

        fn, error = None, None
        if knob_value("cache_native"):
            digest = hashlib.sha256(_FILTER_SOURCE.encode()).hexdigest()[:16]
            so_path = os.path.join(_cache_dir(), f"cachefilter-{digest}.so")
            try:
                if not os.path.exists(so_path):
                    error = _build(so_path, _FILTER_SOURCE)
                if error is None:
                    fn = _bind_filter(so_path)
            except OSError as exc:
                fn, error = None, repr(exc)
            if fn is None and error is None:
                error = "unknown load failure"
        _filter_cached = (fn, error)
        if error is not None:
            warnings.warn(
                "native cache-filter kernel unavailable, falling back to "
                f"the fused Python loop (bit-identical, slower): {error}",
                NativeKernelUnavailableWarning,
                stacklevel=2,
            )
        return fn


def filter_build_error() -> "str | None":
    """The cached filter build/load failure, if any (after
    :func:`load_filter`)."""
    return _filter_cached[1] if _filter_cached is not None else None


def filter_available() -> bool:
    return load_filter() is not None


def _bind_multi(so_path: str):
    lib = ctypes.CDLL(so_path)
    fn = lib.repro_multi_chunk
    p_f64 = ctypes.POINTER(ctypes.c_double)
    p_i64 = ctypes.POINTER(ctypes.c_int64)
    p_i32 = ctypes.POINTER(ctypes.c_int32)
    p_i16 = ctypes.POINTER(ctypes.c_int16)
    p_u8 = ctypes.POINTER(ctypes.c_uint8)
    c_i64 = ctypes.c_int64
    fn.argtypes = [
        c_i64, c_i64, c_i64,                   # nspec, start, stop
        p_i32, p_f64, p_i64, p_i64, p_u8,      # core, dts, page, line, write
        c_i64, c_i64,                          # lines_per_page, lines_per_row
        c_i64, c_i64, c_i64, c_i64, c_i64,     # f_nc, s_nc, f_bpc, s_bpc,
                                               # n_fast_banks
        p_i16, p_i64, c_i64,                   # pt_device, pt_frame, pt_len
        p_f64,                                 # latconst
        p_f64, p_i32,                          # core_time, windows
        p_f64, p_i32, p_i32, ctypes.c_int32,   # ring, head, len, ringcap
        c_i64,                                 # ncores
        p_f64, p_i64, p_i64, p_i64, p_i64,     # bank state
        p_f64, c_i64, c_i64,                   # chan_busy, nbanks, nchan
        p_f64, p_f64, p_f64,                   # read_lat, busy_acc, read_total
        p_i64,                                 # dev_counts
    ]
    fn.restype = None
    return fn


def load_multi():
    """The compiled multi-config chunk kernel, or ``None``.

    Gated by the same ``replay_native`` knob as :func:`load` and
    memoised identically; failure warns once and the multi-run engine
    transparently falls back to the bit-identical per-spec path.
    """
    global _multi_cached
    if _multi_cached is not None:
        return _multi_cached[0]
    with _lock:
        if _multi_cached is not None:
            return _multi_cached[0]
        from repro.config import knob_value

        fn, error = None, None
        if knob_value("replay_native"):
            digest = hashlib.sha256(_MULTI_SOURCE.encode()).hexdigest()[:16]
            so_path = os.path.join(_cache_dir(), f"multi-{digest}.so")
            try:
                if not os.path.exists(so_path):
                    error = _build(so_path, _MULTI_SOURCE)
                if error is None:
                    fn = _bind_multi(so_path)
            except OSError as exc:
                fn, error = None, repr(exc)
            if fn is None and error is None:
                error = "unknown load failure"
        _multi_cached = (fn, error)
        if error is not None:
            warnings.warn(
                "native multi-run kernel unavailable, falling back to "
                f"the per-spec replay path (bit-identical, slower): "
                f"{error}",
                NativeKernelUnavailableWarning,
                stacklevel=2,
            )
        return fn


def multi_build_error() -> "str | None":
    """The cached multi-kernel build/load failure, if any (after
    :func:`load_multi`)."""
    return _multi_cached[1] if _multi_cached is not None else None


def multi_available() -> bool:
    return load_multi() is not None


def _pi16(a):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int16))


def run_multi_chunk(fn, core, dts, page, line, is_write,
                    lines_per_page, lines_per_row,
                    f_nc, s_nc, f_bpc, s_bpc, n_fast_banks,
                    pt_device, pt_frame, pt_len,
                    latconst, core_time, windows,
                    ring, ring_head, ring_len, ringcap, ncores,
                    bank_busy, bank_open, bank_hits, bank_misses,
                    bank_conflicts, chan_busy, nbanks, nchan,
                    read_lat, busy_acc, read_total, dev_counts) -> None:
    """Invoke the compiled multi-config loop on C-contiguous arrays.

    ``nspec`` is taken from ``read_total``; every per-config array must
    be stacked ``[nspec, ...]`` C-contiguously.  Every page referenced
    by the chunk must already be mapped in every config's page table
    (``dev == -1`` would index out of bounds) — the engine guarantees
    that by calling ``ensure_mapped`` per spec before the chunk.
    """
    fn(len(read_total), 0, len(core),
       _pi32(core), _pf64(dts), _pi64(page), _pi64(line), _pu8(is_write),
       int(lines_per_page), int(lines_per_row),
       int(f_nc), int(s_nc), int(f_bpc), int(s_bpc), int(n_fast_banks),
       _pi16(pt_device), _pi64(pt_frame), int(pt_len),
       _pf64(latconst), _pf64(core_time), _pi32(windows),
       _pf64(ring), _pi32(ring_head), _pi32(ring_len), int(ringcap),
       int(ncores),
       _pf64(bank_busy), _pi64(bank_open), _pi64(bank_hits),
       _pi64(bank_misses), _pi64(bank_conflicts),
       _pf64(chan_busy), int(nbanks), int(nchan),
       _pf64(read_lat), _pf64(busy_acc), _pf64(read_total),
       _pi64(dev_counts))


class MultiCall:
    """A pre-bound multi-kernel invocation for one chunked replay.

    Chunked replays call the kernel once per interval with the same
    request and state arrays every time; re-deriving ~20 ctypes
    pointers per call costs more than some chunks' C work.  This caches
    every pointer at construction (holding array references so the
    memory stays alive) and per chunk passes only the request range and
    the page-table columns, which migrations may reallocate between
    chunks.
    """

    def __init__(self, fn, core, dts, page, line, is_write,
                 lines_per_page, lines_per_row,
                 f_nc, s_nc, f_bpc, s_bpc, n_fast_banks,
                 latconst, core_time, windows,
                 ring, ring_head, ring_len, ringcap, ncores,
                 bank_busy, bank_open, bank_hits, bank_misses,
                 bank_conflicts, chan_busy, nbanks, nchan,
                 read_lat, busy_acc, read_total, dev_counts) -> None:
        self._fn = fn
        self._nspec = len(read_total)
        self._keep = (core, dts, page, line, is_write, latconst,
                      core_time, windows, ring, ring_head, ring_len,
                      bank_busy, bank_open, bank_hits, bank_misses,
                      bank_conflicts, chan_busy, read_lat, busy_acc,
                      read_total, dev_counts)
        self._request = (
            _pi32(core), _pf64(dts), _pi64(page), _pi64(line),
            _pu8(is_write),
            int(lines_per_page), int(lines_per_row),
            int(f_nc), int(s_nc), int(f_bpc), int(s_bpc),
            int(n_fast_banks),
        )
        self._state = (
            _pf64(latconst), _pf64(core_time), _pi32(windows),
            _pf64(ring), _pi32(ring_head), _pi32(ring_len), int(ringcap),
            int(ncores),
            _pf64(bank_busy), _pi64(bank_open), _pi64(bank_hits),
            _pi64(bank_misses), _pi64(bank_conflicts),
            _pf64(chan_busy), int(nbanks), int(nchan),
            _pf64(read_lat), _pf64(busy_acc), _pf64(read_total),
            _pi64(dev_counts),
        )

    def run(self, start, stop, pt_device, pt_frame, pt_len) -> None:
        """Replay requests ``[start, stop)`` against the bound state."""
        self._fn(self._nspec, int(start), int(stop), *self._request,
                 _pi16(pt_device), _pi64(pt_frame), int(pt_len),
                 *self._state)


def run_filter_chunk(fn, core, line, is_write,
                     l1_nsets, l1_assoc, l1_tag, l1_dirty, l1_stamp,
                     l1_walloc, l1_wback,
                     l2_nsets, l2_assoc, l2_tag, l2_dirty, l2_stamp,
                     l2_walloc, l2_wback,
                     counter, l1_stats, l2_stats,
                     out_src, out_line, out_write) -> int:
    """Invoke the compiled filter loop; returns the residual count.

    All arrays must be C-contiguous with the dtypes of the binder;
    ``out_*`` must hold at least ``3 * len(core)`` slots (worst case:
    L1-victim write-back + fill + L2-victim write-back per access).
    """
    count = ctypes.c_int64(0)
    fn(len(core), _pi32(core), _pi64(line), _pu8(is_write),
       int(l1_nsets), int(l1_assoc), _pi64(l1_tag), _pu8(l1_dirty),
       _pi64(l1_stamp), int(l1_walloc), int(l1_wback),
       int(l2_nsets), int(l2_assoc), _pi64(l2_tag), _pu8(l2_dirty),
       _pi64(l2_stamp), int(l2_walloc), int(l2_wback),
       _pi64(counter), _pi64(l1_stats), _pi64(l2_stats),
       _pi64(out_src), _pi64(out_line), _pu8(out_write),
       ctypes.byref(count))
    return count.value


def _pf64(a):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def _pi64(a):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def _pi32(a):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int32))


def _pu8(a):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8))


def run_chunk(fn, core, dts, gid, cid, dev, is_write, row, latconst,
              core_time, windows, ring, ring_head, ring_len, ringcap,
              bank_busy, bank_open, bank_hits, bank_misses, bank_conflicts,
              chan_busy, read_lat, busy_acc, read_total) -> None:
    """Invoke the compiled chunk loop on C-contiguous numpy arrays."""
    fn(len(core),
       _pi32(core), _pf64(dts), _pi64(gid), _pi32(cid), _pu8(dev),
       _pu8(is_write), _pi64(row), _pf64(latconst),
       _pf64(core_time), _pi32(windows),
       _pf64(ring), _pi32(ring_head), _pi32(ring_len), int(ringcap),
       _pf64(bank_busy), _pi64(bank_open), _pi64(bank_hits),
       _pi64(bank_misses), _pi64(bank_conflicts),
       _pf64(chan_busy), _pf64(read_lat), _pf64(busy_acc),
       _pf64(read_total))
