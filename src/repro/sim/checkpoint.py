"""Checkpointing prepared workloads to disk.

``prepare_workload`` is cheap at the default 1/1024 scale but costly at
full scale (gigabyte traces, millions of profiled pages).  A checkpoint
directory captures everything ``evaluate_*`` needs:

* ``trace.npz``    — the merged trace and its logical times,
* ``stats.npz``    — the per-page profile arrays,
* ``meta.json``    — workload identity, layouts, scale, SER model.

Restoring skips generation and profiling entirely; the system config
is rebuilt from the recorded scale (checkpoints of custom configs
store the memory geometries explicitly).
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from repro.avf.page import PageStats
from repro.config import scaled_config
from repro.faults.ser import SerModel
from repro.sim.results import ExperimentResult
from repro.sim.system import PreparedWorkload
from repro.trace.io import load_npz, save_npz
from repro.trace.synthetic import RegionLayout, RegionSpec
from repro.trace.workloads import Workload, WorkloadTrace

FORMAT_VERSION = 1


def _layout_to_dict(layout: RegionLayout) -> dict:
    spec = layout.spec
    return {
        "first_page": layout.first_page,
        "num_pages": layout.num_pages,
        "spec": {
            "name": spec.name,
            "footprint_share": spec.footprint_share,
            "hotness": spec.hotness,
            "write_frac": spec.write_frac,
            "read_spread": spec.read_spread,
            "zipf_alpha": spec.zipf_alpha,
            "lines_touched": spec.lines_touched,
            "churn": spec.churn,
        },
    }


def _layout_from_dict(data: dict) -> RegionLayout:
    return RegionLayout(
        spec=RegionSpec(**data["spec"]),
        first_page=int(data["first_page"]),
        num_pages=int(data["num_pages"]),
    )


def save_prepared(prep: PreparedWorkload,
                  directory: "str | os.PathLike") -> None:
    """Write a checkpoint of ``prep`` into ``directory``."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    wt = prep.workload_trace
    save_npz(path / "trace.npz", wt.trace, wt.times)
    np.savez_compressed(
        path / "stats.npz",
        pages=prep.stats.pages,
        reads=prep.stats.reads,
        writes=prep.stats.writes,
        avf=prep.stats.avf,
    )
    base = prep.ddr_baseline
    meta = {
        "version": FORMAT_VERSION,
        "workload_name": prep.workload.name,
        "cores": list(prep.workload.cores),
        "scale": prep.config.fast_memory.capacity_bytes / (1 << 30),
        "footprint_pages": wt.footprint_pages,
        "core_benchmarks": wt.core_benchmarks,
        "core_layouts": [
            [_layout_to_dict(layout) for layout in layouts]
            for layouts in wt.core_layouts
        ],
        "ser_model": {
            "fit_fast_per_page": prep.ser_model.fit_fast_per_page,
            "fit_slow_per_page": prep.ser_model.fit_slow_per_page,
        },
        "ddr_baseline": {
            "ipc": base.ipc,
            "ser": base.ser,
            "mean_read_latency": base.mean_read_latency,
        },
        "stats_footprint": prep.stats.footprint_pages,
    }
    (path / "meta.json").write_text(json.dumps(meta, indent=2))


def load_prepared(directory: "str | os.PathLike") -> PreparedWorkload:
    """Restore a checkpoint written by :func:`save_prepared`."""
    path = pathlib.Path(directory)
    meta_path = path / "meta.json"
    if not meta_path.exists():
        raise FileNotFoundError(f"no checkpoint at {directory}")
    meta = json.loads(meta_path.read_text())
    if meta.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {meta.get('version')}"
        )

    trace, times = load_npz(path / "trace.npz")
    if times is None:
        raise ValueError("checkpoint trace is missing logical times")
    with np.load(path / "stats.npz") as data:
        stats = PageStats(
            pages=data["pages"],
            reads=data["reads"],
            writes=data["writes"],
            avf=data["avf"],
            footprint_pages=int(meta["stats_footprint"]),
        )

    workload = Workload(name=meta["workload_name"],
                        cores=tuple(meta["cores"]))
    wt = WorkloadTrace(
        workload_name=meta["workload_name"],
        trace=trace,
        times=times,
        core_layouts=[
            [_layout_from_dict(d) for d in layouts]
            for layouts in meta["core_layouts"]
        ],
        core_benchmarks=list(meta["core_benchmarks"]),
        footprint_pages=int(meta["footprint_pages"]),
    )
    config = scaled_config(float(meta["scale"]))
    ser_model = SerModel(**meta["ser_model"])
    base = meta["ddr_baseline"]
    baseline = ExperimentResult(
        workload=meta["workload_name"],
        scheme="ddr-only",
        ipc=float(base["ipc"]),
        ser=float(base["ser"]),
        ipc_vs_ddr=1.0,
        ser_vs_ddr=1.0,
        mean_read_latency=float(base["mean_read_latency"]),
    )
    return PreparedWorkload(
        workload=workload,
        config=config,
        workload_trace=wt,
        stats=stats,
        ser_model=ser_model,
        ddr_baseline=baseline,
    )
