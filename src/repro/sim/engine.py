"""The trace-replay engine: cores + HMA + optional migration.

:func:`replay` drives a time-ordered multi-core memory trace through
the :class:`~repro.sim.cpu.ReplayCore` models and a
:class:`~repro.dram.hma.HeterogeneousMemory`, optionally invoking a
:class:`~repro.core.migration.MigrationMechanism` at interval
boundaries.  Interval boundaries are expressed in the trace's logical
time (the generator's ``[0, 1)`` window); migration bandwidth is
charged to both devices at the boundary, so migration-heavy intervals
slow subsequent requests down — the paper's migration cost model.

Two kernels implement the same timing model:

* ``scalar`` — the original per-request call chain
  (``hma.service`` → ``MemoryDevice.service`` → ``Bank.service``).
  It is the reference oracle: slow, but written directly against the
  component models.
* ``batched`` (default) — page-table translation and channel/bank/row
  routing are computed for a whole chunk with NumPy, and only the
  inherently sequential core/bank/channel busy-until resolution runs
  in a tight fused loop over flat lists.  The arithmetic mirrors the
  scalar path operation for operation, so both kernels produce
  bit-identical :class:`~repro.sim.results.ReplayResult` timings
  (enforced by ``tests/sim/test_parity.py``).

The kernel is selected with the ``kernel`` argument or the
``REPRO_REPLAY_KERNEL`` environment variable; memory models that lack
the batch API (e.g. the DRAM-cache foil) automatically fall back to
the scalar kernel.
"""

from __future__ import annotations

import os
from collections import deque

import numpy as np

from repro.config import LINE_SIZE, PAGE_SIZE, SystemConfig
from repro.core.migration import MigrationMechanism
from repro.sim import _ckernel
from repro.dram.device import LINES_PER_ROW
from repro.dram.hma import (
    FAST,
    HeterogeneousMemory,
    flatten_bank_state,
    restore_bank_state,
)
from repro.obs import metrics as _metrics
from repro.obs.snapshots import replay_sink
from repro.obs.tracing import span
from repro.sim.cpu import ReplayCore
from repro.sim.results import DeviceUtilisation, ReplayResult
from repro.trace.record import Trace


def interval_boundaries(num_intervals: int) -> np.ndarray:
    """Equally spaced logical-time boundaries inside ``[0, 1)``."""
    if num_intervals < 1:
        raise ValueError("num_intervals must be >= 1")
    return np.arange(1, num_intervals) / num_intervals


#: Recognised values for ``replay(..., kernel=)`` and
#: ``REPRO_REPLAY_KERNEL``.  Plain ``"batched"`` auto-selects the
#: compiled loop when a C compiler is available, else the pure-Python
#: fused loop; the explicit variants pin one implementation.
KERNELS = ("batched", "scalar", "batched-native", "batched-python")


def _resolve_kernel(kernel: "str | None", hma) -> str:
    """Pick the replay kernel for this run."""
    supported = (
        hasattr(hma, "route_batch") and hasattr(hma, "fast_pages_snapshot")
    )
    if kernel is None:
        from repro.config import knob_value

        kernel = knob_value("replay_kernel", kernel)
    if kernel is None:
        if not supported:
            return "scalar"
        kernel = "batched"
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}")
    if kernel == "scalar":
        return kernel
    if not supported:
        raise ValueError(
            f"{type(hma).__name__} does not expose the batch API; "
            "use kernel='scalar'"
        )
    if kernel == "batched":
        return "batched-native" if _ckernel.available() else "batched-python"
    if kernel == "batched-native" and not _ckernel.available():
        raise RuntimeError(
            "compiled replay kernel unavailable (no C compiler, build "
            "failure, or REPRO_REPLAY_NATIVE=0)"
        )
    return kernel


def _residency_snapshot(hma) -> "set[int]":
    if hasattr(hma, "fast_pages_snapshot"):
        return hma.fast_pages_snapshot()
    return set(hma.pages_in(FAST))


def _page_list(seq) -> "list[int]":
    """Normalise a planner's page sequence (list or ndarray) to a list."""
    return seq.tolist() if isinstance(seq, np.ndarray) else list(seq)


def _plan_migration(
    mechanism: MigrationMechanism, hma, chunk: int, sub: int
) -> "tuple[list[int], list[int]]":
    """The (to_fast, to_slow) plan at the end of ``chunk``."""
    is_fc_boundary = (chunk + 1) % sub == 0
    if is_fc_boundary:
        to_fast, to_slow = mechanism.plan(hma)
        # Mechanisms that defer actual movement to the fine
        # unit still get their sub-plan run at this boundary.
        sub_fast, sub_slow = mechanism.plan_sub(hma) if sub > 1 else ([], [])
        return (_page_list(to_fast) + _page_list(sub_fast),
                _page_list(to_slow) + _page_list(sub_slow))
    to_fast, to_slow = mechanism.plan_sub(hma)
    return _page_list(to_fast), _page_list(to_slow)


def _build_result(
    config: SystemConfig,
    hma,
    trace: Trace,
    final: float,
    core_times: "list[float]",
    read_latency_total: float,
    read_count: int,
    residency: "list[set[int]]",
    bounds: np.ndarray,
) -> ReplayResult:
    core_instructions = [0] * config.num_cores
    core_ids_all = trace.core
    gaps_all = trace.gap
    for c in range(config.num_cores):
        sel = core_ids_all == c
        core_instructions[c] = int(gaps_all[sel].sum()) + int(sel.sum())
    per_core_ipc = [
        (core_instructions[c]
         / (core_times[c] * config.core.frequency_hz))
        if core_times[c] > 0 else 0.0
        for c in range(config.num_cores)
    ]
    utilisation = [
        DeviceUtilisation(
            name=device.config.name,
            reads=device.stats.reads,
            writes=device.stats.writes,
            busy_time=device.stats.busy_time,
            total_seconds=final * device.num_channels,
        )
        for device in (hma.fast, hma.slow)
    ]
    return ReplayResult(
        instructions=trace.total_instructions,
        requests=len(trace),
        total_seconds=final,
        core_frequency_hz=config.core.frequency_hz,
        mean_read_latency=read_latency_total / read_count if read_count else 0.0,
        migrations=hma.migration_stats,
        fast_residency=residency,
        interval_boundaries=bounds,
        device_utilisation=utilisation,
        per_core_ipc=per_core_ipc,
    )


def replay(
    config: SystemConfig,
    hma: HeterogeneousMemory,
    trace: Trace,
    times: "np.ndarray | None" = None,
    mechanism: "MigrationMechanism | None" = None,
    num_intervals: int = 1,
    core_windows: "list[int] | None" = None,
    kernel: "str | None" = None,
) -> ReplayResult:
    """Replay ``trace`` through ``hma``; returns timing results.

    ``times`` (logical time per request) is required when
    ``num_intervals > 1`` so interval boundaries can be located.  The
    residency of fast memory is snapshotted at the start of every
    sub-interval for dynamic SER accounting.  ``core_windows`` gives
    each core its workload's MLP-limited miss window.  ``kernel``
    selects the replay implementation (``"batched"`` or ``"scalar"``,
    default: batched whenever ``hma`` supports it); both produce
    identical results.
    """
    kernel = _resolve_kernel(kernel, hma)
    sub = mechanism.subintervals_per_interval if mechanism else 1
    total_chunks = num_intervals * sub
    if total_chunks > 1:
        if times is None:
            raise ValueError("times required for interval-based replay")
        bounds = interval_boundaries(total_chunks)
        cut = np.searchsorted(times, bounds)
        starts = np.concatenate(([0], cut))
        stops = np.concatenate((cut, [len(trace)]))
    else:
        starts, stops = np.array([0]), np.array([len(trace)])
        bounds = np.empty(0)

    if core_windows is not None and len(core_windows) != config.num_cores:
        raise ValueError("core_windows must have one entry per core")

    # Telemetry: None when disabled, so the kernels' chunk loops pay a
    # single ``is None`` test per epoch.
    sink = replay_sink(hma)
    args = (config, hma, trace, times, mechanism, core_windows,
            starts, stops, bounds, total_chunks, sub, sink)
    with span("replay", kernel=kernel, requests=len(trace),
              chunks=total_chunks,
              mechanism=mechanism.name if mechanism else None):
        if kernel == "scalar":
            result = _replay_scalar(*args)
        elif kernel == "batched-native":
            result = _replay_batched_native(*args)
        else:
            result = _replay_batched(*args)
    if sink is not None:
        result.snapshots = sink.series
        registry = _metrics.get_registry()
        registry.counter("replay.requests").inc(len(trace))
        registry.counter("replay.chunks").inc(total_chunks)
        registry.counter("replay.runs").inc()
    return result


# ---------------------------------------------------------------------------
# Scalar kernel (the reference oracle)
# ---------------------------------------------------------------------------

def _replay_scalar(
    config, hma, trace, times, mechanism, core_windows,
    starts, stops, bounds, total_chunks, sub, sink=None,
) -> ReplayResult:
    cores = [
        ReplayCore(
            config.core,
            window=core_windows[c] if core_windows is not None else None,
        )
        for c in range(config.num_cores)
    ]
    pages_arr = (trace.address // PAGE_SIZE).astype(np.int64)
    lines_arr = ((trace.address % PAGE_SIZE) // LINE_SIZE).astype(np.int64)

    residency: "list[set[int]]" = []
    read_latency_total = 0.0
    read_count = 0

    for chunk, (start, stop) in enumerate(zip(starts, stops)):
        residency.append(_residency_snapshot(hma))

        chunk_pages = pages_arr[start:stop]
        chunk_writes = trace.is_write[start:stop]
        if mechanism is not None and len(chunk_pages):
            chunk_times = times[start:stop] if times is not None else None
            mechanism.observe_chunk(chunk_pages, chunk_writes,
                                    times=chunk_times)

        # -- timed replay of the chunk --
        core_ids = trace.core[start:stop].tolist()
        gaps = trace.gap[start:stop].tolist()
        pages = chunk_pages.tolist()
        lines = lines_arr[start:stop].tolist()
        writes = chunk_writes.tolist()
        service = hma.service
        for i in range(len(pages)):
            core = cores[core_ids[i]]
            core.advance(gaps[i])
            if writes[i]:
                # Writes are posted but hold a store-buffer slot (the
                # shared miss window), so a saturated device back-
                # pressures the core instead of accumulating unbounded
                # write backlog.
                issue = core.ready_to_issue_read()
                done = service(pages[i], lines[i], issue, True)
                core.complete_read(done)
            else:
                issue = core.ready_to_issue_read()
                done = service(pages[i], lines[i], issue, False)
                core.complete_read(done)
                read_latency_total += done - issue
                read_count += 1

        # -- migration at the boundary --
        window_ace = 0.0
        if sink is not None and mechanism is not None:
            # Sampled before the plan: planning resets the window.
            window_ace = mechanism.window_ace_total()
        if mechanism is not None and chunk < total_chunks - 1:
            now = max(c.time for c in cores)
            to_fast, to_slow = _plan_migration(mechanism, hma, chunk, sub)
            if to_fast or to_slow:
                hma.migrate_pairs(to_fast, to_slow, now)

        if sink is not None:
            sink.on_epoch(chunk, hma.fast.stats.reads,
                          hma.fast.stats.writes, hma.slow.stats.reads,
                          hma.slow.stats.writes, window_ace)

    final = max(core.drain() for core in cores) if cores else 0.0
    return _build_result(
        config, hma, trace, final, [core.time for core in cores],
        read_latency_total, read_count, residency, bounds,
    )


# ---------------------------------------------------------------------------
# Batched kernel
# ---------------------------------------------------------------------------

def _route_chunk(hma, chunk_pages, chunk_lines, f_nc, s_nc, f_bpc, s_bpc,
                 n_fast_banks):
    """Vectorised translation + routing for one chunk.

    Returns ``(dev, is_fast, gid, cid, row)`` arrays where ``gid`` is a
    global bank id (fast banks channel-major first, then slow) and
    ``cid`` a global channel id, matching :func:`flatten_bank_state`.
    """
    dev, local = hma.route_batch(chunk_pages, chunk_lines)
    is_fast = dev == FAST
    channel = np.where(is_fast, local % f_nc, local % s_nc)
    row_global = np.where(is_fast, local // f_nc, local // s_nc) \
        // LINES_PER_ROW
    bank = np.where(is_fast, row_global % f_bpc, row_global % s_bpc)
    row = np.where(is_fast, row_global // f_bpc, row_global // s_bpc)
    gid = np.where(
        is_fast,
        channel * f_bpc + bank,
        n_fast_banks + channel * s_bpc + bank,
    )
    cid = np.where(is_fast, channel, f_nc + channel)
    return dev, is_fast, gid, cid, row


def _seq_sum(initial: float, values: np.ndarray) -> float:
    """Strictly-sequential float64 sum, like a scalar ``+=`` loop.

    ``np.add.accumulate`` applies the additions one at a time in array
    order, so the result is bit-identical to folding ``values`` into
    ``initial`` with a Python loop — unlike ``np.sum``, whose pairwise
    reduction rounds differently.
    """
    seq = np.empty(len(values) + 1)
    seq[0] = initial
    seq[1:] = values
    return float(np.add.accumulate(seq)[-1])


def _replay_batched(
    config, hma, trace, times, mechanism, core_windows,
    starts, stops, bounds, total_chunks, sub, sink=None,
) -> ReplayResult:
    num_cores = config.num_cores
    spi = 1.0 / (config.core.issue_width * config.core.frequency_hz)
    cap = config.core.max_outstanding_misses
    windows = (
        [min(cap, w) for w in core_windows]
        if core_windows is not None else [cap] * num_cores
    )
    if any(w < 1 for w in windows):
        raise ValueError("miss window must be >= 1")
    core_time = [0.0] * num_cores
    outstanding = [deque() for _ in range(num_cores)]

    pages_arr = (trace.address // PAGE_SIZE).astype(np.int64)
    lines_arr = ((trace.address % PAGE_SIZE) // LINE_SIZE).astype(np.int64)

    fast, slow = hma.fast, hma.slow
    f_nc, s_nc = fast.num_channels, slow.num_channels
    f_bpc, s_bpc = fast.banks_per_channel, slow.banks_per_channel
    n_fast_banks = fast.num_banks_total

    # Flattened device state, synced with the device objects at
    # migration boundaries (migrations charge channel bandwidth) and
    # at the end of the run.  Bank open rows and hit/miss/conflict
    # counters are integer state independent of timing, kept as arrays
    # and updated vectorially once per chunk.
    bank_open_l, bank_busy, hits_l, misses_l, conflicts_l = \
        flatten_bank_state(fast, slow)
    bank_open_np = np.array(bank_open_l, dtype=np.int64)
    hits_np = np.array(hits_l, dtype=np.int64)
    misses_np = np.array(misses_l, dtype=np.int64)
    conflicts_np = np.array(conflicts_l, dtype=np.int64)
    total_banks = len(bank_busy)
    chan_busy = list(fast.channel_busy_until) + list(slow.channel_busy_until)
    reads_ct = [fast.stats.reads, slow.stats.reads]
    writes_ct = [fast.stats.writes, slow.stats.writes]
    read_lat = [fast.stats.total_read_latency, slow.stats.total_read_latency]
    busy_acc = [fast.stats.busy_time, slow.stats.busy_time]

    def _sync_to_devices() -> None:
        fast.channel_busy_until = chan_busy[:f_nc]
        slow.channel_busy_until = chan_busy[f_nc:]
        for d, device in enumerate((fast, slow)):
            device.stats.reads = reads_ct[d]
            device.stats.writes = writes_ct[d]
            device.stats.total_read_latency = read_lat[d]
            device.stats.busy_time = busy_acc[d]

    residency: "list[set[int]]" = []
    read_latency_total = 0.0
    read_count = 0

    for chunk, (start, stop) in enumerate(zip(starts, stops)):
        residency.append(_residency_snapshot(hma))

        chunk_pages = pages_arr[start:stop]
        chunk_writes = trace.is_write[start:stop]
        if mechanism is not None and len(chunk_pages):
            chunk_times = times[start:stop] if times is not None else None
            mechanism.observe_chunk(chunk_pages, chunk_writes,
                                    times=chunk_times)

        n_req = int(stop - start)
        if n_req:
            # -- vectorised translation and routing --
            dev, is_fast, g_arr, cid_arr, row_arr = _route_chunk(
                hma, chunk_pages, lines_arr[start:stop],
                f_nc, s_nc, f_bpc, s_bpc, n_fast_banks,
            )
            cids = cid_arr.tolist()
            core_ids = trace.core[start:stop].tolist()
            # gap * spi is exact in float64 (gaps < 2^32), so
            # precomputing the per-request time increment matches the
            # scalar path.
            dts = np.multiply(trace.gap[start:stop], spi).tolist()
            writes_l = chunk_writes.tolist()
            # Request/read/write counts are integer sums: tally them
            # vectorially instead of incrementing inside the loop.
            n_writes_fast = int(np.count_nonzero(is_fast & chunk_writes))
            n_reads_fast = int(np.count_nonzero(is_fast)) - n_writes_fast
            n_writes_slow = (int(np.count_nonzero(chunk_writes))
                             - n_writes_fast)
            n_reads_slow = (n_req - n_reads_fast - n_writes_fast
                            - n_writes_slow)
            reads_ct[0] += n_reads_fast
            reads_ct[1] += n_reads_slow
            writes_ct[0] += n_writes_fast
            writes_ct[1] += n_writes_slow
            read_count += n_reads_fast + n_reads_slow

            # -- vectorised row-buffer classification --
            # Whether an access hits, misses (bank closed), or
            # conflicts depends only on the per-bank sequence of rows,
            # not on timing: group requests by bank with a stable sort,
            # compare each row to its predecessor in the same bank, and
            # seed the first access per bank with the carried open row.
            order = np.argsort(g_arr, kind="stable")
            gs = g_arr[order]
            rs = row_arr[order]
            first = np.empty(n_req, dtype=bool)
            first[0] = True
            np.not_equal(gs[1:], gs[:-1], out=first[1:])
            prev = np.empty(n_req, dtype=np.int64)
            prev[1:] = rs[:-1]
            prev[first] = bank_open_np[gs[first]]
            hit = prev == rs
            miss = ~hit & (prev == -1)
            conflict = ~(hit | miss)
            fast_sorted = is_fast[order]
            lat_sorted = np.where(
                hit,
                np.where(fast_sorted, fast.hit_seconds, slow.hit_seconds),
                np.where(
                    miss,
                    np.where(fast_sorted, fast.miss_seconds,
                             slow.miss_seconds),
                    np.where(fast_sorted, fast.conflict_seconds,
                             slow.conflict_seconds),
                ),
            )
            lats = np.empty(n_req)
            lats[order] = lat_sorted
            lats = lats.tolist()
            bursts = np.where(is_fast, fast.burst_seconds,
                              slow.burst_seconds).tolist()
            hits_np += np.bincount(gs[hit], minlength=total_banks)
            misses_np += np.bincount(gs[miss], minlength=total_banks)
            conflicts_np += np.bincount(gs[conflict], minlength=total_banks)
            # Carry each bank's last-opened row into the next chunk.
            last = np.empty(n_req, dtype=bool)
            last[-1] = True
            np.not_equal(gs[1:], gs[:-1], out=last[:-1])
            bank_open_np[gs[last]] = rs[last]
            gids = g_arr.tolist()

            # -- the fused busy-until resolution loop --
            # Per-request work is the irreducibly sequential part of
            # the timing model: each request couples its core's miss
            # window, one bank, and one channel to all earlier
            # requests.
            rl: "list[float]" = []
            rl_append = rl.append
            for c, dt, g, cd, w, lat, b in zip(core_ids, dts, gids, cids,
                                               writes_l, lats, bursts):
                t = core_time[c] + dt
                out = outstanding[c]
                while out and out[0] <= t:
                    out.popleft()
                if len(out) >= windows[c]:
                    oldest = out.popleft()
                    if oldest > t:
                        t = oldest
                    while out and out[0] <= t:
                        out.popleft()
                bb = bank_busy[g]
                begin = t if t > bb else bb
                access_done = begin + lat
                burst_start = access_done - b
                cb = chan_busy[cd]
                if cb > burst_start:
                    burst_start = cb
                finish = burst_start + b
                chan_busy[cd] = finish
                bank_busy[g] = finish
                if not w:
                    rl_append(finish - t)
                out.append(finish)
                core_time[c] = t

            # Latency and busy-time accumulators fold one value per
            # request in request order; _seq_sum replays the identical
            # float64 additions out of the loop.
            if rl:
                lat_arr = np.asarray(rl)
                read_latency_total = _seq_sum(read_latency_total, lat_arr)
                read_dev = dev[~chunk_writes]
                for d in (0, 1):
                    dsel = lat_arr[read_dev == d]
                    if len(dsel):
                        read_lat[d] = _seq_sum(read_lat[d], dsel)
            for d, count, burst in (
                (0, n_reads_fast + n_writes_fast, fast.burst_seconds),
                (1, n_reads_slow + n_writes_slow, slow.burst_seconds),
            ):
                if count:
                    busy_acc[d] = _seq_sum(busy_acc[d],
                                           np.full(count, burst))

        # -- migration at the boundary --
        window_ace = 0.0
        if sink is not None and mechanism is not None:
            # Sampled before the plan: planning resets the window.
            window_ace = mechanism.window_ace_total()
        if mechanism is not None and chunk < total_chunks - 1:
            now = max(core_time)
            to_fast, to_slow = _plan_migration(mechanism, hma, chunk, sub)
            if to_fast or to_slow:
                # Migration charges channel bandwidth on the device
                # objects; hand the flattened state back, then reload.
                _sync_to_devices()
                hma.migrate_pairs(to_fast, to_slow, now)
                chan_busy = (list(fast.channel_busy_until)
                             + list(slow.channel_busy_until))
                busy_acc = [fast.stats.busy_time, slow.stats.busy_time]

        if sink is not None:
            sink.on_epoch(chunk, reads_ct[0], writes_ct[0],
                          reads_ct[1], writes_ct[1], window_ace)

    final = 0.0
    for c in range(num_cores):
        t = core_time[c]
        out = outstanding[c]
        if out:
            last = max(out)
            if last > t:
                t = last
            out.clear()
            core_time[c] = t
        if t > final:
            final = t

    restore_bank_state(fast, slow, bank_open_np.tolist(), bank_busy,
                       hits_np.tolist(), misses_np.tolist(),
                       conflicts_np.tolist())
    _sync_to_devices()
    return _build_result(
        config, hma, trace, final, core_time,
        read_latency_total, read_count, residency, bounds,
    )


# ---------------------------------------------------------------------------
# Batched kernel, compiled loop
# ---------------------------------------------------------------------------

def _replay_batched_native(
    config, hma, trace, times, mechanism, core_windows,
    starts, stops, bounds, total_chunks, sub, sink=None,
) -> ReplayResult:
    """The batched kernel with the fused loop compiled to C.

    Identical structure to :func:`_replay_batched`, but the per-request
    busy-until resolution (including row-buffer classification) runs in
    :mod:`repro.sim._ckernel`; all mutable state lives in numpy arrays
    shared with the C loop by pointer.
    """
    kernel_fn = _ckernel.load()
    num_cores = config.num_cores
    spi = 1.0 / (config.core.issue_width * config.core.frequency_hz)
    cap = config.core.max_outstanding_misses
    windows = (
        [min(cap, w) for w in core_windows]
        if core_windows is not None else [cap] * num_cores
    )
    if any(w < 1 for w in windows):
        raise ValueError("miss window must be >= 1")
    windows_np = np.asarray(windows, dtype=np.int32)
    ringcap = int(max(windows))
    core_time = np.zeros(num_cores)
    ring = np.zeros((num_cores, ringcap))
    ring_head = np.zeros(num_cores, dtype=np.int32)
    ring_len = np.zeros(num_cores, dtype=np.int32)

    pages_arr = (trace.address // PAGE_SIZE).astype(np.int64)
    lines_arr = ((trace.address % PAGE_SIZE) // LINE_SIZE).astype(np.int64)

    fast, slow = hma.fast, hma.slow
    f_nc, s_nc = fast.num_channels, slow.num_channels
    f_bpc, s_bpc = fast.banks_per_channel, slow.banks_per_channel
    n_fast_banks = fast.num_banks_total
    latconst = np.array([
        fast.hit_seconds, fast.miss_seconds, fast.conflict_seconds,
        fast.burst_seconds,
        slow.hit_seconds, slow.miss_seconds, slow.conflict_seconds,
        slow.burst_seconds,
    ])

    bank_open_l, bank_busy_l, hits_l, misses_l, conflicts_l = \
        flatten_bank_state(fast, slow)
    bank_open = np.asarray(bank_open_l, dtype=np.int64)
    bank_busy = np.asarray(bank_busy_l)
    bank_hits = np.asarray(hits_l, dtype=np.int64)
    bank_misses = np.asarray(misses_l, dtype=np.int64)
    bank_conflicts = np.asarray(conflicts_l, dtype=np.int64)
    chan_busy = np.array(list(fast.channel_busy_until)
                         + list(slow.channel_busy_until))
    reads_ct = [fast.stats.reads, slow.stats.reads]
    writes_ct = [fast.stats.writes, slow.stats.writes]
    read_lat = np.array([fast.stats.total_read_latency,
                         slow.stats.total_read_latency])
    busy_acc = np.array([fast.stats.busy_time, slow.stats.busy_time])
    read_total = np.zeros(1)
    read_count = 0

    def _sync_to_devices() -> None:
        fast.channel_busy_until = chan_busy[:f_nc].tolist()
        slow.channel_busy_until = chan_busy[f_nc:].tolist()
        for d, device in enumerate((fast, slow)):
            device.stats.reads = reads_ct[d]
            device.stats.writes = writes_ct[d]
            device.stats.total_read_latency = float(read_lat[d])
            device.stats.busy_time = float(busy_acc[d])

    residency: "list[set[int]]" = []

    for chunk, (start, stop) in enumerate(zip(starts, stops)):
        residency.append(_residency_snapshot(hma))

        chunk_pages = pages_arr[start:stop]
        chunk_writes = trace.is_write[start:stop]
        if mechanism is not None and len(chunk_pages):
            chunk_times = times[start:stop] if times is not None else None
            mechanism.observe_chunk(chunk_pages, chunk_writes,
                                    times=chunk_times)

        n_req = int(stop - start)
        if n_req:
            dev, is_fast, g_arr, cid_arr, row_arr = _route_chunk(
                hma, chunk_pages, lines_arr[start:stop],
                f_nc, s_nc, f_bpc, s_bpc, n_fast_banks,
            )
            n_writes_fast = int(np.count_nonzero(is_fast & chunk_writes))
            n_reads_fast = int(np.count_nonzero(is_fast)) - n_writes_fast
            n_writes_slow = (int(np.count_nonzero(chunk_writes))
                             - n_writes_fast)
            n_reads_slow = (n_req - n_reads_fast - n_writes_fast
                            - n_writes_slow)
            reads_ct[0] += n_reads_fast
            reads_ct[1] += n_reads_slow
            writes_ct[0] += n_writes_fast
            writes_ct[1] += n_writes_slow
            read_count += n_reads_fast + n_reads_slow

            _ckernel.run_chunk(
                kernel_fn,
                np.ascontiguousarray(trace.core[start:stop],
                                     dtype=np.int32),
                np.multiply(trace.gap[start:stop], spi),
                np.ascontiguousarray(g_arr, dtype=np.int64),
                np.ascontiguousarray(cid_arr, dtype=np.int32),
                np.ascontiguousarray(dev, dtype=np.uint8),
                np.ascontiguousarray(chunk_writes, dtype=np.uint8),
                np.ascontiguousarray(row_arr, dtype=np.int64),
                latconst,
                core_time, windows_np, ring, ring_head, ring_len, ringcap,
                bank_busy, bank_open, bank_hits, bank_misses,
                bank_conflicts, chan_busy, read_lat, busy_acc, read_total,
            )

        # -- migration at the boundary --
        window_ace = 0.0
        if sink is not None and mechanism is not None:
            # Sampled before the plan: planning resets the window.
            window_ace = mechanism.window_ace_total()
        if mechanism is not None and chunk < total_chunks - 1:
            now = float(core_time.max())
            to_fast, to_slow = _plan_migration(mechanism, hma, chunk, sub)
            if to_fast or to_slow:
                _sync_to_devices()
                hma.migrate_pairs(to_fast, to_slow, now)
                chan_busy = np.array(list(fast.channel_busy_until)
                                     + list(slow.channel_busy_until))
                busy_acc = np.array([fast.stats.busy_time,
                                     slow.stats.busy_time])

        if sink is not None:
            sink.on_epoch(chunk, reads_ct[0], writes_ct[0],
                          reads_ct[1], writes_ct[1], window_ace)

    core_times = core_time.tolist()
    final = 0.0
    for c in range(num_cores):
        t = core_times[c]
        n = int(ring_len[c])
        if n:
            h = int(ring_head[c])
            live = [float(ring[c, (h + j) % ringcap]) for j in range(n)]
            last = max(live)
            if last > t:
                t = last
            core_times[c] = t
        if t > final:
            final = t

    restore_bank_state(fast, slow, bank_open.tolist(), bank_busy.tolist(),
                       bank_hits.tolist(), bank_misses.tolist(),
                       bank_conflicts.tolist())
    _sync_to_devices()
    return _build_result(
        config, hma, trace, final, core_times,
        float(read_total[0]), read_count, residency, bounds,
    )
