"""The trace-replay engine: cores + HMA + optional migration.

:func:`replay` drives a time-ordered multi-core memory trace through
the :class:`~repro.sim.cpu.ReplayCore` models and a
:class:`~repro.dram.hma.HeterogeneousMemory`, optionally invoking a
:class:`~repro.core.migration.MigrationMechanism` at interval
boundaries.  Interval boundaries are expressed in the trace's logical
time (the generator's ``[0, 1)`` window); migration bandwidth is
charged to both devices at the boundary, so migration-heavy intervals
slow subsequent requests down — the paper's migration cost model.
"""

from __future__ import annotations

import numpy as np

from repro.config import LINE_SIZE, PAGE_SIZE, SystemConfig
from repro.core.migration import MigrationMechanism
from repro.dram.hma import FAST, HeterogeneousMemory
from repro.sim.cpu import ReplayCore
from repro.sim.results import DeviceUtilisation, ReplayResult
from repro.trace.record import Trace


def interval_boundaries(num_intervals: int) -> np.ndarray:
    """Equally spaced logical-time boundaries inside ``[0, 1)``."""
    if num_intervals < 1:
        raise ValueError("num_intervals must be >= 1")
    return np.arange(1, num_intervals) / num_intervals


def replay(
    config: SystemConfig,
    hma: HeterogeneousMemory,
    trace: Trace,
    times: "np.ndarray | None" = None,
    mechanism: "MigrationMechanism | None" = None,
    num_intervals: int = 1,
    core_windows: "list[int] | None" = None,
) -> ReplayResult:
    """Replay ``trace`` through ``hma``; returns timing results.

    ``times`` (logical time per request) is required when
    ``num_intervals > 1`` so interval boundaries can be located.  The
    residency of fast memory is snapshotted at the start of every
    sub-interval for dynamic SER accounting.  ``core_windows`` gives
    each core its workload's MLP-limited miss window.
    """
    sub = mechanism.subintervals_per_interval if mechanism else 1
    total_chunks = num_intervals * sub
    if total_chunks > 1:
        if times is None:
            raise ValueError("times required for interval-based replay")
        bounds = interval_boundaries(total_chunks)
        cut = np.searchsorted(times, bounds)
        starts = np.concatenate(([0], cut))
        stops = np.concatenate((cut, [len(trace)]))
    else:
        starts, stops = np.array([0]), np.array([len(trace)])
        bounds = np.empty(0)

    if core_windows is not None and len(core_windows) != config.num_cores:
        raise ValueError("core_windows must have one entry per core")
    cores = [
        ReplayCore(
            config.core,
            window=core_windows[c] if core_windows is not None else None,
        )
        for c in range(config.num_cores)
    ]
    pages_arr = (trace.address // PAGE_SIZE).astype(np.int64)
    lines_arr = ((trace.address % PAGE_SIZE) // LINE_SIZE).astype(np.int64)

    residency: "list[set[int]]" = []
    read_latency_total = 0.0
    read_count = 0

    for chunk, (start, stop) in enumerate(zip(starts, stops)):
        residency.append(set(hma.pages_in(FAST)))

        chunk_pages = pages_arr[start:stop]
        chunk_writes = trace.is_write[start:stop]
        if mechanism is not None and len(chunk_pages):
            chunk_times = times[start:stop] if times is not None else None
            mechanism.observe_chunk(chunk_pages, chunk_writes,
                                    times=chunk_times)

        # -- timed replay of the chunk --
        core_ids = trace.core[start:stop].tolist()
        gaps = trace.gap[start:stop].tolist()
        pages = chunk_pages.tolist()
        lines = lines_arr[start:stop].tolist()
        writes = chunk_writes.tolist()
        service = hma.service
        for i in range(len(pages)):
            core = cores[core_ids[i]]
            core.advance(gaps[i])
            if writes[i]:
                # Writes are posted but hold a store-buffer slot (the
                # shared miss window), so a saturated device back-
                # pressures the core instead of accumulating unbounded
                # write backlog.
                issue = core.ready_to_issue_read()
                done = service(pages[i], lines[i], issue, True)
                core.complete_read(done)
            else:
                issue = core.ready_to_issue_read()
                done = service(pages[i], lines[i], issue, False)
                core.complete_read(done)
                read_latency_total += done - issue
                read_count += 1

        # -- migration at the boundary --
        if mechanism is not None and chunk < total_chunks - 1:
            now = max(c.time for c in cores)
            is_fc_boundary = (chunk + 1) % sub == 0
            if is_fc_boundary:
                to_fast, to_slow = mechanism.plan(hma)
                # Mechanisms that defer actual movement to the fine
                # unit still get their sub-plan run at this boundary.
                sub_fast, sub_slow = mechanism.plan_sub(hma) if sub > 1 else ([], [])
                to_fast = list(to_fast) + list(sub_fast)
                to_slow = list(to_slow) + list(sub_slow)
            else:
                to_fast, to_slow = mechanism.plan_sub(hma)
            if to_fast or to_slow:
                hma.migrate_pairs(to_fast, to_slow, now)

    final = max(core.drain() for core in cores) if cores else 0.0
    core_instructions = [0] * config.num_cores
    core_ids_all = trace.core
    gaps_all = trace.gap
    for c in range(config.num_cores):
        sel = core_ids_all == c
        core_instructions[c] = int(gaps_all[sel].sum()) + int(sel.sum())
    per_core_ipc = [
        (core_instructions[c]
         / (cores[c].time * config.core.frequency_hz))
        if cores[c].time > 0 else 0.0
        for c in range(config.num_cores)
    ]
    utilisation = [
        DeviceUtilisation(
            name=device.config.name,
            reads=device.stats.reads,
            writes=device.stats.writes,
            busy_time=device.stats.busy_time,
            total_seconds=final * device.num_channels,
        )
        for device in (hma.fast, hma.slow)
    ]
    return ReplayResult(
        instructions=trace.total_instructions,
        requests=len(trace),
        total_seconds=final,
        core_frequency_hz=config.core.frequency_hz,
        mean_read_latency=read_latency_total / read_count if read_count else 0.0,
        migrations=hma.migration_stats,
        fast_residency=residency,
        interval_boundaries=bounds,
        device_utilisation=utilisation,
        per_core_ipc=per_core_ipc,
    )
