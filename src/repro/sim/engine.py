"""The trace-replay engine: cores + HMA + optional migration.

:func:`replay` drives a time-ordered multi-core memory trace through
the :class:`~repro.sim.cpu.ReplayCore` models and a
:class:`~repro.dram.hma.HeterogeneousMemory`, optionally invoking a
:class:`~repro.core.migration.MigrationMechanism` at interval
boundaries.  Interval boundaries are expressed in the trace's logical
time (the generator's ``[0, 1)`` window); migration bandwidth is
charged to both devices at the boundary, so migration-heavy intervals
slow subsequent requests down — the paper's migration cost model.

Two kernels implement the same timing model:

* ``scalar`` — the original per-request call chain
  (``hma.service`` → ``MemoryDevice.service`` → ``Bank.service``).
  It is the reference oracle: slow, but written directly against the
  component models.
* ``batched`` (default) — page-table translation and channel/bank/row
  routing are computed for a whole chunk with NumPy, and only the
  inherently sequential core/bank/channel busy-until resolution runs
  in a tight fused loop over flat lists.  The arithmetic mirrors the
  scalar path operation for operation, so both kernels produce
  bit-identical :class:`~repro.sim.results.ReplayResult` timings
  (enforced by ``tests/sim/test_parity.py``).

The kernel is selected with the ``kernel`` argument or the
``REPRO_REPLAY_KERNEL`` environment variable; memory models that lack
the batch API (e.g. the DRAM-cache foil) automatically fall back to
the scalar kernel.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.config import LINE_SIZE, LINES_PER_PAGE, PAGE_SIZE, SystemConfig
from repro.core.migration import MigrationMechanism
from repro.sim import _ckernel
from repro.dram.device import LINES_PER_ROW
from repro.dram.hma import (
    FAST,
    HeterogeneousMemory,
    flatten_bank_state,
    restore_bank_state,
)
from repro.obs import metrics as _metrics
from repro.obs.snapshots import replay_sink
from repro.obs.tracing import span
from repro.sim.cpu import ReplayCore
from repro.sim.results import DeviceUtilisation, ReplayResult
from repro.trace.record import Trace


def interval_boundaries(num_intervals: int) -> np.ndarray:
    """Equally spaced logical-time boundaries inside ``[0, 1)``."""
    if num_intervals < 1:
        raise ValueError("num_intervals must be >= 1")
    return np.arange(1, num_intervals) / num_intervals


#: Recognised values for ``replay(..., kernel=)`` and
#: ``REPRO_REPLAY_KERNEL``.  Plain ``"batched"`` auto-selects the
#: compiled loop when a C compiler is available, else the pure-Python
#: fused loop; the explicit variants pin one implementation.
KERNELS = ("batched", "scalar", "batched-native", "batched-python")


def _resolve_kernel(kernel: "str | None", hma) -> str:
    """Pick the replay kernel for this run."""
    supported = (
        hasattr(hma, "route_batch") and hasattr(hma, "fast_pages_snapshot")
    )
    if kernel is None:
        from repro.config import knob_value

        kernel = knob_value("replay_kernel", kernel)
    if kernel is None:
        if not supported:
            return "scalar"
        kernel = "batched"
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}")
    if kernel == "scalar":
        return kernel
    if not supported:
        raise ValueError(
            f"{type(hma).__name__} does not expose the batch API; "
            "use kernel='scalar'"
        )
    if kernel == "batched":
        return "batched-native" if _ckernel.available() else "batched-python"
    if kernel == "batched-native" and not _ckernel.available():
        raise RuntimeError(
            "compiled replay kernel unavailable (no C compiler, build "
            "failure, or REPRO_REPLAY_NATIVE=0)"
        )
    return kernel


def _residency_snapshot(hma) -> "set[int]":
    if hasattr(hma, "fast_pages_snapshot"):
        return hma.fast_pages_snapshot()
    return set(hma.pages_in(FAST))


def _page_list(seq) -> "list[int]":
    """Normalise a planner's page sequence (list or ndarray) to a list."""
    return seq.tolist() if isinstance(seq, np.ndarray) else list(seq)


def _plan_migration(
    mechanism: MigrationMechanism, hma, chunk: int, sub: int
) -> "tuple[list[int], list[int]]":
    """The (to_fast, to_slow) plan at the end of ``chunk``."""
    is_fc_boundary = (chunk + 1) % sub == 0
    if is_fc_boundary:
        to_fast, to_slow = mechanism.plan(hma)
        # Mechanisms that defer actual movement to the fine
        # unit still get their sub-plan run at this boundary.
        sub_fast, sub_slow = mechanism.plan_sub(hma) if sub > 1 else ([], [])
        return (_page_list(to_fast) + _page_list(sub_fast),
                _page_list(to_slow) + _page_list(sub_slow))
    to_fast, to_slow = mechanism.plan_sub(hma)
    return _page_list(to_fast), _page_list(to_slow)


def _build_result(
    config: SystemConfig,
    hma,
    trace: Trace,
    final: float,
    core_times: "list[float]",
    read_latency_total: float,
    read_count: int,
    residency: "list[set[int]]",
    bounds: np.ndarray,
    core_instructions: "list[int] | None" = None,
) -> ReplayResult:
    if core_instructions is None:
        core_instructions = [0] * config.num_cores
        core_ids_all = trace.core
        gaps_all = trace.gap
        for c in range(config.num_cores):
            sel = core_ids_all == c
            core_instructions[c] = int(gaps_all[sel].sum()) + int(sel.sum())
    per_core_ipc = [
        (core_instructions[c]
         / (core_times[c] * config.core.frequency_hz))
        if core_times[c] > 0 else 0.0
        for c in range(config.num_cores)
    ]
    utilisation = [
        DeviceUtilisation(
            name=device.config.name,
            reads=device.stats.reads,
            writes=device.stats.writes,
            busy_time=device.stats.busy_time,
            total_seconds=final * device.num_channels,
        )
        for device in (hma.fast, hma.slow)
    ]
    return ReplayResult(
        instructions=trace.total_instructions,
        requests=len(trace),
        total_seconds=final,
        core_frequency_hz=config.core.frequency_hz,
        mean_read_latency=read_latency_total / read_count if read_count else 0.0,
        migrations=hma.migration_stats,
        fast_residency=residency,
        interval_boundaries=bounds,
        device_utilisation=utilisation,
        per_core_ipc=per_core_ipc,
    )


def replay(
    config: SystemConfig,
    hma: HeterogeneousMemory,
    trace: Trace,
    times: "np.ndarray | None" = None,
    mechanism: "MigrationMechanism | None" = None,
    num_intervals: int = 1,
    core_windows: "list[int] | None" = None,
    kernel: "str | None" = None,
) -> ReplayResult:
    """Replay ``trace`` through ``hma``; returns timing results.

    ``times`` (logical time per request) is required when
    ``num_intervals > 1`` so interval boundaries can be located.  The
    residency of fast memory is snapshotted at the start of every
    sub-interval for dynamic SER accounting.  ``core_windows`` gives
    each core its workload's MLP-limited miss window.  ``kernel``
    selects the replay implementation (``"batched"`` or ``"scalar"``,
    default: batched whenever ``hma`` supports it); both produce
    identical results.
    """
    kernel = _resolve_kernel(kernel, hma)
    sub = mechanism.subintervals_per_interval if mechanism else 1
    total_chunks = num_intervals * sub
    if total_chunks > 1:
        if times is None:
            raise ValueError("times required for interval-based replay")
        bounds = interval_boundaries(total_chunks)
        cut = np.searchsorted(times, bounds)
        starts = np.concatenate(([0], cut))
        stops = np.concatenate((cut, [len(trace)]))
    else:
        starts, stops = np.array([0]), np.array([len(trace)])
        bounds = np.empty(0)

    if core_windows is not None and len(core_windows) != config.num_cores:
        raise ValueError("core_windows must have one entry per core")

    # Telemetry: None when disabled, so the kernels' chunk loops pay a
    # single ``is None`` test per epoch.
    sink = replay_sink(hma)
    args = (config, hma, trace, times, mechanism, core_windows,
            starts, stops, bounds, total_chunks, sub, sink)
    with span("replay", kernel=kernel, requests=len(trace),
              chunks=total_chunks,
              mechanism=mechanism.name if mechanism else None):
        if kernel == "scalar":
            result = _replay_scalar(*args)
        elif kernel == "batched-native":
            result = _replay_batched_native(*args)
        else:
            result = _replay_batched(*args)
    if sink is not None:
        result.snapshots = sink.series
        registry = _metrics.get_registry()
        registry.counter("replay.requests").inc(len(trace))
        registry.counter("replay.chunks").inc(total_chunks)
        registry.counter("replay.runs").inc()
    return result


# ---------------------------------------------------------------------------
# Scalar kernel (the reference oracle)
# ---------------------------------------------------------------------------

def _replay_scalar(
    config, hma, trace, times, mechanism, core_windows,
    starts, stops, bounds, total_chunks, sub, sink=None,
) -> ReplayResult:
    cores = [
        ReplayCore(
            config.core,
            window=core_windows[c] if core_windows is not None else None,
        )
        for c in range(config.num_cores)
    ]
    pages_arr = (trace.address // PAGE_SIZE).astype(np.int64)
    lines_arr = ((trace.address % PAGE_SIZE) // LINE_SIZE).astype(np.int64)

    residency: "list[set[int]]" = []
    read_latency_total = 0.0
    read_count = 0

    for chunk, (start, stop) in enumerate(zip(starts, stops)):
        residency.append(_residency_snapshot(hma))

        chunk_pages = pages_arr[start:stop]
        chunk_writes = trace.is_write[start:stop]
        if mechanism is not None and len(chunk_pages):
            chunk_times = times[start:stop] if times is not None else None
            mechanism.observe_chunk(chunk_pages, chunk_writes,
                                    times=chunk_times)

        # -- timed replay of the chunk --
        core_ids = trace.core[start:stop].tolist()
        gaps = trace.gap[start:stop].tolist()
        pages = chunk_pages.tolist()
        lines = lines_arr[start:stop].tolist()
        writes = chunk_writes.tolist()
        service = hma.service
        for i in range(len(pages)):
            core = cores[core_ids[i]]
            core.advance(gaps[i])
            if writes[i]:
                # Writes are posted but hold a store-buffer slot (the
                # shared miss window), so a saturated device back-
                # pressures the core instead of accumulating unbounded
                # write backlog.
                issue = core.ready_to_issue_read()
                done = service(pages[i], lines[i], issue, True)
                core.complete_read(done)
            else:
                issue = core.ready_to_issue_read()
                done = service(pages[i], lines[i], issue, False)
                core.complete_read(done)
                read_latency_total += done - issue
                read_count += 1

        # -- migration at the boundary --
        window_ace = 0.0
        if sink is not None and mechanism is not None:
            # Sampled before the plan: planning resets the window.
            window_ace = mechanism.window_ace_total()
        if mechanism is not None and chunk < total_chunks - 1:
            now = max(c.time for c in cores)
            to_fast, to_slow = _plan_migration(mechanism, hma, chunk, sub)
            if to_fast or to_slow:
                hma.migrate_pairs(to_fast, to_slow, now)

        if sink is not None:
            sink.on_epoch(chunk, hma.fast.stats.reads,
                          hma.fast.stats.writes, hma.slow.stats.reads,
                          hma.slow.stats.writes, window_ace)

    final = max(core.drain() for core in cores) if cores else 0.0
    return _build_result(
        config, hma, trace, final, [core.time for core in cores],
        read_latency_total, read_count, residency, bounds,
    )


# ---------------------------------------------------------------------------
# Batched kernel
# ---------------------------------------------------------------------------

def _route_chunk(hma, chunk_pages, chunk_lines, f_nc, s_nc, f_bpc, s_bpc,
                 n_fast_banks):
    """Vectorised translation + routing for one chunk.

    Returns ``(dev, is_fast, gid, cid, row)`` arrays where ``gid`` is a
    global bank id (fast banks channel-major first, then slow) and
    ``cid`` a global channel id, matching :func:`flatten_bank_state`.
    """
    dev, local = hma.route_batch(chunk_pages, chunk_lines)
    is_fast = dev == FAST
    channel = np.where(is_fast, local % f_nc, local % s_nc)
    row_global = np.where(is_fast, local // f_nc, local // s_nc) \
        // LINES_PER_ROW
    bank = np.where(is_fast, row_global % f_bpc, row_global % s_bpc)
    row = np.where(is_fast, row_global // f_bpc, row_global // s_bpc)
    gid = np.where(
        is_fast,
        channel * f_bpc + bank,
        n_fast_banks + channel * s_bpc + bank,
    )
    cid = np.where(is_fast, channel, f_nc + channel)
    return dev, is_fast, gid, cid, row


def _seq_sum(initial: float, values: np.ndarray) -> float:
    """Strictly-sequential float64 sum, like a scalar ``+=`` loop.

    ``np.add.accumulate`` applies the additions one at a time in array
    order, so the result is bit-identical to folding ``values`` into
    ``initial`` with a Python loop — unlike ``np.sum``, whose pairwise
    reduction rounds differently.
    """
    seq = np.empty(len(values) + 1)
    seq[0] = initial
    seq[1:] = values
    return float(np.add.accumulate(seq)[-1])


def _replay_batched(
    config, hma, trace, times, mechanism, core_windows,
    starts, stops, bounds, total_chunks, sub, sink=None,
) -> ReplayResult:
    num_cores = config.num_cores
    spi = 1.0 / (config.core.issue_width * config.core.frequency_hz)
    cap = config.core.max_outstanding_misses
    windows = (
        [min(cap, w) for w in core_windows]
        if core_windows is not None else [cap] * num_cores
    )
    if any(w < 1 for w in windows):
        raise ValueError("miss window must be >= 1")
    core_time = [0.0] * num_cores
    outstanding = [deque() for _ in range(num_cores)]

    pages_arr = (trace.address // PAGE_SIZE).astype(np.int64)
    lines_arr = ((trace.address % PAGE_SIZE) // LINE_SIZE).astype(np.int64)

    fast, slow = hma.fast, hma.slow
    f_nc, s_nc = fast.num_channels, slow.num_channels
    f_bpc, s_bpc = fast.banks_per_channel, slow.banks_per_channel
    n_fast_banks = fast.num_banks_total

    # Flattened device state, synced with the device objects at
    # migration boundaries (migrations charge channel bandwidth) and
    # at the end of the run.  Bank open rows and hit/miss/conflict
    # counters are integer state independent of timing, kept as arrays
    # and updated vectorially once per chunk.
    bank_open_l, bank_busy, hits_l, misses_l, conflicts_l = \
        flatten_bank_state(fast, slow)
    bank_open_np = np.array(bank_open_l, dtype=np.int64)
    hits_np = np.array(hits_l, dtype=np.int64)
    misses_np = np.array(misses_l, dtype=np.int64)
    conflicts_np = np.array(conflicts_l, dtype=np.int64)
    total_banks = len(bank_busy)
    chan_busy = list(fast.channel_busy_until) + list(slow.channel_busy_until)
    reads_ct = [fast.stats.reads, slow.stats.reads]
    writes_ct = [fast.stats.writes, slow.stats.writes]
    read_lat = [fast.stats.total_read_latency, slow.stats.total_read_latency]
    busy_acc = [fast.stats.busy_time, slow.stats.busy_time]

    def _sync_to_devices() -> None:
        fast.channel_busy_until = chan_busy[:f_nc]
        slow.channel_busy_until = chan_busy[f_nc:]
        for d, device in enumerate((fast, slow)):
            device.stats.reads = reads_ct[d]
            device.stats.writes = writes_ct[d]
            device.stats.total_read_latency = read_lat[d]
            device.stats.busy_time = busy_acc[d]

    residency: "list[set[int]]" = []
    read_latency_total = 0.0
    read_count = 0

    for chunk, (start, stop) in enumerate(zip(starts, stops)):
        residency.append(_residency_snapshot(hma))

        chunk_pages = pages_arr[start:stop]
        chunk_writes = trace.is_write[start:stop]
        if mechanism is not None and len(chunk_pages):
            chunk_times = times[start:stop] if times is not None else None
            mechanism.observe_chunk(chunk_pages, chunk_writes,
                                    times=chunk_times)

        n_req = int(stop - start)
        if n_req:
            # -- vectorised translation and routing --
            dev, is_fast, g_arr, cid_arr, row_arr = _route_chunk(
                hma, chunk_pages, lines_arr[start:stop],
                f_nc, s_nc, f_bpc, s_bpc, n_fast_banks,
            )
            cids = cid_arr.tolist()
            core_ids = trace.core[start:stop].tolist()
            # gap * spi is exact in float64 (gaps < 2^32), so
            # precomputing the per-request time increment matches the
            # scalar path.
            dts = np.multiply(trace.gap[start:stop], spi).tolist()
            writes_l = chunk_writes.tolist()
            # Request/read/write counts are integer sums: tally them
            # vectorially instead of incrementing inside the loop.
            n_writes_fast = int(np.count_nonzero(is_fast & chunk_writes))
            n_reads_fast = int(np.count_nonzero(is_fast)) - n_writes_fast
            n_writes_slow = (int(np.count_nonzero(chunk_writes))
                             - n_writes_fast)
            n_reads_slow = (n_req - n_reads_fast - n_writes_fast
                            - n_writes_slow)
            reads_ct[0] += n_reads_fast
            reads_ct[1] += n_reads_slow
            writes_ct[0] += n_writes_fast
            writes_ct[1] += n_writes_slow
            read_count += n_reads_fast + n_reads_slow

            # -- vectorised row-buffer classification --
            # Whether an access hits, misses (bank closed), or
            # conflicts depends only on the per-bank sequence of rows,
            # not on timing: group requests by bank with a stable sort,
            # compare each row to its predecessor in the same bank, and
            # seed the first access per bank with the carried open row.
            order = np.argsort(g_arr, kind="stable")
            gs = g_arr[order]
            rs = row_arr[order]
            first = np.empty(n_req, dtype=bool)
            first[0] = True
            np.not_equal(gs[1:], gs[:-1], out=first[1:])
            prev = np.empty(n_req, dtype=np.int64)
            prev[1:] = rs[:-1]
            prev[first] = bank_open_np[gs[first]]
            hit = prev == rs
            miss = ~hit & (prev == -1)
            conflict = ~(hit | miss)
            fast_sorted = is_fast[order]
            lat_sorted = np.where(
                hit,
                np.where(fast_sorted, fast.hit_seconds, slow.hit_seconds),
                np.where(
                    miss,
                    np.where(fast_sorted, fast.miss_seconds,
                             slow.miss_seconds),
                    np.where(fast_sorted, fast.conflict_seconds,
                             slow.conflict_seconds),
                ),
            )
            lats = np.empty(n_req)
            lats[order] = lat_sorted
            lats = lats.tolist()
            bursts = np.where(is_fast, fast.burst_seconds,
                              slow.burst_seconds).tolist()
            hits_np += np.bincount(gs[hit], minlength=total_banks)
            misses_np += np.bincount(gs[miss], minlength=total_banks)
            conflicts_np += np.bincount(gs[conflict], minlength=total_banks)
            # Carry each bank's last-opened row into the next chunk.
            last = np.empty(n_req, dtype=bool)
            last[-1] = True
            np.not_equal(gs[1:], gs[:-1], out=last[:-1])
            bank_open_np[gs[last]] = rs[last]
            gids = g_arr.tolist()

            # -- the fused busy-until resolution loop --
            # Per-request work is the irreducibly sequential part of
            # the timing model: each request couples its core's miss
            # window, one bank, and one channel to all earlier
            # requests.
            rl: "list[float]" = []
            rl_append = rl.append
            for c, dt, g, cd, w, lat, b in zip(core_ids, dts, gids, cids,
                                               writes_l, lats, bursts):
                t = core_time[c] + dt
                out = outstanding[c]
                while out and out[0] <= t:
                    out.popleft()
                if len(out) >= windows[c]:
                    oldest = out.popleft()
                    if oldest > t:
                        t = oldest
                    while out and out[0] <= t:
                        out.popleft()
                bb = bank_busy[g]
                begin = t if t > bb else bb
                access_done = begin + lat
                burst_start = access_done - b
                cb = chan_busy[cd]
                if cb > burst_start:
                    burst_start = cb
                finish = burst_start + b
                chan_busy[cd] = finish
                bank_busy[g] = finish
                if not w:
                    rl_append(finish - t)
                out.append(finish)
                core_time[c] = t

            # Latency and busy-time accumulators fold one value per
            # request in request order; _seq_sum replays the identical
            # float64 additions out of the loop.
            if rl:
                lat_arr = np.asarray(rl)
                read_latency_total = _seq_sum(read_latency_total, lat_arr)
                read_dev = dev[~chunk_writes]
                for d in (0, 1):
                    dsel = lat_arr[read_dev == d]
                    if len(dsel):
                        read_lat[d] = _seq_sum(read_lat[d], dsel)
            for d, count, burst in (
                (0, n_reads_fast + n_writes_fast, fast.burst_seconds),
                (1, n_reads_slow + n_writes_slow, slow.burst_seconds),
            ):
                if count:
                    busy_acc[d] = _seq_sum(busy_acc[d],
                                           np.full(count, burst))

        # -- migration at the boundary --
        window_ace = 0.0
        if sink is not None and mechanism is not None:
            # Sampled before the plan: planning resets the window.
            window_ace = mechanism.window_ace_total()
        if mechanism is not None and chunk < total_chunks - 1:
            now = max(core_time)
            to_fast, to_slow = _plan_migration(mechanism, hma, chunk, sub)
            if to_fast or to_slow:
                # Migration charges channel bandwidth on the device
                # objects; hand the flattened state back, then reload.
                _sync_to_devices()
                hma.migrate_pairs(to_fast, to_slow, now)
                chan_busy = (list(fast.channel_busy_until)
                             + list(slow.channel_busy_until))
                busy_acc = [fast.stats.busy_time, slow.stats.busy_time]

        if sink is not None:
            sink.on_epoch(chunk, reads_ct[0], writes_ct[0],
                          reads_ct[1], writes_ct[1], window_ace)

    final = 0.0
    for c in range(num_cores):
        t = core_time[c]
        out = outstanding[c]
        if out:
            last = max(out)
            if last > t:
                t = last
            out.clear()
            core_time[c] = t
        if t > final:
            final = t

    restore_bank_state(fast, slow, bank_open_np.tolist(), bank_busy,
                       hits_np.tolist(), misses_np.tolist(),
                       conflicts_np.tolist())
    _sync_to_devices()
    return _build_result(
        config, hma, trace, final, core_time,
        read_latency_total, read_count, residency, bounds,
    )


# ---------------------------------------------------------------------------
# Batched kernel, compiled loop
# ---------------------------------------------------------------------------

def _replay_batched_native(
    config, hma, trace, times, mechanism, core_windows,
    starts, stops, bounds, total_chunks, sub, sink=None,
) -> ReplayResult:
    """The batched kernel with the fused loop compiled to C.

    Identical structure to :func:`_replay_batched`, but the per-request
    busy-until resolution (including row-buffer classification) runs in
    :mod:`repro.sim._ckernel`; all mutable state lives in numpy arrays
    shared with the C loop by pointer.
    """
    kernel_fn = _ckernel.load()
    num_cores = config.num_cores
    spi = 1.0 / (config.core.issue_width * config.core.frequency_hz)
    cap = config.core.max_outstanding_misses
    windows = (
        [min(cap, w) for w in core_windows]
        if core_windows is not None else [cap] * num_cores
    )
    if any(w < 1 for w in windows):
        raise ValueError("miss window must be >= 1")
    windows_np = np.asarray(windows, dtype=np.int32)
    ringcap = int(max(windows))
    core_time = np.zeros(num_cores)
    ring = np.zeros((num_cores, ringcap))
    ring_head = np.zeros(num_cores, dtype=np.int32)
    ring_len = np.zeros(num_cores, dtype=np.int32)

    pages_arr = (trace.address // PAGE_SIZE).astype(np.int64)
    lines_arr = ((trace.address % PAGE_SIZE) // LINE_SIZE).astype(np.int64)

    fast, slow = hma.fast, hma.slow
    f_nc, s_nc = fast.num_channels, slow.num_channels
    f_bpc, s_bpc = fast.banks_per_channel, slow.banks_per_channel
    n_fast_banks = fast.num_banks_total
    latconst = np.array([
        fast.hit_seconds, fast.miss_seconds, fast.conflict_seconds,
        fast.burst_seconds,
        slow.hit_seconds, slow.miss_seconds, slow.conflict_seconds,
        slow.burst_seconds,
    ])

    bank_open_l, bank_busy_l, hits_l, misses_l, conflicts_l = \
        flatten_bank_state(fast, slow)
    bank_open = np.asarray(bank_open_l, dtype=np.int64)
    bank_busy = np.asarray(bank_busy_l)
    bank_hits = np.asarray(hits_l, dtype=np.int64)
    bank_misses = np.asarray(misses_l, dtype=np.int64)
    bank_conflicts = np.asarray(conflicts_l, dtype=np.int64)
    chan_busy = np.array(list(fast.channel_busy_until)
                         + list(slow.channel_busy_until))
    reads_ct = [fast.stats.reads, slow.stats.reads]
    writes_ct = [fast.stats.writes, slow.stats.writes]
    read_lat = np.array([fast.stats.total_read_latency,
                         slow.stats.total_read_latency])
    busy_acc = np.array([fast.stats.busy_time, slow.stats.busy_time])
    read_total = np.zeros(1)
    read_count = 0

    def _sync_to_devices() -> None:
        fast.channel_busy_until = chan_busy[:f_nc].tolist()
        slow.channel_busy_until = chan_busy[f_nc:].tolist()
        for d, device in enumerate((fast, slow)):
            device.stats.reads = reads_ct[d]
            device.stats.writes = writes_ct[d]
            device.stats.total_read_latency = float(read_lat[d])
            device.stats.busy_time = float(busy_acc[d])

    residency: "list[set[int]]" = []

    for chunk, (start, stop) in enumerate(zip(starts, stops)):
        residency.append(_residency_snapshot(hma))

        chunk_pages = pages_arr[start:stop]
        chunk_writes = trace.is_write[start:stop]
        if mechanism is not None and len(chunk_pages):
            chunk_times = times[start:stop] if times is not None else None
            mechanism.observe_chunk(chunk_pages, chunk_writes,
                                    times=chunk_times)

        n_req = int(stop - start)
        if n_req:
            dev, is_fast, g_arr, cid_arr, row_arr = _route_chunk(
                hma, chunk_pages, lines_arr[start:stop],
                f_nc, s_nc, f_bpc, s_bpc, n_fast_banks,
            )
            n_writes_fast = int(np.count_nonzero(is_fast & chunk_writes))
            n_reads_fast = int(np.count_nonzero(is_fast)) - n_writes_fast
            n_writes_slow = (int(np.count_nonzero(chunk_writes))
                             - n_writes_fast)
            n_reads_slow = (n_req - n_reads_fast - n_writes_fast
                            - n_writes_slow)
            reads_ct[0] += n_reads_fast
            reads_ct[1] += n_reads_slow
            writes_ct[0] += n_writes_fast
            writes_ct[1] += n_writes_slow
            read_count += n_reads_fast + n_reads_slow

            _ckernel.run_chunk(
                kernel_fn,
                np.ascontiguousarray(trace.core[start:stop],
                                     dtype=np.int32),
                np.multiply(trace.gap[start:stop], spi),
                np.ascontiguousarray(g_arr, dtype=np.int64),
                np.ascontiguousarray(cid_arr, dtype=np.int32),
                np.ascontiguousarray(dev, dtype=np.uint8),
                np.ascontiguousarray(chunk_writes, dtype=np.uint8),
                np.ascontiguousarray(row_arr, dtype=np.int64),
                latconst,
                core_time, windows_np, ring, ring_head, ring_len, ringcap,
                bank_busy, bank_open, bank_hits, bank_misses,
                bank_conflicts, chan_busy, read_lat, busy_acc, read_total,
            )

        # -- migration at the boundary --
        window_ace = 0.0
        if sink is not None and mechanism is not None:
            # Sampled before the plan: planning resets the window.
            window_ace = mechanism.window_ace_total()
        if mechanism is not None and chunk < total_chunks - 1:
            now = float(core_time.max())
            to_fast, to_slow = _plan_migration(mechanism, hma, chunk, sub)
            if to_fast or to_slow:
                _sync_to_devices()
                hma.migrate_pairs(to_fast, to_slow, now)
                chan_busy = np.array(list(fast.channel_busy_until)
                                     + list(slow.channel_busy_until))
                busy_acc = np.array([fast.stats.busy_time,
                                     slow.stats.busy_time])

        if sink is not None:
            sink.on_epoch(chunk, reads_ct[0], writes_ct[0],
                          reads_ct[1], writes_ct[1], window_ace)

    core_times = core_time.tolist()
    final = 0.0
    for c in range(num_cores):
        t = core_times[c]
        n = int(ring_len[c])
        if n:
            h = int(ring_head[c])
            live = [float(ring[c, (h + j) % ringcap]) for j in range(n)]
            last = max(live)
            if last > t:
                t = last
            core_times[c] = t
        if t > final:
            final = t

    restore_bank_state(fast, slow, bank_open.tolist(), bank_busy.tolist(),
                       bank_hits.tolist(), bank_misses.tolist(),
                       bank_conflicts.tolist())
    _sync_to_devices()
    return _build_result(
        config, hma, trace, final, core_times,
        float(read_total[0]), read_count, residency, bounds,
    )


# ---------------------------------------------------------------------------
# Config-batched multi-run engine
# ---------------------------------------------------------------------------

@dataclass
class ReplaySpec:
    """One configuration point for :func:`replay_multi`.

    The fields mirror the per-point :func:`replay` arguments; every
    spec replays the *same* trace, so only the system side varies.
    """

    config: SystemConfig
    hma: HeterogeneousMemory
    mechanism: "MigrationMechanism | None" = None
    num_intervals: int = 1
    core_windows: "list[int] | None" = None


class _TraceShared:
    """Trace-side precompute shared by every spec of one multi-run.

    Page/line decomposition, contiguous request arrays, per-core
    instruction tallies, and the ``gap * seconds_per_instruction``
    products depend only on the trace (and, for the last two, on
    scalars most specs share), so they are computed once and reused —
    per-point replay recomputes them per run.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.pages = (trace.address // PAGE_SIZE).astype(np.int64)
        self.lines = ((trace.address % PAGE_SIZE) // LINE_SIZE).astype(np.int64)
        self.core_i32 = np.ascontiguousarray(trace.core, dtype=np.int32)
        self.writes_u8 = np.ascontiguousarray(trace.is_write, dtype=np.uint8)
        self._dts: "dict[float, np.ndarray]" = {}
        self._instr: "dict[int, list[int]]" = {}
        self._chunking: "dict[int, tuple]" = {}

    def dts(self, spi: float) -> np.ndarray:
        """``gap * spi`` for the whole trace (slices match per-chunk
        ``np.multiply(gap[start:stop], spi)`` element for element)."""
        arr = self._dts.get(spi)
        if arr is None:
            arr = np.multiply(self.trace.gap, spi)
            self._dts[spi] = arr
        return arr

    def core_instructions(self, num_cores: int) -> "list[int]":
        """Per-core instruction totals (the :func:`_build_result` loop,
        which is config-independent)."""
        got = self._instr.get(num_cores)
        if got is None:
            core_ids_all = self.trace.core
            gaps_all = self.trace.gap
            counts = np.bincount(core_ids_all, minlength=num_cores)
            sums = np.bincount(core_ids_all, weights=gaps_all,
                               minlength=num_cores)
            if len(counts) == num_cores and float(sums.max(initial=0.0)) < 2.0 ** 53:
                # uint32 gaps summed in float64 stay exact integers
                # below 2^53, so this matches the per-core int sums.
                got = [int(s) + int(c) for s, c in zip(sums, counts)]
            else:
                got = [0] * num_cores
                for c in range(num_cores):
                    sel = core_ids_all == c
                    got[c] = int(gaps_all[sel].sum()) + int(sel.sum())
            self._instr[num_cores] = got
        return got

    def chunking(self, total_chunks: int, times: "np.ndarray | None"):
        """``(starts, stops, bounds)`` for a chunk count, memoised."""
        got = self._chunking.get(total_chunks)
        if got is None:
            if total_chunks > 1:
                if times is None:
                    raise ValueError(
                        "times required for interval-based replay")
                bounds = interval_boundaries(total_chunks)
                cut = np.searchsorted(times, bounds)
                starts = np.concatenate(([0], cut))
                stops = np.concatenate((cut, [len(self.trace)]))
            else:
                starts, stops = np.array([0]), np.array([len(self.trace)])
                bounds = np.empty(0)
            got = (starts, stops, bounds)
            self._chunking[total_chunks] = got
        return got


class _ChunkCounts:
    """Memoised per-chunk unique-page read/write tallies.

    When several specs replay the same chunking, mechanisms that accept
    pre-aggregated counts (``supports_observe_counts``) can share one
    ``np.unique`` pass per chunk instead of re-counting per spec.
    """

    def __init__(self, shared: _TraceShared, starts, stops) -> None:
        self._shared = shared
        self._starts = starts
        self._stops = stops
        self._memo: "dict[int, tuple]" = {}

    def get(self, chunk: int) -> tuple:
        got = self._memo.get(chunk)
        if got is None:
            start, stop = int(self._starts[chunk]), int(self._stops[chunk])
            pages = self._shared.pages[start:stop]
            writes = self._shared.trace.is_write[start:stop]
            pages_w, counts_w = np.unique(pages[writes], return_counts=True)
            pages_r, counts_r = np.unique(pages[~writes], return_counts=True)
            got = (pages_r, counts_r, pages_w, counts_w)
            self._memo[chunk] = got
        return got


def _spec_windows(spec: ReplaySpec) -> "list[int]":
    """The per-core miss windows for one spec (validated)."""
    num_cores = spec.config.num_cores
    if spec.core_windows is not None and len(spec.core_windows) != num_cores:
        raise ValueError("core_windows must have one entry per core")
    cap = spec.config.core.max_outstanding_misses
    windows = (
        [min(cap, w) for w in spec.core_windows]
        if spec.core_windows is not None else [cap] * num_cores
    )
    if any(w < 1 for w in windows):
        raise ValueError("miss window must be >= 1")
    return windows


def _group_signature(spec: ReplaySpec) -> tuple:
    """Stacking compatibility key: specs whose state arrays share a
    shape (and whose traces share ``dts``) can ride one kernel call."""
    fast, slow = spec.hma.fast, spec.hma.slow
    return (
        spec.config.num_cores,
        spec.config.core.issue_width,
        spec.config.core.frequency_hz,
        fast.num_channels, slow.num_channels,
        fast.banks_per_channel, slow.banks_per_channel,
        fast.num_banks_total, slow.num_banks_total,
    )


def replay_multi(
    specs: "list[ReplaySpec]",
    trace: Trace,
    times: "np.ndarray | None" = None,
    kernel: "str | None" = None,
) -> "list[ReplayResult]":
    """Replay one trace against N system configurations.

    Returns one :class:`ReplayResult` per spec, bit-identical to
    calling :func:`replay` per spec in order (the per-point path is the
    oracle; ``tests/sim/test_multirun_parity.py`` enforces parity).

    Static specs (no mechanism, one interval) that share core count,
    clocking, and device geometry are stacked along a leading config
    axis and replayed in a single compiled pass; chunked specs
    (migration mechanisms or multi-interval residency sampling) replay
    one spec at a time but share the trace-side precompute and move
    routing into the compiled loop.  Anything the fast paths cannot
    take — scalar-only memories, an explicit non-native ``kernel``,
    active telemetry, or a missing C toolchain — falls back to
    :func:`replay` per spec, which is always valid because the results
    are identical by construction.
    """
    results: "list[ReplayResult | None]" = [None] * len(specs)
    shared: "_TraceShared | None" = None
    static_groups: "dict[tuple, list[tuple[int, ReplaySpec]]]" = {}
    chunked: "list[tuple[int, ReplaySpec]]" = []

    multi_fn = _ckernel.load_multi()
    telemetry_on = _metrics.enabled()
    with span("replay_multi", specs=len(specs), requests=len(trace)):
        for i, spec in enumerate(specs):
            try:
                resolved = _resolve_kernel(kernel, spec.hma)
            except (ValueError, RuntimeError):
                resolved = None
            eligible = (
                resolved == "batched-native"
                and multi_fn is not None
                and not telemetry_on
                and hasattr(spec.hma, "page_tables")
            )
            if not eligible:
                results[i] = replay(
                    spec.config, spec.hma, trace, times,
                    mechanism=spec.mechanism,
                    num_intervals=spec.num_intervals,
                    core_windows=spec.core_windows, kernel=kernel,
                )
                continue
            if shared is None:
                shared = _TraceShared(trace)
            if spec.mechanism is None and spec.num_intervals == 1:
                key = _group_signature(spec)
                static_groups.setdefault(key, []).append((i, spec))
            else:
                chunked.append((i, spec))

        for group in static_groups.values():
            group_results = _replay_multi_static(
                multi_fn, [spec for _, spec in group], trace, shared)
            for (i, _), res in zip(group, group_results):
                results[i] = res

        if chunked:
            by_chunks: "dict[int, list[tuple[int, ReplaySpec]]]" = {}
            for i, spec in chunked:
                sub = (spec.mechanism.subintervals_per_interval
                       if spec.mechanism else 1)
                by_chunks.setdefault(spec.num_intervals * sub,
                                     []).append((i, spec))
            for total_chunks, members in by_chunks.items():
                cache = None
                if len(members) > 1:
                    starts, stops, _ = shared.chunking(total_chunks, times)
                    cache = _ChunkCounts(shared, starts, stops)
                for i, spec in members:
                    results[i] = _replay_multi_chunked(
                        multi_fn, spec, trace, times, shared, cache)
    return results


def _replay_multi_static(
    fn, specs: "list[ReplaySpec]", trace: Trace, shared: _TraceShared,
) -> "list[ReplayResult]":
    """Stacked single-chunk replay for static (no-migration) specs.

    All specs share one :func:`_group_signature`; their per-config
    state is stacked ``[K, ...]`` and the compiled multi kernel walks
    the shared request arrays once per config in a single call.
    """
    K = len(specs)
    config0 = specs[0].config
    num_cores = config0.num_cores
    spi = 1.0 / (config0.core.issue_width * config0.core.frequency_hz)
    n = len(trace)

    fast0, slow0 = specs[0].hma.fast, specs[0].hma.slow
    f_nc, s_nc = fast0.num_channels, slow0.num_channels
    f_bpc, s_bpc = fast0.banks_per_channel, slow0.banks_per_channel
    n_fast_banks = fast0.num_banks_total
    nbanks = n_fast_banks + slow0.num_banks_total
    nchan = f_nc + s_nc

    windows_np = np.empty((K, num_cores), dtype=np.int32)
    for k, spec in enumerate(specs):
        windows_np[k] = _spec_windows(spec)
    ringcap = int(windows_np.max())

    residency = [[_residency_snapshot(spec.hma)] for spec in specs]

    latconst = np.empty((K, 8))
    core_time = np.zeros((K, num_cores))
    ring = np.zeros((K, num_cores, ringcap))
    ring_head = np.zeros((K, num_cores), dtype=np.int32)
    ring_len = np.zeros((K, num_cores), dtype=np.int32)
    bank_busy = np.empty((K, nbanks))
    bank_open = np.empty((K, nbanks), dtype=np.int64)
    bank_hits = np.empty((K, nbanks), dtype=np.int64)
    bank_misses = np.empty((K, nbanks), dtype=np.int64)
    bank_conflicts = np.empty((K, nbanks), dtype=np.int64)
    chan_busy = np.empty((K, nchan))
    read_lat = np.empty((K, 2))
    busy_acc = np.empty((K, 2))
    read_total = np.zeros(K)
    dev_counts = np.zeros((K, 4), dtype=np.int64)

    if n:
        pt_len = int(shared.pages.max()) + 1
        ptd = np.empty((K, pt_len), dtype=np.int16)
        ptf = np.empty((K, pt_len), dtype=np.int64)

    for k, spec in enumerate(specs):
        hma = spec.hma
        fast, slow = hma.fast, hma.slow
        if n:
            # Fault unmapped pages into DDR in first-touch order, as
            # the per-point route would; the table copy then covers
            # every page the chunk can reference.
            hma.ensure_mapped(shared.pages)
            d_col, f_col = hma.page_tables()
            ptd[k] = d_col[:pt_len]
            ptf[k] = f_col[:pt_len]
        latconst[k] = (
            fast.hit_seconds, fast.miss_seconds, fast.conflict_seconds,
            fast.burst_seconds,
            slow.hit_seconds, slow.miss_seconds, slow.conflict_seconds,
            slow.burst_seconds,
        )
        bank_open_l, bank_busy_l, hits_l, misses_l, conflicts_l = \
            flatten_bank_state(fast, slow)
        bank_open[k] = bank_open_l
        bank_busy[k] = bank_busy_l
        bank_hits[k] = hits_l
        bank_misses[k] = misses_l
        bank_conflicts[k] = conflicts_l
        chan_busy[k] = (list(fast.channel_busy_until)
                        + list(slow.channel_busy_until))
        read_lat[k] = (fast.stats.total_read_latency,
                       slow.stats.total_read_latency)
        busy_acc[k] = (fast.stats.busy_time, slow.stats.busy_time)

    if n:
        _ckernel.run_multi_chunk(
            fn, shared.core_i32, shared.dts(spi), shared.pages,
            shared.lines, shared.writes_u8,
            LINES_PER_PAGE, LINES_PER_ROW,
            f_nc, s_nc, f_bpc, s_bpc, n_fast_banks,
            ptd, ptf, pt_len,
            latconst, core_time, windows_np,
            ring, ring_head, ring_len, ringcap, num_cores,
            bank_busy, bank_open, bank_hits, bank_misses,
            bank_conflicts, chan_busy, nbanks, nchan,
            read_lat, busy_acc, read_total, dev_counts,
        )

    bounds = np.empty(0)
    instr = shared.core_instructions(num_cores)
    out: "list[ReplayResult]" = []
    for k, spec in enumerate(specs):
        hma = spec.hma
        fast, slow = hma.fast, hma.slow
        core_times = core_time[k].tolist()
        final = 0.0
        for c in range(num_cores):
            t = core_times[c]
            live_n = int(ring_len[k, c])
            if live_n:
                h = int(ring_head[k, c])
                live = [float(ring[k, c, (h + j) % ringcap])
                        for j in range(live_n)]
                last = max(live)
                if last > t:
                    t = last
                core_times[c] = t
            if t > final:
                final = t
        restore_bank_state(
            fast, slow, bank_open[k].tolist(), bank_busy[k].tolist(),
            bank_hits[k].tolist(), bank_misses[k].tolist(),
            bank_conflicts[k].tolist())
        fast.channel_busy_until = chan_busy[k, :f_nc].tolist()
        slow.channel_busy_until = chan_busy[k, f_nc:].tolist()
        reads_f, reads_s, writes_f, writes_s = (
            int(x) for x in dev_counts[k])
        fast.stats.reads += reads_f
        slow.stats.reads += reads_s
        fast.stats.writes += writes_f
        slow.stats.writes += writes_s
        fast.stats.total_read_latency = float(read_lat[k, 0])
        slow.stats.total_read_latency = float(read_lat[k, 1])
        fast.stats.busy_time = float(busy_acc[k, 0])
        slow.stats.busy_time = float(busy_acc[k, 1])
        out.append(_build_result(
            spec.config, hma, trace, final, core_times,
            float(read_total[k]), reads_f + reads_s, residency[k], bounds,
            core_instructions=instr,
        ))
    return out


def _replay_multi_chunked(
    fn, spec: ReplaySpec, trace: Trace, times: "np.ndarray | None",
    shared: _TraceShared, counts_cache: "_ChunkCounts | None",
) -> ReplayResult:
    """Chunked single-spec replay with compiled in-kernel routing.

    Structure of :func:`_replay_batched_native` with the numpy
    translation/routing stage folded into the compiled loop (the multi
    kernel with a config axis of one): the page table is re-fetched and
    re-sliced per chunk because migrations mutate it in place.
    """
    config, hma, mechanism = spec.config, spec.hma, spec.mechanism
    sub = mechanism.subintervals_per_interval if mechanism else 1
    total_chunks = spec.num_intervals * sub
    starts, stops, bounds = shared.chunking(total_chunks, times)

    num_cores = config.num_cores
    spi = 1.0 / (config.core.issue_width * config.core.frequency_hz)
    windows_np = np.asarray(_spec_windows(spec), dtype=np.int32)
    ringcap = int(windows_np.max())
    core_time = np.zeros(num_cores)
    ring = np.zeros((num_cores, ringcap))
    ring_head = np.zeros(num_cores, dtype=np.int32)
    ring_len = np.zeros(num_cores, dtype=np.int32)

    fast, slow = hma.fast, hma.slow
    f_nc, s_nc = fast.num_channels, slow.num_channels
    f_bpc, s_bpc = fast.banks_per_channel, slow.banks_per_channel
    n_fast_banks = fast.num_banks_total
    nbanks = n_fast_banks + slow.num_banks_total
    nchan = f_nc + s_nc
    latconst = np.array([
        fast.hit_seconds, fast.miss_seconds, fast.conflict_seconds,
        fast.burst_seconds,
        slow.hit_seconds, slow.miss_seconds, slow.conflict_seconds,
        slow.burst_seconds,
    ])

    bank_open_l, bank_busy_l, hits_l, misses_l, conflicts_l = \
        flatten_bank_state(fast, slow)
    bank_open = np.asarray(bank_open_l, dtype=np.int64)
    bank_busy = np.asarray(bank_busy_l)
    bank_hits = np.asarray(hits_l, dtype=np.int64)
    bank_misses = np.asarray(misses_l, dtype=np.int64)
    bank_conflicts = np.asarray(conflicts_l, dtype=np.int64)
    chan_busy = np.array(list(fast.channel_busy_until)
                         + list(slow.channel_busy_until))
    seed_reads = (fast.stats.reads, slow.stats.reads)
    seed_writes = (fast.stats.writes, slow.stats.writes)
    read_lat = np.array([fast.stats.total_read_latency,
                         slow.stats.total_read_latency])
    busy_acc = np.array([fast.stats.busy_time, slow.stats.busy_time])
    read_total = np.zeros(1)
    dev_counts = np.zeros((1, 4), dtype=np.int64)
    dts_full = shared.dts(spi)
    use_counts = (counts_cache is not None and mechanism is not None
                  and mechanism.supports_observe_counts)
    # One pointer-cached binding serves every chunk; only the request
    # range and the page-table columns change between calls.
    call = _ckernel.MultiCall(
        fn, shared.core_i32, dts_full, shared.pages, shared.lines,
        shared.writes_u8,
        LINES_PER_PAGE, LINES_PER_ROW,
        f_nc, s_nc, f_bpc, s_bpc, n_fast_banks,
        latconst, core_time, windows_np,
        ring, ring_head, ring_len, ringcap, num_cores,
        bank_busy, bank_open, bank_hits, bank_misses,
        bank_conflicts, chan_busy, nbanks, nchan,
        read_lat, busy_acc, read_total, dev_counts,
    )

    def _sync_to_devices() -> None:
        fast.channel_busy_until = chan_busy[:f_nc].tolist()
        slow.channel_busy_until = chan_busy[f_nc:].tolist()
        fast.stats.reads = seed_reads[0] + int(dev_counts[0, 0])
        slow.stats.reads = seed_reads[1] + int(dev_counts[0, 1])
        fast.stats.writes = seed_writes[0] + int(dev_counts[0, 2])
        slow.stats.writes = seed_writes[1] + int(dev_counts[0, 3])
        fast.stats.total_read_latency = float(read_lat[0])
        slow.stats.total_read_latency = float(read_lat[1])
        fast.stats.busy_time = float(busy_acc[0])
        slow.stats.busy_time = float(busy_acc[1])

    residency: "list[set[int]]" = []

    for chunk in range(total_chunks):
        start, stop = int(starts[chunk]), int(stops[chunk])
        residency.append(_residency_snapshot(hma))

        chunk_pages = shared.pages[start:stop]
        if mechanism is not None and stop > start:
            if use_counts:
                mechanism.observe_counts(*counts_cache.get(chunk))
            else:
                chunk_times = times[start:stop] if times is not None else None
                mechanism.observe_chunk(
                    chunk_pages, trace.is_write[start:stop],
                    times=chunk_times)

        if stop > start:
            hma.ensure_mapped(chunk_pages)
            d_col, f_col = hma.page_tables()
            call.run(start, stop, d_col, f_col,
                     int(chunk_pages.max()) + 1)

        if mechanism is not None and chunk < total_chunks - 1:
            now = float(core_time.max())
            to_fast, to_slow = _plan_migration(mechanism, hma, chunk, sub)
            if to_fast or to_slow:
                _sync_to_devices()
                hma.migrate_pairs(to_fast, to_slow, now)
                # In place: the kernel binding holds these pointers.
                chan_busy[:f_nc] = fast.channel_busy_until
                chan_busy[f_nc:] = slow.channel_busy_until
                busy_acc[0] = fast.stats.busy_time
                busy_acc[1] = slow.stats.busy_time

    core_times = core_time.tolist()
    final = 0.0
    for c in range(num_cores):
        t = core_times[c]
        live_n = int(ring_len[c])
        if live_n:
            h = int(ring_head[c])
            live = [float(ring[c, (h + j) % ringcap]) for j in range(live_n)]
            last = max(live)
            if last > t:
                t = last
            core_times[c] = t
        if t > final:
            final = t

    restore_bank_state(fast, slow, bank_open.tolist(), bank_busy.tolist(),
                       bank_hits.tolist(), bank_misses.tolist(),
                       bank_conflicts.tolist())
    _sync_to_devices()
    return _build_result(
        config, hma, trace, final, core_times,
        float(read_total[0]),
        int(dev_counts[0, 0] + dev_counts[0, 1]), residency, bounds,
        core_instructions=shared.core_instructions(num_cores),
    )
