"""Phase-aware server-workload generators (the datacenter frontier).

The paper evaluates stationary SPEC-style traces; real server fleets
exhibit phase changes, diurnal load curves, and working-set churn.
This module models three server workload families as *statistical
generators* in the same vocabulary the SPEC profiles use
(:class:`~repro.trace.synthetic.RegionSpec` regions, epoch-based
expansion), so everything downstream — the flat-memory profiler, the
fused cache-filter pipeline, the replay kernels, and the config-batched
multi-run engine — consumes them unchanged:

* ``kvstore``   — a memcached-like key-value store: Zipf-skewed key
  popularity with *hot-key churn* (the popular key set rotates every
  phase), a slab index, and a large tolerant value heap.
* ``webserver`` — an nginx-like server: session-heap bursts riding a
  seeded *diurnal load curve* (per-phase request volume follows a
  sinusoid), a static content cache, and an append-mostly access log.
* ``compiler``  — a streaming build: translation units flow through a
  parse → optimize → codegen *pipeline*, each phase emphasising a
  different region group and rotating the per-unit working set.

Generation is fully seeded: the phase schedule (boundaries, per-phase
load weights, per-phase hot-set rotations) derives from the ``seed``
knob, and a fixed seed reproduces byte-identical traces.

Each profile also carries per-region **error-tolerance classes**
(Heterogeneous-Reliability Memory, Luo et al.): content that can be
refetched, recomputed, or verified downstream is *tolerant*; session
and index state whose corruption is silent is *critical*.  The
generated :class:`~repro.trace.workloads.WorkloadTrace` attaches the
resulting per-page :class:`~repro.core.annotations.ToleranceMap`,
which the ``tolerance-tiered`` migration policy consumes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.config import PAGE_SIZE, knob_value
from repro.core.annotations import tolerance_map
from repro.trace.record import Trace
from repro.trace.synthetic import (
    GeneratedCoreTrace,
    GeneratorParams,
    RegionSpec,
    TraceGenerator,
    _stable_time_argsort,
    interleave_cores,
    layout_regions,
)
from repro.trace.workloads import MB, WorkloadTrace


def _r(name, share, hot, wf, spread, alpha=0.6, lines=64, churn=0.0):
    return RegionSpec(
        name=name, footprint_share=share, hotness=hot, write_frac=wf,
        read_spread=spread, zipf_alpha=alpha, lines_touched=lines,
        churn=churn,
    )


@dataclass(frozen=True)
class PhaseSpec:
    """One entry of a seeded phase schedule."""

    index: int
    label: str
    #: Logical-time window ``[start, end)`` of the phase, inside [0, 1).
    start: float
    end: float
    #: Relative request volume of the phase (diurnal curve etc.).
    load_weight: float
    #: Regions whose hot set is re-drawn for this phase (working-set
    #: churn); everything else keeps its phase-0 hot set.
    reshuffle: "tuple[str, ...]"
    #: Per-region hotness multipliers (pipeline stage emphasis).
    emphasis: "dict[str, float]"

    @property
    def span(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class FrontierProfile:
    """Full-scale statistical description of one server workload."""

    name: str
    description: str
    #: Resident footprint of one process, in MB (full scale).
    footprint_mb: float
    mpki: float
    #: Outstanding-miss window sustained per core.
    mlp: int
    #: Co-running processes (cores) of the workload.
    num_cores: int
    #: Default number of phases in the schedule.
    phases: int
    #: Phase model: ``churn`` | ``diurnal`` | ``pipeline``.
    phase_model: str
    regions: "tuple[RegionSpec, ...]"
    #: Region name -> tolerance class (see ``core.annotations``).
    tolerance: "dict[str, str]"
    #: Regions whose hot set rotates every phase.
    churn_regions: "tuple[str, ...]" = ()
    #: ``pipeline`` model only: cycle of (label, weight, emphasis).
    stages: "tuple[tuple[str, float, dict], ...]" = ()

    def footprint_pages(self, scale: float = 1.0) -> int:
        pages = int(self.footprint_mb * MB * scale) // PAGE_SIZE
        return max(len(self.regions), pages)


_KVSTORE = FrontierProfile(
    name="kvstore",
    description="memcached-like KV store: Zipf keys with hot-key churn",
    footprint_mb=352,
    mpki=18.0,
    mlp=8,
    num_cores=16,
    phases=6,
    phase_model="churn",
    regions=(
        _r("hot_keys", 0.06, 12.0, 0.30, 0.10, alpha=1.1, lines=16),
        _r("slab_index", 0.04, 8.0, 0.45, 0.08, alpha=0.7, lines=32),
        _r("warm_values", 0.30, 1.6, 0.25, 0.45, alpha=0.5, lines=24),
        _r("cold_values", 0.50, 0.05, 0.08, 0.60, alpha=0.2, lines=8),
        _r("log_buffer", 0.10, 3.0, 0.70, 0.05, lines=32),
    ),
    tolerance={
        # Index/metadata corruption is silent data loss; cached values
        # can be refetched from the backing store.
        "hot_keys": "critical",
        "slab_index": "critical",
        "warm_values": "tolerant",
        "cold_values": "tolerant",
        "log_buffer": "standard",
    },
    churn_regions=("hot_keys", "warm_values"),
)

_WEBSERVER = FrontierProfile(
    name="webserver",
    description="nginx-like server: session bursts on a diurnal curve",
    footprint_mb=256,
    mpki=9.0,
    mlp=4,
    num_cores=16,
    phases=8,
    phase_model="diurnal",
    regions=(
        _r("session_heap", 0.12, 6.0, 0.55, 0.10, alpha=0.8, lines=32,
           churn=0.3),
        _r("content_cache", 0.40, 2.2, 0.05, 0.55, alpha=0.9, lines=16),
        _r("tls_buffers", 0.08, 4.5, 0.60, 0.06, lines=48),
        _r("access_log", 0.10, 2.0, 0.85, 0.03, lines=64),
        _r("config_rules", 0.05, 1.2, 0.01, 0.80, alpha=0.4, lines=8),
        _r("cold_assets", 0.25, 0.03, 0.03, 0.40, alpha=0.2, lines=8),
    ),
    tolerance={
        # Static content and logs re-read from disk; live connection
        # state and parsed configuration must not corrupt silently.
        "session_heap": "critical",
        "content_cache": "tolerant",
        "tls_buffers": "critical",
        "access_log": "tolerant",
        "config_rules": "critical",
        "cold_assets": "tolerant",
    },
    churn_regions=("session_heap",),
)

_COMPILER_STAGES = (
    ("parse", 0.9, {"token_stream": 2.5, "ast_nodes": 1.8,
                    "source_cache": 2.0, "symbol_table": 0.8,
                    "ir_pool": 0.3, "obj_buffers": 0.1}),
    ("optimize", 1.3, {"ir_pool": 2.2, "symbol_table": 1.5,
                       "ast_nodes": 0.9, "token_stream": 0.2,
                       "obj_buffers": 0.3, "source_cache": 0.2}),
    ("codegen", 1.0, {"obj_buffers": 2.5, "ir_pool": 1.2,
                      "symbol_table": 0.8, "token_stream": 0.1,
                      "ast_nodes": 0.3, "source_cache": 0.1}),
)

_COMPILER = FrontierProfile(
    name="compiler",
    description="streaming build: parse/optimize/codegen phase pipeline",
    footprint_mb=288,
    mpki=7.0,
    mlp=2,
    num_cores=16,
    phases=6,
    phase_model="pipeline",
    regions=(
        _r("token_stream", 0.10, 3.0, 0.50, 0.06, alpha=0.4, lines=32),
        _r("ast_nodes", 0.22, 4.0, 0.45, 0.25, alpha=0.6, lines=24),
        _r("symbol_table", 0.12, 5.0, 0.20, 0.45, alpha=0.8, lines=16),
        _r("ir_pool", 0.20, 3.5, 0.50, 0.20, alpha=0.6, lines=24,
           churn=0.2),
        _r("obj_buffers", 0.16, 2.5, 0.65, 0.08, lines=48),
        _r("source_cache", 0.20, 0.6, 0.02, 0.30, alpha=0.3, lines=8),
    ),
    tolerance={
        # Sources re-read from disk and object output is verifiable
        # (rebuildable); in-flight semantic state is not.
        "token_stream": "standard",
        "ast_nodes": "critical",
        "symbol_table": "critical",
        "ir_pool": "standard",
        "obj_buffers": "tolerant",
        "source_cache": "tolerant",
    },
    churn_regions=("token_stream", "ast_nodes", "ir_pool"),
    stages=_COMPILER_STAGES,
)

#: Registry of the server-workload generator families.
FRONTIER_PROFILES: "dict[str, FrontierProfile]" = {
    p.name: p for p in (_KVSTORE, _WEBSERVER, _COMPILER)
}

#: Canonical evaluation order of the frontier workloads.
FRONTIER_WORKLOADS = tuple(FRONTIER_PROFILES)


def is_frontier(name) -> bool:
    """Whether ``name`` names a frontier server-workload generator."""
    return isinstance(name, str) and name in FRONTIER_PROFILES


def frontier_profile(name: str) -> FrontierProfile:
    if name not in FRONTIER_PROFILES:
        raise KeyError(f"unknown frontier workload: {name!r} "
                       f"(have {', '.join(FRONTIER_PROFILES)})")
    return FRONTIER_PROFILES[name]


# ---------------------------------------------------------------------------
# Seeded phase schedules
# ---------------------------------------------------------------------------


def _schedule_rng(profile: FrontierProfile, seed: int) -> np.random.Generator:
    # crc32 of the name keeps the three families' schedules decorrelated
    # under one seed without depending on Python's randomized hash().
    return np.random.default_rng(
        (int(seed) * 2654435761 + zlib.crc32(profile.name.encode()))
        % (2 ** 63)
    )


def phase_schedule(
    profile: FrontierProfile, seed: "int | None" = None,
    phases: "int | None" = None,
) -> "list[PhaseSpec]":
    """The seeded phase schedule of one generation run.

    Phase boundaries are jittered equal splits of the [0, 1) window;
    per-phase load weights follow the profile's phase model (flat with
    jitter, diurnal sinusoid, or the pipeline's stage cycle).  The
    same ``(profile, seed, phases)`` always yields the same schedule.
    """
    seed = knob_value("seed", seed)
    count = profile.phases if phases is None else int(phases)
    if count < 1:
        raise ValueError("phases must be >= 1")
    rng = _schedule_rng(profile, seed)
    if count > 1:
        cuts = (np.arange(1, count)
                + rng.uniform(-0.25, 0.25, count - 1)) / count
        bounds = np.concatenate(([0.0], np.sort(cuts), [1.0]))
    else:
        bounds = np.array([0.0, 1.0])

    out: "list[PhaseSpec]" = []
    if profile.phase_model == "diurnal":
        phase0 = float(rng.uniform(0, count))
    for i in range(count):
        emphasis: "dict[str, float]" = {}
        if profile.phase_model == "churn":
            weight = float(np.clip(1.0 + 0.1 * rng.standard_normal(),
                                   0.7, 1.3))
            label = f"steady-{i}"
        elif profile.phase_model == "diurnal":
            weight = float(
                0.35 + 0.65 * np.sin(np.pi * (i + phase0) / count) ** 2)
            label = f"load-{weight:.2f}"
        elif profile.phase_model == "pipeline":
            stage_label, stage_weight, stage_emphasis = (
                profile.stages[i % len(profile.stages)])
            weight = float(stage_weight
                           * np.clip(1.0 + 0.05 * rng.standard_normal(),
                                     0.85, 1.15))
            emphasis = dict(stage_emphasis)
            label = f"{stage_label}-{i // len(profile.stages)}"
        else:
            raise ValueError(
                f"unknown phase model {profile.phase_model!r}")
        out.append(PhaseSpec(
            index=i, label=label,
            start=float(bounds[i]), end=float(bounds[i + 1]),
            load_weight=weight,
            reshuffle=profile.churn_regions,
            emphasis=emphasis,
        ))
    return out


def _apportion(budget: int, weights: np.ndarray) -> np.ndarray:
    """Split ``budget`` integer-exactly, proportional to ``weights``.

    Largest-remainder apportionment (ties to the lower index via the
    stable sort), matching the idiom in ``layout_regions``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    if total <= 0 or budget <= 0:
        return np.zeros(len(weights), dtype=np.int64)
    exact = weights / total * budget
    sizes = np.floor(exact).astype(np.int64)
    slack = budget - int(sizes.sum())
    if slack > 0:
        order = np.argsort(-(exact - np.floor(exact)), kind="stable")
        sizes[order[:slack]] += 1
    return sizes


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


def _generate_core(
    profile: FrontierProfile,
    schedule: "list[PhaseSpec]",
    footprint_pages: int,
    first_page: int,
    accesses: int,
    core_seed: int,
) -> GeneratedCoreTrace:
    """One core's trace: per-(phase, region) epoch passes, time-merged.

    Every region keeps one fixed page range (from ``layout_regions``,
    identical across phases); each phase runs an independent epoch
    expansion over that range whose times are remapped into the
    phase's window.  A churn region draws a fresh per-phase RNG, so
    its Zipf hot set rotates phase to phase; a stable region reuses
    its phase-0 RNG seed, so its popular pages persist.
    """
    layouts = layout_regions(list(profile.regions), footprint_pages,
                             first_page)
    phase_budgets = _apportion(
        accesses, np.array([p.load_weight for p in schedule]))

    pages_parts: "list[np.ndarray]" = []
    addr_parts: "list[np.ndarray]" = []
    write_parts: "list[np.ndarray]" = []
    gap_parts: "list[np.ndarray]" = []
    time_parts: "list[np.ndarray]" = []
    for phase, phase_budget in zip(schedule, phase_budgets):
        if phase_budget <= 0:
            continue
        region_w = np.array([
            layout.num_pages * layout.spec.hotness
            * phase.emphasis.get(layout.spec.name, 1.0)
            for layout in layouts
        ])
        region_budgets = _apportion(int(phase_budget), region_w)
        for r_idx, (layout, budget) in enumerate(
                zip(layouts, region_budgets)):
            if budget <= 0:
                continue
            salt = (phase.index + 1 if layout.spec.name in phase.reshuffle
                    else 0)
            sub_seed = (core_seed + 7919 * (r_idx + 1)
                        + 104729 * salt) % (2 ** 63)
            gen = TraceGenerator(
                regions=[layout.spec],
                footprint_pages=layout.num_pages,
                params=GeneratorParams(
                    target_accesses=int(budget), mpki=profile.mpki,
                    phases=1, seed=sub_seed),
                first_page=layout.first_page,
            )
            sub = gen.generate()
            addr_parts.append(sub.trace.address)
            write_parts.append(sub.trace.is_write)
            gap_parts.append(sub.trace.gap)
            time_parts.append(phase.start + sub.times * phase.span)

    if not addr_parts:
        raise ValueError(
            f"{profile.name}: no accesses generated (budget {accesses})")
    address = np.concatenate(addr_parts)
    is_write = np.concatenate(write_parts)
    gap = np.concatenate(gap_parts)
    times = np.concatenate(time_parts)
    order = _stable_time_argsort(times)
    trace = Trace(
        core=np.zeros(len(address), dtype=np.uint16),
        address=address[order],
        is_write=is_write[order],
        gap=gap[order],
    )
    return GeneratedCoreTrace(trace=trace, layouts=layouts,
                              times=times[order])


@dataclass(frozen=True)
class FrontierWorkload:
    """A named frontier workload; API-compatible with
    :class:`~repro.trace.workloads.Workload` where the preparation
    pipeline needs it (``name`` + ``generate``)."""

    name: str

    @property
    def profile(self) -> FrontierProfile:
        return frontier_profile(self.name)

    @property
    def cores(self) -> "tuple[str, ...]":
        return (self.name,) * self.profile.num_cores

    def generate(
        self,
        scale: float = 1.0,
        accesses_per_core: int = 50_000,
        seed: "int | None" = None,
        phases: "int | None" = None,
    ) -> WorkloadTrace:
        """Generate the interleaved multi-core trace with its
        tolerance map attached.

        Deterministic in ``(scale, accesses_per_core, seed, phases)``:
        a fixed seed reproduces the trace byte for byte.
        """
        if accesses_per_core <= 0:
            raise ValueError("accesses_per_core must be positive")
        seed = knob_value("seed", seed)
        profile = self.profile
        schedule = phase_schedule(profile, seed, phases)
        name_salt = zlib.crc32(profile.name.encode())
        cores: "list[GeneratedCoreTrace]" = []
        next_page = 0
        for idx in range(profile.num_cores):
            pages = profile.footprint_pages(scale)
            core_seed = (seed * 131 + idx * 17 + name_salt) % (2 ** 63)
            cores.append(_generate_core(
                profile, schedule, pages, next_page,
                accesses_per_core, core_seed))
            next_page += pages

        merged, times = interleave_cores(cores)
        wt = WorkloadTrace(
            workload_name=self.name,
            trace=merged,
            times=times,
            core_layouts=[c.layouts for c in cores],
            core_benchmarks=[self.name] * profile.num_cores,
            footprint_pages=next_page,
            core_mlps=[profile.mlp] * profile.num_cores,
        )
        wt.tolerance = tolerance_map(wt, profile.tolerance)
        return wt


def frontier_workload(name: str) -> FrontierWorkload:
    """The named frontier workload (raises ``KeyError`` if unknown)."""
    frontier_profile(name)  # validate
    return FrontierWorkload(name=name)


def generate_frontier(
    name: str,
    scale: float = 1.0,
    accesses_per_core: int = 50_000,
    seed: "int | None" = None,
    phases: "int | None" = None,
) -> WorkloadTrace:
    """Convenience: ``frontier_workload(name).generate(...)``."""
    return frontier_workload(name).generate(
        scale=scale, accesses_per_core=accesses_per_core, seed=seed,
        phases=phases)


# ---------------------------------------------------------------------------
# Discoverability (the ``repro-hma workloads`` verb)
# ---------------------------------------------------------------------------


def describe(name: str, seed: "int | None" = None) -> str:
    """Human-readable description of one generator: parameters, the
    seeded phase schedule, and the tolerance-class mix."""
    profile = frontier_profile(name)
    seed = knob_value("seed", seed)
    lines = [
        f"{profile.name}: {profile.description}",
        f"  footprint {profile.footprint_mb:.0f} MB/core, "
        f"MPKI {profile.mpki:g}, MLP {profile.mlp}, "
        f"{profile.num_cores} cores, phase model '{profile.phase_model}'",
        "",
        f"  {'region':14s} {'share':>6s} {'hot':>5s} {'wr':>5s} "
        f"{'spread':>6s} {'alpha':>5s} {'churn':>5s} tolerance",
    ]
    for spec in profile.regions:
        churn = ("phase" if spec.name in profile.churn_regions
                 else f"{spec.churn:g}")
        lines.append(
            f"  {spec.name:14s} {spec.footprint_share:>6.2f} "
            f"{spec.hotness:>5.1f} {spec.write_frac:>5.2f} "
            f"{spec.read_spread:>6.2f} {spec.zipf_alpha:>5.2f} "
            f"{churn:>5s} {profile.tolerance.get(spec.name, 'standard')}")
    lines.append("")
    lines.append(f"  phase schedule (seed {seed}):")
    for phase in phase_schedule(profile, seed):
        extra = ""
        if phase.emphasis:
            top = max(phase.emphasis, key=phase.emphasis.get)
            extra = f"  emphasis->{top}"
        if phase.reshuffle:
            extra += f"  reshuffles {', '.join(phase.reshuffle)}"
        lines.append(
            f"    [{phase.start:.3f}, {phase.end:.3f})  "
            f"{phase.label:12s} load {phase.load_weight:.2f}{extra}")
    lines.append("")
    mix = tolerance_mix(profile)
    lines.append("  tolerance-class mix (footprint share): "
                 + ", ".join(f"{cls} {frac * 100:.0f}%"
                             for cls, frac in mix.items()))
    return "\n".join(lines)


def tolerance_mix(profile: FrontierProfile) -> "dict[str, float]":
    """Footprint share of each tolerance class, normalised."""
    shares: "dict[str, float]" = {}
    total = sum(spec.footprint_share for spec in profile.regions)
    for spec in profile.regions:
        cls = profile.tolerance.get(spec.name, "standard")
        shares[cls] = shares.get(cls, 0.0) + spec.footprint_share / total
    return dict(sorted(shares.items()))
