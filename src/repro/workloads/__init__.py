"""Server-workload frontier: phase-aware statistical generators.

See :mod:`repro.workloads.frontier` for the generator models and
:mod:`repro.core.annotations` for the tolerance classes they attach.
"""

from repro.workloads.frontier import (
    FRONTIER_PROFILES,
    FRONTIER_WORKLOADS,
    FrontierProfile,
    FrontierWorkload,
    PhaseSpec,
    describe,
    frontier_profile,
    frontier_workload,
    generate_frontier,
    is_frontier,
    phase_schedule,
    tolerance_mix,
)

__all__ = [
    "FRONTIER_PROFILES",
    "FRONTIER_WORKLOADS",
    "FrontierProfile",
    "FrontierWorkload",
    "PhaseSpec",
    "describe",
    "frontier_profile",
    "frontier_workload",
    "generate_frontier",
    "is_frontier",
    "phase_schedule",
    "tolerance_mix",
]
