"""Shared evaluation state for the invariant and replication gates.

Preparing a workload (trace synthesis, profiling, the all-DDR
baseline) dominates gate runtime, and both gates score the same
schemes on the same preps, so one :class:`EvalBundle` is built once
per ``repro-hma verify`` run and handed to both.  Scheme evaluations
are memoised on the bundle for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.system import (
    PreparedWorkload,
    evaluate_migration,
    evaluate_static,
    prepare_workload,
)

#: Workloads the gates evaluate: one homogeneous benchmark with a
#: pronounced hot set and one heterogeneous Table 2 mix.
BUNDLE_WORKLOADS = ("astar", "mix1")
#: Fixed gate seed — verdicts must not wander between CI runs.
BUNDLE_SEED = 1234


@dataclass
class EvalBundle:
    """Prepared workloads plus memoised scheme evaluations."""

    preps: "dict[str, PreparedWorkload]"
    accesses_per_core: int
    num_intervals: int
    quick: bool
    _static: dict = field(default_factory=dict)
    _migration: dict = field(default_factory=dict)

    @classmethod
    def build(cls, quick: bool = False, progress=None) -> "EvalBundle":
        accesses = 2_500 if quick else 6_000
        preps = {}
        for name in BUNDLE_WORKLOADS:
            if progress is not None:
                progress(f"preparing {name} ({accesses} accesses/core)")
            preps[name] = prepare_workload(
                name, scale=1 / 1024, accesses_per_core=accesses,
                seed=BUNDLE_SEED)
        return cls(preps=preps, accesses_per_core=accesses,
                   num_intervals=16, quick=quick)

    @property
    def workloads(self) -> "tuple[str, ...]":
        return tuple(self.preps)

    def static(self, workload: str, policy):
        """Memoised :func:`evaluate_static` result."""
        key = (workload, policy.name)
        if key not in self._static:
            self._static[key] = evaluate_static(self.preps[workload], policy)
        return self._static[key]

    def migration(self, workload: str, mechanism_factory, name: str):
        """Memoised :func:`evaluate_migration` result.

        ``mechanism_factory`` must build a *fresh* mechanism (they are
        stateful); ``name`` keys the memo.
        """
        key = (workload, name)
        if key not in self._migration:
            self._migration[key] = evaluate_migration(
                self.preps[workload], mechanism_factory(),
                num_intervals=self.num_intervals)
        return self._migration[key]
