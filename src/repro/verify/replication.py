"""Replication regression gate: EXPERIMENTS.md shape claims, enforced.

Re-evaluates the scheme set behind the headline figures at a small
scale and checks the *shape* claims the reproduction rests on —
orderings, crossovers, and factor ranges with tolerances — never
absolute magnitudes (the substrate is a synthetic-trace simulator; see
EXPERIMENTS.md).  Factor ranges are deliberately wide: they are chosen
to catch a sign flip, a lost ordering, or an order-of-magnitude drift,
not to pin the third digit.

Each claim names the figure it guards so a CI failure reads straight
back to EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.verify.bundle import EvalBundle
from repro.verify.invariants import ORDER_SLACK, _gmean
from repro.verify.verdict import CheckResult


@dataclass(frozen=True)
class Measurements:
    """Gmean IPC/SER ratios vs ddr-only for every scheme the gate uses."""

    ipc: "dict[str, float]"
    ser: "dict[str, float]"

    def ser_gain_vs(self, scheme: str, baseline: str) -> float:
        """How many times lower ``scheme``'s SER is than ``baseline``'s."""
        return self.ser[baseline] / self.ser[scheme]

    def ipc_cost_vs(self, scheme: str, baseline: str) -> float:
        """Fractional IPC change of ``scheme`` vs ``baseline`` (<0 = loss)."""
        return self.ipc[scheme] / self.ipc[baseline] - 1.0


def measure(bundle: EvalBundle) -> Measurements:
    from repro.core.migration import (
        CrossCountersMigration,
        PerformanceFocusedMigration,
        ReliabilityAwareFCMigration,
    )
    from repro.core.placement import (
        BalancedPlacement,
        PerformanceFocusedPlacement,
        ReliabilityFocusedPlacement,
        Wr2RatioPlacement,
        WrRatioPlacement,
    )

    statics = {
        "perf": PerformanceFocusedPlacement(),
        "rel": ReliabilityFocusedPlacement(),
        "balanced": BalancedPlacement(),
        "wr": WrRatioPlacement(),
        "wr2": Wr2RatioPlacement(),
    }
    migrations = {
        "perf-mig": PerformanceFocusedMigration,
        "fc-mig": ReliabilityAwareFCMigration,
        "cc-mig": CrossCountersMigration,
    }
    ipc: "dict[str, float]" = {}
    ser: "dict[str, float]" = {}
    for key, policy in statics.items():
        results = [bundle.static(w, policy) for w in bundle.workloads]
        ipc[key] = _gmean(r.ipc_vs_ddr for r in results)
        ser[key] = _gmean(r.ser_vs_ddr for r in results)
    for key, factory in migrations.items():
        results = [bundle.migration(w, factory, key)
                   for w in bundle.workloads]
        ipc[key] = _gmean(r.ipc_vs_ddr for r in results)
        ser[key] = _gmean(r.ser_vs_ddr for r in results)
    return Measurements(ipc=ipc, ser=ser)


# ---------------------------------------------------------------------------
# Shape claims
# ---------------------------------------------------------------------------


def _claim(name, passed, details) -> CheckResult:
    return CheckResult(name=name, family="replication", passed=passed,
                       details=details)


def claim_fig05_perf_frontier(m: Measurements) -> CheckResult:
    """Fig. 5: perf-focused placement buys IPC at a huge SER blow-up."""
    ipc, ser = m.ipc["perf"], m.ser["perf"]
    passed = 1.05 <= ipc <= 2.5 and 30.0 <= ser <= 5000.0
    return _claim(
        "fig05-perf-placement-frontier", passed,
        f"perf-focused: {ipc:.3g}x IPC (claim ~1.4x, range 1.05-2.5), "
        f"{ser:.3g}x SER vs ddr-only (claim ~320x, range 30-5000)")


def claim_fig07_rel_focused(m: Measurements) -> CheckResult:
    """Fig. 7: rel-focused divides SER by a large factor, costs IPC."""
    gain = m.ser_gain_vs("rel", "perf")
    cost = m.ipc_cost_vs("rel", "perf")
    passed = 2.0 <= gain <= 60.0 and -0.5 <= cost <= -0.02
    return _claim(
        "fig07-rel-focused-tradeoff", passed,
        f"rel vs perf placement: SER / {gain:.3g} (claim ~14, range "
        f"2-60) at {cost:+.1%} IPC (claim -24%, range -50%..-2%)")


def claim_fig08_balanced_between(m: Measurements) -> CheckResult:
    """Fig. 8: balanced sits between perf and rel on both axes."""
    gain = m.ser_gain_vs("balanced", "perf")
    cost = m.ipc_cost_vs("balanced", "perf")
    rel_gain = m.ser_gain_vs("rel", "perf")
    rel_cost = m.ipc_cost_vs("rel", "perf")
    passed = (1.3 <= gain <= rel_gain / ORDER_SLACK
              and -0.35 <= cost <= 0.0
              and cost >= rel_cost * ORDER_SLACK)
    return _claim(
        "fig08-balanced-between", passed,
        f"balanced vs perf: SER / {gain:.3g} at {cost:+.1%} IPC; must "
        f"gain >= 1.3 and stay inside rel's envelope "
        f"(rel: / {rel_gain:.3g} at {rel_cost:+.1%})")


def claim_fig10_11_wr_ladder(m: Measurements) -> CheckResult:
    """Figs. 10/11: both Wr ratios gain SER; Wr2 is the cheaper one."""
    wr_gain = m.ser_gain_vs("wr", "perf")
    wr2_gain = m.ser_gain_vs("wr2", "perf")
    wr_cost = m.ipc_cost_vs("wr", "perf")
    wr2_cost = m.ipc_cost_vs("wr2", "perf")
    passed = (wr_gain >= 1.2 and wr2_gain >= 1.2
              and wr_gain >= wr2_gain * 0.85
              and wr2_cost >= wr_cost * ORDER_SLACK - 0.01)
    return _claim(
        "fig10-11-write-ratio-ladder", passed,
        f"Wr: SER / {wr_gain:.3g} at {wr_cost:+.1%}; "
        f"Wr2: / {wr2_gain:.3g} at {wr2_cost:+.1%}; expected both "
        f">= 1.2, Wr >~ Wr2 in SER gain, Wr2 no costlier in IPC")


def claim_fig12_perf_migration(m: Measurements) -> CheckResult:
    """Fig. 12: perf migration tracks the static oracle's IPC."""
    ipc, ser = m.ipc["perf-mig"], m.ser["perf-mig"]
    vs_oracle = m.ipc_cost_vs("perf-mig", "perf")
    passed = (ipc >= 1.05 and ser >= 30.0
              and -0.25 <= vs_oracle <= 0.05)
    return _claim(
        "fig12-perf-migration", passed,
        f"perf migration: {ipc:.3g}x IPC, {ser:.3g}x SER vs ddr-only, "
        f"{vs_oracle:+.1%} IPC vs the static oracle (claim -7%, "
        f"range -25%..+5%)")


def claim_fig14_fc_migration(m: Measurements) -> CheckResult:
    """Fig. 14: FC migration divides perf-migration's SER, costs IPC."""
    gain = m.ser_gain_vs("fc-mig", "perf-mig")
    cost = m.ipc_cost_vs("fc-mig", "perf-mig")
    passed = 1.3 <= gain <= 60.0 and -0.4 <= cost <= 0.02
    return _claim(
        "fig14-fc-migration", passed,
        f"FC vs perf migration: SER / {gain:.3g} (claim ~4.3, range "
        f"1.3-60) at {cost:+.1%} IPC (claim -9%, range -40%..+2%)")


def claim_fig15_cc_crossover(m: Measurements) -> CheckResult:
    """Fig. 15: CC gains less SER than FC but keeps more IPC."""
    cc_gain = m.ser_gain_vs("cc-mig", "perf-mig")
    fc_gain = m.ser_gain_vs("fc-mig", "perf-mig")
    cc_cost = m.ipc_cost_vs("cc-mig", "perf-mig")
    fc_cost = m.ipc_cost_vs("fc-mig", "perf-mig")
    passed = (cc_gain >= 1.05
              and cc_gain <= fc_gain / ORDER_SLACK
              and cc_cost >= fc_cost * ORDER_SLACK - 0.01)
    return _claim(
        "fig15-cc-crossover", passed,
        f"CC vs perf migration: SER / {cc_gain:.3g} at {cc_cost:+.1%}; "
        f"FC: / {fc_gain:.3g} at {fc_cost:+.1%}; expected CC < FC in "
        f"SER gain and CC >= FC in IPC")


def claim_ser_gain_ladder(m: Measurements) -> CheckResult:
    """EXPERIMENTS.md ladder: SER gain rel > balanced > Wr >~ Wr2."""
    rel = m.ser_gain_vs("rel", "perf")
    bal = m.ser_gain_vs("balanced", "perf")
    wr = m.ser_gain_vs("wr", "perf")
    wr2 = m.ser_gain_vs("wr2", "perf")
    passed = (rel >= bal * ORDER_SLACK
              and bal >= wr * ORDER_SLACK
              and wr >= wr2 * 0.85)
    return _claim(
        "static-ser-gain-ladder", passed,
        f"SER gains vs perf: rel={rel:.3g} balanced={bal:.3g} "
        f"wr={wr:.3g} wr2={wr2:.3g}; expected rel > balanced > "
        f"Wr >~ Wr2")


#: All shape claims, in figure order.
CLAIMS = (
    claim_fig05_perf_frontier,
    claim_fig07_rel_focused,
    claim_fig08_balanced_between,
    claim_fig10_11_wr_ladder,
    claim_fig12_perf_migration,
    claim_fig14_fc_migration,
    claim_fig15_cc_crossover,
    claim_ser_gain_ladder,
)


def run_replication(bundle: EvalBundle, quick: bool = False,
                    progress=None) -> "list[CheckResult]":
    if progress is not None:
        progress("measuring schemes for the replication gate")
    try:
        m = measure(bundle)
    except Exception as exc:
        return [CheckResult(
            name="replication-measurement", family="replication",
            passed=False,
            details=f"measurement raised {type(exc).__name__}: {exc}")]
    results = []
    for claim in CLAIMS:
        if progress is not None:
            progress(f"claim {claim.__name__}")
        try:
            results.append(claim(m))
        except Exception as exc:
            results.append(CheckResult(
                name=claim.__name__.replace("claim_", "").replace("_", "-"),
                family="replication", passed=False,
                details=f"claim raised {type(exc).__name__}: {exc}"))
    return results
