"""Machine-readable verdicts for the verification gates.

A :class:`CheckResult` is one named pass/fail observation from a gate;
a :class:`VerifyReport` aggregates them into the JSON document that
``repro-hma verify --json`` emits and ``tools/ci_smoke.sh`` consumes.
The report's exit semantics are strict: any failed check fails the
whole run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

#: The three gate families, in ladder order.
FAMILIES = ("differential", "invariant", "replication")


@dataclass
class CheckResult:
    """One named verification check."""

    name: str
    family: str  # "differential" | "invariant" | "replication"
    passed: bool
    details: str = ""
    #: Path of the shrunken repro artifact (differential failures only).
    artifact: "str | None" = None

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"unknown check family {self.family!r}")
        # Checks often compute pass/fail with numpy comparisons; keep
        # the report JSON-serializable.
        self.passed = bool(self.passed)


@dataclass
class VerifyReport:
    """Aggregated outcome of a ``repro-hma verify`` run."""

    results: "list[CheckResult]" = field(default_factory=list)
    elapsed_seconds: float = 0.0
    seed: int = 0
    quick: bool = False

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> "list[CheckResult]":
        return [r for r in self.results if not r.passed]

    def family_counts(self) -> "dict[str, tuple[int, int]]":
        """``family -> (passed, total)`` over the families that ran."""
        counts: "dict[str, tuple[int, int]]" = {}
        for family in FAMILIES:
            members = [r for r in self.results if r.family == family]
            if members:
                counts[family] = (sum(r.passed for r in members),
                                  len(members))
        return counts

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "seed": self.seed,
            "quick": self.quick,
            "elapsed_seconds": self.elapsed_seconds,
            "families": {
                family: {"passed": ok, "total": total}
                for family, (ok, total) in self.family_counts().items()
            },
            "checks": [asdict(r) for r in self.results],
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_dict(cls, data: dict) -> "VerifyReport":
        results = [
            CheckResult(name=c["name"], family=c["family"],
                        passed=c["passed"], details=c.get("details", ""),
                        artifact=c.get("artifact"))
            for c in data.get("checks", ())
        ]
        return cls(results=results,
                   elapsed_seconds=data.get("elapsed_seconds", 0.0),
                   seed=data.get("seed", 0),
                   quick=data.get("quick", False))

    @classmethod
    def load(cls, path: str) -> "VerifyReport":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))
