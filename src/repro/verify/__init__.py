"""Verification subsystem: the correctness ratchet for refactors.

Three gates, in increasing scope (see ``docs/testing.md``):

1. :mod:`repro.verify.differential` — a seeded cross-kernel fuzzer
   asserting bit-exact agreement between every redundant
   implementation pair (replay kernels, policy kernels, MEA
   native/Python, windowed/streaming ACE, batched/reference FaultSim),
   shrinking and dumping a repro artifact on divergence.
2. :mod:`repro.verify.invariants` — metamorphic checks of the paper's
   laws (SER monotonicity, write-masked AVF, scheme orderings,
   Monte-Carlo convergence) on small prepared workloads.
3. :mod:`repro.verify.replication` — a shape gate re-running the
   small-scale EXPERIMENTS.md figures and checking orderings,
   crossovers, and factor ranges with tolerances.

``run_verify`` composes all three into one machine-readable
:class:`~repro.verify.verdict.VerifyReport`, consumed by the
``repro-hma verify`` CLI verb and ``tools/ci_smoke.sh``.
"""

from __future__ import annotations

import time

from repro.verify.verdict import CheckResult, VerifyReport

__all__ = [
    "CheckResult",
    "VerifyReport",
    "run_verify",
]


def run_verify(
    quick: bool = False,
    cases: "int | None" = None,
    seed: int = 0,
    artifact_dir: "str | None" = None,
    gates: "tuple[str, ...]" = ("fuzz", "invariants", "replication"),
    progress=None,
) -> VerifyReport:
    """Run the requested verification gates and collect one report.

    ``quick`` shrinks the workload volume of the invariant/replication
    gates (CI budget: the full quick ladder stays under five minutes);
    the differential fuzzer always runs ``cases`` seeded cases
    (default 25 quick / 50 full) across every kernel pair.
    """
    from repro.verify import differential, invariants, replication

    if cases is None:
        cases = 25 if quick else 50
    start = time.perf_counter()
    results: "list[CheckResult]" = []
    if "fuzz" in gates:
        results.extend(differential.run_fuzz(
            num_cases=cases, seed=seed, artifact_dir=artifact_dir,
            progress=progress))
    elif "ecc" in gates:
        # The ecc family alone (it already rides the full fuzz gate).
        results.extend(differential.run_fuzz(
            num_cases=cases, seed=seed, artifact_dir=artifact_dir,
            checks={"ecc": differential.check_ecc}, progress=progress))
    bundle = None
    if "invariants" in gates or "replication" in gates:
        from repro.verify.bundle import EvalBundle

        bundle = EvalBundle.build(quick=quick, progress=progress)
    if "invariants" in gates:
        results.extend(invariants.run_invariants(bundle, quick=quick,
                                                 progress=progress))
    if "replication" in gates:
        results.extend(replication.run_replication(bundle, quick=quick,
                                                   progress=progress))
    return VerifyReport(
        results=results,
        elapsed_seconds=time.perf_counter() - start,
        seed=seed,
        quick=quick,
    )
