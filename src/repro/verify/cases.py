"""Randomized differential-fuzz cases: generation, shrinking, I/O.

A :class:`DiffCase` is a tiny, fully-seeded simulation scenario — a
scaled-down :class:`~repro.config.SystemConfig` plus the parameters of
a synthetic trace.  Everything derived (the trace, the placement, the
access stream fed to the MEA/ACE checks) is regenerated automatically
from the case's scalars, so a case serializes to a dozen JSON fields
and a dumped artifact reproduces a divergence exactly.

Shrinking is deliberately simple: :func:`shrink_case` greedily retries
a failing check on candidates with fewer accesses, cores, pages, and
intervals, keeping each reduction that still fails.  No external
dependency, deterministic, and good enough to take a thousand-request
divergence down to a handful of requests.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.config import (
    CacheConfig,
    CoreConfig,
    DramTiming,
    HierarchyConfig,
    LINE_SIZE,
    LINES_PER_PAGE,
    MemoryConfig,
    PAGE_SIZE,
    SystemConfig,
)
from repro.trace.record import Trace

#: Migration mechanisms a case may exercise (None = static placement).
MECHANISMS = (None, "perf-migration", "fc-migration", "cc-migration",
              "oracle-risk-migration", "tolerance-tiered")


@dataclass(frozen=True)
class DiffCase:
    """One seeded differential scenario (all derived state regenerates)."""

    case_id: int
    seed: int
    num_cores: int
    fast_pages: int
    slow_pages: int
    footprint_pages: int
    accesses: int
    write_fraction: float
    hot_skew: float  # address skew exponent (higher = hotter hot set)
    num_intervals: int
    mechanism: "str | None"
    placed_fraction: float  # of HBM capacity pre-filled by the placement
    use_core_windows: bool
    fault_trials: int
    fault_ecc: str  # any repro.faults.ecc.SCHEME_LADDER name

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DiffCase":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__})


def random_case(rng: np.random.Generator, case_id: int) -> DiffCase:
    """Draw one randomized case from ``rng``."""
    fast_pages = int(rng.integers(4, 33))
    slow_pages = int(rng.integers(fast_pages * 2, fast_pages * 12))
    return DiffCase(
        case_id=case_id,
        seed=int(rng.integers(0, 2**31 - 1)),
        num_cores=int(rng.integers(1, 9)),
        fast_pages=fast_pages,
        slow_pages=slow_pages,
        # DDR must be able to hold the whole footprint (migration can
        # demote every page), so the footprint is capped by slow_pages.
        footprint_pages=int(rng.integers(fast_pages, slow_pages + 1)),
        accesses=int(rng.integers(200, 3000)),
        write_fraction=float(rng.uniform(0.0, 0.9)),
        hot_skew=float(rng.uniform(1.0, 4.0)),
        num_intervals=int(rng.integers(1, 7)),
        mechanism=MECHANISMS[int(rng.integers(0, len(MECHANISMS)))],
        placed_fraction=float(rng.uniform(0.0, 1.0)),
        use_core_windows=bool(rng.integers(0, 2)),
        fault_trials=int(rng.integers(100, 1500)),
        fault_ecc=("secded", "chipkill", "none", "secdaec",
                   "bch")[int(rng.integers(0, 5))],
    )


def build_config(case: DiffCase) -> SystemConfig:
    """A tiny two-tier system sized by the case."""

    def memory(name, pages, channels, ecc, fast):
        timing = (DramTiming(tCL=5, tRCD=5, tRP=5, burst_cycles=2)
                  if fast else DramTiming())
        return MemoryConfig(
            name=name,
            capacity_bytes=pages * PAGE_SIZE,
            bus_frequency_hz=500e6 if fast else 800e6,
            bus_width_bits=128 if fast else 64,
            channels=channels,
            ecc=ecc,
            timing=timing,
            fit_multiplier=7.0 if fast else 1.0,
        )

    return SystemConfig(
        num_cores=case.num_cores,
        core=CoreConfig(),
        caches=HierarchyConfig(
            l1i=CacheConfig(size_bytes=1024, associativity=2),
            l1d=CacheConfig(size_bytes=1024, associativity=2),
            l2=CacheConfig(size_bytes=8192, associativity=4),
        ),
        fast_memory=memory("HBM", case.fast_pages, 4, "secded", True),
        slow_memory=memory("DDR3", case.slow_pages, 2, "chipkill", False),
    )


def build_trace(case: DiffCase) -> "tuple[Trace, np.ndarray]":
    """The case's synthetic request stream and its timestamps."""
    rng = np.random.default_rng(case.seed)
    n = case.accesses
    # Power-law page popularity: page_id = floor(F * u^skew) produces a
    # dense hot head and a long cold tail, which is what exercises the
    # placement and migration paths.
    u = rng.random(n)
    pages = np.minimum((case.footprint_pages * u ** case.hot_skew),
                       case.footprint_pages - 1).astype(np.uint64)
    lines = rng.integers(0, LINES_PER_PAGE, size=n, dtype=np.uint64)
    address = pages * np.uint64(PAGE_SIZE) + lines * np.uint64(LINE_SIZE)
    trace = Trace(
        core=rng.integers(0, case.num_cores, size=n, dtype=np.uint16),
        address=address,
        is_write=rng.random(n) < case.write_fraction,
        gap=rng.integers(0, 64, size=n, dtype=np.uint32),
    )
    times = np.cumsum(rng.random(n)) * 1e-7
    return trace, times


def build_placement(case: DiffCase) -> "tuple[list[int], list[int]]":
    """``(fast_pages, all_pages)`` for the case's initial placement."""
    rng = np.random.default_rng(case.seed + 1)
    all_pages = list(range(case.footprint_pages))
    capacity = min(case.fast_pages, case.footprint_pages)
    count = int(round(capacity * case.placed_fraction))
    fast = sorted(int(p) for p in
                  rng.choice(case.footprint_pages, size=count, replace=False))
    return fast, all_pages


def core_windows(case: DiffCase) -> "list[int] | None":
    if not case.use_core_windows:
        return None
    rng = np.random.default_rng(case.seed + 2)
    return [int(w) for w in rng.integers(1, 9, size=case.num_cores)]


def shrink_candidates(case: DiffCase):
    """Smaller variants of ``case``, largest reduction first."""
    for accesses in (case.accesses // 4, case.accesses // 2,
                     case.accesses - 1):
        if 1 <= accesses < case.accesses:
            yield replace(case, accesses=accesses)
    if case.footprint_pages > 2:
        yield replace(case, footprint_pages=max(2, case.footprint_pages // 2))
    if case.num_cores > 1:
        yield replace(case, num_cores=max(1, case.num_cores // 2))
    if case.num_intervals > 1:
        yield replace(case, num_intervals=max(1, case.num_intervals // 2))
    if case.fault_trials > 10:
        yield replace(case, fault_trials=max(10, case.fault_trials // 4))
    if case.use_core_windows:
        yield replace(case, use_core_windows=False)
    if case.write_fraction > 0:
        yield replace(case, write_fraction=0.0)


def shrink_case(case: DiffCase, fails, max_steps: int = 64) -> DiffCase:
    """Greedy shrink: keep any smaller variant on which ``fails`` holds.

    ``fails(case) -> bool`` must return True while the divergence
    reproduces.  Deterministic and bounded by ``max_steps`` check runs.
    """
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in shrink_candidates(case):
            steps += 1
            if steps > max_steps:
                break
            try:
                still_failing = fails(candidate)
            except Exception:
                # A crash on the candidate is a different bug; keep the
                # divergence we are isolating.
                still_failing = False
            if still_failing:
                case = candidate
                improved = True
                break
    return case


# ---------------------------------------------------------------------------
# Artifact I/O
# ---------------------------------------------------------------------------


def save_artifact(path: str, case: DiffCase, check: str, details: str,
                  original: "DiffCase | None" = None) -> None:
    """Dump a self-contained repro artifact for a diverging case."""
    payload = {
        "format": "repro-hma-divergence/1",
        "check": check,
        "details": details,
        "case": case.to_dict(),
    }
    if original is not None and original != case:
        payload["original_case"] = original.to_dict()
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_artifact(path: str) -> "tuple[DiffCase, str, dict]":
    """``(case, check_name, full payload)`` from a dumped artifact."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("format") != "repro-hma-divergence/1":
        raise ValueError(f"{path}: not a repro-hma divergence artifact")
    return DiffCase.from_dict(payload["case"]), payload["check"], payload
