"""Metamorphic invariants: the paper's laws, checked as properties.

Each check encodes a relation that must hold for *any* reasonable
reproduction of Gupta et al. (HPCA 2018), independent of absolute
magnitudes:

* SER is monotone in the hot-fraction occupancy of the weak memory
  (more AVF mass behind SEC-DED can only raise the system SER).
* A page that is only ever written carries zero AVF — writes mask
  faults (the ACE interval ends at the overwriting store).
* Reliability-aware migration orders by design point: FC (full
  counters, risk-aware) gains at least as much SER as CC (reduced
  hardware), and both beat hotness-only perf-migration.
* Table 3 static schemes order as designed: perf-focused is the IPC
  ceiling, rel-focused the SER floor, balanced in between on both.
* The Monte-Carlo fault simulator converges on the closed-form
  analytic expectation as trials grow.

Tolerances are multiplicative slack on *orderings*, not on absolute
values, so the gate is robust to trace-synthesis noise at the small
scales CI runs.
"""

from __future__ import annotations

import numpy as np

from repro.verify.bundle import EvalBundle
from repro.verify.verdict import CheckResult

#: Multiplicative slack for cross-scheme orderings (small-scale noise).
ORDER_SLACK = 0.97


def _check(name: str, passed: bool, details: str) -> CheckResult:
    return CheckResult(name=name, family="invariant", passed=passed,
                       details=details)


def _gmean(values) -> float:
    values = np.asarray(list(values), dtype=float)
    return float(np.exp(np.log(np.maximum(values, 1e-300)).mean()))


# ---------------------------------------------------------------------------
# SER monotone in hot-fraction (paper Fig. 1 / Eq. 2)
# ---------------------------------------------------------------------------


def check_ser_monotone_in_hot_fraction(bundle: EvalBundle) -> CheckResult:
    from repro.core.placement import HotFractionPlacement

    fractions = (0.0, 0.25, 0.5, 0.75, 1.0)
    violations = []
    for name, prep in bundle.preps.items():
        sers = []
        for fraction in fractions:
            pages = HotFractionPlacement(fraction).select_fast_pages(
                prep.stats, prep.capacity_pages)
            sers.append(prep.ser_model.ser_static(prep.stats, pages))
        for lo, hi, s_lo, s_hi in zip(fractions, fractions[1:],
                                      sers, sers[1:]):
            if s_hi < s_lo * (1 - 1e-12):
                violations.append(
                    f"{name}: SER fell from {s_lo:.4g} at hot-{lo} to "
                    f"{s_hi:.4g} at hot-{hi}")
    return _check(
        "ser-monotone-in-hot-fraction",
        not violations,
        "; ".join(violations) if violations else
        f"SER non-decreasing over fractions {fractions} on "
        f"{list(bundle.preps)}")


# ---------------------------------------------------------------------------
# Writes mask faults: AVF of write-only pages is zero
# ---------------------------------------------------------------------------


def check_write_masked_avf(bundle: EvalBundle) -> CheckResult:
    """Metamorphic: rewriting a trace to all-stores zeroes its AVF."""
    from repro.avf.page import profile_trace
    from repro.trace.record import Trace

    name, prep = next(iter(bundle.preps.items()))
    wt = prep.workload_trace
    trace = wt.trace
    all_writes = Trace(
        core=trace.core,
        address=trace.address,
        is_write=np.ones(len(trace), dtype=bool),
        gap=trace.gap,
    )
    stats = profile_trace(all_writes, wt.times,
                          footprint_pages=wt.footprint_pages)
    total_avf = float(stats.avf.sum())
    original_avf = float(prep.stats.avf.sum())
    passed = total_avf == 0.0 and original_avf > 0.0
    return _check(
        "write-masked-avf-zero",
        passed,
        f"{name}: all-write AVF={total_avf:.4g} "
        f"(original mixed-trace AVF={original_avf:.4g})")


# ---------------------------------------------------------------------------
# Migration design points: FC >= CC >= perf in SER gain
# ---------------------------------------------------------------------------


def _migration_gains(bundle: EvalBundle) -> "dict[str, float]":
    from repro.core.migration import (
        CrossCountersMigration,
        PerformanceFocusedMigration,
        ReliabilityAwareFCMigration,
    )

    factories = {
        "fc-migration": ReliabilityAwareFCMigration,
        "cc-migration": CrossCountersMigration,
        "perf-migration": PerformanceFocusedMigration,
    }
    gains = {}
    for name, factory in factories.items():
        ratios = [bundle.migration(w, factory, name).ser_vs_ddr
                  for w in bundle.workloads]
        gains[name] = 1.0 / _gmean(ratios)  # SER gain vs the ddr baseline
    return gains


def check_migration_ser_ordering(bundle: EvalBundle) -> CheckResult:
    gains = _migration_gains(bundle)
    fc, cc, perf = (gains["fc-migration"], gains["cc-migration"],
                    gains["perf-migration"])
    ok = fc >= cc * ORDER_SLACK and cc >= perf * ORDER_SLACK
    return _check(
        "migration-ser-gain-ordering",
        ok,
        f"SER gain vs ddr-only (gmean {list(bundle.workloads)}): "
        f"fc={fc:.3g} cc={cc:.3g} perf={perf:.3g}; "
        f"expected fc >= cc >= perf")


# ---------------------------------------------------------------------------
# Table 3 static scheme ordering
# ---------------------------------------------------------------------------


def check_static_scheme_ordering(bundle: EvalBundle) -> CheckResult:
    from repro.core.placement import (
        BalancedPlacement,
        PerformanceFocusedPlacement,
        ReliabilityFocusedPlacement,
    )

    policies = {
        "perf": PerformanceFocusedPlacement(),
        "balanced": BalancedPlacement(),
        "rel": ReliabilityFocusedPlacement(),
    }
    ipc = {}
    ser = {}
    for key, policy in policies.items():
        results = [bundle.static(w, policy) for w in bundle.workloads]
        ipc[key] = _gmean(r.ipc_vs_ddr for r in results)
        ser[key] = _gmean(r.ser_vs_ddr for r in results)
    problems = []
    if not ipc["perf"] >= ipc["balanced"] * ORDER_SLACK >= \
            ipc["rel"] * ORDER_SLACK ** 2:
        problems.append(f"IPC order broke: perf={ipc['perf']:.3g} "
                        f"balanced={ipc['balanced']:.3g} "
                        f"rel={ipc['rel']:.3g}")
    if not ser["rel"] <= ser["balanced"] / ORDER_SLACK <= \
            ser["perf"] / ORDER_SLACK ** 2:
        problems.append(f"SER order broke: rel={ser['rel']:.3g} "
                        f"balanced={ser['balanced']:.3g} "
                        f"perf={ser['perf']:.3g}")
    return _check(
        "static-scheme-ordering",
        not problems,
        "; ".join(problems) if problems else
        f"IPC perf>=balanced>=rel ({ipc['perf']:.3g}/"
        f"{ipc['balanced']:.3g}/{ipc['rel']:.3g}), "
        f"SER rel<=balanced<=perf ({ser['rel']:.3g}/"
        f"{ser['balanced']:.3g}/{ser['perf']:.3g})")


# ---------------------------------------------------------------------------
# FaultSim trial-count convergence
# ---------------------------------------------------------------------------


def check_faultsim_convergence(bundle: EvalBundle) -> CheckResult:
    """MC expectation approaches the analytic value as trials grow."""
    from repro.config import hbm_config
    from repro.faults.faultsim import FaultSimulator
    from repro.faults.fit import rates_for_memory

    memory = hbm_config()
    # Boosted rates put the campaign in the event-dense regime where
    # a few thousand trials resolve the expectation.
    rates = rates_for_memory(memory).scaled(2000)
    sim = FaultSimulator(memory, rates=rates, seed=5)
    analytic = sim.analytic_uncorrected_per_mission()
    trial_counts = (500, 5_000, 50_000) if bundle.quick \
        else (1_000, 10_000, 100_000)
    errors = []
    for trials in trial_counts:
        result = FaultSimulator(memory, rates=rates, seed=5).run(
            trials=trials, method="batched")
        errors.append(abs(result.expected_uncorrected_per_mission
                          - analytic) / analytic)
    converged = errors[-1] <= 0.1 and errors[-1] <= errors[0] * 1.5
    detail = ", ".join(f"{t}: {e:.3%}" for t, e in zip(trial_counts, errors))
    return _check(
        "faultsim-trial-convergence",
        converged,
        f"relative error vs analytic ({detail}); "
        f"needs final <= 10% and no blow-up vs {trial_counts[0]} trials")


#: All invariant checks, in report order.
INVARIANTS = (
    check_ser_monotone_in_hot_fraction,
    check_write_masked_avf,
    check_migration_ser_ordering,
    check_static_scheme_ordering,
    check_faultsim_convergence,
)


def run_invariants(bundle: EvalBundle, quick: bool = False,
                   progress=None) -> "list[CheckResult]":
    results = []
    for check in INVARIANTS:
        if progress is not None:
            progress(f"invariant {check.__name__}")
        try:
            results.append(check(bundle))
        except Exception as exc:
            results.append(CheckResult(
                name=check.__name__.replace("check_", "").replace("_", "-"),
                family="invariant", passed=False,
                details=f"check raised {type(exc).__name__}: {exc}"))
    return results
