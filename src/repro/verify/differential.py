"""Cross-kernel differential checks and the seeded fuzz driver.

Every redundant implementation pair in the simulator is compared on
randomized :class:`~repro.verify.cases.DiffCase` scenarios:

* ``replay-kernels``   — scalar oracle vs fused-Python vs compiled-C
  replay (:mod:`repro.sim.engine`), full result digests bit-exact.
* ``policy-kernels``   — ``sparse`` dict-based vs ``array`` vectorized
  migration planning, compared through whole replays so plan order,
  tie-breaks, and residency all participate.
* ``mea``              — Misra-Gries tracker with the compiled chunk
  kernel vs the pure-Python update loop.
* ``ace``              — streaming :class:`AceTracker` vs chunk-batched
  :class:`WindowedAceTracker` vs the batch :func:`line_ace_times`.
* ``faultsim``         — batched vs reference Monte-Carlo kernels
  (identical Poisson draws, so corrected/detected tallies are exact).
* ``cache-filter``     — per-access ``sparse`` cache filter vs the
  batched ``array`` kernel (:mod:`repro.cache.filter_array`): residual
  trace, final cache state, and the flush tail, chunk by chunk.
* ``shm-roundtrip``    — the shared-memory workload handoff
  (:mod:`repro.harness.shm`): arrays must come back bit-exact, with
  dtype and shape intact, through a pickled handle.
* ``serve``            — the placement service (:mod:`repro.serve`):
  streaming a trace through a tenant session (wire encoding, chunk
  spool, worker replay) must reproduce the batch result bit-exactly.
* ``multirun``         — the config-batched multi-run engine
  (:func:`~repro.sim.engine.replay_multi`): a ragged config batch of
  static placements plus a migration spec must match per-point
  :func:`~repro.sim.engine.replay` digests spec by spec.
* ``ecc``              — the ECC design space: LUT compilation
  (:func:`~repro.faults.ecc.build_ecc_luts`) vs scalar classification
  on random geometries, vectorised ``decode_batch`` vs scalar decode
  for every real codec, and an injected syndrome-table off-by-one as
  the built-in negative.

A check returns ``None`` on agreement or a human-readable mismatch
description.  The fuzz driver shrinks failures greedily and dumps a
self-contained JSON artifact (see ``docs/testing.md`` for how to
replay one).
"""

from __future__ import annotations

import os

import numpy as np

from repro.config import knob_overrides
from repro.verify.cases import (
    DiffCase,
    build_config,
    build_placement,
    build_trace,
    core_windows,
    load_artifact,
    random_case,
    save_artifact,
    shrink_case,
)
from repro.verify.verdict import CheckResult


# ---------------------------------------------------------------------------
# Replay digests
# ---------------------------------------------------------------------------


def _digest(result) -> dict:
    """Canonical, exactly-comparable form of a ReplayResult."""
    return {
        "instructions": int(result.instructions),
        "requests": int(result.requests),
        "total_seconds": float(result.total_seconds),
        "ipc": float(result.ipc),
        "mean_read_latency": float(result.mean_read_latency),
        "per_core_ipc": tuple(float(x) for x in result.per_core_ipc),
        "migrations": (result.migrations.migrations_to_fast,
                       result.migrations.migrations_to_slow,
                       float(result.migrations.migration_seconds)),
        "fast_residency": tuple(
            tuple(sorted(int(p) for p in resident))
            for resident in result.fast_residency),
        "interval_boundaries": tuple(
            int(b) for b in result.interval_boundaries),
        "devices": tuple(
            (d.name, int(d.reads), int(d.writes), float(d.busy_time))
            for d in result.device_utilisation),
    }


def _first_diff(digests: "dict[str, dict]") -> "str | None":
    """Describe the first field differing between any two digests."""
    names = list(digests)
    base_name = names[0]
    base = digests[base_name]
    for other_name in names[1:]:
        other = digests[other_name]
        for key in base:
            if base[key] != other[key]:
                return (f"{key}: {base_name}={base[key]!r} "
                        f"{other_name}={other[key]!r}")
    return None


def _make_mechanism(name: "str | None", policy_kernel: "str | None" = None):
    from repro.core.migration import (
        CrossCountersMigration,
        OracleRiskMigration,
        PerformanceFocusedMigration,
        ReliabilityAwareFCMigration,
        ToleranceTieredMigration,
    )

    factories = {
        "perf-migration": PerformanceFocusedMigration,
        "fc-migration": ReliabilityAwareFCMigration,
        "cc-migration": CrossCountersMigration,
        "oracle-risk-migration": OracleRiskMigration,
        "tolerance-tiered": ToleranceTieredMigration,
    }
    if name is None:
        return None
    return factories[name](policy_kernel=policy_kernel)


def _replay_case(case: DiffCase, kernel: str,
                 policy_kernel: "str | None" = None) -> dict:
    from repro.dram.hma import HeterogeneousMemory
    from repro.sim.engine import replay

    config = build_config(case)
    trace, times = build_trace(case)
    fast, all_pages = build_placement(case)
    hma = HeterogeneousMemory(config)
    hma.install_placement(fast, all_pages)
    result = replay(
        config, hma, trace, times,
        mechanism=_make_mechanism(case.mechanism, policy_kernel),
        num_intervals=case.num_intervals if case.mechanism else 1,
        core_windows=core_windows(case),
        kernel=kernel,
    )
    return _digest(result)


# ---------------------------------------------------------------------------
# Check families
# ---------------------------------------------------------------------------


def check_replay_kernels(case: DiffCase) -> "str | None":
    """Scalar oracle vs fused Python vs compiled C replay."""
    from repro.sim import _ckernel

    kernels = ["scalar", "batched-python"]
    if _ckernel.available():
        kernels.append("batched-native")
    digests = {k: _replay_case(case, k) for k in kernels}
    return _first_diff(digests)


def check_policy_kernels(case: DiffCase) -> "str | None":
    """Sparse (dict) vs array (vectorized) migration planning."""
    mechanism = case.mechanism or "fc-migration"
    case = DiffCase.from_dict({**case.to_dict(), "mechanism": mechanism})
    digests = {
        pk: _replay_case(case, "batched", policy_kernel=pk)
        for pk in ("sparse", "array")
    }
    return _first_diff(digests)


def _mea_state(tracker) -> "tuple":
    return (
        len(tracker),
        tuple(tracker.hot_pages()),
        tuple(sorted((int(p), tracker.count(int(p)))
                     for p in tracker.hot_pages(min_count=0))),
    )


def check_mea(case: DiffCase) -> "str | None":
    """Compiled MEA chunk kernel vs the pure-Python update loop."""
    from repro.core.mea import MeaTracker

    trace, _times = build_trace(case)
    pages = (trace.address // 4096).astype(np.int64)
    capacity = max(2, case.fast_pages // 2)
    chunks = np.array_split(pages, max(1, case.num_intervals))
    with knob_overrides(mea_native=False):
        python_tracker = MeaTracker(capacity=capacity)
    native_tracker = MeaTracker(capacity=capacity)
    for idx, chunk in enumerate(chunks):
        with knob_overrides(mea_native=False):
            python_tracker.record_many(chunk)
        native_tracker.record_many(chunk)
        py_state = _mea_state(python_tracker)
        nat_state = _mea_state(native_tracker)
        if py_state != nat_state:
            return (f"MEA state diverged after chunk {idx}: "
                    f"python={py_state!r} native={nat_state!r}")
    return None


def check_ace_trackers(case: DiffCase) -> "str | None":
    """Streaming vs windowed vs batch ACE accounting."""
    from repro.avf.tracker import (
        AceTracker,
        WindowedAceTracker,
        line_ace_times,
    )

    trace, times = build_trace(case)
    lines = (trace.address // 64).astype(np.int64)
    writes = trace.is_write

    streaming = AceTracker()
    windowed = WindowedAceTracker()
    bounds = np.linspace(0, len(lines), case.num_intervals + 1).astype(int)
    for w in range(case.num_intervals):
        lo, hi = bounds[w], bounds[w + 1]
        for i in range(lo, hi):
            streaming.access(int(lines[i]), float(times[i]), bool(writes[i]))
        windowed.observe_chunk(lines[lo:hi], times[lo:hi], writes[lo:hi])
        s_win = streaming.reset_window()
        w_win = windowed.reset_window()
        if s_win != w_win:
            missing = set(s_win) ^ set(w_win)
            return (f"window {w}: streaming and windowed ACE differ "
                    f"(lines {sorted(missing)[:5]} or values)")
    # Batch one-shot variant over the whole stream, fresh trackers.
    batch_lines, batch_ace = line_ace_times(lines, times, writes)
    oracle = AceTracker()
    for i in range(len(lines)):
        oracle.access(int(lines[i]), float(times[i]), bool(writes[i]))
    expect = oracle.line_ace_times()
    got = {int(l): float(a) for l, a in zip(batch_lines, batch_ace)}
    got = {l: a for l, a in got.items() if a or l in expect}
    expect = {l: a for l, a in expect.items() if a or l in got}
    if got != expect:
        diff = {l for l in set(got) | set(expect)
                if got.get(l, 0.0) != expect.get(l, 0.0)}
        return (f"batch line_ace_times differs from streaming on lines "
                f"{sorted(diff)[:5]}")
    return None


def check_faultsim(case: DiffCase) -> "str | None":
    """Batched vs reference Monte-Carlo fault-sim kernels.

    Both kernels draw the same Poisson fault-count matrix for a given
    seed, so the integer corrected/detected tallies must match
    exactly; the fractional pair term differs only in enumeration
    order and is compared loosely.
    """
    from repro.faults.faultsim import FaultSimulator

    config = build_config(case)
    memory = config.fast_memory
    memory = type(memory)(**{**memory.__dict__, "ecc": case.fault_ecc})
    ref = FaultSimulator(memory, seed=case.seed).run(
        trials=case.fault_trials, method="reference")
    bat = FaultSimulator(memory, seed=case.seed).run(
        trials=case.fault_trials, method="batched")
    for field in ("trials", "corrected", "detected"):
        a, b = getattr(ref, field), getattr(bat, field)
        if a != b:
            return f"{field}: reference={a} batched={b}"
    a = ref.expected_uncorrected_per_mission
    b = bat.expected_uncorrected_per_mission
    if abs(a - b) > 0.5 * max(abs(a), abs(b), 1e-30):
        return f"expected_uncorrected_per_mission: reference={a} batched={b}"
    return None


def check_cache_filter(case: DiffCase) -> "str | None":
    """Sparse per-access cache filter vs the batched array kernel.

    The trace is fed in ``num_intervals`` chunks so the array kernel
    must seed from and sync back to carried-over hierarchy state, and
    the last chunk flushes so the deterministic write-back tail
    participates too.
    """
    from repro.cache.hierarchy import CacheHierarchy, filter_trace
    from repro.trace.record import Trace

    config = build_config(case)
    trace, _times = build_trace(case)
    bounds = np.linspace(0, len(trace), case.num_intervals + 1).astype(int)

    def run(kernel):
        h = CacheHierarchy(config.caches, num_cores=case.num_cores)
        outs = []
        for w in range(case.num_intervals):
            lo, hi = bounds[w], bounds[w + 1]
            chunk = Trace(core=trace.core[lo:hi],
                          address=trace.address[lo:hi],
                          is_write=trace.is_write[lo:hi],
                          gap=trace.gap[lo:hi])
            out = filter_trace(chunk, h,
                               flush_at_end=w == case.num_intervals - 1,
                               cache_kernel=kernel)
            outs.append((out.core.tolist(), out.lines.tolist(),
                         out.is_write.tolist(), out.gap.tolist()))
        state = {}
        for name, cache in [("l2", h.l2)] + \
                [(f"l1d{c}", h.l1d[c]) for c in range(case.num_cores)] + \
                [(f"l1i{c}", h.l1i[c]) for c in range(case.num_cores)]:
            state[name] = (cache.stats.accesses, cache.stats.hits,
                           cache.stats.misses, cache.stats.writebacks,
                           tuple(tuple(s.items()) for s in cache._sets))
        return {"residual": outs, "state": state}

    return _first_diff({k: run(k) for k in ("sparse", "array")})


def check_shm_roundtrip(case: DiffCase) -> "str | None":
    """Shared-memory handoff must reconstruct arrays bit-exactly."""
    import pickle

    from repro.harness import shm

    trace, times = build_trace(case)
    obj = {"core": trace.core, "address": trace.address,
           "is_write": trace.is_write, "gap": trace.gap, "times": times,
           "meta": {"case": case.case_id, "accesses": case.accesses}}
    with knob_overrides(shm_handoff=True):
        # Low threshold so even shrunken cases hoist every array.
        item = shm.share_payload(obj, threshold=8)
    if not isinstance(item, shm.SharedPayload):
        return None  # no shared memory on this platform: nothing to diff
    try:
        clone = pickle.loads(pickle.dumps(item)).load()
        for key in ("core", "address", "is_write", "gap", "times"):
            a, b = obj[key], clone[key]
            if a.dtype != b.dtype or a.shape != b.shape:
                return (f"{key}: sent {a.dtype}{a.shape} got "
                        f"{b.dtype}{b.shape} through the shm handoff")
            if not np.array_equal(a, b):
                first = int(np.flatnonzero(a != b)[0])
                return (f"{key}: values differ after the shm round-trip "
                        f"(first at index {first})")
        if clone["meta"] != obj["meta"]:
            return "non-array remainder differs after the shm round-trip"
    finally:
        shm.release_payload(item)
    return None


def check_serve(case: DiffCase) -> "str | None":
    """Streaming the trace through the placement service vs batch.

    The case's trace is chunked through a real
    :class:`~repro.serve.client.ServiceClient` session — JSON wire
    encoding, chunk spool, commit, worker replay — and the session's
    digest must be bit-identical to :func:`~repro.serve.engine.
    run_session` on the assembled trace.  Inline isolation keeps the
    fuzz loop fork-free; the chaos suite covers the process path.
    """
    import shutil
    import tempfile

    from repro.serve.client import ServiceClient
    from repro.serve.engine import run_session
    from repro.serve.protocol import SessionSpec
    from repro.serve.service import PlacementService, ServiceConfig

    trace, times = build_trace(case)
    spec = SessionSpec(
        tenant=f"fuzz-{case.case_id}",
        num_cores=case.num_cores,
        fast_pages=case.fast_pages,
        slow_pages=case.slow_pages,
        mechanism=case.mechanism,
        num_intervals=case.num_intervals,
    )
    batch = run_session(spec, trace, times)
    serve_dir = tempfile.mkdtemp(prefix="repro-fuzz-serve-")
    try:
        config = ServiceConfig(isolation="inline", serve_dir=serve_dir,
                               idle_timeout=None, pool_workers=1)
        with PlacementService(config) as service:
            chunk_size = max(1, -(-len(trace) // 4))  # ~4 wire chunks
            served = ServiceClient(service).run(
                spec, trace, times, chunk_size=chunk_size)
    finally:
        shutil.rmtree(serve_dir, ignore_errors=True)
    if served.digest != batch.digest:
        return _first_diff({"batch": batch.digest, "served": served.digest})
    if served.sha != batch.sha:
        return f"digest sha: batch={batch.sha} served={served.sha}"
    return None


def check_frontier(case: DiffCase) -> "str | None":
    """Frontier server-workload generators: determinism + parity.

    Three gates per case, rotating through the generator families:

    1. *Seeded determinism*: generating the same frontier workload
       twice must be byte-identical, array for array.
    2. *Streamed vs batch*: the generated trace chunked through a real
       :class:`~repro.serve.client.ServiceClient` session running the
       ``tolerance-tiered`` mechanism must produce a digest
       bit-identical to :func:`~repro.serve.engine.run_session` on the
       assembled trace (this also crosses the sparse/array policy
       kernels via the session's default resolution).
    3. *Injected drift (negative)*: flipping a single request's
       read/write bit must change the digest — proving the digest
       actually covers the payload and a real divergence cannot hide.
    """
    import shutil
    import tempfile

    from repro.serve.client import ServiceClient
    from repro.serve.engine import run_session
    from repro.serve.protocol import SessionSpec
    from repro.serve.service import PlacementService, ServiceConfig
    from repro.trace.record import Trace
    from repro.workloads import FRONTIER_WORKLOADS, generate_frontier

    name = FRONTIER_WORKLOADS[case.case_id % len(FRONTIER_WORKLOADS)]
    accesses = max(60, min(case.accesses, 400))
    scale = 1 / 16384  # tiny footprints keep the fuzz loop cheap
    wt = generate_frontier(name, scale=scale, accesses_per_core=accesses,
                           seed=case.seed)
    twin = generate_frontier(name, scale=scale, accesses_per_core=accesses,
                             seed=case.seed)
    for fld in ("core", "address", "is_write", "gap"):
        if (getattr(wt.trace, fld).tobytes()
                != getattr(twin.trace, fld).tobytes()):
            return f"{name}: non-deterministic generation ({fld})"
    if wt.times.tobytes() != twin.times.tobytes():
        return f"{name}: non-deterministic generation (times)"
    if wt.tolerance.page_class.tobytes() != twin.tolerance.page_class.tobytes():
        return f"{name}: non-deterministic tolerance map"

    spec = SessionSpec(
        tenant=f"frontier-{case.case_id}",
        num_cores=len(wt.core_benchmarks),
        fast_pages=max(4, wt.footprint_pages // 8),
        slow_pages=wt.footprint_pages,
        mechanism="tolerance-tiered",
        num_intervals=max(1, min(case.num_intervals, 4)),
    )
    batch = run_session(spec, wt.trace, wt.times)
    serve_dir = tempfile.mkdtemp(prefix="repro-fuzz-frontier-")
    try:
        config = ServiceConfig(isolation="inline", serve_dir=serve_dir,
                               idle_timeout=None, pool_workers=1)
        with PlacementService(config) as service:
            chunk_size = max(1, -(-len(wt.trace) // 4))  # ~4 wire chunks
            served = ServiceClient(service).run(
                spec, wt.trace, wt.times, chunk_size=chunk_size)
    finally:
        shutil.rmtree(serve_dir, ignore_errors=True)
    if served.digest != batch.digest:
        return _first_diff({"batch": batch.digest, "served": served.digest})
    if served.sha != batch.sha:
        return f"digest sha: batch={batch.sha} served={served.sha}"

    # Negative test: one flipped write bit must not digest-collide.
    flipped = wt.trace.is_write.copy()
    mid = len(flipped) // 2
    flipped[mid] = ~flipped[mid]
    drift_trace = Trace(core=wt.trace.core, address=wt.trace.address,
                        is_write=flipped, gap=wt.trace.gap)
    drifted = run_session(spec, drift_trace, wt.times)
    if drifted.sha == batch.sha:
        return (f"{name}: injected drift not detected "
                f"(sha {batch.sha} unchanged)")
    return None


def check_ecc(case: DiffCase) -> "str | None":
    """LUT-compiled vs direct-codec ECC decoding across all schemes.

    Three gates per case:

    1. *LUT compilation*: :func:`~repro.faults.ecc.build_ecc_luts` on a
       random chip geometry must reproduce the scalar
       ``classify_single`` / ``pair_uncorrectable`` entries of every
       registered scheme exactly.
    2. *Batch vs scalar decode*: for every real codec (Hsiao SEC-DED,
       SEC-DAEC, BCH, ChipKill RS) a batch of random codewords with
       random injected fault patterns must decode identically through
       the vectorised syndrome-LUT path and the scalar reference.
    3. *Injected off-by-one (negative)*: shifting one entry of the
       SEC-DAEC syndrome action table must change the decoded payload —
       proving the digest comparison actually covers the corrected
       data and a tampered table cannot hide.
    """
    from repro.faults import bch, hamming, secdaec
    from repro.faults.ecc import (
        SCHEME_LADDER,
        ChipGeometry,
        Outcome,
        build_ecc_luts,
        make_scheme,
    )
    from repro.faults.reed_solomon import ChipKillCode

    rng = np.random.default_rng((case.seed, case.case_id))

    # 1. LUT compilation vs the scalar classification, random geometry.
    geo = ChipGeometry(
        banks=int(2 ** rng.integers(0, 4)),
        rows=int(2 ** rng.integers(5, 16)),
        cols=int(2 ** rng.integers(5, 11)),
    )
    for name in SCHEME_LADDER:
        scheme = make_scheme(name)
        luts = build_ecc_luts(scheme, geo)
        for i, comp in enumerate(luts.components):
            outcome = scheme.classify_single(comp)
            lut_outcome = (
                Outcome.CORRECTED if luts.single_corrected[i]
                else Outcome.DETECTED if luts.single_detected[i]
                else Outcome.UNCORRECTED)
            if outcome is not lut_outcome:
                return (f"{name}: single[{comp.name}] lut={lut_outcome} "
                        f"scalar={outcome}")
            for j, other in enumerate(luts.components):
                for same in (0, 1):
                    direct = scheme.pair_uncorrectable(
                        comp, other, bool(same), geo)
                    if float(luts.pair_uncorrectable[i, j, same]) != direct:
                        return (f"{name}: pair[{comp.name}, {other.name}, "
                                f"same={same}] lut="
                                f"{luts.pair_uncorrectable[i, j, same]} "
                                f"scalar={direct}")

    # 2. Batch vs scalar decode, per codec, random fault patterns.
    import hashlib

    n = int(max(8, min(case.accesses, 64)))

    def payload_sha(arr) -> str:
        return hashlib.sha256(
            np.asarray(arr, dtype=np.uint8).tobytes()).hexdigest()[:16]

    def bit_codec_digests(mod, max_errors):
        words, out, data = [], [], []
        for _ in range(n):
            cw = mod.encode(rng.integers(0, 2, mod.DATA_BITS))
            k = int(rng.integers(0, max_errors + 1))
            if k:
                pos = rng.choice(mod.CODE_BITS, size=k, replace=False)
                cw = mod.inject(cw, [int(p) for p in pos])
            words.append(cw)
            r = mod.decode(cw)
            out.append(1 if r.outcome is Outcome.DETECTED else 0)
            data.append(r.data if r.data is not None
                        else np.zeros(mod.DATA_BITS, dtype=np.uint8))
        batch_out, batch_data = mod.decode_batch(np.array(words))
        scalar = {"out": tuple(out), "data": payload_sha(np.array(data))}
        batch = {"out": tuple(int(x) for x in batch_out),
                 "data": payload_sha(batch_data)}
        return scalar, batch

    for label, mod, max_errors in (("secded", hamming, 3),
                                   ("secdaec", secdaec, 3),
                                   ("bch", bch, 3)):
        scalar, batch = bit_codec_digests(mod, max_errors)
        diff = _first_diff({"scalar": scalar, "batch": batch})
        if diff:
            return f"{label}: {diff}"

    code = ChipKillCode()
    words, out, data = [], [], []
    for _ in range(n):
        cw = code.encode(rng.integers(0, 256, code.data_symbols))
        k = int(rng.integers(0, 3))
        if k:
            pos = rng.choice(code.code_symbols, size=k, replace=False)
            cw = code.inject(cw, {int(p): int(rng.integers(1, 256))
                                  for p in pos})
        words.append(cw)
        r = code.decode(cw)
        out.append(1 if r.outcome is Outcome.DETECTED else 0)
        data.append(r.data if r.data is not None
                    else np.zeros(code.data_symbols, dtype=np.uint8))
    batch_out, batch_data = code.decode_batch(np.array(words))
    diff = _first_diff({
        "scalar": {"out": tuple(out), "data": payload_sha(np.array(data))},
        "batch": {"out": tuple(int(x) for x in batch_out),
                  "data": payload_sha(batch_data)},
    })
    if diff:
        return f"chipkill: {diff}"

    # 3. Negative: an off-by-one in the SEC-DAEC action table must be
    # visible in the decoded payload.  The error lands inside the data
    # region (not the last data bit) so the wrongly-flipped neighbour
    # bit is a data bit too.
    position = int(rng.integers(0, secdaec.DATA_BITS - 1))
    cw = secdaec.inject(
        secdaec.encode(rng.integers(0, 2, secdaec.DATA_BITS)), [position])
    honest = secdaec.decode(cw).data
    tampered = secdaec._BATCH_FIRST.copy()
    key = int(secdaec.H[:, position].astype(np.int64) @ secdaec._POWERS)
    tampered[key] = position + 1
    _, tampered_data = secdaec.decode_batch(cw[None, :],
                                            first_table=tampered)
    if np.array_equal(honest, tampered_data[0]):
        return (f"secdaec: injected action-table off-by-one at bit "
                f"{position} not detected (payload unchanged)")
    return None


def check_multirun(case: DiffCase) -> "str | None":
    """Config-batched ``replay_multi`` vs per-point ``replay``.

    The case becomes a ragged config batch — the case's placement, a
    half-capacity variant, DDR-only, and (when the case carries one) a
    migration spec — replayed in one :func:`replay_multi` call and
    compared digest-by-digest against fresh per-point replays.  The
    batch mixes static (stacked-kernel) and chunked specs, so the
    grouping, dispatch, and both fast paths all participate.
    """
    from repro.dram.hma import HeterogeneousMemory
    from repro.sim.engine import ReplaySpec, replay, replay_multi

    config = build_config(case)
    trace, times = build_trace(case)
    fast, all_pages = build_placement(case)
    windows = core_windows(case)

    variants = [(fast, None, 1), (fast[: len(fast) // 2], None, 1),
                ([], None, 1)]
    if case.mechanism:
        variants.append((fast, case.mechanism, case.num_intervals))

    def build_specs():
        specs = []
        for placement, mech_name, n in variants:
            hma = HeterogeneousMemory(config)
            hma.install_placement(placement, all_pages)
            specs.append(ReplaySpec(
                config=config, hma=hma,
                mechanism=_make_mechanism(mech_name),
                num_intervals=n, core_windows=windows))
        return specs

    multi = replay_multi(build_specs(), trace, times)
    for i, spec in enumerate(build_specs()):
        oracle = replay(config, spec.hma, trace, times,
                        mechanism=spec.mechanism,
                        num_intervals=spec.num_intervals,
                        core_windows=windows)
        diff = _first_diff({"oracle": _digest(oracle),
                            "multirun": _digest(multi[i])})
        if diff:
            return f"spec {i}: {diff}"
    return None


#: All differential check families, in fuzz order.
CHECKS = {
    "replay-kernels": check_replay_kernels,
    "policy-kernels": check_policy_kernels,
    "mea": check_mea,
    "ace": check_ace_trackers,
    "faultsim": check_faultsim,
    "cache-filter": check_cache_filter,
    "shm-roundtrip": check_shm_roundtrip,
    "serve": check_serve,
    "multirun": check_multirun,
    "frontier": check_frontier,
    "ecc": check_ecc,
}


# ---------------------------------------------------------------------------
# Fuzz driver
# ---------------------------------------------------------------------------


def run_fuzz(
    num_cases: int = 25,
    seed: int = 0,
    artifact_dir: "str | None" = None,
    checks: "dict | None" = None,
    progress=None,
) -> "list[CheckResult]":
    """Run every check family on ``num_cases`` seeded random cases.

    On divergence the failing case is shrunk greedily and (when
    ``artifact_dir`` is given) dumped as a JSON repro artifact whose
    path lands in the :class:`CheckResult`.
    """
    if checks is None:
        checks = CHECKS
    rng = np.random.default_rng(seed)
    results: "list[CheckResult]" = []
    for i in range(num_cases):
        case = random_case(rng, i)
        if progress is not None:
            progress(f"fuzz case {i + 1}/{num_cases}")
        for name, check in checks.items():
            try:
                details = check(case)
            except Exception as exc:  # a crash is a divergence too
                details = f"check raised {type(exc).__name__}: {exc}"
            label = f"{name}:case{i:04d}"
            if details is None:
                results.append(CheckResult(label, "differential", True))
                continue
            shrunk = shrink_case(case, lambda c: _still_fails(check, c))
            artifact = None
            if artifact_dir is not None:
                os.makedirs(artifact_dir, exist_ok=True)
                artifact = os.path.join(
                    artifact_dir, f"divergence-{name}-case{i:04d}.json")
                save_artifact(artifact, shrunk, name,
                              _still_fails(check, shrunk, describe=True)
                              or details,
                              original=case)
            results.append(CheckResult(
                label, "differential", False,
                details=f"{details} (shrunk to {shrunk.accesses} accesses, "
                        f"{shrunk.footprint_pages} pages, "
                        f"{shrunk.num_cores} cores)",
                artifact=artifact))
    return results


def _still_fails(check, case: DiffCase, describe: bool = False):
    try:
        details = check(case)
    except Exception as exc:
        details = f"check raised {type(exc).__name__}: {exc}"
    return details if describe else details is not None


def replay_artifact(path: str) -> CheckResult:
    """Re-run the check recorded in a divergence artifact."""
    case, check_name, payload = load_artifact(path)
    check = CHECKS[check_name]
    details = _still_fails(check, case, describe=True)
    return CheckResult(
        name=f"{check_name}:artifact:{os.path.basename(path)}",
        family="differential",
        passed=details is None,
        details=details or "divergence no longer reproduces",
        artifact=path,
    )
