"""repro — Reliability-aware data placement for heterogeneous memory.

A full-system, trace-driven reproduction of Gupta et al., HPCA 2018:
synthetic workload traces, a cache hierarchy, a two-level DRAM timing
model, per-line AVF tracking, a Monte-Carlo DRAM fault simulator, and
the paper's static / dynamic / annotation-based placement policies.

Quickstart::

    from repro import default_config, Workload, run_placement_experiment
    from repro.core.placement import PerformanceFocusedPlacement

    cfg = default_config()
    result = run_placement_experiment(
        Workload.spec("astar"), PerformanceFocusedPlacement(), cfg, scale=1/1024
    )
    print(result.ipc, result.ser)
"""

from repro.config import (
    LINE_SIZE,
    LINES_PER_PAGE,
    PAGE_SIZE,
    CacheConfig,
    CoreConfig,
    DramTiming,
    HierarchyConfig,
    MemoryConfig,
    SystemConfig,
    ddr3_config,
    default_config,
    hbm_config,
    scaled_config,
)
from repro.trace.workloads import Workload
from repro.sim.system import run_migration_experiment, run_placement_experiment

__version__ = "1.0.0"

__all__ = [
    "PAGE_SIZE",
    "LINE_SIZE",
    "LINES_PER_PAGE",
    "CoreConfig",
    "CacheConfig",
    "HierarchyConfig",
    "DramTiming",
    "MemoryConfig",
    "SystemConfig",
    "default_config",
    "scaled_config",
    "hbm_config",
    "ddr3_config",
    "Workload",
    "run_placement_experiment",
    "run_migration_experiment",
    "__version__",
]
