"""System configuration for the HPCA 2018 reproduction (paper Table 1).

Every simulated component — the 16-core processor, the cache hierarchy,
and both memory devices of the Heterogeneous Memory Architecture (HMA)
— is described by a frozen dataclass here.  The default values mirror
Table 1 of the paper:

* 16 out-of-order cores at 3.2 GHz, 4-wide issue, 128-entry ROB.
* Private 32 KB L1-I and 16 KB L1-D, shared 16 MB L2.
* Low-reliability memory: 1 GB HBM, 8 channels x 128-bit at DDR
  1.0 GHz, SEC-DED ECC.
* High-reliability memory: 16 GB DDR3, 2 channels x 64-bit at DDR
  1.6 GHz, ChipKill ECC.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Bytes per 4 KB page, the placement/migration granularity.
PAGE_SIZE = 4096
#: Bytes per cache line, the AVF-tracking and memory-access granularity.
LINE_SIZE = 64
#: Cache lines per page.
LINES_PER_PAGE = PAGE_SIZE // LINE_SIZE


@dataclass(frozen=True)
class CoreConfig:
    """A single out-of-order core (paper Table 1, "Processor")."""

    frequency_hz: float = 3.2e9
    issue_width: int = 4
    rob_entries: int = 128
    #: Maximum outstanding memory requests a core can overlap (MSHR-like
    #: bound derived from the ROB; used by the MLP replay model).  The
    #: per-workload MLP (``BenchmarkProfile.mlp``) further limits this.
    max_outstanding_misses: int = 16


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size_bytes: int
    associativity: int
    line_size: int = LINE_SIZE
    write_back: bool = True
    write_allocate: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.size_bytes % (self.associativity * self.line_size):
            raise ValueError(
                "cache size must be a multiple of associativity * line size"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_size)


@dataclass(frozen=True)
class HierarchyConfig:
    """The paper's cache hierarchy: private L1s, one shared L2."""

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, associativity=2)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=16 * 1024, associativity=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=16 * 1024 * 1024,
                                            associativity=16)
    )


@dataclass(frozen=True)
class DramTiming:
    """DRAM timing in device-clock cycles (a simplified Ramulator set)."""

    tCL: int = 11
    tRCD: int = 11
    tRP: int = 11
    #: Burst length in bus clock edges; with DDR a 64-byte line takes
    #: ``line_size / (bus_width_bits / 8) / 2`` bus cycles.
    burst_cycles: int = 4

    def row_hit_cycles(self) -> int:
        """Cycles to serve a request that hits the open row."""
        return self.tCL + self.burst_cycles

    def row_miss_cycles(self) -> int:
        """Cycles to serve a request to a closed bank (activate first)."""
        return self.tRCD + self.tCL + self.burst_cycles

    def row_conflict_cycles(self) -> int:
        """Cycles to serve a request that must close another row first."""
        return self.tRP + self.tRCD + self.tCL + self.burst_cycles


@dataclass(frozen=True)
class MemoryConfig:
    """One memory device of the HMA (paper Table 1, memory sections)."""

    name: str
    capacity_bytes: int
    bus_frequency_hz: float
    bus_width_bits: int
    channels: int
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    timing: DramTiming = field(default_factory=DramTiming)
    ecc: str = "none"
    #: Relative raw transient FIT multiplier vs. the field-study DDR
    #: baseline (die-stacked memory has denser bits and new failure
    #: modes such as TSVs, hence > 1).
    fit_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity_bytes % PAGE_SIZE:
            raise ValueError("capacity must be a whole number of pages")
        if self.channels <= 0 or self.ranks_per_channel <= 0 or self.banks_per_rank <= 0:
            raise ValueError("organization counts must be positive")

    @property
    def num_pages(self) -> int:
        return self.capacity_bytes // PAGE_SIZE

    @property
    def num_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def peak_bandwidth_bytes_per_sec(self) -> float:
        """Peak data bandwidth across all channels (DDR: 2 transfers/cycle)."""
        bytes_per_transfer = self.bus_width_bits / 8
        return self.channels * self.bus_frequency_hz * 2 * bytes_per_transfer


def hbm_config() -> MemoryConfig:
    """The low-reliability on-package memory: 1 GB HBM with SEC-DED."""
    return MemoryConfig(
        name="HBM",
        capacity_bytes=1 << 30,
        bus_frequency_hz=500e6,
        bus_width_bits=128,
        channels=8,
        ranks_per_channel=1,
        banks_per_rank=8,
        timing=DramTiming(tCL=7, tRCD=7, tRP=7, burst_cycles=2),
        ecc="secded",
        fit_multiplier=7.0,
    )


def ddr3_config() -> MemoryConfig:
    """The high-reliability off-package memory: 16 GB DDR3 with ChipKill."""
    return MemoryConfig(
        name="DDR3",
        capacity_bytes=16 << 30,
        bus_frequency_hz=800e6,
        bus_width_bits=64,
        channels=2,
        ranks_per_channel=1,
        banks_per_rank=8,
        timing=DramTiming(tCL=11, tRCD=11, tRP=11, burst_cycles=4),
        ecc="chipkill",
        fit_multiplier=1.0,
    )


@dataclass(frozen=True)
class SystemConfig:
    """The complete simulated system (paper Table 1)."""

    num_cores: int = 16
    core: CoreConfig = field(default_factory=CoreConfig)
    caches: HierarchyConfig = field(default_factory=HierarchyConfig)
    fast_memory: MemoryConfig = field(default_factory=hbm_config)
    slow_memory: MemoryConfig = field(default_factory=ddr3_config)

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("need at least one core")

    @property
    def total_capacity_bytes(self) -> int:
        return self.fast_memory.capacity_bytes + self.slow_memory.capacity_bytes

    @property
    def total_pages(self) -> int:
        return self.total_capacity_bytes // PAGE_SIZE


def default_config() -> SystemConfig:
    """The paper's Table 1 configuration."""
    return SystemConfig()


def scaled_config(scale: float = 1 / 1024) -> SystemConfig:
    """A proportionally scaled-down system for fast tests and benches.

    All capacities shrink by ``scale`` (default: 1 MB of "HBM" against
    16 MB of "DDR3") while the organization — channel counts, bus
    widths, ECC, FIT multipliers — is preserved, so relative bandwidth
    and reliability shapes are unchanged.
    """
    if not 0 < scale <= 1:
        raise ValueError("scale must be in (0, 1]")

    def shrink(cfg: MemoryConfig) -> MemoryConfig:
        capacity = max(PAGE_SIZE, int(cfg.capacity_bytes * scale))
        capacity -= capacity % PAGE_SIZE
        return MemoryConfig(
            name=cfg.name,
            capacity_bytes=capacity,
            bus_frequency_hz=cfg.bus_frequency_hz,
            bus_width_bits=cfg.bus_width_bits,
            channels=cfg.channels,
            ranks_per_channel=cfg.ranks_per_channel,
            banks_per_rank=cfg.banks_per_rank,
            timing=cfg.timing,
            ecc=cfg.ecc,
            fit_multiplier=cfg.fit_multiplier,
        )

    l2_size = max(64 * 1024, int(16 * 1024 * 1024 * scale))
    caches = HierarchyConfig(
        l1i=CacheConfig(size_bytes=8 * 1024, associativity=2),
        l1d=CacheConfig(size_bytes=8 * 1024, associativity=4),
        l2=CacheConfig(size_bytes=l2_size, associativity=16),
    )
    return SystemConfig(
        num_cores=16,
        caches=caches,
        fast_memory=shrink(hbm_config()),
        slow_memory=shrink(ddr3_config()),
    )


# ---------------------------------------------------------------------------
# Runtime knobs (the REPRO_* environment variables)
# ---------------------------------------------------------------------------
#
# Every runtime tunable that used to be an ad-hoc ``os.environ.get``
# scattered across the engine, policy, fault, and harness layers is
# declared here once, with its type, default, and documentation.  The
# resolver order is uniform everywhere:
#
#     explicit argument  >  scoped override  >  environment  >  default
#
# Scoped overrides (:func:`knob_overrides`) are how the CLI and the
# parallel experiment runner pass flags downstream *without* mutating
# ``os.environ`` — a mutation would leak into every later run in the
# process and be inherited by forked workers.
#
# ``repro-hma config`` prints the effective table.


@dataclass(frozen=True)
class Knob:
    """One typed runtime knob backed by a ``REPRO_*`` env variable."""

    name: str
    env: str
    kind: str  # "int" | "float" | "str" | "bool"
    default: object
    help: str
    choices: "tuple[str, ...] | None" = None

    def parse(self, raw: str):
        """Parse a (non-empty) environment string into the typed value."""
        if self.kind == "int":
            return int(raw)
        if self.kind == "float":
            return float(raw)
        if self.kind == "bool":
            return raw.strip().lower() not in ("0", "false", "no", "off")
        value = raw
        if self.choices is not None and value not in self.choices:
            raise ValueError(
                f"{self.name} ({self.env}) must be one of "
                f"{self.choices}, got {value!r}"
            )
        return value


def _knob_table(*knobs: Knob) -> "dict[str, Knob]":
    return {knob.name: knob for knob in knobs}


#: The full knob table, in display order.
KNOBS: "dict[str, Knob]" = _knob_table(
    Knob("replay_kernel", "REPRO_REPLAY_KERNEL", "str", None,
         "replay engine kernel",
         choices=("batched", "scalar", "batched-native", "batched-python")),
    Knob("replay_native", "REPRO_REPLAY_NATIVE", "bool", True,
         "compile the C replay loop (0 = pure Python)"),
    Knob("mea_native", "REPRO_MEA_NATIVE", "bool", True,
         "compile the C MEA chunk kernel (0 = pure Python)"),
    Knob("ckernel_dir", "REPRO_CKERNEL_DIR", "str", None,
         "cache directory for compiled kernels"),
    Knob("policy_kernel", "REPRO_POLICY_KERNEL", "str", "array",
         "migration policy-layer backend",
         choices=("array", "sparse")),
    Knob("cache_kernel", "REPRO_CACHE_KERNEL", "str", "array",
         "cache-filter backend (sparse = per-access oracle)",
         choices=("array", "sparse")),
    Knob("cache_native", "REPRO_CACHE_NATIVE", "bool", True,
         "compile the C cache-filter loop (0 = pure Python)"),
    Knob("shm_handoff", "REPRO_SHM_HANDOFF", "bool", True,
         "pass prepared workloads to workers via shared memory "
         "(0 = pickle)"),
    Knob("multirun", "REPRO_MULTIRUN", "bool", True,
         "config-batched multi-run engine for sweeps "
         "(0 = per-point oracle path)"),
    Knob("fault_trials", "REPRO_FAULT_TRIALS", "int", 0,
         "Monte-Carlo fault-sim trials (0 = analytic)"),
    Knob("seed", "REPRO_SEED", "int", 0,
         "global RNG seed: trace synthesis and fault-sim Monte-Carlo"),
    Knob("faultsim_method", "REPRO_FAULTSIM_METHOD", "str", "batched",
         "fault-simulator Monte-Carlo kernel",
         choices=("batched", "reference")),
    Knob("jobs", "REPRO_JOBS", "int", None,
         "worker processes for experiment fan-out (unset = one per CPU)"),
    Knob("cache_dir", "REPRO_CACHE_DIR", "str", None,
         "on-disk prepared-workload cache directory"),
    Knob("job_timeout", "REPRO_JOB_TIMEOUT", "float", None,
         "per-job timeout in seconds (unset = no timeout)"),
    Knob("retries", "REPRO_RETRIES", "int", 0,
         "retry budget per failed or timed-out job"),
    Knob("telemetry", "REPRO_TELEMETRY", "bool", False,
         "enable metrics, tracing spans, epoch snapshots, run registry"),
    Knob("obs_dir", "REPRO_OBS_DIR", "str", None,
         "observability directory (run registry + span exports; "
         "unset = ./.repro-obs)"),
)

#: Process-local scoped overrides (see :func:`knob_overrides`).
_KNOB_OVERRIDES: "dict[str, object]" = {}


def knob_value(name: str, explicit=None):
    """Resolve one knob: explicit arg > override > environment > default."""
    knob = KNOBS[name]
    if explicit is not None:
        return explicit
    if name in _KNOB_OVERRIDES:
        return _KNOB_OVERRIDES[name]
    raw = os.environ.get(knob.env)
    if raw:  # empty string counts as unset, matching the legacy readers
        return knob.parse(raw)
    return knob.default


def knob_source(name: str) -> str:
    """Where :func:`knob_value` found the knob: override/env/default."""
    knob = KNOBS[name]
    if name in _KNOB_OVERRIDES:
        return "override"
    if os.environ.get(knob.env):
        return f"env:{knob.env}"
    return "default"


@contextmanager
def knob_overrides(**values):
    """Scoped knob overrides that never touch ``os.environ``.

    ``None`` values are ignored (treated as "not overridden"), so
    callers can forward optional CLI flags verbatim.  Restores the
    previous override state on exit, even on error.
    """
    staged = {}
    for name, value in values.items():
        if value is None:
            continue
        if name not in KNOBS:
            raise KeyError(f"unknown knob {name!r}")
        knob = KNOBS[name]
        if knob.choices is not None and value not in knob.choices:
            raise ValueError(
                f"{name} must be one of {knob.choices}, got {value!r}"
            )
        staged[name] = value
    saved = {name: _KNOB_OVERRIDES[name]
             for name in staged if name in _KNOB_OVERRIDES}
    _KNOB_OVERRIDES.update(staged)
    try:
        yield
    finally:
        for name in staged:
            if name in saved:
                _KNOB_OVERRIDES[name] = saved[name]
            else:
                _KNOB_OVERRIDES.pop(name, None)


def knob_report() -> "list[tuple[str, str, str, str, str]]":
    """``(name, env, effective value, source, help)`` for every knob."""
    rows = []
    for knob in KNOBS.values():
        value = knob_value(knob.name)
        rows.append((knob.name, knob.env,
                     "" if value is None else str(value),
                     knob_source(knob.name), knob.help))
    return rows
