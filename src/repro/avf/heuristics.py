"""AVF-proxy heuristics and correlation analyses (paper Sections 4.2, 5.3).

The paper's key observations, all reproduced here as functions over a
:class:`~repro.avf.page.PageStats` profile:

* page hotness and AVF correlate weakly (rho ~ 0.08 for mix1, Fig. 6),
* the write ratio Wr/Rd correlates negatively with AVF (rho ~ -0.32,
  Fig. 9a) because most dead intervals end in a write, and
* the Wr^2/Rd ratio additionally weights absolute write volume, which
  steers the heuristic away from cold pages (Sec. 5.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.avf.page import PageStats


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient; 0.0 for degenerate inputs."""
    if len(x) != len(y):
        raise ValueError("arrays must have equal length")
    if len(x) < 2:
        return 0.0
    sx, sy = np.std(x), np.std(y)
    if sx == 0 or sy == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def hotness_avf_correlation(stats: PageStats) -> float:
    """rho(hotness, AVF) over the touched footprint (paper: ~0.08)."""
    return pearson(stats.hotness.astype(np.float64), stats.avf)


def write_ratio_avf_correlation(stats: PageStats) -> float:
    """rho(Wr ratio, AVF) over the touched footprint (paper: ~ -0.32)."""
    return pearson(stats.write_ratio, stats.avf)


def top_hot_pages(stats: PageStats, n: int) -> np.ndarray:
    """Indices (into the profile arrays) of the ``n`` hottest pages,
    hottest first — the x-axis of the paper's Figures 6 and 9a."""
    order = np.argsort(stats.hotness, kind="stable")[::-1]
    return order[: min(n, len(order))]


@dataclass
class WriteRatioHistogram:
    """Figure 9b: pages bucketed by write ratio percentage."""

    bin_edges: np.ndarray
    counts: np.ndarray

    def __iter__(self):
        for i, count in enumerate(self.counts):
            yield (float(self.bin_edges[i]), float(self.bin_edges[i + 1]),
                   int(count))


def write_ratio_histogram(
    stats: PageStats, num_bins: int = 5, max_ratio: float = 1.0
) -> WriteRatioHistogram:
    """Histogram of write ratios in ``num_bins`` equal bins.

    The paper buckets write ratio *percentage* into 20%-wide bins
    (1-20%, 21-40%, ...); ratios above ``max_ratio`` land in the last
    bin.
    """
    ratio = np.minimum(stats.write_ratio, max_ratio)
    edges = np.linspace(0.0, max_ratio, num_bins + 1)
    counts, _ = np.histogram(ratio, bins=edges)
    return WriteRatioHistogram(bin_edges=edges, counts=counts)


def risk_from_write_ratio(stats: PageStats, threshold: "float | None" = None
                          ) -> np.ndarray:
    """Classify pages as high-risk (True) using the Wr-ratio heuristic.

    Low writes relative to reads -> likely long live intervals ->
    high risk.  The default threshold is the footprint's mean write
    ratio, matching the dynamic mechanism of Section 6.2.
    """
    ratio = stats.write_ratio
    if threshold is None:
        threshold = float(ratio.mean())
    return ratio < threshold
