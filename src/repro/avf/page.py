"""Page-level AVF aggregation (paper Equation 1 / Section 4.1).

The paper performs AVF analysis at cache-line granularity (memory is
read and written in lines), sums the per-line ACE time over a page, and
divides by the page's bit capacity and the window length — i.e. a page
AVF is the mean AVF of its 64 lines, with never-touched lines
contributing zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import LINES_PER_PAGE
from repro.avf.tracker import line_ace_times
from repro.trace.record import Trace


@dataclass
class PageStats:
    """Per-page profile of a workload run on a flat (DDR-only) memory.

    The struct-of-arrays layout keeps the policy layer vectorised.  All
    arrays are parallel and sorted by ``pages``.
    """

    pages: np.ndarray
    reads: np.ndarray
    writes: np.ndarray
    avf: np.ndarray
    #: Total footprint in pages, including never-touched pages (used
    #: for mean-AVF reporting against the full footprint as in Fig. 2).
    footprint_pages: int = 0

    def __post_init__(self) -> None:
        n = len(self.pages)
        if not (len(self.reads) == len(self.writes) == len(self.avf) == n):
            raise ValueError("PageStats arrays must be parallel")
        if self.footprint_pages < n:
            self.footprint_pages = n

    def __len__(self) -> int:
        return len(self.pages)

    @property
    def hotness(self) -> np.ndarray:
        """Raw access counts (reads + writes), the paper's hotness."""
        return self.reads + self.writes

    @property
    def write_ratio(self) -> np.ndarray:
        """Wr ratio = writes / reads (paper Sec. 5.3); inf-safe."""
        return self.writes / np.maximum(self.reads, 1)

    @property
    def wr2_ratio(self) -> np.ndarray:
        """Wr^2 ratio = writes^2 / reads (paper Sec. 5.4.2)."""
        return self.writes.astype(np.float64) ** 2 / np.maximum(self.reads, 1)

    def mean_avf(self) -> float:
        """Mean AVF over the whole footprint (untouched pages are 0)."""
        if self.footprint_pages == 0:
            return 0.0
        return float(self.avf.sum() / self.footprint_pages)

    def index_of(self, pages) -> np.ndarray:
        """Positions of ``pages`` within this profile's arrays."""
        idx = np.searchsorted(self.pages, pages)
        idx = np.clip(idx, 0, len(self.pages) - 1)
        if not np.all(self.pages[idx] == pages):
            raise KeyError("some pages are not in this profile")
        return idx


def profile_trace(
    trace: Trace,
    times: np.ndarray,
    footprint_pages: int = 0,
    assume_live_at_start: bool = True,
) -> PageStats:
    """Compute per-page hotness and AVF for a full trace.

    ``times`` is the logical time of every request in ``[0, 1)``; the
    window length is 1, so per-line ACE time is already a per-line AVF
    and a page's AVF is the mean over its 64 lines.
    """
    lines = trace.lines.astype(np.int64)
    uline, ace = line_ace_times(
        lines, times, trace.is_write, assume_live_at_start=assume_live_at_start
    )
    line_pages = uline // LINES_PER_PAGE

    pages_all = trace.pages.astype(np.int64)
    unique_pages = np.unique(pages_all)

    # Per-page read/write counts.
    inverse = np.searchsorted(unique_pages, pages_all)
    reads = np.zeros(len(unique_pages), dtype=np.int64)
    writes = np.zeros(len(unique_pages), dtype=np.int64)
    np.add.at(reads, inverse[~trace.is_write], 1)
    np.add.at(writes, inverse[trace.is_write], 1)

    # Per-page AVF: sum line ACE over the page / 64 lines / window(=1).
    avf = np.zeros(len(unique_pages))
    page_idx = np.searchsorted(unique_pages, line_pages)
    np.add.at(avf, page_idx, ace)
    avf /= LINES_PER_PAGE

    return PageStats(
        pages=unique_pages,
        reads=reads,
        writes=writes,
        avf=np.clip(avf, 0.0, 1.0),
        footprint_pages=max(footprint_pages, len(unique_pages)),
    )


@dataclass
class IntervalProfile:
    """Per-interval page statistics for dynamic SER accounting.

    ``interval_avf[i]`` maps page -> AVF accumulated during interval
    ``i`` (ACE time attributed to the interval containing the read).
    """

    num_intervals: int
    interval_avf: "list[dict[int, float]]" = field(default_factory=list)

    def total_avf(self, page: int) -> float:
        return sum(iv.get(page, 0.0) for iv in self.interval_avf)


def profile_intervals(
    trace: Trace,
    times: np.ndarray,
    boundaries: np.ndarray,
    assume_live_at_start: bool = True,
) -> IntervalProfile:
    """Split a trace at logical-time ``boundaries`` and compute each
    interval's per-page AVF contribution.

    ACE spans crossing a boundary are attributed to the interval in
    which the read occurs — the same attribution the streaming
    tracker's :meth:`~repro.avf.tracker.AceTracker.reset_window` makes.
    """
    lines = trace.lines.astype(np.int64)
    is_write = trace.is_write

    # Previous-access time per line (window start for first accesses).
    order = np.argsort(lines, kind="stable")
    sl, st, sw = lines[order], times[order], is_write[order]
    first = np.empty(len(sl), dtype=bool)
    if len(sl):
        first[0] = True
        first[1:] = sl[1:] != sl[:-1]
    prev = np.empty_like(st)
    if len(sl):
        prev[1:] = st[:-1]
        prev[0] = 0.0
        prev[first] = 0.0
    contrib = np.where(~sw, st - prev, 0.0)
    if not assume_live_at_start:
        contrib[first & ~sw] = 0.0

    interval_of = np.searchsorted(boundaries, st, side="right")
    n_intervals = len(boundaries) + 1
    page_of = sl // LINES_PER_PAGE

    profile = IntervalProfile(num_intervals=n_intervals,
                              interval_avf=[{} for _ in range(n_intervals)])
    active = contrib > 0
    for iv, page, c in zip(interval_of[active], page_of[active], contrib[active]):
        bucket = profile.interval_avf[iv]
        bucket[int(page)] = bucket.get(int(page), 0.0) + c / LINES_PER_PAGE
    return profile


class IntervalProfileBuilder:
    """Re-bucket one trace's ACE contributions for many boundary sets.

    :func:`profile_intervals` recomputes the line-sorted previous-access
    analysis *and* walks a Python dict loop for every call; when a sweep
    profiles the same trace at many interval counts (``fig13``) or for
    many configs at one count, both costs repeat.  The builder hoists
    the boundary-independent analysis (the sort dominates) into
    ``__init__`` and replaces the dict loop with grouped ``np.add.at``
    accumulation per call.

    Parity: contributions are accumulated in the same line-sorted
    stream order as the oracle's dict loop (``np.add.at`` applies its
    additions one at a time in index order), and keys come out in
    first-occurrence order, so :meth:`profile` returns interval dicts
    with bit-identical values *and* iteration order.
    :meth:`intervals_arrays` exposes the same data as ``(pages,
    values)`` array pairs for consumers that never need a dict.
    """

    def __init__(self, trace: Trace, times: np.ndarray,
                 assume_live_at_start: bool = True) -> None:
        lines = trace.lines.astype(np.int64)
        is_write = trace.is_write
        order = np.argsort(lines, kind="stable")
        sl, st, sw = lines[order], times[order], is_write[order]
        first = np.empty(len(sl), dtype=bool)
        if len(sl):
            first[0] = True
            first[1:] = sl[1:] != sl[:-1]
        prev = np.empty_like(st)
        if len(sl):
            prev[1:] = st[:-1]
            prev[0] = 0.0
            prev[first] = 0.0
        contrib = np.where(~sw, st - prev, 0.0)
        if not assume_live_at_start:
            contrib[first & ~sw] = 0.0
        active = contrib > 0
        #: Read time, page, and scaled contribution per active span, in
        #: the oracle's line-sorted stream order.
        self._read_times = st[active]
        self._pages = (sl[active] // LINES_PER_PAGE)
        self._values = contrib[active] / LINES_PER_PAGE
        # The stream is line-sorted, so pages are non-decreasing; dense
        # page codes therefore come from one run-length pass, no sort.
        pages = self._pages
        if len(pages):
            step = np.empty(len(pages), dtype=np.int64)
            step[0] = 0
            step[1:] = pages[1:] != pages[:-1]
            self._codes = np.add.accumulate(step)
            self._uniq_pages = pages[np.concatenate(
                ([0], np.flatnonzero(step[1:] != 0) + 1))]
        else:
            self._codes = np.empty(0, dtype=np.int64)
            self._uniq_pages = np.empty(0, dtype=np.int64)

    def intervals_arrays(
        self, boundaries: np.ndarray
    ) -> "list[tuple[np.ndarray, np.ndarray]]":
        """Per-interval ``(pages, avf_values)`` for one boundary set.

        Pages appear in first-occurrence order (the oracle dicts'
        insertion order); values carry the oracle's accumulation
        rounding exactly: one ``np.bincount`` over combined
        ``(interval, page)`` codes adds each bin's contributions one at
        a time in stream order, the same float64 sequence as the dict
        loop.
        """
        n_intervals = len(boundaries) + 1
        n_codes = len(self._uniq_pages)
        empty = (np.empty(0, dtype=np.int64), np.empty(0))
        if not n_codes:
            return [empty] * n_intervals
        interval_of = np.searchsorted(boundaries, self._read_times,
                                      side="right")
        combined = interval_of * n_codes + self._codes
        n_bins = n_intervals * n_codes
        sums = np.bincount(combined, weights=self._values,
                           minlength=n_bins)
        # First-occurrence position per (interval, page): reversed
        # fancy assignment makes the earliest stream index win.
        first = np.full(n_bins, -1, dtype=np.int64)
        first[combined[::-1]] = np.arange(len(combined) - 1, -1, -1)
        out: "list[tuple[np.ndarray, np.ndarray]]" = []
        for i in range(n_intervals):
            lo = i * n_codes
            seg_first = first[lo:lo + n_codes]
            present = np.flatnonzero(seg_first >= 0)
            if not len(present):
                out.append(empty)
                continue
            by_stream = present[np.argsort(seg_first[present],
                                           kind="stable")]
            out.append((self._uniq_pages[by_stream],
                        sums[lo:lo + n_codes][by_stream]))
        return out

    def profile(self, boundaries: np.ndarray) -> IntervalProfile:
        """An :class:`IntervalProfile` identical to the oracle's."""
        interval_avf = [
            dict(zip(pages.tolist(), values.tolist()))
            for pages, values in self.intervals_arrays(boundaries)
        ]
        return IntervalProfile(num_intervals=len(boundaries) + 1,
                               interval_avf=interval_avf)
