"""Per-cache-line ACE interval tracking (paper Section 4.1, Figure 3).

A memory line is *ACE* (Architecturally Correct Execution state) while
a particle strike on it would be consumed by the program: from a write
(or the window start, for data that was live before the measurement
window) up to the last read before the next write.  Time after the last
read of an epoch is dead — the value is either overwritten or never
used again — exactly as in the paper's Figure 3:

* (a) ``WR1 .. RD1 .. RD2 .. WR2``: ACE over ``[WR1, RD2]``.
* (b) a strike between two writes with no intervening read is masked.

Two equivalent implementations are provided:

* :class:`AceTracker` — an exact streaming tracker with explicit state
  transitions (reference semantics; used directly by the dynamic
  migration engine and heavily unit-tested), and
* :func:`line_ace_times` — a vectorised batch computation over a full
  trace, used for whole-workload AVF profiling.  A property test
  asserts both agree on random traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _LineState:
    """Streaming state for one line."""

    #: Time the current potential-ACE interval started (the last write,
    #: or the window start for lines that are read before any write).
    ace_start: float
    #: Accumulated ACE time already committed by reads.
    ace_time: float
    #: Time of the last access of any kind.
    last_access: float
    #: Whether the line has been accessed at all.
    touched: bool


class AceTracker:
    """Exact streaming ACE-time accumulator over cache lines.

    Parameters
    ----------
    assume_live_at_start:
        When True (the default, matching a measurement window cut from
        the middle of execution) a line whose first access is a read is
        treated as live since the window start, so ``[0, first read]``
        counts as ACE.
    """

    def __init__(self, assume_live_at_start: bool = True) -> None:
        self.assume_live_at_start = assume_live_at_start
        self._lines: "dict[int, _LineState]" = {}
        self._last_time = 0.0

    def access(self, line: int, time: float, is_write: bool) -> None:
        """Record one access. ``time`` must be non-decreasing."""
        if time < self._last_time:
            raise ValueError("accesses must be fed in time order")
        self._last_time = time

        state = self._lines.get(line)
        if state is None:
            if is_write:
                state = _LineState(ace_start=time, ace_time=0.0,
                                   last_access=time, touched=True)
            else:
                start = 0.0
                ace = time if self.assume_live_at_start else 0.0
                state = _LineState(ace_start=start, ace_time=ace,
                                   last_access=time, touched=True)
                state.ace_start = time  # committed up to this read
            self._lines[line] = state
            return

        if is_write:
            # Whatever lay between the last read and this write is dead.
            state.ace_start = time
        else:
            # The span since the last committed point is all ACE: it
            # either extends a write->read interval or chains reads.
            state.ace_time += time - state.ace_start
            state.ace_start = time
        state.last_access = time

    def ace_time(self, line: int) -> float:
        """Committed ACE time of ``line`` so far."""
        state = self._lines.get(line)
        return state.ace_time if state else 0.0

    def line_ace_times(self) -> "dict[int, float]":
        """All per-line committed ACE times."""
        return {line: s.ace_time for line, s in self._lines.items()}

    def touched_lines(self) -> "list[int]":
        return list(self._lines)

    def reset_window(self) -> "dict[int, float]":
        """Close the current measurement window.

        Returns per-line ACE time accumulated in the window and starts
        a new window: committed ACE resets to zero, while the liveness
        state (a pending write) carries over, so ACE spans crossing the
        boundary are attributed to the window in which the read occurs.
        """
        out = {}
        for line, state in self._lines.items():
            out[line] = state.ace_time
            state.ace_time = 0.0
        return out


def line_ace_times(
    lines: np.ndarray,
    times: np.ndarray,
    is_write: np.ndarray,
    assume_live_at_start: bool = True,
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorised batch ACE computation.

    Parameters are parallel arrays describing a *time-sorted* trace.
    Returns ``(unique_lines, ace_time)``: per-line total ACE time.

    The rule is the streaming tracker's, restated per access: every
    read commits the interval since the previous access of the same
    line (or since the window start, if it is the line's first access
    and ``assume_live_at_start``); writes commit nothing.
    """
    if not (len(lines) == len(times) == len(is_write)):
        raise ValueError("parallel arrays must have equal length")
    if len(lines) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    if np.any(np.diff(times) < 0):
        raise ValueError("trace must be time-sorted")

    order = np.argsort(lines, kind="stable")  # stable keeps time order
    sl = np.asarray(lines)[order]
    st = np.asarray(times, dtype=np.float64)[order]
    sw = np.asarray(is_write)[order]

    first_of_line = np.empty(len(sl), dtype=bool)
    first_of_line[0] = True
    first_of_line[1:] = sl[1:] != sl[:-1]

    prev_time = np.empty_like(st)
    prev_time[1:] = st[:-1]
    prev_time[0] = 0.0
    # First access of each line has no predecessor: interval starts at
    # the window start (0) if we assume pre-window liveness.
    prev_time[first_of_line] = 0.0

    contrib = np.where(~sw, st - prev_time, 0.0)
    if not assume_live_at_start:
        contrib[first_of_line & ~sw] = 0.0

    unique, inverse = np.unique(sl, return_inverse=True)
    ace = np.zeros(len(unique))
    np.add.at(ace, inverse, contrib)
    return unique.astype(np.int64), ace
