"""Per-cache-line ACE interval tracking (paper Section 4.1, Figure 3).

A memory line is *ACE* (Architecturally Correct Execution state) while
a particle strike on it would be consumed by the program: from a write
(or the window start, for data that was live before the measurement
window) up to the last read before the next write.  Time after the last
read of an epoch is dead — the value is either overwritten or never
used again — exactly as in the paper's Figure 3:

* (a) ``WR1 .. RD1 .. RD2 .. WR2``: ACE over ``[WR1, RD2]``.
* (b) a strike between two writes with no intervening read is masked.

Three equivalent implementations are provided:

* :class:`AceTracker` — an exact streaming tracker with explicit state
  transitions (reference semantics; heavily unit-tested),
* :func:`line_ace_times` — a vectorised batch computation over a full
  trace, used for whole-workload AVF profiling, and
* :class:`WindowedAceTracker` — a chunk-batched tracker for the
  dynamic migration engine: each trace chunk is committed with the
  same sorted-by-line vectorised pass as :func:`line_ace_times`, with
  per-line boundary state (last access time, liveness) carried between
  chunks and across measurement windows.  Property tests assert all
  three agree bit-for-bit on random traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import metrics as _metrics


def _record_window_close(kind: str, window_total: float) -> None:
    """Telemetry tap on a measurement-window close; no-op when off."""
    registry = _metrics.get_registry()
    registry.counter(f"{kind}.window_resets").inc()
    registry.counter(f"{kind}.window_ace_seconds").inc(window_total)


@dataclass
class _LineState:
    """Streaming state for one line."""

    #: Time the current potential-ACE interval started (the last write,
    #: or the window start for lines that are read before any write).
    ace_start: float
    #: Accumulated ACE time already committed by reads.
    ace_time: float
    #: Time of the last access of any kind.
    last_access: float
    #: Whether the line has been accessed at all.
    touched: bool


class AceTracker:
    """Exact streaming ACE-time accumulator over cache lines.

    Parameters
    ----------
    assume_live_at_start:
        When True (the default, matching a measurement window cut from
        the middle of execution) a line whose first access is a read is
        treated as live since the window start, so ``[0, first read]``
        counts as ACE.
    """

    def __init__(self, assume_live_at_start: bool = True) -> None:
        self.assume_live_at_start = assume_live_at_start
        self._lines: "dict[int, _LineState]" = {}
        self._last_time = 0.0

    def access(self, line: int, time: float, is_write: bool) -> None:
        """Record one access. ``time`` must be non-decreasing."""
        if time < self._last_time:
            raise ValueError("accesses must be fed in time order")
        self._last_time = time

        state = self._lines.get(line)
        if state is None:
            if is_write:
                state = _LineState(ace_start=time, ace_time=0.0,
                                   last_access=time, touched=True)
            else:
                start = 0.0
                ace = time if self.assume_live_at_start else 0.0
                state = _LineState(ace_start=start, ace_time=ace,
                                   last_access=time, touched=True)
                state.ace_start = time  # committed up to this read
            self._lines[line] = state
            return

        if is_write:
            # Whatever lay between the last read and this write is dead.
            state.ace_start = time
        else:
            # The span since the last committed point is all ACE: it
            # either extends a write->read interval or chains reads.
            state.ace_time += time - state.ace_start
            state.ace_start = time
        state.last_access = time

    def ace_time(self, line: int) -> float:
        """Committed ACE time of ``line`` so far."""
        state = self._lines.get(line)
        return state.ace_time if state else 0.0

    def line_ace_times(self) -> "dict[int, float]":
        """All per-line committed ACE times."""
        return {line: s.ace_time for line, s in self._lines.items()}

    def touched_lines(self) -> "list[int]":
        return list(self._lines)

    def reset_window(self) -> "dict[int, float]":
        """Close the current measurement window.

        Returns per-line ACE time accumulated in the window and starts
        a new window: committed ACE resets to zero, while the liveness
        state (a pending write) carries over, so ACE spans crossing the
        boundary are attributed to the window in which the read occurs.
        """
        out = {}
        for line, state in self._lines.items():
            out[line] = state.ace_time
            state.ace_time = 0.0
        if _metrics.enabled():
            _record_window_close("ace.streaming", sum(out.values()))
        return out


class WindowedAceTracker:
    """Chunk-batched ACE accumulator, equivalent to :class:`AceTracker`.

    State lives in dense per-line arrays (window-committed ACE time,
    last access time, touched flag), grown geometrically on demand.
    :meth:`observe_chunk` commits a whole time-sorted chunk in one
    vectorised pass: requests are stably sorted by line, each read
    commits the span since the previous access of the same line —
    the in-chunk predecessor, or the carried last access time for the
    chunk's first occurrence of a line (``ace_start`` always equals
    ``last_access`` in the streaming tracker, so one carried array
    suffices) — and ``np.add.at`` folds the contributions per line in
    time order, reproducing the streaming tracker's float additions
    bit-for-bit.
    """

    def __init__(self, assume_live_at_start: bool = True) -> None:
        self.assume_live_at_start = assume_live_at_start
        self._last = np.zeros(1024)
        self._touched = np.zeros(1024, dtype=bool)
        self._ace = np.zeros(1024)
        self._last_time = 0.0

    def _ensure(self, max_line: int) -> None:
        size = len(self._last)
        if max_line < size:
            return
        while size <= max_line:
            size *= 2
        for name in ("_last", "_touched", "_ace"):
            old = getattr(self, name)
            new = np.zeros(size, dtype=old.dtype)
            new[: len(old)] = old
            setattr(self, name, new)

    def access(self, line: int, time: float, is_write: bool) -> None:
        """Record one access (scalar convenience wrapper)."""
        self.observe_chunk(
            np.array([line], dtype=np.int64),
            np.array([time], dtype=np.float64),
            np.array([bool(is_write)]),
        )

    def observe_chunk(self, lines: np.ndarray, times: np.ndarray,
                      is_write: np.ndarray) -> None:
        """Commit one time-sorted chunk of accesses."""
        # Imported lazily: repro.core.__init__ pulls in avf.page, which
        # imports this module, so a top-level import would be circular.
        from repro.core.counters import check_parallel_arrays

        check_parallel_arrays("WindowedAceTracker.observe_chunk",
                              lines, times, is_write)
        lines = np.asarray(lines, dtype=np.int64)
        n = len(lines)
        if n == 0:
            return
        times = np.asarray(times, dtype=np.float64)
        if times[0] < self._last_time or np.any(np.diff(times) < 0):
            raise ValueError("accesses must be fed in time order")
        if lines.min() < 0:
            raise ValueError("line ids must be non-negative")
        writes = np.asarray(is_write, dtype=bool)
        self._ensure(int(lines.max()))

        order = np.argsort(lines, kind="stable")  # stable keeps time order
        sl = lines[order]
        st = times[order]
        sw = writes[order]

        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(sl[1:], sl[:-1], out=first[1:])
        first_lines = sl[first]
        carried = self._touched[first_lines]

        prev = np.empty(n)
        prev[1:] = st[:-1]
        # First occurrence in the chunk: continue from the carried last
        # access, or from the window start (0) for brand-new lines.
        prev[first] = np.where(carried, self._last[first_lines], 0.0)

        contrib = np.where(~sw, st - prev, 0.0)
        if not self.assume_live_at_start:
            never_seen = np.zeros(n, dtype=bool)
            never_seen[first] = ~carried
            contrib[never_seen & ~sw] = 0.0

        np.add.at(self._ace, sl, contrib)

        last = np.empty(n, dtype=bool)
        last[-1] = True
        np.not_equal(sl[1:], sl[:-1], out=last[:-1])
        self._last[sl[last]] = st[last]
        self._touched[first_lines] = True
        self._last_time = float(times[-1])

    def ace_time(self, line: int) -> float:
        """Committed ACE time of ``line`` in the current window."""
        if 0 <= line < len(self._ace) and self._touched[line]:
            return float(self._ace[line])
        return 0.0

    def line_ace_times(self) -> "dict[int, float]":
        """All per-line committed ACE times (current window)."""
        return {int(line): float(self._ace[line])
                for line in np.flatnonzero(self._touched)}

    def touched_lines(self) -> "list[int]":
        return np.flatnonzero(self._touched).tolist()

    def window_ace_of(self, lines: np.ndarray) -> np.ndarray:
        """Current-window ACE time per line, 0.0 for untouched lines."""
        lines = np.asarray(lines, dtype=np.int64)
        out = np.zeros(len(lines))
        valid = (lines >= 0) & (lines < len(self._ace))
        out[valid] = self._ace[lines[valid]]
        return out

    def reset_window(self) -> "dict[int, float]":
        """Close the window (same contract as
        :meth:`AceTracker.reset_window`)."""
        out = self.line_ace_times()
        if _metrics.enabled():
            _record_window_close("ace.windowed", float(self._ace.sum()))
        self._ace[:] = 0.0
        return out

    def clear_window(self) -> None:
        """Zero the window accumulator without building the dict."""
        self._ace[:] = 0.0


def line_ace_times(
    lines: np.ndarray,
    times: np.ndarray,
    is_write: np.ndarray,
    assume_live_at_start: bool = True,
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorised batch ACE computation.

    Parameters are parallel arrays describing a *time-sorted* trace.
    Returns ``(unique_lines, ace_time)``: per-line total ACE time.

    The rule is the streaming tracker's, restated per access: every
    read commits the interval since the previous access of the same
    line (or since the window start, if it is the line's first access
    and ``assume_live_at_start``); writes commit nothing.
    """
    if not (len(lines) == len(times) == len(is_write)):
        raise ValueError("parallel arrays must have equal length")
    if len(lines) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    if np.any(np.diff(times) < 0):
        raise ValueError("trace must be time-sorted")

    order = np.argsort(lines, kind="stable")  # stable keeps time order
    sl = np.asarray(lines)[order]
    st = np.asarray(times, dtype=np.float64)[order]
    sw = np.asarray(is_write)[order]

    first_of_line = np.empty(len(sl), dtype=bool)
    first_of_line[0] = True
    first_of_line[1:] = sl[1:] != sl[:-1]

    prev_time = np.empty_like(st)
    prev_time[1:] = st[:-1]
    prev_time[0] = 0.0
    # First access of each line has no predecessor: interval starts at
    # the window start (0) if we assume pre-window liveness.
    prev_time[first_of_line] = 0.0

    contrib = np.where(~sw, st - prev_time, 0.0)
    if not assume_live_at_start:
        contrib[first_of_line & ~sw] = 0.0

    unique, inverse = np.unique(sl, return_inverse=True)
    ace = np.zeros(len(unique))
    np.add.at(ace, inverse, contrib)
    return unique.astype(np.int64), ace
