"""AVF engine: ACE tracking, page aggregation, and proxy heuristics."""

from repro.avf.tracker import AceTracker, line_ace_times
from repro.avf.page import (
    IntervalProfile,
    PageStats,
    profile_intervals,
    profile_trace,
)
from repro.avf.heuristics import (
    WriteRatioHistogram,
    hotness_avf_correlation,
    pearson,
    risk_from_write_ratio,
    top_hot_pages,
    write_ratio_avf_correlation,
    write_ratio_histogram,
)

__all__ = [
    "AceTracker",
    "line_ace_times",
    "PageStats",
    "IntervalProfile",
    "profile_trace",
    "profile_intervals",
    "pearson",
    "hotness_avf_correlation",
    "write_ratio_avf_correlation",
    "top_hot_pages",
    "write_ratio_histogram",
    "WriteRatioHistogram",
    "risk_from_write_ratio",
]
