"""Majority Element Algorithm hotness tracking (paper Section 6.4).

MemPod (Prodromou et al.) tracks hot pages with the Majority Element
Algorithm (Misra-Gries / space-saving): a small map of counters that
favours recency by tracking relative updates to the most recently
frequent pages.  The paper's Cross Counter mechanism uses a 32-entry
MEA map to pick up to 32 globally hot pages every 50 microseconds.

The classic guarantee holds: any element occurring more than
``n / (k + 1)`` times in a stream of length ``n`` is present in a
``k``-entry map at the end of the stream.

Implementation note: the textbook "decrement every counter" step is
O(k) per non-member access, which made ``record_many`` the single
hottest Python loop in dynamic-migration replay.  The tracker instead
stores counters relative to a global offset (classic Misra-Gries
optimisation): a decrement-all becomes one ``offset += 1``, an insert
stores ``offset + 1``, and an entry is dead once its stored value
falls to the offset.  A lazily maintained lower bound on the minimum
stored value defers the dead-entry scan until a drop can actually
occur.  ``record_many`` additionally batches the leading run of
member hits in each chunk vectorially (hits cannot change the member
set, so the run is one ``np.isin`` + ``np.unique`` pass).  All of
this is *exactly* equivalent to the per-access reference semantics
— same members, same residual counts, same map order (pinned by
property tests against a literal decrement-all reimplementation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import _mea_native


@dataclass
class MeaEntry:
    page: int
    count: int


class MeaTracker:
    """A k-entry Misra-Gries frequent-elements sketch over page ids."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: page -> stored count; the effective (residual) count is
        #: ``stored - self._off``, always >= 1 for a live entry.
        self._counters: "dict[int, int]" = {}
        #: Global decrement offset (number of decrement-all steps).
        self._off = 0
        #: Lower bound on ``min(self._counters.values())``; exact after
        #: every insert and dead-entry scan, possibly stale-low after
        #: member hits (safe: scans trigger no later than needed).
        self._min = 0
        self.stream_length = 0

    # -- streaming updates ---------------------------------------------------

    def record(self, page: int) -> None:
        """Process one access to ``page``."""
        self.stream_length += 1
        counters = self._counters
        if page in counters:
            counters[page] += 1
        elif len(counters) < self.capacity:
            counters[page] = self._off + 1
            self._min = self._off + 1
        else:
            # Decrement-all step, amortised: bump the offset and scan
            # for dead entries only when the minimum can have reached
            # zero.
            self._off += 1
            if self._off >= self._min:
                self._drop_dead()

    def _drop_dead(self) -> None:
        """Remove entries whose residual count reached zero."""
        off = self._off
        counters = self._counters
        dead = [p for p, v in counters.items() if v <= off]
        for p in dead:
            del counters[p]
        self._min = min(counters.values()) if counters else off

    def _bump_members(self, member_pages: np.ndarray) -> None:
        """Apply a batch of hits on current members (order-free)."""
        if not len(member_pages):
            return
        counters = self._counters
        unique, counts = np.unique(member_pages, return_counts=True)
        for page, count in zip(unique.tolist(), counts.tolist()):
            counters[page] += count

    def _member_array(self) -> np.ndarray:
        return np.fromiter(self._counters, np.int64, len(self._counters))

    def record_many(self, pages) -> None:
        """Process a chunk of accesses.

        When the compiled chunk kernel is available the whole chunk
        runs in C over the (<= ``capacity``-entry) map held as flat
        arrays — same members, same residual counts, same insertion
        order.  Otherwise the maximal leading run of member hits
        cannot change the map (hits never insert, drop, or move the
        offset), so it lands in one ``np.isin`` + ``np.unique`` pass;
        the remainder runs through a tuned offset-relative loop whose
        per-access work is one dict probe — the decrement-all and
        dead-entry scans of the textbook algorithm are amortised
        behind the lazy minimum.
        """
        arr = np.asarray(pages, dtype=np.int64).ravel()
        n = int(arr.size)
        if n == 0:
            return
        if n >= 64:
            native = _mea_native.load()
            if native is not None:
                self._record_many_native(native, np.ascontiguousarray(arr))
                return
        self.stream_length += n
        counters = self._counters
        start = 0
        if n >= 32 and counters:
            memb = np.isin(arr, self._member_array())
            misses = np.flatnonzero(~memb)
            start = int(misses[0]) if misses.size else n
            if start:
                self._bump_members(arr[:start])
            if start >= n:
                return
        capacity = self.capacity
        off = self._off
        floor = self._min
        get = counters.get
        for page in arr[start:].tolist():
            stored = get(page)
            if stored is not None:
                counters[page] = stored + 1
            elif len(counters) < capacity:
                counters[page] = off + 1
                floor = off + 1
            else:
                off += 1
                if off >= floor:
                    dead = [p for p, v in counters.items() if v <= off]
                    for p in dead:
                        del counters[p]
                    floor = min(counters.values()) if counters else off
        self._off = off
        self._min = floor

    def _record_many_native(self, native, arr: np.ndarray) -> None:
        """Run one chunk through the compiled textbook kernel.

        The offset formulation is state-equivalent to residual counts
        under normalisation (future behaviour depends only on members,
        residuals, and insertion order), so the dict converts to flat
        arrays, the kernel mutates them in place, and the dict reloads
        normalised (``off = 0``).
        """
        self.stream_length += int(arr.size)
        counters = self._counters
        off = self._off
        entry_pages = np.zeros(self.capacity, dtype=np.int64)
        entry_counts = np.zeros(self.capacity, dtype=np.int64)
        for i, (page, stored) in enumerate(counters.items()):
            entry_pages[i] = page
            entry_counts[i] = stored - off
        k = _mea_native.run_chunk(native, arr, self.capacity,
                                  entry_pages, entry_counts, len(counters))
        counters.clear()
        for i in range(k):
            counters[int(entry_pages[i])] = int(entry_counts[i])
        self._off = 0
        self._min = int(entry_counts[:k].min()) if k else 0

    # -- queries -------------------------------------------------------------

    def hot_pages(self, limit: "int | None" = None,
                  min_count: int = 1) -> "list[int]":
        """Tracked pages ordered by descending residual count.

        ``min_count`` filters one-hit wonders: a page must retain at
        least that residual count to be reported hot.
        """
        off = self._off
        ranked = sorted(
            ((p, v - off) for p, v in self._counters.items()
             if v - off >= min_count),
            key=lambda kv: -kv[1],
        )
        pages = [page for page, _count in ranked]
        return pages[:limit] if limit is not None else pages

    def count(self, page: int) -> int:
        stored = self._counters.get(page)
        return stored - self._off if stored is not None else 0

    def __len__(self) -> int:
        return len(self._counters)

    def reset(self) -> None:
        """Clear the map for the next MEA interval."""
        self._counters.clear()
        self._off = 0
        self._min = 0
        self.stream_length = 0

    @staticmethod
    def storage_cost_bytes(capacity: int = 32, entry_bits: int = 64,
                           remap_table_bytes: int = 64 * 1024) -> int:
        """Hardware budget of the MEA unit (Sec. 6.4.2: the tracking
        structures stay under ~100 KB plus a 64 KB remap-table cache)."""
        # Each entry stores a page number and a counter; the MemPod
        # design also keeps per-pod bookkeeping, bounded at 100 KB.
        tracking = min(100 * 1024, capacity * entry_bits // 8 * 64)
        return tracking + remap_table_bytes


class ArrayMeaTracker:
    """Flat-array Misra-Gries sketch for the ``array`` policy kernel.

    Behaviourally identical to :class:`MeaTracker` (same members, same
    residual counts, same insertion order — pinned by the parity
    suite), but the map lives permanently in two ``capacity``-slot
    int64 arrays, which is the native chunk kernel's working format.
    :meth:`record_many` therefore hands the arrays straight to the
    compiled loop: no per-chunk dict→array conversion, no dict
    rebuild, no offset normalisation — the conversion was the single
    largest ``record_many`` cost for the (tiny, <= 32-entry) map.

    Without a compiler the same textbook loop runs over Python lists
    — the literal port of the C kernel, so the fallback stays
    bit-identical rather than merely equivalent.

    Queries come back as arrays too: :meth:`hot_arrays` returns the
    ranked (pages, residual counts) pair that
    :meth:`CrossCountersMigration.plan_sub` consumes without building
    intermediate lists.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: Map in insertion order; first ``_n`` slots valid, counts are
        #: residuals (always >= 1 for a live entry).
        self._pages = np.zeros(capacity, dtype=np.int64)
        self._counts = np.zeros(capacity, dtype=np.int64)
        self._n = 0
        self.stream_length = 0
        # The entry arrays never reallocate, so their ctypes views are
        # computed once — record_many's per-chunk native-call overhead
        # is then one pointer cast for the incoming pages.
        import ctypes

        p_i64 = ctypes.POINTER(ctypes.c_int64)
        self._entry_ptrs = (
            self._pages.ctypes.data_as(p_i64),
            self._counts.ctypes.data_as(p_i64),
        )
        self._c_n = ctypes.c_int64(0)
        self._c_n_ref = ctypes.byref(self._c_n)

    def __getstate__(self):
        state = dict(self.__dict__)
        for key in ("_entry_ptrs", "_c_n", "_c_n_ref"):
            del state[key]
        return state

    def __setstate__(self, state):
        self.__init__(state.pop("capacity"))
        n = state.pop("_n")
        self._pages[:] = state.pop("_pages")
        self._counts[:] = state.pop("_counts")
        self._n = n
        self.__dict__.update(state)

    # -- streaming updates ---------------------------------------------------

    def record(self, page: int) -> None:
        """Process one access to ``page``."""
        self.record_many(np.array([page], dtype=np.int64))

    def record_many(self, pages) -> None:
        """Process a chunk of accesses through the textbook loop."""
        if (type(pages) is np.ndarray and pages.dtype == np.int64
                and pages.ndim == 1 and pages.flags.c_contiguous):
            arr = pages
        else:
            arr = np.ascontiguousarray(
                np.asarray(pages, dtype=np.int64).ravel())
        n = int(arr.size)
        if n == 0:
            return
        self.stream_length += n
        native = _mea_native.load()
        if native is not None:
            self._c_n.value = self._n
            native(n, arr.ctypes.data, self.capacity,
                   self._entry_ptrs[0], self._entry_ptrs[1],
                   self._c_n_ref)
            self._n = self._c_n.value
            return
        # Pure-Python port of the C kernel (same scan, same in-place
        # compaction), over lists to keep per-access dispatch cheap.
        ep = self._pages[:self._n].tolist()
        ec = self._counts[:self._n].tolist()
        capacity = self.capacity
        for p in arr.tolist():
            try:
                ec[ep.index(p)] += 1
            except ValueError:
                if len(ep) < capacity:
                    ep.append(p)
                    ec.append(1)
                else:
                    keep = [(q, c - 1) for q, c in zip(ep, ec) if c > 1]
                    ep = [q for q, _c in keep]
                    ec = [c for _q, c in keep]
        self._n = len(ep)
        self._pages[: self._n] = ep
        self._counts[: self._n] = ec

    # -- queries -------------------------------------------------------------

    def _ranked(self) -> np.ndarray:
        """Slot indices by descending residual count, insertion-order
        ties (= the sparse tracker's stable sort over dict order)."""
        return np.argsort(-self._counts[: self._n], kind="stable")

    def slot_lists(self) -> "tuple[list[int], list[int]]":
        """Map contents in insertion order as ``(pages, counts)``
        lists — the cheapest full read for small-``k`` consumers."""
        return (self._pages[: self._n].tolist(),
                self._counts[: self._n].tolist())

    def hot_arrays(self, min_count: int = 1) -> "tuple[np.ndarray, np.ndarray]":
        """Ranked ``(pages, residual_counts)`` arrays, hottest first."""
        order = self._ranked()
        pages = self._pages[order]
        counts = self._counts[order]
        if min_count > 1:
            keep = counts >= min_count
            return pages[keep], counts[keep]
        return pages, counts

    def hot_pages(self, limit: "int | None" = None,
                  min_count: int = 1) -> "list[int]":
        pages, _counts = self.hot_arrays(min_count)
        pages = pages[:limit] if limit is not None else pages
        return pages.tolist()

    def count(self, page: int) -> int:
        hit = np.flatnonzero(self._pages[: self._n] == page)
        return int(self._counts[hit[0]]) if hit.size else 0

    def __len__(self) -> int:
        return self._n

    def reset(self) -> None:
        """Clear the map for the next MEA interval."""
        self._n = 0
        self.stream_length = 0

    storage_cost_bytes = staticmethod(MeaTracker.storage_cost_bytes)
