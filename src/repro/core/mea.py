"""Majority Element Algorithm hotness tracking (paper Section 6.4).

MemPod (Prodromou et al.) tracks hot pages with the Majority Element
Algorithm (Misra-Gries / space-saving): a small map of counters that
favours recency by tracking relative updates to the most recently
frequent pages.  The paper's Cross Counter mechanism uses a 32-entry
MEA map to pick up to 32 globally hot pages every 50 microseconds.

The classic guarantee holds: any element occurring more than
``n / (k + 1)`` times in a stream of length ``n`` is present in a
``k``-entry map at the end of the stream.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MeaEntry:
    page: int
    count: int


class MeaTracker:
    """A k-entry Misra-Gries frequent-elements sketch over page ids."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._counters: "dict[int, int]" = {}
        self.stream_length = 0

    def record(self, page: int) -> None:
        """Process one access to ``page``."""
        self.stream_length += 1
        counters = self._counters
        if page in counters:
            counters[page] += 1
        elif len(counters) < self.capacity:
            counters[page] = 1
        else:
            # Decrement-all step; drop counters that reach zero.
            dead = []
            for p in counters:
                counters[p] -= 1
                if counters[p] == 0:
                    dead.append(p)
            for p in dead:
                del counters[p]

    def record_many(self, pages) -> None:
        for page in pages:
            self.record(int(page))

    def hot_pages(self, limit: "int | None" = None,
                  min_count: int = 1) -> "list[int]":
        """Tracked pages ordered by descending residual count.

        ``min_count`` filters one-hit wonders: a page must retain at
        least that residual count to be reported hot.
        """
        ranked = sorted(
            ((p, c) for p, c in self._counters.items() if c >= min_count),
            key=lambda kv: -kv[1],
        )
        pages = [page for page, _count in ranked]
        return pages[:limit] if limit is not None else pages

    def count(self, page: int) -> int:
        return self._counters.get(page, 0)

    def __len__(self) -> int:
        return len(self._counters)

    def reset(self) -> None:
        """Clear the map for the next MEA interval."""
        self._counters.clear()
        self.stream_length = 0

    @staticmethod
    def storage_cost_bytes(capacity: int = 32, entry_bits: int = 64,
                           remap_table_bytes: int = 64 * 1024) -> int:
        """Hardware budget of the MEA unit (Sec. 6.4.2: the tracking
        structures stay under ~100 KB plus a 64 KB remap-table cache)."""
        # Each entry stores a page number and a counter; the MemPod
        # design also keeps per-pod bookkeeping, bounded at 100 KB.
        tracking = min(100 * 1024, capacity * entry_bits // 8 * 64)
        return tracking + remap_table_bytes
