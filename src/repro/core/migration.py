"""Dynamic migration mechanisms (paper Section 6).

A migration mechanism observes the memory request stream through its
hardware counters and, at interval boundaries, proposes page exchanges
between the fast and slow memories.  The replay engine
(:mod:`repro.sim.engine`) drives the mechanism: it feeds each interval's
accesses to :meth:`MigrationMechanism.observe_chunk`, then asks
:meth:`plan` (at coarse FC intervals) or :meth:`plan_sub` (at fine MEA
intervals) for migration pairs and charges the copy bandwidth.

Mechanisms:

* :class:`PerformanceFocusedMigration` — the Meswani et al. HMA scheme:
  one access counter per page, mean-hotness threshold, swap hot DDR
  pages for cold HBM pages every interval (Sec. 6.1).
* :class:`ReliabilityAwareFCMigration` — split counters into reads and
  writes; exchange *cold or high-risk* HBM pages for *hot and low-risk*
  DDR pages (Sec. 6.2).
* :class:`CrossCountersMigration` — MEA hotness tracking system-wide
  (fires every MEA interval) plus Full-Counter risk tracking for HBM
  pages only (fires every FC interval) (Sec. 6.4).
* :class:`OracleRiskMigration` — ablation upper bound driven by
  measured ACE time instead of the Wr/Rd proxy.

Each mechanism carries two interchangeable planner kernels selected by
``policy_kernel`` (argument > ``REPRO_POLICY_KERNEL`` env > ``array``):

* ``sparse`` — the original dict/sort implementation, kept as the
  reference oracle.  Its iteration order is *canonical*: touched pages
  ascend, residents are walked in ascending page order, and every
  ``sorted`` tie therefore breaks toward the lower page number.
* ``array`` — dense NumPy kernels: thresholds from array means,
  candidate/victim selection with masks, composite-key
  ``argpartition`` top-k and ``lexsort`` rankings, residency via
  :meth:`~repro.dram.hma.HeterogeneousMemory.fast_mask` instead of
  ``set(hma.pages_in(FAST))``.

Both kernels produce bit-identical :data:`MigrationPlan` outputs
(pinned by ``tests/core/test_policy_parity.py``); thresholds are
``np.mean`` over identically-ordered values, and every ranking
reproduces the canonical stable-sort tie-breaks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core import _mea_native
from repro.core.counters import (
    ArrayFullCounters,
    FullCounters,
    check_parallel_arrays,
    make_counters,
    resolve_policy_kernel,
)
from repro.core.mea import ArrayMeaTracker, MeaTracker
from repro.dram.hma import FAST, HeterogeneousMemory
from repro.obs import metrics as _metrics

MigrationPlan = "tuple[list[int], list[int]]"


def _mean_threshold(values) -> float:
    """Mean of a list or array of per-page metrics (0.0 when empty).

    Both kernels funnel through the same ``np.mean`` over values in
    ascending page order, so the float result is bit-identical.
    """
    return float(np.mean(values)) if len(values) else 0.0


def _top_hot_desc(pages: np.ndarray, hot: np.ndarray,
                  k: "int | None") -> np.ndarray:
    """Indices of the ``k`` hottest pages, hottest first.

    Reproduces ``sorted(pages, key=lambda p: -hot[p])[:k]`` over an
    ascending-page array (stable sort: ties break toward the lower
    page).  Distinct pages get distinct composite keys, so a single
    ``argpartition`` + descending sort realises the canonical order
    without sorting the full array.
    """
    n = len(pages)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    span = int(pages[-1]) + 1
    key = hot * span + (span - 1 - pages)
    if k is None or k >= n:
        return np.argsort(key)[::-1]
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    idx = np.argpartition(key, n - k)[n - k:]
    return idx[np.argsort(key[idx])[::-1]]


def _bottom_hot_asc(pages: np.ndarray, hot: np.ndarray,
                    k: "int | None") -> np.ndarray:
    """Indices of the ``k`` coldest pages, coldest first.

    Reproduces ``sorted(pages, key=lambda p: hot[p])[:k]`` over an
    ascending-page array (ties toward the lower page).
    """
    n = len(pages)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    span = int(pages[-1]) + 1
    key = hot * span + pages
    if k is None or k >= n:
        return np.argsort(key)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    idx = np.argpartition(key, k - 1)[:k]
    return idx[np.argsort(key[idx])]


def _risk_ratio(writes: np.ndarray, reads: np.ndarray) -> np.ndarray:
    """Vectorised Wr/Rd risk proxy, matching the scalar
    ``writes / max(1, reads)`` division exactly."""
    return writes / np.maximum(np.int64(1), reads)


class MigrationMechanism(ABC):
    """Interface between the replay engine and a migration policy."""

    name: str = "base"
    #: Fine-grained planning steps per coarse interval (1 = none).
    subintervals_per_interval: int = 1
    #: Planner backend; see the module docstring.
    policy_kernel: str = "sparse"

    def _use_array_kernel(self, hma) -> bool:
        return self.policy_kernel == "array" and hasattr(hma, "fast_mask")

    #: Whether :meth:`observe_counts` may stand in for
    #: :meth:`observe_chunk`.  True only for mechanisms whose
    #: observation is order-free per-page tallying (FC-style counters);
    #: stream-order trackers (MEA) and time-based trackers (ACE) must
    #: keep the raw chunk.
    supports_observe_counts: bool = False

    @abstractmethod
    def observe_chunk(self, pages: np.ndarray, is_write: np.ndarray,
                      times: "np.ndarray | None" = None) -> None:
        """Feed one chunk of the access stream into the counters.

        ``times`` (logical time per request) is provided by the replay
        engine for mechanisms that need temporal information — the
        hardware-realisable mechanisms ignore it.
        """

    def observe_counts(self, pages_r: np.ndarray, counts_r: np.ndarray,
                       pages_w: np.ndarray, counts_w: np.ndarray) -> None:
        """Feed pre-aggregated per-page chunk tallies into the counters.

        Only valid when :attr:`supports_observe_counts` is true; the
        multi-run engine aggregates each chunk once (``np.unique`` over
        the read and write streams) and feeds every batched config from
        the shared tallies, with counter state bit-identical to
        :meth:`observe_chunk` on the raw chunk.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not accept aggregated counts")

    @abstractmethod
    def plan(self, hma: HeterogeneousMemory) -> MigrationPlan:
        """Coarse-interval (FC) migration decision.

        Returns ``(to_fast, to_slow)`` page lists; counters reset as
        the hardware would at interval boundaries.
        """

    def plan_sub(self, hma: HeterogeneousMemory) -> MigrationPlan:
        """Fine-interval (MEA) migration decision; default: none."""
        return [], []

    def hardware_cost_bytes(self, total_pages: int, fast_pages: int) -> int:
        """Additional tracking storage the mechanism needs."""
        return 0

    def window_ace_total(self) -> float:
        """Total ACE time accumulated in the current tracking window.

        Telemetry hook: the replay engine samples this just before a
        plan (plans reset the window).  Proxy-based mechanisms have no
        ACE measurement and report 0.
        """
        return 0.0

    def _record_plan(self, plan: MigrationPlan) -> MigrationPlan:
        """Telemetry tap on a plan decision; a no-op when disabled."""
        registry = _metrics.get_registry()
        to_fast, to_slow = plan
        registry.counter(f"plan.{self.name}.calls").inc()
        registry.counter(f"plan.{self.name}.to_fast").inc(len(to_fast))
        registry.counter(f"plan.{self.name}.to_slow").inc(len(to_slow))
        return plan


class PerformanceFocusedMigration(MigrationMechanism):
    """State-of-the-art hotness-only migration (Meswani et al. [40]).

    A raw access counter per page; at each interval every slow-memory
    page whose count exceeds the interval's mean page hotness is a
    candidate, displacing the coldest pages currently in HBM.
    """

    name = "perf-migration"
    supports_observe_counts = True

    def __init__(self, counter_bits: int = 8,
                 max_swap_fraction: float = 0.1,
                 fixed_threshold: "int | None" = None,
                 policy_kernel: "str | None" = None) -> None:
        if not 0 < max_swap_fraction <= 1:
            raise ValueError("max_swap_fraction must be in (0, 1]")
        if fixed_threshold is not None and fixed_threshold < 0:
            raise ValueError("fixed_threshold must be non-negative")
        self.policy_kernel = resolve_policy_kernel(policy_kernel)
        self.counters = make_counters(counter_bits, self.policy_kernel)
        #: Bound on per-interval exchange volume, as a fraction of HBM
        #: capacity — the migration engine cannot move more data per
        #: interval than the slow memory's bandwidth absorbs.
        self.max_swap_fraction = max_swap_fraction
        #: Hardwired hotness threshold; None (the paper's choice) uses
        #: the dynamic per-interval mean, which "serves every
        #: application fairly" (Sec. 6.1).
        self.fixed_threshold = fixed_threshold

    def observe_chunk(self, pages: np.ndarray, is_write: np.ndarray,
                      times: "np.ndarray | None" = None) -> None:
        check_parallel_arrays(f"{self.name}.observe_chunk",
                              pages, is_write, times)
        self.counters.record_batch(pages, is_write)

    def observe_counts(self, pages_r: np.ndarray, counts_r: np.ndarray,
                       pages_w: np.ndarray, counts_w: np.ndarray) -> None:
        self.counters.record_counts(pages_r, counts_r, pages_w, counts_w)

    def plan(self, hma: HeterogeneousMemory) -> MigrationPlan:
        if self._use_array_kernel(hma):
            return self._record_plan(self._plan_array(hma))
        return self._record_plan(self._plan_sparse(hma))

    def _plan_sparse(self, hma) -> MigrationPlan:
        counters = self.counters
        touched = counters.touched_pages()
        hotness = {p: counters.hotness(p) for p in touched}
        if self.fixed_threshold is not None:
            threshold = float(self.fixed_threshold)
        else:
            threshold = _mean_threshold(list(hotness.values()))

        in_fast_list = hma.pages_in(FAST)
        in_fast = set(in_fast_list)
        budget = max(1, int(hma.fast_capacity_pages * self.max_swap_fraction))
        # Hot pages currently off-package, hottest first.
        candidates_in = sorted(
            (p for p in touched if hotness[p] > threshold and p not in in_fast),
            key=lambda p: -hotness[p],
        )[:budget]
        # HBM pages ranked coldest first (untouched pages count 0);
        # swaps stop once a victim would be hotter than its replacement.
        eviction_order = iter(
            sorted(in_fast_list, key=lambda p: hotness.get(p, 0))
        )

        free_slots = hma.fast_capacity_pages - len(in_fast)
        to_fast: "list[int]" = []
        to_slow: "list[int]" = []
        for page in candidates_in:
            if free_slots > 0:
                to_fast.append(page)
                free_slots -= 1
                continue
            victim = next(eviction_order, None)
            if victim is None or hotness.get(victim, 0) >= hotness[page]:
                break
            to_slow.append(victim)
            to_fast.append(page)

        counters.reset()
        return to_fast, to_slow

    def _plan_array(self, hma) -> MigrationPlan:
        counters = self.counters
        pages, reads, writes = counters.touched_arrays()
        hot = reads + writes
        if self.fixed_threshold is not None:
            threshold = float(self.fixed_threshold)
        else:
            threshold = _mean_threshold(hot)

        in_fast = hma.pages_in_array(FAST)
        budget = max(1, int(hma.fast_capacity_pages * self.max_swap_fraction))
        cand_mask = (hot > threshold) & ~hma.fast_mask(pages)
        sel = _top_hot_desc(pages[cand_mask], hot[cand_mask], budget)
        cand_pages = pages[cand_mask][sel]
        cand_hot = hot[cand_mask][sel]

        free_slots = hma.fast_capacity_pages - len(in_fast)
        n_free = min(max(free_slots, 0), len(cand_pages))
        to_fast = cand_pages[:n_free]
        rem_pages = cand_pages[n_free:]
        rem_hot = cand_hot[n_free:]
        to_slow = np.empty(0, dtype=np.int64)
        if len(rem_pages) and len(in_fast):
            vic_hot = counters.hotness_of(in_fast)
            vsel = _bottom_hot_asc(in_fast, vic_hot,
                                   min(len(rem_pages), len(in_fast)))
            vic_pages = in_fast[vsel]
            vic_hot = vic_hot[vsel]
            # Pair promotions with victims until a victim would be
            # hotter than (or as hot as) its replacement.
            k = min(len(rem_pages), len(vic_pages))
            stop = vic_hot[:k] >= rem_hot[:k]
            pairs = int(np.argmax(stop)) if stop.any() else k
            to_fast = np.concatenate([to_fast, rem_pages[:pairs]])
            to_slow = vic_pages[:pairs]

        counters.reset()
        return to_fast.tolist(), to_slow.tolist()

    def hardware_cost_bytes(self, total_pages: int, fast_pages: int) -> int:
        # One 8-bit counter per addressable page.
        return FullCounters.storage_cost(
            total_pages, counter_bits=self.counters.counter_bits,
            counters_per_page=1,
        ).total_bytes


class ReliabilityAwareFCMigration(MigrationMechanism):
    """Full-Counter reliability-aware migration (paper Section 6.2).

    Two counters per page (reads, writes) give hotness = R + W and
    risk = Wr/Rd.  Mean hotness and mean risk over the interval's
    touched pages are the thresholds; the mechanism exchanges *cold or
    high-risk* HBM residents for *hot and low-risk* DDR pages.
    """

    name = "fc-migration"
    supports_observe_counts = True

    def __init__(self, counter_bits: int = 8,
                 max_swap_fraction: float = 0.1,
                 policy_kernel: "str | None" = None) -> None:
        if not 0 < max_swap_fraction <= 1:
            raise ValueError("max_swap_fraction must be in (0, 1]")
        self.policy_kernel = resolve_policy_kernel(policy_kernel)
        self.counters = make_counters(counter_bits, self.policy_kernel)
        self.max_swap_fraction = max_swap_fraction

    def observe_chunk(self, pages: np.ndarray, is_write: np.ndarray,
                      times: "np.ndarray | None" = None) -> None:
        check_parallel_arrays(f"{self.name}.observe_chunk",
                              pages, is_write, times)
        self.counters.record_batch(pages, is_write)

    def observe_counts(self, pages_r: np.ndarray, counts_r: np.ndarray,
                       pages_w: np.ndarray, counts_w: np.ndarray) -> None:
        self.counters.record_counts(pages_r, counts_r, pages_w, counts_w)

    def plan(self, hma: HeterogeneousMemory) -> MigrationPlan:
        if self._use_array_kernel(hma):
            return self._record_plan(self._plan_array(hma))
        return self._record_plan(self._plan_sparse(hma))

    def _plan_sparse(self, hma) -> MigrationPlan:
        counters = self.counters
        touched = counters.touched_pages()
        hotness = {p: counters.hotness(p) for p in touched}
        risk = {p: counters.write_ratio(p) for p in touched}
        hot_threshold = _mean_threshold(list(hotness.values()))
        # Low Wr/Rd means long live intervals, i.e. high risk.
        risk_threshold = _mean_threshold(list(risk.values()))

        in_fast_list = hma.pages_in(FAST)
        in_fast = set(in_fast_list)

        def is_good(page: int) -> bool:
            return (
                hotness.get(page, 0) > hot_threshold
                and risk.get(page, 0.0) >= risk_threshold
            )

        budget = max(1, int(hma.fast_capacity_pages * self.max_swap_fraction))
        candidates_in = sorted(
            (p for p in touched if p not in in_fast and is_good(p)),
            key=lambda p: -hotness[p],
        )[:budget]
        # Evict anything cold or high-risk.  Residents observed to be
        # high-risk this interval (traffic with low Wr/Rd) leave first
        # — they are the live SER exposure — then cold pages.  The
        # exchange is one-sided if necessary: high-risk pages leave HBM
        # even when too few hot & low-risk replacements exist, trading
        # performance for reliability as the paper's FC mechanism does.
        def eviction_key(page: int) -> "tuple[int, float, int]":
            observed_risky = (
                hotness.get(page, 0) > 0
                and risk.get(page, 0.0) < risk_threshold
            )
            return (0 if observed_risky else 1, risk.get(page, 0.0),
                    hotness.get(page, 0))

        evictable = sorted(
            (p for p in in_fast_list if not is_good(p)), key=eviction_key
        )
        to_slow = evictable[:budget]
        free = hma.fast_capacity_pages - len(in_fast) + len(to_slow)
        to_fast = candidates_in[:free]
        counters.reset()
        return to_fast, to_slow

    def _plan_array(self, hma) -> MigrationPlan:
        counters = self.counters
        pages, reads, writes = counters.touched_arrays()
        hot = reads + writes
        risk = _risk_ratio(writes, reads)
        hot_threshold = _mean_threshold(hot)
        risk_threshold = _mean_threshold(risk)

        in_fast = hma.pages_in_array(FAST)
        budget = max(1, int(hma.fast_capacity_pages * self.max_swap_fraction))

        good = (hot > hot_threshold) & (risk >= risk_threshold)
        cand_mask = good & ~hma.fast_mask(pages)
        sel = _top_hot_desc(pages[cand_mask], hot[cand_mask], budget)
        candidates_in = pages[cand_mask][sel]

        r_reads = counters.reads_of(in_fast)
        r_writes = counters.writes_of(in_fast)
        r_hot = r_reads + r_writes
        r_risk = _risk_ratio(r_writes, r_reads)
        evict = ~((r_hot > hot_threshold) & (r_risk >= risk_threshold))
        e_pages = in_fast[evict]
        e_hot = r_hot[evict]
        e_risk = r_risk[evict]
        # (risky-first flag, risk, hotness) ascending with ascending-
        # page ties — lexsort keys are listed minor-to-major.
        risky_flag = np.where((e_hot > 0) & (e_risk < risk_threshold), 0, 1)
        order = np.lexsort((e_pages, e_hot, e_risk, risky_flag))
        to_slow = e_pages[order][:budget]
        free = hma.fast_capacity_pages - len(in_fast) + len(to_slow)
        to_fast = candidates_in[:max(free, 0)]
        counters.reset()
        return to_fast.tolist(), to_slow.tolist()

    def hardware_cost_bytes(self, total_pages: int, fast_pages: int) -> int:
        # Two 8-bit counters per addressable page (Sec. 6.3: 8.5 MB for
        # 4.25M pages; 4.25 MB *additional* over the perf scheme).
        return FullCounters.storage_cost(
            total_pages, counter_bits=self.counters.counter_bits,
            counters_per_page=2,
        ).total_bytes


class CrossCountersMigration(MigrationMechanism):
    """MEA hotness + HBM-only Full-Counter risk (paper Section 6.4).

    The *performance unit* is a small MEA map that promotes up to
    ``mea_capacity`` globally hot pages every MEA interval.  The
    *reliability unit* keeps read/write counters only for HBM-resident
    pages and, every FC interval, demotes the high-risk ones; the
    performance unit orchestrates the actual swaps.
    """

    name = "cc-migration"

    def __init__(
        self,
        mea_capacity: int = 32,
        subintervals_per_interval: int = 16,
        counter_bits: int = 16,
        max_promotions: int = 32,
        policy_kernel: "str | None" = None,
    ) -> None:
        if subintervals_per_interval < 1:
            raise ValueError("subintervals_per_interval must be >= 1")
        if max_promotions < 1:
            raise ValueError("max_promotions must be >= 1")
        self.policy_kernel = resolve_policy_kernel(policy_kernel)
        # The array kernel keeps the MEA map in the flat-array form the
        # native chunk loop consumes directly; the sparse kernel keeps
        # the dict-based reference tracker.  Same members, counts, and
        # order either way.
        if self.policy_kernel == "array":
            self.mea = ArrayMeaTracker(capacity=mea_capacity)
        else:
            self.mea = MeaTracker(capacity=mea_capacity)
        self.max_promotions = max_promotions
        self.counters = make_counters(counter_bits, self.policy_kernel)
        self.subintervals_per_interval = subintervals_per_interval
        #: High-risk pages awaiting demotion, set at FC intervals and
        #: drained by the performance unit at MEA intervals.
        self._pending_out: "list[int]" = []

    def observe_chunk(self, pages: np.ndarray, is_write: np.ndarray,
                      times: "np.ndarray | None" = None) -> None:
        check_parallel_arrays(f"{self.name}.observe_chunk",
                              pages, is_write, times)
        # The MEA map sees every access; the risk counters are only
        # consulted for HBM residents (plan filters by residency).
        if self._observe_chunk_fused(pages, is_write):
            return
        self.mea.record_many(pages)
        self.counters.record_batch(pages, is_write)

    def _observe_chunk_fused(self, pages, is_write) -> bool:
        """Single-pass native MEA+FC update; False → two-call path.

        One C call walks the chunk once, feeding the MEA map and the
        risk counters' read/write tables together — no chunk copies,
        no deferred bincount fold.  Only taken when both trackers are
        the array kind, the fused kernel compiled, and the chunk
        arrays are already in native layout; results are bit-identical
        either way.
        """
        mea = self.mea
        counters = self.counters
        if not (type(mea) is ArrayMeaTracker
                and type(counters) is ArrayFullCounters
                and type(pages) is np.ndarray
                and pages.dtype == np.int64 and pages.ndim == 1
                and pages.flags.c_contiguous
                and type(is_write) is np.ndarray
                and is_write.dtype == np.bool_
                and is_write.flags.c_contiguous):
            return False
        fused = _mea_native.load_cc()
        if fused is None:
            return False
        n = int(pages.size)
        if n == 0:
            return True
        lo = int(pages.min())
        if lo < 0:
            raise ValueError("page numbers must be non-negative")
        reads, writes = counters.tables_for_native(int(pages.max()))
        mea.stream_length += n
        mea._c_n.value = mea._n
        fused(n, pages.ctypes.data, is_write.ctypes.data,
              mea.capacity, mea._entry_ptrs[0], mea._entry_ptrs[1],
              mea._c_n_ref, reads.ctypes.data, writes.ctypes.data,
              counters.max_value)
        mea._n = mea._c_n.value
        return True

    def plan_sub(self, hma: HeterogeneousMemory) -> MigrationPlan:
        """MEA interval: bring in the globally hot pages.

        Demotions happen here too when the reliability unit has pending
        high-risk pages — "migrations are performed in both directions"
        (Sec. 6.4.3).

        Two promotion tiers: any tracked page may fill a *free* HBM
        frame, but displacing a resident takes a page the MEA map is
        confident about (residual count >= 2).
        """
        if self._use_array_kernel(hma):
            return self._plan_sub_array(hma)
        return self._plan_sub_sparse(hma)

    def _plan_sub_sparse(self, hma) -> MigrationPlan:
        hot_all = self.mea.hot_pages()
        hot_strong = self.mea.hot_pages(min_count=2)
        self.mea.reset()

        in_fast_list = hma.pages_in(FAST)
        in_fast = set(in_fast_list)
        weak = [p for p in hot_all
                if p not in in_fast][: self.max_promotions]
        strong = [p for p in hot_strong
                  if p not in in_fast][: self.max_promotions]
        if not weak:
            return [], []

        free = hma.fast_capacity_pages - len(in_fast_list)
        to_fast = weak[:free]
        promoted = set(to_fast)
        swappers = [p for p in strong if p not in promoted]
        if not swappers:
            return to_fast, []

        # Paired exchange: queued high-risk pages leave first, then the
        # coldest residents, one per promotion, so HBM stays full.
        to_slow = self._pending_out[: len(swappers)]
        self._pending_out = self._pending_out[len(to_slow):]
        if len(to_slow) < len(swappers):
            extra = len(swappers) - len(to_slow)
            # Pages already queued for demotion must not be picked as
            # cold victims too — a page can only leave HBM once.
            queued = set(to_slow)
            victims = sorted(
                (p for p in in_fast_list if p not in queued),
                key=lambda p: self.counters.hotness(p),
            )[:extra]
            to_slow = to_slow + victims
        return to_fast + swappers, to_slow

    def _plan_sub_array(self, hma) -> MigrationPlan:
        """Array-kernel :meth:`plan_sub`.

        The whole tiering pass is a handful of numpy calls over the
        MEA map (at most ``capacity`` ~32 entries): one ``fast_mask``
        call answers residency for the whole map, a stable argsort
        ranks it (descending count, insertion-order ties — identical
        to the reference walk), boolean selection builds the weak and
        strong promotion tiers, ``fast_occupancy`` replaces the
        resident scan for the free-frame count, and the (large)
        resident array is only materialised when cold victims are
        actually needed.  Plans are bit-identical to the sparse walk.
        """
        mea = self.mea
        k = len(mea)
        if not k:
            mea.reset()
            return [], []
        # Views into the tracker's slot arrays stay valid after reset()
        # (it only zeroes the live count); nothing records into the
        # tracker inside this method.
        pages_arr = mea._pages[:k]
        counts_arr = mea._counts[:k]
        mea.reset()

        # Rank nonresident entries: descending residual count with
        # insertion-order ties (stable sort on negated counts).
        # Residency via a direct page-table gather — MEA pages are
        # validated non-negative on record, and a page beyond the
        # table (never mapped) raises IndexError -> checked fallback.
        try:
            nonres = hma._pt_device[pages_arr] != FAST
        except (IndexError, AttributeError):
            nonres = ~hma.fast_mask(pages_arr)
        order = np.argsort(-counts_arr, kind="stable")
        ranked = order[nonres[order]]
        mp = self.max_promotions
        weak = pages_arr[ranked[:mp]].tolist()
        strong_sel = ranked[counts_arr[ranked] >= 2][:mp]
        strong = pages_arr[strong_sel].tolist()
        if not weak:
            return [], []

        free = hma.fast_capacity_pages - hma.fast_occupancy()
        to_fast = weak[:free]
        promoted = set(to_fast)
        swappers = [p for p in strong if p not in promoted]
        if not swappers:
            return to_fast, []

        to_slow = self._pending_out[: len(swappers)]
        self._pending_out = self._pending_out[len(to_slow):]
        if len(to_slow) < len(swappers):
            extra = len(swappers) - len(to_slow)
            # Pages already queued for demotion must not be picked as
            # cold victims too.  Over-select the bottom
            # ``extra + queued`` residents, then drop the queued ones:
            # removing ``q`` elements from a ranking leaves the first
            # ``extra`` survivors inside the first ``extra + q``
            # positions, so this matches filtering the pool first
            # without an ``isin`` pass over all of HBM.
            in_fast_arr = hma.pages_in_array(FAST)
            vic_hot = self.counters.hotness_of(in_fast_arr)
            vsel = _bottom_hot_asc(in_fast_arr, vic_hot,
                                   extra + len(to_slow))
            queued = set(to_slow)
            victims: "list[int]" = []
            for p in in_fast_arr[vsel].tolist():
                if p not in queued:
                    victims.append(p)
                    if len(victims) == extra:
                        break
            to_slow = to_slow + victims
        return to_fast + swappers, to_slow

    def plan(self, hma: HeterogeneousMemory) -> MigrationPlan:
        """FC interval: run-time risk estimation for every HBM page.

        Only high-risk residents are queued for demotion (riskiest
        first, bounded to a quarter of HBM per interval so the
        mechanism cannot drain the fast memory); cold pages leave HBM
        only as victims of the performance unit's promotions.
        """
        if self._use_array_kernel(hma):
            return self._record_plan(self._plan_array(hma))
        return self._record_plan(self._plan_sparse(hma))

    def _plan_sparse(self, hma) -> MigrationPlan:
        counters = self.counters
        in_fast = hma.pages_in(FAST)
        risks = {p: counters.write_ratio(p) for p in in_fast
                 if counters.hotness(p) > 0}
        threshold = _mean_threshold(list(risks.values()))
        budget = max(1, hma.fast_capacity_pages // 4)
        high_risk = sorted(
            (p for p, r in risks.items() if r < threshold),
            key=lambda p: risks[p],
        )
        self._pending_out = high_risk[:budget]
        counters.reset()
        # The reliability unit only queues demotions; the performance
        # unit pairs them with promotions at the MEA steps that follow.
        return [], []

    def _plan_array(self, hma) -> MigrationPlan:
        counters = self.counters
        in_fast = hma.pages_in_array(FAST)
        reads = counters.reads_of(in_fast)
        writes = counters.writes_of(in_fast)
        active = (reads + writes) > 0
        r_pages = in_fast[active]
        risks = _risk_ratio(writes[active], reads[active])
        threshold = _mean_threshold(risks)
        budget = max(1, hma.fast_capacity_pages // 4)
        high = risks < threshold
        order = np.lexsort((r_pages[high], risks[high]))
        self._pending_out = r_pages[high][order][:budget].tolist()
        counters.reset()
        return [], []

    def hardware_cost_bytes(self, total_pages: int, fast_pages: int) -> int:
        # 16-bit risk counters for HBM pages only + the MEA unit
        # (Sec. 6.4.2: 512 KB + ~164 KB = 676 KB for 262K HBM pages).
        fc = FullCounters.storage_cost(
            fast_pages, counter_bits=self.counters.counter_bits,
            counters_per_page=1,
        ).total_bytes
        return fc + MeaTracker.storage_cost_bytes(self.mea.capacity)


class OracleRiskMigration(MigrationMechanism):
    """Ablation upper bound: run-time risk from *measured* AVF.

    Identical exchange policy to
    :class:`ReliabilityAwareFCMigration`, but the risk metric is the
    page's actual ACE time accumulated during the interval (tracked at
    page granularity) instead of the Wr/Rd proxy.  The ``array``
    kernel uses the chunk-batched
    :class:`~repro.avf.tracker.WindowedAceTracker`; the ``sparse``
    kernel keeps the per-request streaming
    :class:`~repro.avf.tracker.AceTracker` as the reference.
    Not hardware-realisable — AVF needs future knowledge the proxy
    approximates — so this mechanism exists to bound how much of the
    oracle's benefit the heuristic captures (paper Sec. 5.2/5.3
    discussion).
    """

    name = "oracle-risk-migration"

    def __init__(self, max_swap_fraction: float = 0.1,
                 policy_kernel: "str | None" = None) -> None:
        from repro.avf.tracker import AceTracker, WindowedAceTracker

        if not 0 < max_swap_fraction <= 1:
            raise ValueError("max_swap_fraction must be in (0, 1]")
        self.policy_kernel = resolve_policy_kernel(policy_kernel)
        self.counters = make_counters(8, self.policy_kernel)
        if self.policy_kernel == "array":
            self.tracker = WindowedAceTracker()
        else:
            self.tracker = AceTracker()
        self.max_swap_fraction = max_swap_fraction

    def observe_chunk(self, pages: np.ndarray, is_write: np.ndarray,
                      times: "np.ndarray | None" = None) -> None:
        check_parallel_arrays(f"{self.name}.observe_chunk",
                              pages, is_write, times)
        self.counters.record_batch(pages, is_write)
        if times is None:
            raise ValueError(
                "OracleRiskMigration needs per-request times; run it "
                "through the replay engine"
            )
        if self.policy_kernel == "array":
            self.tracker.observe_chunk(pages, times, is_write)
            return
        access = self.tracker.access
        for page, write, time in zip(np.asarray(pages).tolist(),
                                     np.asarray(is_write).tolist(),
                                     np.asarray(times).tolist()):
            access(int(page), float(time), bool(write))

    def window_ace_total(self) -> float:
        return float(sum(self.tracker.line_ace_times().values()))

    def plan(self, hma: HeterogeneousMemory) -> MigrationPlan:
        if self._use_array_kernel(hma):
            return self._record_plan(self._plan_array(hma))
        return self._record_plan(self._plan_sparse(hma))

    def _plan_sparse(self, hma) -> MigrationPlan:
        counters = self.counters
        touched = counters.touched_pages()
        hotness = {p: counters.hotness(p) for p in touched}
        ace = self.tracker.reset_window()
        hot_threshold = _mean_threshold(list(hotness.values()))
        ace_values = [ace.get(p, 0.0) for p in touched]
        ace_threshold = _mean_threshold(ace_values)

        in_fast_list = hma.pages_in(FAST)
        in_fast = set(in_fast_list)

        def is_good(page: int) -> bool:
            return (
                hotness.get(page, 0) > hot_threshold
                and ace.get(page, 0.0) <= ace_threshold
            )

        budget = max(1, int(hma.fast_capacity_pages * self.max_swap_fraction))
        candidates_in = sorted(
            (p for p in touched if p not in in_fast and is_good(p)),
            key=lambda p: -hotness[p],
        )[:budget]
        evictable = sorted(
            (p for p in in_fast_list if not is_good(p)),
            key=lambda p: -ace.get(p, 0.0),
        )
        to_slow = evictable[:budget]
        free = hma.fast_capacity_pages - len(in_fast) + len(to_slow)
        to_fast = candidates_in[:free]
        counters.reset()
        return to_fast, to_slow

    def _plan_array(self, hma) -> MigrationPlan:
        counters = self.counters
        tracker = self.tracker
        pages, reads, writes = counters.touched_arrays()
        hot = reads + writes
        ace = tracker.window_ace_of(pages)
        in_fast = hma.pages_in_array(FAST)
        r_ace = tracker.window_ace_of(in_fast)
        tracker.clear_window()

        hot_threshold = _mean_threshold(hot)
        ace_threshold = _mean_threshold(ace)
        budget = max(1, int(hma.fast_capacity_pages * self.max_swap_fraction))

        good = (hot > hot_threshold) & (ace <= ace_threshold)
        cand_mask = good & ~hma.fast_mask(pages)
        sel = _top_hot_desc(pages[cand_mask], hot[cand_mask], budget)
        candidates_in = pages[cand_mask][sel]

        r_hot = counters.hotness_of(in_fast)
        evict = ~((r_hot > hot_threshold) & (r_ace <= ace_threshold))
        e_pages = in_fast[evict]
        # Highest measured ACE first, ascending-page ties.
        order = np.lexsort((e_pages, -r_ace[evict]))
        to_slow = e_pages[order][:budget]
        free = hma.fast_capacity_pages - len(in_fast) + len(to_slow)
        to_fast = candidates_in[:max(free, 0)]
        counters.reset()
        return to_fast.tolist(), to_slow.tolist()

    def hardware_cost_bytes(self, total_pages: int, fast_pages: int) -> int:
        # Not realisable in hardware; report the FC cost as a floor.
        return FullCounters.storage_cost(total_pages).total_bytes


class ToleranceTieredMigration(MigrationMechanism):
    """Tolerance-tiered placement: hotness x windowed AVF x tolerance.

    Extends :class:`OracleRiskMigration`'s measured-ACE exchange with
    the per-page error-tolerance classes of
    :mod:`repro.core.annotations` (Heterogeneous-Reliability Memory,
    Luo et al.).  A page's effective risk is its windowed ACE time
    scaled by the intolerance weight of its class::

        risk(p) = window_ace(p) * tolerance_weight(p)

    so hot *tolerant* pages (refetchable caches, verifiable outputs)
    absorb the low-reliability fast tier under capacity pressure,
    while critical pages with the same measured ACE are evicted first.
    With no tolerance map every weight is 1.0 and the policy degrades
    exactly to :class:`OracleRiskMigration`.

    Both kernels rank identically: ``sparse`` streams per-request ACE
    through :class:`~repro.avf.tracker.AceTracker`, ``array`` batches
    through :class:`~repro.avf.tracker.WindowedAceTracker`; the
    weighting is one float64 multiply per page in either, so plans
    stay bit-identical across kernels.
    """

    name = "tolerance-tiered"

    def __init__(self, tolerance=None, max_swap_fraction: float = 0.1,
                 policy_kernel: "str | None" = None) -> None:
        from repro.avf.tracker import AceTracker, WindowedAceTracker

        if not 0 < max_swap_fraction <= 1:
            raise ValueError("max_swap_fraction must be in (0, 1]")
        self.policy_kernel = resolve_policy_kernel(policy_kernel)
        self.counters = make_counters(8, self.policy_kernel)
        if self.policy_kernel == "array":
            self.tracker = WindowedAceTracker()
        else:
            self.tracker = AceTracker()
        self.max_swap_fraction = max_swap_fraction
        self._weights = self._coerce_weights(tolerance)

    @staticmethod
    def _coerce_weights(tolerance) -> "np.ndarray | None":
        """Per-page float64 intolerance weights, or None for neutral."""
        if tolerance is None:
            return None
        if hasattr(tolerance, "weights"):  # ToleranceMap
            return np.asarray(tolerance.weights(), dtype=np.float64)
        return np.asarray(tolerance, dtype=np.float64)

    def _weight(self, page: int) -> float:
        weights = self._weights
        if weights is None or not 0 <= page < len(weights):
            return 1.0
        return float(weights[page])

    def _weights_of(self, pages: np.ndarray) -> np.ndarray:
        weights = self._weights
        pages = np.asarray(pages, dtype=np.int64)
        if weights is None:
            return np.ones(len(pages))
        out = np.ones(len(pages))
        valid = (pages >= 0) & (pages < len(weights))
        if valid.any():
            out[valid] = weights[pages[valid]]
        return out

    def observe_chunk(self, pages: np.ndarray, is_write: np.ndarray,
                      times: "np.ndarray | None" = None) -> None:
        check_parallel_arrays(f"{self.name}.observe_chunk",
                              pages, is_write, times)
        self.counters.record_batch(pages, is_write)
        if times is None:
            raise ValueError(
                "ToleranceTieredMigration needs per-request times; run "
                "it through the replay engine"
            )
        if self.policy_kernel == "array":
            self.tracker.observe_chunk(pages, times, is_write)
            return
        access = self.tracker.access
        for page, write, time in zip(np.asarray(pages).tolist(),
                                     np.asarray(is_write).tolist(),
                                     np.asarray(times).tolist()):
            access(int(page), float(time), bool(write))

    def window_ace_total(self) -> float:
        return float(sum(self.tracker.line_ace_times().values()))

    def plan(self, hma: HeterogeneousMemory) -> MigrationPlan:
        if self._use_array_kernel(hma):
            return self._record_plan(self._plan_array(hma))
        return self._record_plan(self._plan_sparse(hma))

    def _plan_sparse(self, hma) -> MigrationPlan:
        counters = self.counters
        touched = counters.touched_pages()
        hotness = {p: counters.hotness(p) for p in touched}
        ace = self.tracker.reset_window()

        def risk_of(page: int) -> float:
            return ace.get(page, 0.0) * self._weight(page)

        hot_threshold = _mean_threshold(list(hotness.values()))
        risk_threshold = _mean_threshold([risk_of(p) for p in touched])

        in_fast_list = hma.pages_in(FAST)
        in_fast = set(in_fast_list)

        def is_good(page: int) -> bool:
            return (
                hotness.get(page, 0) > hot_threshold
                and risk_of(page) <= risk_threshold
            )

        budget = max(1, int(hma.fast_capacity_pages * self.max_swap_fraction))
        candidates_in = sorted(
            (p for p in touched if p not in in_fast and is_good(p)),
            key=lambda p: -hotness[p],
        )[:budget]
        evictable = sorted(
            (p for p in in_fast_list if not is_good(p)),
            key=lambda p: -risk_of(p),
        )
        to_slow = evictable[:budget]
        free = hma.fast_capacity_pages - len(in_fast) + len(to_slow)
        to_fast = candidates_in[:free]
        counters.reset()
        return to_fast, to_slow

    def _plan_array(self, hma) -> MigrationPlan:
        counters = self.counters
        tracker = self.tracker
        pages, reads, writes = counters.touched_arrays()
        hot = reads + writes
        risk = tracker.window_ace_of(pages) * self._weights_of(pages)
        in_fast = hma.pages_in_array(FAST)
        r_risk = tracker.window_ace_of(in_fast) * self._weights_of(in_fast)
        tracker.clear_window()

        hot_threshold = _mean_threshold(hot)
        risk_threshold = _mean_threshold(risk)
        budget = max(1, int(hma.fast_capacity_pages * self.max_swap_fraction))

        good = (hot > hot_threshold) & (risk <= risk_threshold)
        cand_mask = good & ~hma.fast_mask(pages)
        sel = _top_hot_desc(pages[cand_mask], hot[cand_mask], budget)
        candidates_in = pages[cand_mask][sel]

        r_hot = counters.hotness_of(in_fast)
        evict = ~((r_hot > hot_threshold) & (r_risk <= risk_threshold))
        e_pages = in_fast[evict]
        # Highest weighted risk first, ascending-page ties.
        order = np.lexsort((e_pages, -r_risk[evict]))
        to_slow = e_pages[order][:budget]
        free = hma.fast_capacity_pages - len(in_fast) + len(to_slow)
        to_fast = candidates_in[:max(free, 0)]
        counters.reset()
        return to_fast.tolist(), to_slow.tolist()

    def hardware_cost_bytes(self, total_pages: int, fast_pages: int) -> int:
        # FC counters plus a 2-bit tolerance class per page (the class
        # itself comes free from the loader's annotation tables).
        return (FullCounters.storage_cost(total_pages).total_bytes
                + (2 * total_pages + 7) // 8)
