"""Dynamic migration mechanisms (paper Section 6).

A migration mechanism observes the memory request stream through its
hardware counters and, at interval boundaries, proposes page exchanges
between the fast and slow memories.  The replay engine
(:mod:`repro.sim.engine`) drives the mechanism: it feeds each interval's
accesses to :meth:`MigrationMechanism.observe_chunk`, then asks
:meth:`plan` (at coarse FC intervals) or :meth:`plan_sub` (at fine MEA
intervals) for migration pairs and charges the copy bandwidth.

Mechanisms:

* :class:`PerformanceFocusedMigration` — the Meswani et al. HMA scheme:
  one access counter per page, mean-hotness threshold, swap hot DDR
  pages for cold HBM pages every interval (Sec. 6.1).
* :class:`ReliabilityAwareFCMigration` — split counters into reads and
  writes; exchange *cold or high-risk* HBM pages for *hot and low-risk*
  DDR pages (Sec. 6.2).
* :class:`CrossCountersMigration` — MEA hotness tracking system-wide
  (fires every MEA interval) plus Full-Counter risk tracking for HBM
  pages only (fires every FC interval) (Sec. 6.4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.counters import FullCounters
from repro.core.mea import MeaTracker
from repro.dram.hma import FAST, HeterogeneousMemory

MigrationPlan = "tuple[list[int], list[int]]"


def _mean_threshold(values: "list[float]") -> float:
    return float(np.mean(values)) if values else 0.0


class MigrationMechanism(ABC):
    """Interface between the replay engine and a migration policy."""

    name: str = "base"
    #: Fine-grained planning steps per coarse interval (1 = none).
    subintervals_per_interval: int = 1

    @abstractmethod
    def observe_chunk(self, pages: np.ndarray, is_write: np.ndarray,
                      times: "np.ndarray | None" = None) -> None:
        """Feed one chunk of the access stream into the counters.

        ``times`` (logical time per request) is provided by the replay
        engine for mechanisms that need temporal information — the
        hardware-realisable mechanisms ignore it.
        """

    @abstractmethod
    def plan(self, hma: HeterogeneousMemory) -> MigrationPlan:
        """Coarse-interval (FC) migration decision.

        Returns ``(to_fast, to_slow)`` page lists; counters reset as
        the hardware would at interval boundaries.
        """

    def plan_sub(self, hma: HeterogeneousMemory) -> MigrationPlan:
        """Fine-interval (MEA) migration decision; default: none."""
        return [], []

    def hardware_cost_bytes(self, total_pages: int, fast_pages: int) -> int:
        """Additional tracking storage the mechanism needs."""
        return 0


class PerformanceFocusedMigration(MigrationMechanism):
    """State-of-the-art hotness-only migration (Meswani et al. [40]).

    A raw access counter per page; at each interval every slow-memory
    page whose count exceeds the interval's mean page hotness is a
    candidate, displacing the coldest pages currently in HBM.
    """

    name = "perf-migration"

    def __init__(self, counter_bits: int = 8,
                 max_swap_fraction: float = 0.1,
                 fixed_threshold: "int | None" = None) -> None:
        if not 0 < max_swap_fraction <= 1:
            raise ValueError("max_swap_fraction must be in (0, 1]")
        if fixed_threshold is not None and fixed_threshold < 0:
            raise ValueError("fixed_threshold must be non-negative")
        self.counters = FullCounters(counter_bits=counter_bits)
        #: Bound on per-interval exchange volume, as a fraction of HBM
        #: capacity — the migration engine cannot move more data per
        #: interval than the slow memory's bandwidth absorbs.
        self.max_swap_fraction = max_swap_fraction
        #: Hardwired hotness threshold; None (the paper's choice) uses
        #: the dynamic per-interval mean, which "serves every
        #: application fairly" (Sec. 6.1).
        self.fixed_threshold = fixed_threshold

    def observe_chunk(self, pages: np.ndarray, is_write: np.ndarray,
                      times: "np.ndarray | None" = None) -> None:
        self.counters.record_batch(pages, is_write)

    def plan(self, hma: HeterogeneousMemory) -> MigrationPlan:
        counters = self.counters
        touched = counters.touched_pages()
        hotness = {p: counters.hotness(p) for p in touched}
        if self.fixed_threshold is not None:
            threshold = float(self.fixed_threshold)
        else:
            threshold = _mean_threshold(list(hotness.values()))

        in_fast = set(hma.pages_in(FAST))
        budget = max(1, int(hma.fast_capacity_pages * self.max_swap_fraction))
        # Hot pages currently off-package, hottest first.
        candidates_in = sorted(
            (p for p, h in hotness.items() if h > threshold and p not in in_fast),
            key=lambda p: -hotness[p],
        )[:budget]
        # HBM pages ranked coldest first (untouched pages count 0);
        # swaps stop once a victim would be hotter than its replacement.
        eviction_order = iter(sorted(in_fast, key=lambda p: hotness.get(p, 0)))

        free_slots = hma.fast_capacity_pages - len(in_fast)
        to_fast: "list[int]" = []
        to_slow: "list[int]" = []
        for page in candidates_in:
            if free_slots > 0:
                to_fast.append(page)
                free_slots -= 1
                continue
            victim = next(eviction_order, None)
            if victim is None or hotness.get(victim, 0) >= hotness[page]:
                break
            to_slow.append(victim)
            to_fast.append(page)

        counters.reset()
        return to_fast, to_slow

    def hardware_cost_bytes(self, total_pages: int, fast_pages: int) -> int:
        # One 8-bit counter per addressable page.
        return FullCounters.storage_cost(
            total_pages, counter_bits=self.counters.counter_bits,
            counters_per_page=1,
        ).total_bytes


class ReliabilityAwareFCMigration(MigrationMechanism):
    """Full-Counter reliability-aware migration (paper Section 6.2).

    Two counters per page (reads, writes) give hotness = R + W and
    risk = Wr/Rd.  Mean hotness and mean risk over the interval's
    touched pages are the thresholds; the mechanism exchanges *cold or
    high-risk* HBM residents for *hot and low-risk* DDR pages.
    """

    name = "fc-migration"

    def __init__(self, counter_bits: int = 8,
                 max_swap_fraction: float = 0.1) -> None:
        if not 0 < max_swap_fraction <= 1:
            raise ValueError("max_swap_fraction must be in (0, 1]")
        self.counters = FullCounters(counter_bits=counter_bits)
        self.max_swap_fraction = max_swap_fraction

    def observe_chunk(self, pages: np.ndarray, is_write: np.ndarray,
                      times: "np.ndarray | None" = None) -> None:
        self.counters.record_batch(pages, is_write)

    def plan(self, hma: HeterogeneousMemory) -> MigrationPlan:
        counters = self.counters
        touched = counters.touched_pages()
        hotness = {p: counters.hotness(p) for p in touched}
        risk = {p: counters.write_ratio(p) for p in touched}
        hot_threshold = _mean_threshold(list(hotness.values()))
        # Low Wr/Rd means long live intervals, i.e. high risk.
        risk_threshold = _mean_threshold(list(risk.values()))

        in_fast = set(hma.pages_in(FAST))

        def is_good(page: int) -> bool:
            return (
                hotness.get(page, 0) > hot_threshold
                and risk.get(page, 0.0) >= risk_threshold
            )

        budget = max(1, int(hma.fast_capacity_pages * self.max_swap_fraction))
        candidates_in = sorted(
            (p for p in touched if p not in in_fast and is_good(p)),
            key=lambda p: -hotness[p],
        )[:budget]
        # Evict anything cold or high-risk.  Residents observed to be
        # high-risk this interval (traffic with low Wr/Rd) leave first
        # — they are the live SER exposure — then cold pages.  The
        # exchange is one-sided if necessary: high-risk pages leave HBM
        # even when too few hot & low-risk replacements exist, trading
        # performance for reliability as the paper's FC mechanism does.
        def eviction_key(page: int) -> "tuple[int, float, int]":
            observed_risky = (
                hotness.get(page, 0) > 0
                and risk.get(page, 0.0) < risk_threshold
            )
            return (0 if observed_risky else 1, risk.get(page, 0.0),
                    hotness.get(page, 0))

        evictable = sorted(
            (p for p in in_fast if not is_good(p)), key=eviction_key
        )
        to_slow = evictable[:budget]
        free = hma.fast_capacity_pages - len(in_fast) + len(to_slow)
        to_fast = candidates_in[:free]
        counters.reset()
        return to_fast, to_slow

    def hardware_cost_bytes(self, total_pages: int, fast_pages: int) -> int:
        # Two 8-bit counters per addressable page (Sec. 6.3: 8.5 MB for
        # 4.25M pages; 4.25 MB *additional* over the perf scheme).
        return FullCounters.storage_cost(
            total_pages, counter_bits=self.counters.counter_bits,
            counters_per_page=2,
        ).total_bytes


class CrossCountersMigration(MigrationMechanism):
    """MEA hotness + HBM-only Full-Counter risk (paper Section 6.4).

    The *performance unit* is a small MEA map that promotes up to
    ``mea_capacity`` globally hot pages every MEA interval.  The
    *reliability unit* keeps read/write counters only for HBM-resident
    pages and, every FC interval, demotes the high-risk ones; the
    performance unit orchestrates the actual swaps.
    """

    name = "cc-migration"

    def __init__(
        self,
        mea_capacity: int = 32,
        subintervals_per_interval: int = 16,
        counter_bits: int = 16,
        max_promotions: int = 32,
    ) -> None:
        if subintervals_per_interval < 1:
            raise ValueError("subintervals_per_interval must be >= 1")
        if max_promotions < 1:
            raise ValueError("max_promotions must be >= 1")
        self.mea = MeaTracker(capacity=mea_capacity)
        self.max_promotions = max_promotions
        self.counters = FullCounters(counter_bits=counter_bits)
        self.subintervals_per_interval = subintervals_per_interval
        #: High-risk pages awaiting demotion, set at FC intervals and
        #: drained by the performance unit at MEA intervals.
        self._pending_out: "list[int]" = []

    def observe_chunk(self, pages: np.ndarray, is_write: np.ndarray,
                      times: "np.ndarray | None" = None) -> None:
        # The MEA map sees every access; the risk counters are only
        # consulted for HBM residents (plan filters by residency).
        self.mea.record_many(pages)
        self.counters.record_batch(pages, is_write)

    def plan_sub(self, hma: HeterogeneousMemory) -> MigrationPlan:
        """MEA interval: bring in the globally hot pages.

        Demotions happen here too when the reliability unit has pending
        high-risk pages — "migrations are performed in both directions"
        (Sec. 6.4.3).
        """
        in_fast = set(hma.pages_in(FAST))
        # Two promotion tiers: any tracked page may fill a *free* HBM
        # frame, but displacing a resident takes a page the MEA map is
        # confident about (residual count >= 2).
        weak = [p for p in self.mea.hot_pages()
                if p not in in_fast][: self.max_promotions]
        strong = [p for p in self.mea.hot_pages(min_count=2)
                  if p not in in_fast][: self.max_promotions]
        self.mea.reset()
        if not weak:
            return [], []

        free = hma.fast_capacity_pages - len(in_fast)
        to_fast = weak[:free]
        promoted = set(to_fast)
        swappers = [p for p in strong if p not in promoted]
        if not swappers:
            return to_fast, []

        # Paired exchange: queued high-risk pages leave first, then the
        # coldest residents, one per promotion, so HBM stays full.
        to_slow = self._pending_out[: len(swappers)]
        self._pending_out = self._pending_out[len(to_slow):]
        if len(to_slow) < len(swappers):
            extra = len(swappers) - len(to_slow)
            victims = sorted(
                in_fast, key=lambda p: self.counters.hotness(p)
            )[:extra]
            to_slow = to_slow + victims
        return to_fast + swappers, to_slow

    def plan(self, hma: HeterogeneousMemory) -> MigrationPlan:
        """FC interval: run-time risk estimation for every HBM page.

        Only high-risk residents are queued for demotion (riskiest
        first, bounded to a quarter of HBM per interval so the
        mechanism cannot drain the fast memory); cold pages leave HBM
        only as victims of the performance unit's promotions.
        """
        counters = self.counters
        in_fast = hma.pages_in(FAST)
        risks = {p: counters.write_ratio(p) for p in in_fast
                 if counters.hotness(p) > 0}
        threshold = _mean_threshold(list(risks.values()))
        budget = max(1, hma.fast_capacity_pages // 4)
        high_risk = sorted(
            (p for p, r in risks.items() if r < threshold),
            key=lambda p: risks[p],
        )
        self._pending_out = high_risk[:budget]
        counters.reset()
        # The reliability unit only queues demotions; the performance
        # unit pairs them with promotions at the MEA steps that follow.
        return [], []

    def hardware_cost_bytes(self, total_pages: int, fast_pages: int) -> int:
        # 16-bit risk counters for HBM pages only + the MEA unit
        # (Sec. 6.4.2: 512 KB + ~164 KB = 676 KB for 262K HBM pages).
        fc = FullCounters.storage_cost(
            fast_pages, counter_bits=self.counters.counter_bits,
            counters_per_page=1,
        ).total_bytes
        return fc + MeaTracker.storage_cost_bytes(self.mea.capacity)


class OracleRiskMigration(MigrationMechanism):
    """Ablation upper bound: run-time risk from *measured* AVF.

    Identical exchange policy to
    :class:`ReliabilityAwareFCMigration`, but the risk metric is the
    page's actual ACE time accumulated during the interval (tracked at
    page granularity with the streaming
    :class:`~repro.avf.tracker.AceTracker`) instead of the Wr/Rd proxy.
    Not hardware-realisable — AVF needs future knowledge the proxy
    approximates — so this mechanism exists to bound how much of the
    oracle's benefit the heuristic captures (paper Sec. 5.2/5.3
    discussion).
    """

    name = "oracle-risk-migration"

    def __init__(self, max_swap_fraction: float = 0.1) -> None:
        from repro.avf.tracker import AceTracker

        if not 0 < max_swap_fraction <= 1:
            raise ValueError("max_swap_fraction must be in (0, 1]")
        self.counters = FullCounters()
        self.tracker = AceTracker()
        self.max_swap_fraction = max_swap_fraction

    def observe_chunk(self, pages: np.ndarray, is_write: np.ndarray,
                      times: "np.ndarray | None" = None) -> None:
        self.counters.record_batch(pages, is_write)
        if times is None:
            raise ValueError(
                "OracleRiskMigration needs per-request times; run it "
                "through the replay engine"
            )
        access = self.tracker.access
        for page, write, time in zip(pages.tolist(), is_write.tolist(),
                                     times.tolist()):
            access(int(page), float(time), bool(write))

    def plan(self, hma: HeterogeneousMemory) -> MigrationPlan:
        counters = self.counters
        touched = counters.touched_pages()
        hotness = {p: counters.hotness(p) for p in touched}
        ace = self.tracker.reset_window()
        hot_threshold = _mean_threshold(list(hotness.values()))
        ace_values = [ace.get(p, 0.0) for p in touched]
        ace_threshold = _mean_threshold(ace_values)

        in_fast = set(hma.pages_in(FAST))

        def is_good(page: int) -> bool:
            return (
                hotness.get(page, 0) > hot_threshold
                and ace.get(page, 0.0) <= ace_threshold
            )

        budget = max(1, int(hma.fast_capacity_pages * self.max_swap_fraction))
        candidates_in = sorted(
            (p for p in touched if p not in in_fast and is_good(p)),
            key=lambda p: -hotness[p],
        )[:budget]
        evictable = sorted(
            (p for p in in_fast if not is_good(p)),
            key=lambda p: -ace.get(p, 0.0),
        )
        to_slow = evictable[:budget]
        free = hma.fast_capacity_pages - len(in_fast) + len(to_slow)
        to_fast = candidates_in[:free]
        counters.reset()
        return to_fast, to_slow

    def hardware_cost_bytes(self, total_pages: int, fast_pages: int) -> int:
        # Not realisable in hardware; report the FC cost as a floor.
        return FullCounters.storage_cost(total_pages).total_bytes
