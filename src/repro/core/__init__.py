"""The paper's contribution: placements, migrations, annotations."""

from repro.core.counters import CounterCost, FullCounters, SaturatingCounter
from repro.core.mea import MeaEntry, MeaTracker
from repro.core.placement import (
    STATIC_POLICIES,
    BalancedPlacement,
    DdrOnlyPlacement,
    HotFractionPlacement,
    PerformanceFocusedPlacement,
    PlacementPolicy,
    ReliabilityFocusedPlacement,
    Wr2RatioPlacement,
    WrRatioPlacement,
)
from repro.core.quadrant import QuadrantSummary, quadrant_split
from repro.core.migration import (
    CrossCountersMigration,
    MigrationMechanism,
    OracleRiskMigration,
    PerformanceFocusedMigration,
    ReliabilityAwareFCMigration,
)
from repro.core.mempod import MemPodMigration
from repro.core.annotations import (
    AnnotationPlan,
    StructureProfile,
    plan_annotations,
    profile_structures,
)

__all__ = [
    "SaturatingCounter",
    "FullCounters",
    "CounterCost",
    "MeaTracker",
    "MeaEntry",
    "PlacementPolicy",
    "DdrOnlyPlacement",
    "PerformanceFocusedPlacement",
    "ReliabilityFocusedPlacement",
    "BalancedPlacement",
    "WrRatioPlacement",
    "Wr2RatioPlacement",
    "HotFractionPlacement",
    "STATIC_POLICIES",
    "QuadrantSummary",
    "quadrant_split",
    "MigrationMechanism",
    "PerformanceFocusedMigration",
    "ReliabilityAwareFCMigration",
    "CrossCountersMigration",
    "OracleRiskMigration",
    "MemPodMigration",
    "AnnotationPlan",
    "StructureProfile",
    "plan_annotations",
    "profile_structures",
]
