"""Optional compiled Misra-Gries chunk kernel for the MEA tracker.

:meth:`repro.core.mea.MeaTracker.record_many` is inherently sequential
— membership changes on every insert and decrement-all step — so after
the leading hit-run batch its cost is pure interpreter dispatch.  This
module compiles the literal textbook update loop over the tracker's
(at most ``capacity``-entry) map to a tiny shared library with the
system C compiler and loads it through :mod:`ctypes`, exactly like
:mod:`repro.sim._ckernel` does for the replay loop.  A linear scan
over <= 32 entries is a handful of cycles in C, so the kernel makes
per-access cost negligible.

The kernel operates on the *residual* counts (textbook semantics);
the Python offset formulation is provably state-equivalent under
normalisation (see the property tests pinning both against each
other), so the tracker converts its state to residual arrays, runs
the chunk, and reloads — same members, same residual counts, same
insertion order.

Everything degrades gracefully: no compiler, a failed build, or
``REPRO_MEA_NATIVE=0`` mean :func:`load` returns ``None`` and the
tracker keeps its tuned pure-Python loop, which is bit-identical.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings


class NativeMeaUnavailableWarning(RuntimeWarning):
    """The compiled MEA kernel could not be built or loaded.

    Emitted once per process; the tracker transparently falls back to
    the bit-identical pure-Python update loop.
    """


_SOURCE = r"""
#include <stdint.h>

/* Misra-Gries over one chunk.  entry_pages/entry_counts hold the map
 * in insertion order (first *n_entries slots valid, counts are
 * residuals, always >= 1).  Semantics are the literal textbook
 * algorithm: a full-map miss decrements every entry and dead entries
 * compact in place, preserving order — exactly the dict semantics of
 * the Python tracker.
 *
 * Two equivalent realisations (the members, residual counts, and
 * insertion order after any stream are identical):
 *
 * - a plain linear-scan loop, kept for outsized capacities;
 * - the offset formulation behind a linear-probing hash of the member
 *   set (the default): membership is O(1) instead of O(capacity), a
 *   decrement-all is one `off++`, and entries die only at a lazy
 *   compaction scan once `off` can have caught up with the smallest
 *   stored count.  This is the same amortisation the Python tracker
 *   uses, one level lower.
 */

static void mea_chunk_scan(
    int64_t n,
    const int64_t *pages,
    int64_t capacity,
    int64_t *entry_pages,
    int64_t *entry_counts,
    int64_t *n_entries)
{
    int64_t k = *n_entries;
    for (int64_t i = 0; i < n; i++) {
        int64_t p = pages[i];
        int64_t j = -1;
        for (int64_t e = 0; e < k; e++) {
            if (entry_pages[e] == p) { j = e; break; }
        }
        if (j >= 0) {
            entry_counts[j]++;
        } else if (k < capacity) {
            entry_pages[k] = p;
            entry_counts[k] = 1;
            k++;
        } else {
            int64_t w = 0;
            for (int64_t e = 0; e < k; e++) {
                int64_t c = entry_counts[e] - 1;
                if (c > 0) {
                    entry_pages[w] = entry_pages[e];
                    entry_counts[w] = c;
                    w++;
                }
            }
            k = w;
        }
    }
    *n_entries = k;
}

#define MEA_MAX_HASHED_CAPACITY 4096

/* Open-addressing member table with the page key stored inline
 * (tpage) next to its entry index (tidx, -1 = empty) — the probe is a
 * single dependent load per step instead of an index-then-gather
 * pair. */
static inline int64_t mea_probe(const int64_t *tpage,
                                const int32_t *tidx,
                                int64_t mask, int64_t p)
{
    /* Returns the table index holding p, or the first empty table
     * index of its probe chain. */
    uint64_t h = ((uint64_t)p * 0x9E3779B97F4A7C15ULL) & (uint64_t)mask;
    while (tidx[h] >= 0 && tpage[h] != p)
        h = (h + 1) & (uint64_t)mask;
    return (int64_t)h;
}

void repro_mea_chunk(
    int64_t n,
    const int64_t *pages,
    int64_t capacity,
    int64_t *entry_pages,
    int64_t *entry_counts,
    int64_t *n_entries)
{
    if (capacity > MEA_MAX_HASHED_CAPACITY) {
        mea_chunk_scan(n, pages, capacity, entry_pages, entry_counts,
                       n_entries);
        return;
    }
    int64_t tsize = 64;
    while (tsize < capacity * 4)
        tsize <<= 1;
    int64_t mask = tsize - 1;
    int64_t tpage[tsize];
    int32_t tidx[tsize];

    int64_t k = *n_entries;
    int64_t off = 0;
    /* Stored counts are residual + off; minstored is a lower bound on
     * the smallest stored count (exact after inserts and compactions,
     * possibly stale-low after member hits — compaction then finds
     * nothing dead and refreshes it). */
    int64_t minstored = INT64_MAX;
    for (int64_t t = 0; t < tsize; t++)
        tidx[t] = -1;
    for (int64_t e = 0; e < k; e++) {
        int64_t h = mea_probe(tpage, tidx, mask, entry_pages[e]);
        tpage[h] = entry_pages[e];
        tidx[h] = (int32_t)e;
        if (entry_counts[e] < minstored)
            minstored = entry_counts[e];
    }

    for (int64_t i = 0; i < n; i++) {
        int64_t p = pages[i];
        int64_t h = mea_probe(tpage, tidx, mask, p);
        if (tidx[h] >= 0) {
            entry_counts[tidx[h]]++;
        } else if (k < capacity) {
            entry_pages[k] = p;
            entry_counts[k] = off + 1;
            tpage[h] = p;
            tidx[h] = (int32_t)k;
            k++;
            minstored = off + 1;
        } else {
            off++;
            if (off >= minstored) {
                /* Compact dead entries in insertion order and rebuild
                 * the member hash. */
                int64_t w = 0;
                for (int64_t e = 0; e < k; e++) {
                    if (entry_counts[e] > off) {
                        entry_pages[w] = entry_pages[e];
                        entry_counts[w] = entry_counts[e];
                        w++;
                    }
                }
                k = w;
                for (int64_t t = 0; t < tsize; t++)
                    tidx[t] = -1;
                minstored = INT64_MAX;
                for (int64_t e = 0; e < k; e++) {
                    int64_t h2 = mea_probe(tpage, tidx, mask,
                                           entry_pages[e]);
                    tpage[h2] = entry_pages[e];
                    tidx[h2] = (int32_t)e;
                    if (entry_counts[e] < minstored)
                        minstored = entry_counts[e];
                }
                if (k == 0)
                    minstored = off;
            }
        }
    }
    /* Normalise back to residual counts for the caller. */
    if (off)
        for (int64_t e = 0; e < k; e++)
            entry_counts[e] -= off;
    *n_entries = k;
}

/* Fused cross-counters chunk: one pass feeds the MEA map and the
 * full-counter read/write tables together.  The saturating per-access
 * increment is bit-identical to folding a whole-chunk bincount and
 * clipping at max_value (monotone +1 steps commute with the clip).
 * The caller guarantees 0 <= page < table_size for every access. */
void repro_cc_chunk(
    int64_t n,
    const int64_t *pages,
    const uint8_t *is_write,
    int64_t capacity,
    int64_t *entry_pages,
    int64_t *entry_counts,
    int64_t *n_entries,
    int64_t *reads,
    int64_t *writes,
    int64_t max_value)
{
    int64_t *tables[2] = { reads, writes };
    for (int64_t i = 0; i < n; i++) {
        int64_t *t = tables[is_write[i] != 0];
        int64_t p = pages[i];
        if (t[p] < max_value)
            t[p]++;
    }
    repro_mea_chunk(n, pages, capacity, entry_pages, entry_counts,
                    n_entries);
}
"""

_lock = threading.Lock()
#: ``((mea_fn, cc_fn) | None, error)`` once resolved, success or
#: failure alike — the build (and any compiler invocation) happens at
#: most once per process.
_cached: "tuple[object, str | None] | None" = None


def _cache_dir() -> str:
    from repro.config import knob_value

    override = knob_value("ckernel_dir")
    if override:
        return override
    return os.path.join(tempfile.gettempdir(),
                        f"repro-ckernel-{os.getuid()}")


def _build(so_path: str) -> "str | None":
    """Compile the kernel; None on success, else an error detail."""
    compiler = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        return "no C compiler found (set CC, or install cc/gcc)"
    directory = os.path.dirname(so_path)
    c_path = so_path[:-3] + ".c"
    tmp_so = so_path + f".tmp{os.getpid()}"
    try:
        os.makedirs(directory, exist_ok=True)
        with open(c_path, "w") as fh:
            fh.write(_SOURCE)
        subprocess.run(
            [compiler, "-O3", "-fPIC", "-shared", "-o", tmp_so, c_path],
            check=True, capture_output=True, timeout=120,
        )
        os.replace(tmp_so, so_path)  # atomic under concurrent builds
        return None
    except (OSError, subprocess.SubprocessError) as exc:
        try:
            os.unlink(tmp_so)
        except OSError:
            pass
        stderr = getattr(exc, "stderr", None)
        detail = f"{compiler}: {exc!r}"
        if stderr:
            detail += "\n" + stderr.decode(errors="replace").strip()
        return detail


def _bind(so_path: str):
    lib = ctypes.CDLL(so_path)
    fn = lib.repro_mea_chunk
    p_i64 = ctypes.POINTER(ctypes.c_int64)
    # Chunk-data pointers are void* so hot callers can pass the raw
    # ``arr.ctypes.data`` address without building a POINTER object
    # per call; POINTER(c_int64) instances are accepted there too.
    fn.argtypes = [ctypes.c_int64, ctypes.c_void_p, ctypes.c_int64,
                   p_i64, p_i64, p_i64]
    fn.restype = None
    cc = lib.repro_cc_chunk
    cc.argtypes = [ctypes.c_int64, ctypes.c_void_p, ctypes.c_void_p,
                   ctypes.c_int64, p_i64, p_i64, p_i64,
                   ctypes.c_void_p, ctypes.c_void_p, ctypes.c_int64]
    cc.restype = None
    return fn, cc


def _load_all():
    """``(mea_fn, cc_fn)`` or ``None`` when unavailable.

    The outcome — success *or* failure — is memoised per process, so a
    broken toolchain costs exactly one ``cc`` invocation and one
    :class:`NativeMeaUnavailableWarning` before every caller silently
    gets the Python fallback.
    """
    global _cached
    if _cached is not None:
        return _cached[0]
    with _lock:
        if _cached is not None:
            return _cached[0]
        from repro.config import knob_value

        fns, error = None, None
        if knob_value("mea_native"):
            digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
            so_path = os.path.join(_cache_dir(), f"mea-{digest}.so")
            try:
                if not os.path.exists(so_path):
                    error = _build(so_path)
                if error is None:
                    fns = _bind(so_path)
            except OSError as exc:
                fns, error = None, repr(exc)
            if fns is None and error is None:
                error = "unknown load failure"
        _cached = (fns, error)
        if error is not None:
            warnings.warn(
                "native MEA kernel unavailable, falling back to the "
                f"pure-Python update loop (bit-identical, slower): "
                f"{error}",
                NativeMeaUnavailableWarning,
                stacklevel=2,
            )
        return fns


def load():
    """The compiled MEA chunk kernel, or ``None`` when unavailable."""
    fns = _load_all()
    return fns[0] if fns is not None else None


def load_cc():
    """The fused cross-counters (MEA+FC) chunk kernel, or ``None``."""
    fns = _load_all()
    return fns[1] if fns is not None else None


def build_error() -> "str | None":
    """The cached build/load failure detail, if any (after :func:`load`)."""
    return _cached[1] if _cached is not None else None


def _reset_for_tests() -> None:
    """Forget the per-process memoised outcome (chaos tests only)."""
    global _cached
    with _lock:
        _cached = None


def available() -> bool:
    return load() is not None


def _pi64(a):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def run_chunk(fn, pages, capacity, entry_pages, entry_counts,
              n_entries: int) -> int:
    """Invoke the compiled loop; returns the new entry count.

    ``entry_pages``/``entry_counts`` are C-contiguous int64 arrays of
    ``capacity`` slots holding the map in insertion order (the first
    ``n_entries`` slots valid), mutated in place.  ``entry_counts``
    carries residual counts on entry and exit.
    """
    count = ctypes.c_int64(n_entries)
    fn(len(pages), _pi64(pages), int(capacity),
       _pi64(entry_pages), _pi64(entry_counts), ctypes.byref(count))
    return count.value
