"""Hardware activity counters (paper Sections 6.1-6.3).

The dynamic mechanisms track per-page activity with saturating
hardware counters:

* the performance-focused migration scheme (Meswani et al.) keeps one
  raw access counter per page;
* the reliability-aware Full Counter (FC) scheme splits it into a read
  counter and a write counter, so hotness (R+W) *and* risk (Wr/Rd) are
  measurable;
* the Cross Counter scheme keeps FC counters only for the pages in HBM.

The classes also expose the storage-cost arithmetic of Sections
6.3/6.4 (8-bit saturating counters, 16 bits per page for FC).

Two interchangeable backends implement the counter bank:

* :class:`FullCounters` — sparse dict storage, one Python update per
  unique page.  It is the reference oracle: simple, slow, and the
  semantics the parity tests pin the fast path against.
* :class:`ArrayFullCounters` — dense per-page read/write arrays
  updated with ``np.bincount`` + clip saturation, so a whole trace
  chunk lands in one vectorised pass and the planners can rank pages
  without building per-page dicts.

``make_counters`` picks the backend from the ``REPRO_POLICY_KERNEL``
environment variable (``array``, the default, or ``sparse``).  Both
backends are bit-identical: integer saturating counts, touched pages
reported in ascending page order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

#: Recognised ``REPRO_POLICY_KERNEL`` / ``policy_kernel=`` values.
POLICY_KERNELS = ("array", "sparse")


def resolve_policy_kernel(kernel: "str | None" = None) -> str:
    """Resolve the policy-layer backend via the ``policy_kernel`` knob
    (argument > scoped override > ``REPRO_POLICY_KERNEL`` > default)."""
    from repro.config import knob_value

    kernel = knob_value("policy_kernel", kernel)
    if kernel not in POLICY_KERNELS:
        raise ValueError(
            f"policy kernel must be one of {POLICY_KERNELS}, got {kernel!r}"
        )
    return kernel


def check_parallel_arrays(name: str, pages, *others) -> None:
    """Validate that parallel per-request arrays have matching lengths.

    Mismatched arrays would otherwise mis-count silently through numpy
    broadcasting (e.g. a scalar ``is_write`` selecting everything).
    """
    if isinstance(pages, np.ndarray) and pages.ndim == 1:
        shape = pages.shape
        if all(o is None or (isinstance(o, np.ndarray) and o.shape == shape)
               for o in others):
            return
    shapes = [np.shape(pages)] + [np.shape(o) for o in others if o is not None]
    lengths = {s[0] if len(s) == 1 else None for s in shapes}
    if len(lengths) > 1 or None in lengths:
        raise ValueError(
            f"{name}: parallel arrays must be 1-D with equal lengths, "
            f"got shapes {shapes}"
        )


@dataclass
class CounterCost:
    """Storage cost of a counter configuration."""

    bits_per_page: int
    pages_tracked: int

    @property
    def total_bytes(self) -> int:
        return self.bits_per_page * self.pages_tracked // 8

    @property
    def total_mb(self) -> float:
        return self.total_bytes / (1024 * 1024)


class SaturatingCounter:
    """A single n-bit saturating counter (scalar reference model)."""

    def __init__(self, bits: int = 8) -> None:
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.value = 0

    def increment(self, by: int = 1) -> int:
        self.value = min(self.max_value, self.value + by)
        return self.value

    def reset(self) -> None:
        self.value = 0


class FullCounters:
    """Per-page read/write saturating counters over a sparse page set.

    The hardware proposal dedicates counters to every addressable
    page; in simulation we store them sparsely but saturate and cost
    them as the hardware would.
    """

    kind = "sparse"

    def __init__(self, counter_bits: int = 8) -> None:
        if counter_bits <= 0:
            raise ValueError("counter_bits must be positive")
        self.counter_bits = counter_bits
        self.max_value = (1 << counter_bits) - 1
        self._reads: "dict[int, int]" = {}
        self._writes: "dict[int, int]" = {}

    def record(self, page: int, is_write: bool) -> None:
        table = self._writes if is_write else self._reads
        table[page] = min(self.max_value, table.get(page, 0) + 1)

    def record_batch(self, pages: np.ndarray, is_write: np.ndarray) -> None:
        """Bulk update for a trace chunk (one Python step per page)."""
        check_parallel_arrays("record_batch", pages, is_write)
        is_write = np.asarray(is_write, dtype=bool)
        for selector, table in ((is_write, self._writes), (~is_write, self._reads)):
            if not selector.any():
                continue
            unique, counts = np.unique(np.asarray(pages)[selector],
                                       return_counts=True)
            for page, count in zip(unique, counts):
                page = int(page)
                table[page] = min(self.max_value, table.get(page, 0) + int(count))

    def record_counts(self, pages_r: np.ndarray, counts_r: np.ndarray,
                      pages_w: np.ndarray, counts_w: np.ndarray) -> None:
        """Bulk update from pre-aggregated per-page tallies.

        ``(pages, counts)`` pairs are the ``np.unique(...,
        return_counts=True)`` of a chunk's read and write streams;
        applying them lands the same saturated values (and the same
        ascending writes-then-reads insertion order) as
        :meth:`record_batch` on the raw chunk.  The multi-run engine
        aggregates once per chunk and feeds every config from it.
        """
        for pages, counts, table in ((pages_w, counts_w, self._writes),
                                     (pages_r, counts_r, self._reads)):
            for page, count in zip(pages.tolist(), counts.tolist()):
                table[page] = min(self.max_value,
                                  table.get(page, 0) + count)

    def reads(self, page: int) -> int:
        return self._reads.get(page, 0)

    def writes(self, page: int) -> int:
        return self._writes.get(page, 0)

    def hotness(self, page: int) -> int:
        """Raw access count: reads + writes."""
        return self.reads(page) + self.writes(page)

    def write_ratio(self, page: int) -> float:
        """Run-time risk metric Wr/Rd (low ratio = high risk)."""
        return self.writes(page) / max(1, self.reads(page))

    def touched_pages(self) -> "list[int]":
        """Pages with any activity, in ascending page order.

        The canonical ordering makes the planners deterministic and is
        what the array backend reproduces bit-for-bit.
        """
        return sorted(self._reads.keys() | self._writes.keys())

    def touched_arrays(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """``(pages, reads, writes)`` arrays in ascending page order."""
        pages = np.array(self.touched_pages(), dtype=np.int64)
        reads = np.array([self._reads.get(int(p), 0) for p in pages],
                         dtype=np.int64)
        writes = np.array([self._writes.get(int(p), 0) for p in pages],
                          dtype=np.int64)
        return pages, reads, writes

    def reads_of(self, pages: np.ndarray) -> np.ndarray:
        """Per-page read counts for an int64 page array."""
        return np.array([self._reads.get(int(p), 0) for p in pages],
                        dtype=np.int64)

    def writes_of(self, pages: np.ndarray) -> np.ndarray:
        """Per-page write counts for an int64 page array."""
        return np.array([self._writes.get(int(p), 0) for p in pages],
                        dtype=np.int64)

    def hotness_of(self, pages: np.ndarray) -> np.ndarray:
        """Per-page access counts (reads + writes) for a page array."""
        return self.reads_of(pages) + self.writes_of(pages)

    def snapshot(self) -> "dict[int, tuple[int, int]]":
        """page -> (reads, writes) for every touched page."""
        out = {}
        for page in self.touched_pages():
            out[page] = (self.reads(page), self.writes(page))
        return out

    def reset(self) -> None:
        """Clear all counters (done at each migration interval)."""
        self._reads.clear()
        self._writes.clear()

    @staticmethod
    def storage_cost(pages_tracked: int, counter_bits: int = 8,
                     counters_per_page: int = 2) -> CounterCost:
        """Hardware cost of FC tracking (Sec. 6.3: 16 bits x 4.25M
        pages = 8.5 MB for the example 17 GB HMA)."""
        return CounterCost(
            bits_per_page=counter_bits * counters_per_page,
            pages_tracked=pages_tracked,
        )


class ArrayFullCounters:
    """Dense array-backed read/write saturating counters.

    Same observable behaviour as :class:`FullCounters` (saturation per
    recorded batch, ascending-page ``touched_pages``), but the counter
    bank is two flat int64 arrays indexed by page number, grown
    geometrically on demand.  ``record_batch`` queues its chunk;
    pending chunks fold into the tables in one deferred ``np.bincount``
    + clip pass at the next query, so the full-table cost is paid once
    per interval rather than once per chunk.  ``touched_arrays`` is a
    ``flatnonzero`` — no per-page Python work anywhere.

    Page numbers from the trace generators are compact (0..footprint),
    which keeps the arrays small.
    """

    kind = "array"

    def __init__(self, counter_bits: int = 8) -> None:
        if counter_bits <= 0:
            raise ValueError("counter_bits must be positive")
        self.counter_bits = counter_bits
        self.max_value = (1 << counter_bits) - 1
        self._reads = np.zeros(1024, dtype=np.int64)
        self._writes = np.zeros(1024, dtype=np.int64)
        #: Recorded-but-unapplied ``(pages, is_write)`` chunks.  Batches
        #: accumulate here and fold into the dense tables in one
        #: bincount pass at the first query — saturating clips commute
        #: over non-negative adds (``clip(clip(a+b)+c) == clip(a+b+c)``),
        #: so deferral is exactly the per-batch semantics while paying
        #: the full-table pass once per interval instead of per chunk.
        self._pending: "list[tuple[np.ndarray, np.ndarray]]" = []

    def _ensure(self, max_page: int) -> None:
        size = len(self._reads)
        if max_page < size:
            return
        while size <= max_page:
            size *= 2
        reads = np.zeros(size, dtype=np.int64)
        writes = np.zeros(size, dtype=np.int64)
        reads[: len(self._reads)] = self._reads
        writes[: len(self._writes)] = self._writes
        self._reads = reads
        self._writes = writes

    def record(self, page: int, is_write: bool) -> None:
        page = int(page)
        if page < 0:
            raise ValueError("page numbers must be non-negative")
        self._flush()
        self._ensure(page)
        table = self._writes if is_write else self._reads
        table[page] = min(self.max_value, int(table[page]) + 1)

    def record_batch(self, pages: np.ndarray, is_write: np.ndarray) -> None:
        """Queue one chunk; folded in vectorially at the next query."""
        check_parallel_arrays("record_batch", pages, is_write)
        if not len(pages):
            return
        pages = np.asarray(pages, dtype=np.int64)
        # Copies: the caller is free to reuse its chunk buffers before
        # the deferred flush runs.  Negative pages are rejected at the
        # flush (one scan over the concatenated batch, not one per
        # chunk).
        self._pending.append(
            (pages.copy(), np.asarray(is_write, dtype=bool).copy()))

    def record_counts(self, pages_r: np.ndarray, counts_r: np.ndarray,
                      pages_w: np.ndarray, counts_w: np.ndarray) -> None:
        """Bulk update from pre-aggregated per-page tallies.

        Saturating clips commute over non-negative adds, so applying a
        chunk's unique-page counts directly (clipping per call) lands
        the same tables as queueing the raw chunk through
        :meth:`record_batch` and clipping at the deferred flush.
        """
        max_page = -1
        for pages in (pages_r, pages_w):
            if len(pages):
                if int(pages.min()) < 0:
                    raise ValueError("page numbers must be non-negative")
                max_page = max(max_page, int(pages.max()))
        if max_page < 0:
            return
        self._flush()
        self._ensure(max_page)
        for pages, counts, table in ((pages_w, counts_w, self._writes),
                                     (pages_r, counts_r, self._reads)):
            if len(pages):
                table[pages] += counts
                np.minimum(table, self.max_value, out=table)

    def tables_for_native(self, max_page: int) \
            -> "tuple[np.ndarray, np.ndarray]":
        """``(reads, writes)`` tables for in-place native accumulation.

        Drains any queued chunks and grows the tables to cover
        ``max_page`` first, so a compiled kernel can apply saturating
        per-access increments directly (bit-identical to
        :meth:`record_batch` + the deferred flush).
        """
        self._flush()
        self._ensure(max_page)
        return self._reads, self._writes

    def _flush(self) -> None:
        """Fold pending chunks into the tables (bincount + clip)."""
        if not self._pending:
            return
        chunks = self._pending
        self._pending = []
        pages = (chunks[0][0] if len(chunks) == 1
                 else np.concatenate([c[0] for c in chunks]))
        is_write = (chunks[0][1] if len(chunks) == 1
                    else np.concatenate([c[1] for c in chunks]))
        if pages.min() < 0:
            raise ValueError("page numbers must be non-negative")
        self._ensure(int(pages.max()))
        size = len(self._reads)
        writes_bc = np.bincount(pages[is_write], minlength=size)
        reads_bc = np.bincount(pages, minlength=size) - writes_bc
        for delta, table in ((writes_bc, self._writes),
                             (reads_bc, self._reads)):
            table += delta
            np.minimum(table, self.max_value, out=table)

    def reads(self, page: int) -> int:
        self._flush()
        page = int(page)
        return int(self._reads[page]) if page < len(self._reads) else 0

    def writes(self, page: int) -> int:
        self._flush()
        page = int(page)
        return int(self._writes[page]) if page < len(self._writes) else 0

    def hotness(self, page: int) -> int:
        """Raw access count: reads + writes."""
        return self.reads(page) + self.writes(page)

    def write_ratio(self, page: int) -> float:
        """Run-time risk metric Wr/Rd (low ratio = high risk)."""
        return self.writes(page) / max(1, self.reads(page))

    def touched_pages(self) -> "list[int]":
        self._flush()
        return np.flatnonzero(self._reads | self._writes).tolist()

    def touched_arrays(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """``(pages, reads, writes)`` arrays in ascending page order."""
        self._flush()
        pages = np.flatnonzero(self._reads | self._writes)
        return pages, self._reads[pages], self._writes[pages]

    def _lookup(self, table: np.ndarray, pages: np.ndarray) -> np.ndarray:
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size and int(pages.min()) >= 0 \
                and int(pages.max()) < len(table):
            return table[pages]
        out = np.zeros(len(pages), dtype=np.int64)
        valid = (pages >= 0) & (pages < len(table))
        out[valid] = table[pages[valid]]
        return out

    def reads_of(self, pages: np.ndarray) -> np.ndarray:
        """Per-page read counts for an int64 page array."""
        self._flush()  # before grabbing the table: flush may grow it
        return self._lookup(self._reads, pages)

    def writes_of(self, pages: np.ndarray) -> np.ndarray:
        """Per-page write counts for an int64 page array."""
        self._flush()
        return self._lookup(self._writes, pages)

    def hotness_of(self, pages: np.ndarray) -> np.ndarray:
        """Per-page access counts (reads + writes) for a page array."""
        return self.reads_of(pages) + self.writes_of(pages)

    def snapshot(self) -> "dict[int, tuple[int, int]]":
        """page -> (reads, writes) for every touched page."""
        pages, reads, writes = self.touched_arrays()
        return {int(p): (int(r), int(w))
                for p, r, w in zip(pages, reads, writes)}

    def reset(self) -> None:
        """Clear all counters (done at each migration interval)."""
        self._pending.clear()
        self._reads[:] = 0
        self._writes[:] = 0

    storage_cost = staticmethod(FullCounters.storage_cost)


def make_counters(counter_bits: int = 8,
                  kernel: "str | None" = None):
    """Counter bank for the resolved policy kernel (see module doc)."""
    if resolve_policy_kernel(kernel) == "array":
        return ArrayFullCounters(counter_bits=counter_bits)
    return FullCounters(counter_bits=counter_bits)
