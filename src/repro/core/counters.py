"""Hardware activity counters (paper Sections 6.1-6.3).

The dynamic mechanisms track per-page activity with saturating
hardware counters:

* the performance-focused migration scheme (Meswani et al.) keeps one
  raw access counter per page;
* the reliability-aware Full Counter (FC) scheme splits it into a read
  counter and a write counter, so hotness (R+W) *and* risk (Wr/Rd) are
  measurable;
* the Cross Counter scheme keeps FC counters only for the pages in HBM.

The classes also expose the storage-cost arithmetic of Sections
6.3/6.4 (8-bit saturating counters, 16 bits per page for FC).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CounterCost:
    """Storage cost of a counter configuration."""

    bits_per_page: int
    pages_tracked: int

    @property
    def total_bytes(self) -> int:
        return self.bits_per_page * self.pages_tracked // 8

    @property
    def total_mb(self) -> float:
        return self.total_bytes / (1024 * 1024)


class SaturatingCounter:
    """A single n-bit saturating counter (scalar reference model)."""

    def __init__(self, bits: int = 8) -> None:
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.value = 0

    def increment(self, by: int = 1) -> int:
        self.value = min(self.max_value, self.value + by)
        return self.value

    def reset(self) -> None:
        self.value = 0


class FullCounters:
    """Per-page read/write saturating counters over a sparse page set.

    The hardware proposal dedicates counters to every addressable
    page; in simulation we store them sparsely but saturate and cost
    them as the hardware would.
    """

    def __init__(self, counter_bits: int = 8) -> None:
        if counter_bits <= 0:
            raise ValueError("counter_bits must be positive")
        self.counter_bits = counter_bits
        self.max_value = (1 << counter_bits) - 1
        self._reads: "dict[int, int]" = {}
        self._writes: "dict[int, int]" = {}

    def record(self, page: int, is_write: bool) -> None:
        table = self._writes if is_write else self._reads
        table[page] = min(self.max_value, table.get(page, 0) + 1)

    def record_batch(self, pages: np.ndarray, is_write: np.ndarray) -> None:
        """Vectorised bulk update for a trace chunk."""
        for selector, table in ((is_write, self._writes), (~is_write, self._reads)):
            if not selector.any():
                continue
            unique, counts = np.unique(pages[selector], return_counts=True)
            for page, count in zip(unique, counts):
                page = int(page)
                table[page] = min(self.max_value, table.get(page, 0) + int(count))

    def reads(self, page: int) -> int:
        return self._reads.get(page, 0)

    def writes(self, page: int) -> int:
        return self._writes.get(page, 0)

    def hotness(self, page: int) -> int:
        """Raw access count: reads + writes."""
        return self.reads(page) + self.writes(page)

    def write_ratio(self, page: int) -> float:
        """Run-time risk metric Wr/Rd (low ratio = high risk)."""
        return self.writes(page) / max(1, self.reads(page))

    def touched_pages(self) -> "list[int]":
        return list(self._reads.keys() | self._writes.keys())

    def snapshot(self) -> "dict[int, tuple[int, int]]":
        """page -> (reads, writes) for every touched page."""
        out = {}
        for page in self.touched_pages():
            out[page] = (self.reads(page), self.writes(page))
        return out

    def reset(self) -> None:
        """Clear all counters (done at each migration interval)."""
        self._reads.clear()
        self._writes.clear()

    @staticmethod
    def storage_cost(pages_tracked: int, counter_bits: int = 8,
                     counters_per_page: int = 2) -> CounterCost:
        """Hardware cost of FC tracking (Sec. 6.3: 16 bits x 4.25M
        pages = 8.5 MB for the example 17 GB HMA)."""
        return CounterCost(
            bits_per_page=counter_bits * counters_per_page,
            pages_tracked=pages_tracked,
        )
