"""Static data-placement policies (paper Sections 4.2, 5).

Every policy consumes a profiled :class:`~repro.avf.page.PageStats`
(the paper's prior profiling run) and an HBM capacity, and returns the
set of pages to place in the fast memory; everything else goes to the
slow memory.  Policies implemented:

* :class:`DdrOnlyPlacement` — baseline, nothing in HBM.
* :class:`PerformanceFocusedPlacement` — top hot pages (Sec. 4.2).
* :class:`ReliabilityFocusedPlacement` — lowest-AVF pages (Sec. 5.1).
* :class:`BalancedPlacement` — only the hot & low-risk quadrant
  (Sec. 5.2); conservative: never puts high-risk pages in HBM even if
  HBM would go underfilled.
* :class:`WrRatioPlacement` — top Wr/Rd heuristic (Sec. 5.4.1).
* :class:`Wr2RatioPlacement` — top Wr^2/Rd heuristic (Sec. 5.4.2).
* :class:`HotFractionPlacement` — a parameterised fraction of the
  hottest pages, the sweep of Figure 1.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.avf.page import PageStats


def _take_top(stats: PageStats, score: np.ndarray, capacity: int) -> np.ndarray:
    """Pages with the ``capacity`` highest scores (desc, stable)."""
    if capacity <= 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(-score, kind="stable")
    return stats.pages[order[:capacity]].astype(np.int64)


class PlacementPolicy(ABC):
    """A static page-placement strategy."""

    #: Short identifier used in reports and experiment tables.
    name: str = "base"

    @abstractmethod
    def select_fast_pages(self, stats: PageStats, capacity_pages: int) -> np.ndarray:
        """Pages to install in the fast memory (at most the capacity)."""

    def select_ranking(self, stats: PageStats) -> "np.ndarray | None":
        """Full preference order, when the policy has prefix structure.

        When this returns an array, ``select_fast_pages(stats, c)`` is
        exactly ``ranking[:self.ranked_take(c)]`` for every capacity —
        the multi-run engine ranks once per policy and slices per
        capacity instead of re-sorting per sweep point.  ``None`` means
        no such structure; callers fall back to per-capacity calls.
        """
        return None

    def ranked_take(self, capacity_pages: int) -> int:
        """Ranking prefix length that a given capacity maps to."""
        return max(0, capacity_pages)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class DdrOnlyPlacement(PlacementPolicy):
    """Everything in slow memory — the paper's reliability baseline."""

    name = "ddr-only"

    def select_fast_pages(self, stats: PageStats, capacity_pages: int) -> np.ndarray:
        return np.empty(0, dtype=np.int64)

    def select_ranking(self, stats: PageStats) -> np.ndarray:
        return np.empty(0, dtype=np.int64)


class PerformanceFocusedPlacement(PlacementPolicy):
    """Profile-guided top-hot placement (IPC upper bound, Sec. 4.2)."""

    name = "perf-focused"

    def select_fast_pages(self, stats: PageStats, capacity_pages: int) -> np.ndarray:
        return _take_top(stats, stats.hotness.astype(np.float64), capacity_pages)

    def select_ranking(self, stats: PageStats) -> np.ndarray:
        return _take_top(stats, stats.hotness.astype(np.float64), len(stats))


class ReliabilityFocusedPlacement(PlacementPolicy):
    """Naive lowest-AVF placement, hotness-blind (Sec. 5.1)."""

    name = "rel-focused"

    def select_fast_pages(self, stats: PageStats, capacity_pages: int) -> np.ndarray:
        return _take_top(stats, -stats.avf, capacity_pages)

    def select_ranking(self, stats: PageStats) -> np.ndarray:
        return _take_top(stats, -stats.avf, len(stats))


class BalancedPlacement(PlacementPolicy):
    """Hot & low-risk quadrant only, hottest first (Sec. 5.2).

    The split thresholds are the footprint means, matching Figure 4.
    The policy is conservative: it never selects outside the quadrant,
    so HBM may be left underfilled.
    """

    name = "balanced"

    def select_fast_pages(self, stats: PageStats, capacity_pages: int) -> np.ndarray:
        return self.select_ranking(stats)[: max(0, capacity_pages)]

    def select_ranking(self, stats: PageStats) -> np.ndarray:
        hotness = stats.hotness.astype(np.float64)
        in_quadrant = (hotness > hotness.mean()) & (stats.avf < stats.avf.mean())
        if not in_quadrant.any():
            return np.empty(0, dtype=np.int64)
        order = np.argsort(-hotness[in_quadrant], kind="stable")
        return stats.pages[in_quadrant][order].astype(np.int64)


class WrRatioPlacement(PlacementPolicy):
    """Top Wr/Rd pages: the plain AVF-proxy heuristic (Sec. 5.4.1)."""

    name = "wr-ratio"

    def select_fast_pages(self, stats: PageStats, capacity_pages: int) -> np.ndarray:
        return _take_top(stats, stats.write_ratio, capacity_pages)

    def select_ranking(self, stats: PageStats) -> np.ndarray:
        return _take_top(stats, stats.write_ratio, len(stats))


class Wr2RatioPlacement(PlacementPolicy):
    """Top Wr^2/Rd pages: the hotness-weighted proxy (Sec. 5.4.2)."""

    name = "wr2-ratio"

    def select_fast_pages(self, stats: PageStats, capacity_pages: int) -> np.ndarray:
        return _take_top(stats, stats.wr2_ratio, capacity_pages)

    def select_ranking(self, stats: PageStats) -> np.ndarray:
        return _take_top(stats, stats.wr2_ratio, len(stats))


class HotFractionPlacement(PlacementPolicy):
    """Top ``fraction`` of HBM capacity filled with hot pages (Fig. 1)."""

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction
        self.name = f"hot-{fraction:.2f}"

    def select_fast_pages(self, stats: PageStats, capacity_pages: int) -> np.ndarray:
        take = int(round(capacity_pages * self.fraction))
        return _take_top(stats, stats.hotness.astype(np.float64), take)

    def select_ranking(self, stats: PageStats) -> np.ndarray:
        return _take_top(stats, stats.hotness.astype(np.float64), len(stats))

    def ranked_take(self, capacity_pages: int) -> int:
        return max(0, int(round(capacity_pages * self.fraction)))

    def __repr__(self) -> str:
        return f"HotFractionPlacement(fraction={self.fraction})"


#: All named static policies, for harness sweeps.
STATIC_POLICIES = {
    policy.name: policy
    for policy in (
        DdrOnlyPlacement(),
        PerformanceFocusedPlacement(),
        ReliabilityFocusedPlacement(),
        BalancedPlacement(),
        WrRatioPlacement(),
        Wr2RatioPlacement(),
    )
}
