"""MemPod-style pod-clustered migration (Prodromou et al., HPCA'17).

MemPod — the architecture the paper borrows its MEA tracking from —
clusters fast and slow memory into independently-operating "Pods" and
only permits intra-pod migrations: each pod runs its own small MEA map
and promotes its own hot pages every fine-grained interval.  The
restriction shrinks the bookkeeping (a pod only tracks its slice) at a
small performance cost versus a global mechanism.

Our model assigns pages to pods by address hash and splits the fast
memory's frames evenly across pods.  The timing model does not
partition channels (the HMA page table is global), so the pod effect
captured here is the *policy* restriction: a pod's hot pages can only
displace residents of the same pod.
"""

from __future__ import annotations

import numpy as np

from repro.core.mea import MeaTracker
from repro.core.migration import MigrationMechanism, MigrationPlan
from repro.dram.hma import FAST, HeterogeneousMemory


class MemPodMigration(MigrationMechanism):
    """Per-pod MEA hotness tracking with intra-pod migration only."""

    name = "mempod-migration"

    def __init__(
        self,
        num_pods: int = 4,
        mea_capacity: int = 32,
        subintervals_per_interval: int = 16,
    ) -> None:
        if num_pods < 1:
            raise ValueError("num_pods must be >= 1")
        if subintervals_per_interval < 1:
            raise ValueError("subintervals_per_interval must be >= 1")
        self.num_pods = num_pods
        self.trackers = [MeaTracker(capacity=mea_capacity)
                         for _ in range(num_pods)]
        self.subintervals_per_interval = subintervals_per_interval
        #: Residual per-page hotness used only to pick pod victims.
        self._recent: "dict[int, int]" = {}

    def pod_of(self, page: int) -> int:
        return page % self.num_pods

    def observe_chunk(self, pages: np.ndarray, is_write: np.ndarray,
                      times: "np.ndarray | None" = None) -> None:
        recent = self._recent
        for page in pages.tolist():
            page = int(page)
            self.trackers[page % self.num_pods].record(page)
            recent[page] = recent.get(page, 0) + 1

    def plan_sub(self, hma: HeterogeneousMemory) -> MigrationPlan:
        """MEA interval: every pod promotes its own hot pages."""
        in_fast = set(hma.pages_in(FAST))
        pod_capacity = max(1, hma.fast_capacity_pages // self.num_pods)
        residents_by_pod: "dict[int, list[int]]" = {}
        for page in in_fast:
            residents_by_pod.setdefault(self.pod_of(page), []).append(page)

        to_fast: "list[int]" = []
        to_slow: "list[int]" = []
        free_global = hma.fast_capacity_pages - len(in_fast)
        for pod, tracker in enumerate(self.trackers):
            hot = [p for p in tracker.hot_pages(min_count=2)
                   if p not in in_fast]
            tracker.reset()
            if not hot:
                continue
            residents = residents_by_pod.get(pod, [])
            pod_free = max(0, pod_capacity - len(residents))
            pod_free = min(pod_free, max(0, free_global - len(to_fast)
                                         + len(to_slow)))
            promote = hot[: pod_free + len(residents)]
            need_evict = max(0, len(promote) - pod_free)
            victims = sorted(
                residents, key=lambda p: self._recent.get(p, 0)
            )[:need_evict]
            promote = promote[: pod_free + len(victims)]
            to_fast.extend(promote)
            to_slow.extend(victims)
        return to_fast, to_slow

    def plan(self, hma: HeterogeneousMemory) -> MigrationPlan:
        """Coarse interval: clear the recency bookkeeping."""
        self._recent.clear()
        return [], []

    def hardware_cost_bytes(self, total_pages: int, fast_pages: int) -> int:
        return self.num_pods * MeaTracker.storage_cost_bytes(
            self.trackers[0].capacity
        )
