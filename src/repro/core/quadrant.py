"""Hotness-risk quadrant analysis (paper Section 4.2, Figure 4).

The memory footprint splits around mean hotness and mean AVF into four
quadrants; the paper's headline observation is that 9-39% of pages are
simultaneously *hot and low-risk* — ideal HBM candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import PAGE_SIZE
from repro.avf.page import PageStats


@dataclass(frozen=True)
class QuadrantSummary:
    """Page counts of the four hotness-risk quadrants of one workload."""

    workload: str
    mean_hotness: float
    mean_avf: float
    hot_high_risk: int
    hot_low_risk: int
    cold_high_risk: int
    cold_low_risk: int
    #: Pages in the footprint that were never touched (hotness 0,
    #: AVF 0); they sit in the cold & low-risk corner.
    untouched: int

    @property
    def total_pages(self) -> int:
        return (self.hot_high_risk + self.hot_low_risk + self.cold_high_risk
                + self.cold_low_risk + self.untouched)

    @property
    def hot_low_risk_fraction(self) -> float:
        """The paper's headline metric: 9%-39% across workloads."""
        total = self.total_pages
        return self.hot_low_risk / total if total else 0.0

    @property
    def hot_low_risk_bytes(self) -> int:
        return self.hot_low_risk * PAGE_SIZE

    def fractions(self) -> "dict[str, float]":
        total = self.total_pages or 1
        return {
            "hot_high_risk": self.hot_high_risk / total,
            "hot_low_risk": self.hot_low_risk / total,
            "cold_high_risk": self.cold_high_risk / total,
            "cold_low_risk": (self.cold_low_risk + self.untouched) / total,
        }


def quadrant_split(
    stats: PageStats, workload: str = ""
) -> QuadrantSummary:
    """Classify the footprint around mean hotness and mean AVF.

    Means are taken over the *touched* pages, as the paper's scatter
    plots draw only pages with activity; never-touched pages are
    reported separately and counted as cold & low-risk.
    """
    hotness = stats.hotness.astype(np.float64)
    avf = stats.avf
    mean_hot = float(hotness.mean()) if len(stats) else 0.0
    mean_avf = float(avf.mean()) if len(stats) else 0.0

    hot = hotness > mean_hot
    risky = avf > mean_avf
    return QuadrantSummary(
        workload=workload,
        mean_hotness=mean_hot,
        mean_avf=mean_avf,
        hot_high_risk=int((hot & risky).sum()),
        hot_low_risk=int((hot & ~risky).sum()),
        cold_high_risk=int((~hot & risky).sum()),
        cold_low_risk=int((~hot & ~risky).sum()),
        untouched=max(0, stats.footprint_pages - len(stats)),
    )
