"""Program-annotation-based data placement (paper Section 7).

A programmer (or profile-guided compiler) annotates a handful of
program structures that are frequently accessed yet rarely live —
hot & low-risk.  The ELF loader pins the annotated structures' pages
into HBM and marks them exempt from migration.

Structures here are the workload generator's named regions
(:class:`~repro.trace.synthetic.RegionSpec`): each benchmark exposes
its arrays/heaps/tables, and annotating one structure covers every
process running that benchmark (as annotating the source does).

This module also hosts the per-page **error-tolerance classes**
(Heterogeneous-Reliability Memory, Luo et al.): an annotation of how
much an application cares about silent corruption of each structure.
``critical`` data (indexes, session state) must not corrupt silently;
``tolerant`` data (refetchable caches, verifiable outputs) can absorb
the low-reliability tier.  :class:`ToleranceMap` carries the class per
page; the ``tolerance-tiered`` migration policy weighs measured ACE
time by the class's intolerance weight when ranking pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.avf.page import PageStats
from repro.trace.synthetic import RegionLayout
from repro.trace.workloads import WorkloadTrace


#: Tolerance classes, ordered from least to most tolerant.  The index
#: into this tuple is the on-wire per-page class id.
TOLERANCE_CLASSES = ("critical", "standard", "tolerant")

#: Intolerance weight per class: how strongly a unit of measured ACE
#: time counts against keeping the page in the low-reliability tier.
#: ``critical`` ACE counts in full; ``tolerant`` ACE is discounted to
#: near-nothing (an error there is absorbed by the application).
TOLERANCE_WEIGHTS = {"critical": 1.0, "standard": 0.6, "tolerant": 0.15}

DEFAULT_TOLERANCE = "standard"


@dataclass
class ToleranceMap:
    """Per-page error-tolerance classes over one workload footprint.

    ``page_class[p]`` is the index into :data:`TOLERANCE_CLASSES` for
    global page ``p``.  Pages beyond the array (or any page when no map
    exists) are treated as ``standard``.
    """

    #: int8 class index per page, length == workload footprint.
    page_class: np.ndarray

    def __post_init__(self) -> None:
        self.page_class = np.asarray(self.page_class, dtype=np.int8)
        if self.page_class.ndim != 1:
            raise ValueError("page_class must be one-dimensional")
        if len(self.page_class) and not (
            (self.page_class >= 0)
            & (self.page_class < len(TOLERANCE_CLASSES))
        ).all():
            raise ValueError("page_class entries must index "
                             f"TOLERANCE_CLASSES (0..{len(TOLERANCE_CLASSES) - 1})")

    def __len__(self) -> int:
        return len(self.page_class)

    @property
    def _class_weights(self) -> np.ndarray:
        return np.array([TOLERANCE_WEIGHTS[c] for c in TOLERANCE_CLASSES])

    def weights(self) -> np.ndarray:
        """Per-page intolerance weight, float64, aligned with pages."""
        return self._class_weights[self.page_class]

    def weights_of(self, pages) -> np.ndarray:
        """Intolerance weights for arbitrary global page ids.

        Pages outside the mapped footprint get the ``standard`` weight.
        """
        pages = np.asarray(pages, dtype=np.int64)
        out = np.full(len(pages), TOLERANCE_WEIGHTS[DEFAULT_TOLERANCE])
        valid = (pages >= 0) & (pages < len(self.page_class))
        if valid.any():
            out[valid] = self._class_weights[self.page_class[pages[valid]]]
        return out

    def weight_of(self, page: int) -> float:
        """Scalar intolerance weight of one page (bit-identical to the
        corresponding :meth:`weights_of` lane)."""
        if 0 <= page < len(self.page_class):
            return float(
                self._class_weights[int(self.page_class[page])])
        return float(TOLERANCE_WEIGHTS[DEFAULT_TOLERANCE])

    def class_counts(self) -> "dict[str, int]":
        """Pages per tolerance class."""
        counts = np.bincount(self.page_class,
                             minlength=len(TOLERANCE_CLASSES))
        return {name: int(counts[i])
                for i, name in enumerate(TOLERANCE_CLASSES)}

    def mix_fractions(self) -> "dict[str, float]":
        """Footprint fraction per tolerance class."""
        total = max(1, len(self.page_class))
        return {name: count / total
                for name, count in self.class_counts().items()}


def tolerance_map(
    workload_trace: WorkloadTrace,
    region_classes: "dict[str, str]",
    default: str = DEFAULT_TOLERANCE,
) -> ToleranceMap:
    """Build a per-page tolerance map from per-region class labels.

    ``region_classes`` maps unqualified region names (``hot_keys``) to
    tolerance classes; every page of every core's region inherits its
    class.  Unlisted regions get ``default``.
    """
    for cls in list(region_classes.values()) + [default]:
        if cls not in TOLERANCE_CLASSES:
            raise ValueError(f"unknown tolerance class {cls!r} "
                             f"(have {', '.join(TOLERANCE_CLASSES)})")
    page_class = np.full(workload_trace.footprint_pages,
                         TOLERANCE_CLASSES.index(default), dtype=np.int8)
    for layouts in workload_trace.core_layouts:
        for layout in layouts:
            cls = region_classes.get(layout.spec.name, default)
            page_class[layout.first_page:
                       layout.first_page + layout.num_pages] = (
                TOLERANCE_CLASSES.index(cls))
    return ToleranceMap(page_class=page_class)


@dataclass(frozen=True)
class StructureProfile:
    """Aggregate hotness/risk of one annotatable structure."""

    name: str
    pages: int
    accesses: int
    mean_hotness: float
    mean_avf: float

    @property
    def is_empty(self) -> bool:
        return self.accesses == 0


@dataclass
class AnnotationPlan:
    """The chosen annotations and the placement they induce."""

    workload: str
    annotated: "list[StructureProfile]" = field(default_factory=list)
    pinned_pages: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    @property
    def num_annotations(self) -> int:
        return len(self.annotated)

    @property
    def structure_names(self) -> "list[str]":
        return [s.name for s in self.annotated]


def profile_structures(
    workload_trace: WorkloadTrace, stats: PageStats
) -> "list[StructureProfile]":
    """Aggregate page statistics up to named program structures.

    Homogeneous copies of a benchmark share one structure per region
    name, so their pages pool together (one annotation covers all
    copies).
    """
    page_to_idx = {int(p): i for i, p in enumerate(stats.pages)}
    hotness = stats.hotness
    profiles = []
    for name, layouts in workload_trace.structures().items():
        total_pages = sum(l.num_pages for l in layouts)
        accesses = 0
        avf_sum = 0.0
        for layout in layouts:
            for page in range(layout.first_page, layout.first_page + layout.num_pages):
                idx = page_to_idx.get(page)
                if idx is None:
                    continue
                accesses += int(hotness[idx])
                avf_sum += float(stats.avf[idx])
        profiles.append(
            StructureProfile(
                name=name,
                pages=total_pages,
                accesses=accesses,
                mean_hotness=accesses / total_pages if total_pages else 0.0,
                mean_avf=avf_sum / total_pages if total_pages else 0.0,
            )
        )
    return profiles


def _structure_pages(layouts: "list[RegionLayout]") -> np.ndarray:
    parts = [
        np.arange(l.first_page, l.first_page + l.num_pages, dtype=np.int64)
        for l in layouts
    ]
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


def plan_annotations(
    workload_trace: WorkloadTrace,
    stats: PageStats,
    capacity_pages: int,
    avf_quantile: float = 0.7,
) -> AnnotationPlan:
    """Choose structures to annotate until HBM capacity is covered.

    Candidate structures are the hot & low-risk ones: mean structure
    AVF below the ``avf_quantile`` of structure AVFs, ranked by mean
    hotness (hottest first).  Structures are added until their combined
    footprint fills the HBM capacity, mirroring Fig. 17's "1 GB of
    potentially hot and low-risk pages".
    """
    if capacity_pages <= 0:
        return AnnotationPlan(workload=workload_trace.workload_name)
    structures = workload_trace.structures()
    profiles = [p for p in profile_structures(workload_trace, stats)
                if not p.is_empty]
    if not profiles:
        return AnnotationPlan(workload=workload_trace.workload_name)

    avfs = np.array([p.mean_avf for p in profiles])
    threshold = float(np.quantile(avfs, avf_quantile))
    low_risk = [p for p in profiles if p.mean_avf <= threshold]
    low_risk.sort(key=lambda p: -p.mean_hotness)

    chosen: "list[StructureProfile]" = []
    pinned: "list[np.ndarray]" = []
    covered = 0
    for profile in low_risk:
        if covered >= capacity_pages:
            break
        pages = _structure_pages(structures[profile.name])
        room = capacity_pages - covered
        if len(pages) > room:
            # Partial pin of the structure's hottest pages.
            idx = stats.index_of(
                np.intersect1d(pages, stats.pages, assume_unique=False)
            )
            order = np.argsort(-stats.hotness[idx], kind="stable")
            pages = stats.pages[idx[order][:room]].astype(np.int64)
        chosen.append(profile)
        pinned.append(pages)
        covered += len(pages)

    pinned_pages = (
        np.unique(np.concatenate(pinned)) if pinned
        else np.empty(0, dtype=np.int64)
    )
    return AnnotationPlan(
        workload=workload_trace.workload_name,
        annotated=chosen,
        pinned_pages=pinned_pages,
    )
