"""Program-annotation-based data placement (paper Section 7).

A programmer (or profile-guided compiler) annotates a handful of
program structures that are frequently accessed yet rarely live —
hot & low-risk.  The ELF loader pins the annotated structures' pages
into HBM and marks them exempt from migration.

Structures here are the workload generator's named regions
(:class:`~repro.trace.synthetic.RegionSpec`): each benchmark exposes
its arrays/heaps/tables, and annotating one structure covers every
process running that benchmark (as annotating the source does).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.avf.page import PageStats
from repro.trace.synthetic import RegionLayout
from repro.trace.workloads import WorkloadTrace


@dataclass(frozen=True)
class StructureProfile:
    """Aggregate hotness/risk of one annotatable structure."""

    name: str
    pages: int
    accesses: int
    mean_hotness: float
    mean_avf: float

    @property
    def is_empty(self) -> bool:
        return self.accesses == 0


@dataclass
class AnnotationPlan:
    """The chosen annotations and the placement they induce."""

    workload: str
    annotated: "list[StructureProfile]" = field(default_factory=list)
    pinned_pages: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    @property
    def num_annotations(self) -> int:
        return len(self.annotated)

    @property
    def structure_names(self) -> "list[str]":
        return [s.name for s in self.annotated]


def profile_structures(
    workload_trace: WorkloadTrace, stats: PageStats
) -> "list[StructureProfile]":
    """Aggregate page statistics up to named program structures.

    Homogeneous copies of a benchmark share one structure per region
    name, so their pages pool together (one annotation covers all
    copies).
    """
    page_to_idx = {int(p): i for i, p in enumerate(stats.pages)}
    hotness = stats.hotness
    profiles = []
    for name, layouts in workload_trace.structures().items():
        total_pages = sum(l.num_pages for l in layouts)
        accesses = 0
        avf_sum = 0.0
        for layout in layouts:
            for page in range(layout.first_page, layout.first_page + layout.num_pages):
                idx = page_to_idx.get(page)
                if idx is None:
                    continue
                accesses += int(hotness[idx])
                avf_sum += float(stats.avf[idx])
        profiles.append(
            StructureProfile(
                name=name,
                pages=total_pages,
                accesses=accesses,
                mean_hotness=accesses / total_pages if total_pages else 0.0,
                mean_avf=avf_sum / total_pages if total_pages else 0.0,
            )
        )
    return profiles


def _structure_pages(layouts: "list[RegionLayout]") -> np.ndarray:
    parts = [
        np.arange(l.first_page, l.first_page + l.num_pages, dtype=np.int64)
        for l in layouts
    ]
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


def plan_annotations(
    workload_trace: WorkloadTrace,
    stats: PageStats,
    capacity_pages: int,
    avf_quantile: float = 0.7,
) -> AnnotationPlan:
    """Choose structures to annotate until HBM capacity is covered.

    Candidate structures are the hot & low-risk ones: mean structure
    AVF below the ``avf_quantile`` of structure AVFs, ranked by mean
    hotness (hottest first).  Structures are added until their combined
    footprint fills the HBM capacity, mirroring Fig. 17's "1 GB of
    potentially hot and low-risk pages".
    """
    if capacity_pages <= 0:
        return AnnotationPlan(workload=workload_trace.workload_name)
    structures = workload_trace.structures()
    profiles = [p for p in profile_structures(workload_trace, stats)
                if not p.is_empty]
    if not profiles:
        return AnnotationPlan(workload=workload_trace.workload_name)

    avfs = np.array([p.mean_avf for p in profiles])
    threshold = float(np.quantile(avfs, avf_quantile))
    low_risk = [p for p in profiles if p.mean_avf <= threshold]
    low_risk.sort(key=lambda p: -p.mean_hotness)

    chosen: "list[StructureProfile]" = []
    pinned: "list[np.ndarray]" = []
    covered = 0
    for profile in low_risk:
        if covered >= capacity_pages:
            break
        pages = _structure_pages(structures[profile.name])
        room = capacity_pages - covered
        if len(pages) > room:
            # Partial pin of the structure's hottest pages.
            idx = stats.index_of(
                np.intersect1d(pages, stats.pages, assume_unique=False)
            )
            order = np.argsort(-stats.hotness[idx], kind="stable")
            pages = stats.pages[idx[order][:room]].astype(np.int64)
        chosen.append(profile)
        pinned.append(pages)
        covered += len(pages)

    pinned_pages = (
        np.unique(np.concatenate(pinned)) if pinned
        else np.empty(0, dtype=np.int64)
    )
    return AnnotationPlan(
        workload=workload_trace.workload_name,
        annotated=chosen,
        pinned_pages=pinned_pages,
    )
